# Static-analysis build targets.
#
#   lint          runs tools/plt_lint's contract rules over src/ (exits
#                 non-zero on any finding; suppressions are visible,
#                 reviewed decisions and count as clean).
#   format-check  clang-format --dry-run --Werror over the C++ sources.
#                 Degrades to a notice when clang-format is not installed
#                 (the default dev container does not ship it); the CI
#                 static-analysis job installs it and runs for real.
#   format        rewrites the sources in place (only defined when
#                 clang-format is available).
#
# tests/lint/fixtures is excluded from formatting on purpose: those files
# are deliberately broken inputs whose line positions are pinned by
# EXPECT(rule) markers.

add_custom_target(lint
  COMMAND $<TARGET_FILE:plt-lint> --root ${CMAKE_SOURCE_DIR} src
  COMMENT "plt-lint: contract rules over src/"
  VERBATIM)
add_dependencies(lint plt-lint)

find_program(PLT_CLANG_FORMAT
             NAMES clang-format clang-format-19 clang-format-18
                   clang-format-17)

file(GLOB_RECURSE PLT_FORMAT_SOURCES
     ${CMAKE_SOURCE_DIR}/src/*.cpp ${CMAKE_SOURCE_DIR}/src/*.hpp
     ${CMAKE_SOURCE_DIR}/tools/*.cpp ${CMAKE_SOURCE_DIR}/tools/*.hpp
     ${CMAKE_SOURCE_DIR}/tests/*.cpp ${CMAKE_SOURCE_DIR}/tests/*.hpp
     ${CMAKE_SOURCE_DIR}/examples/*.cpp ${CMAKE_SOURCE_DIR}/bench/*.cpp
     ${CMAKE_SOURCE_DIR}/bench/*.hpp)
list(FILTER PLT_FORMAT_SOURCES EXCLUDE REGEX "tests/lint/fixtures/")

if(PLT_CLANG_FORMAT)
  add_custom_target(format-check
    COMMAND ${PLT_CLANG_FORMAT} --dry-run --Werror ${PLT_FORMAT_SOURCES}
    COMMENT "clang-format --dry-run --Werror"
    VERBATIM)
  add_custom_target(format
    COMMAND ${PLT_CLANG_FORMAT} -i ${PLT_FORMAT_SOURCES}
    COMMENT "clang-format -i"
    VERBATIM)
else()
  add_custom_target(format-check
    COMMAND ${CMAKE_COMMAND} -E echo
            "format-check: clang-format not found, skipping (install it to enable)"
    COMMENT "clang-format unavailable"
    VERBATIM)
endif()
