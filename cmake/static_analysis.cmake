# Static-analysis build targets.
#
#   lint          runs tools/plt_lint's contract rules over src/ (exits
#                 non-zero on any finding; suppressions are visible,
#                 reviewed decisions and count as clean).
#   flow-lint     just the flow-sensitive rules (taint-bounds,
#                 syscall-check, typed-status) — the fast loop while
#                 working on serve/shard I/O paths; `lint` already
#                 includes them.
#   thread-safety under clang, re-runs the compile with -Wthread-safety
#                 promoted to an error even without PLT_WERROR (the
#                 annotations in src/util/thread_annotations.hpp are
#                 checked; gcc configurations get a notice instead —
#                 the clang-thread-safety CI job is the real gate).
#   format-check  clang-format --dry-run --Werror over the C++ sources.
#                 Degrades to a notice when clang-format is not installed
#                 (the default dev container does not ship it); the CI
#                 static-analysis job installs it and runs for real.
#   format        rewrites the sources in place (only defined when
#                 clang-format is available).
#
# tests/lint/fixtures is excluded from formatting on purpose: those files
# are deliberately broken inputs whose line positions are pinned by
# EXPECT(rule) markers.

add_custom_target(lint
  COMMAND $<TARGET_FILE:plt-lint> --root ${CMAKE_SOURCE_DIR} src
  COMMENT "plt-lint: contract rules over src/"
  VERBATIM)
add_dependencies(lint plt-lint)

add_custom_target(flow-lint
  COMMAND $<TARGET_FILE:plt-lint> --root ${CMAKE_SOURCE_DIR}
          --rules taint-bounds,syscall-check,typed-status src
  COMMENT "plt-lint: flow-sensitive rules over src/"
  VERBATIM)
add_dependencies(flow-lint plt-lint)

if(CMAKE_CXX_COMPILER_ID STREQUAL "Clang")
  # A scratch object build of the annotated concurrency subsystems with
  # the analysis promoted to an error, independent of PLT_WERROR. The
  # list is every TU that locks a plt::Mutex or shares state across
  # threads; plain data-structure TUs gain nothing from a second compile.
  add_library(plt_thread_safety_check OBJECT EXCLUDE_FROM_ALL
    ${CMAKE_SOURCE_DIR}/src/util/log.cpp
    ${CMAKE_SOURCE_DIR}/src/util/thread_pool.cpp
    ${CMAKE_SOURCE_DIR}/src/util/failpoint.cpp
    ${CMAKE_SOURCE_DIR}/src/obs/trace.cpp
    ${CMAKE_SOURCE_DIR}/src/parallel/partition_miner.cpp
    ${CMAKE_SOURCE_DIR}/src/parallel/parallel_build.cpp
    ${CMAKE_SOURCE_DIR}/src/shard/coordinator.cpp
    ${CMAKE_SOURCE_DIR}/src/serve/blob_store.cpp
    ${CMAKE_SOURCE_DIR}/src/serve/server.cpp)
  target_link_libraries(plt_thread_safety_check PRIVATE plt)
  target_compile_options(plt_thread_safety_check PRIVATE
                         -Wthread-safety -Werror=thread-safety)
  add_custom_target(thread-safety
    DEPENDS plt_thread_safety_check
    COMMENT "clang -Wthread-safety over the annotated sources")
else()
  add_custom_target(thread-safety
    COMMAND ${CMAKE_COMMAND} -E echo
            "thread-safety: requires a clang configuration (annotations are no-ops under ${CMAKE_CXX_COMPILER_ID})"
    COMMENT "clang unavailable"
    VERBATIM)
endif()

find_program(PLT_CLANG_FORMAT
             NAMES clang-format clang-format-19 clang-format-18
                   clang-format-17)

file(GLOB_RECURSE PLT_FORMAT_SOURCES
     ${CMAKE_SOURCE_DIR}/src/*.cpp ${CMAKE_SOURCE_DIR}/src/*.hpp
     ${CMAKE_SOURCE_DIR}/tools/*.cpp ${CMAKE_SOURCE_DIR}/tools/*.hpp
     ${CMAKE_SOURCE_DIR}/tests/*.cpp ${CMAKE_SOURCE_DIR}/tests/*.hpp
     ${CMAKE_SOURCE_DIR}/examples/*.cpp ${CMAKE_SOURCE_DIR}/bench/*.cpp
     ${CMAKE_SOURCE_DIR}/bench/*.hpp)
list(FILTER PLT_FORMAT_SOURCES EXCLUDE REGEX "tests/lint/fixtures/")

if(PLT_CLANG_FORMAT)
  add_custom_target(format-check
    COMMAND ${PLT_CLANG_FORMAT} --dry-run --Werror ${PLT_FORMAT_SOURCES}
    COMMENT "clang-format --dry-run --Werror"
    VERBATIM)
  add_custom_target(format
    COMMAND ${PLT_CLANG_FORMAT} -i ${PLT_FORMAT_SOURCES}
    COMMENT "clang-format -i"
    VERBATIM)
else()
  add_custom_target(format-check
    COMMAND ${CMAKE_COMMAND} -E echo
            "format-check: clang-format not found, skipping (install it to enable)"
    COMMENT "clang-format unavailable"
    VERBATIM)
endif()
