// E6 — subset-checking microbenchmarks (google-benchmark): the paper calls
// subset checking "one of the heaviest steps in the mining process" (§6) and
// claims the positional encoding makes it light. Compares:
//   * positional streaming check over the PLT (distinct vectors only)
//   * sorted-set std::includes over the raw horizontal database
//   * per-vector positional_subset vs std::includes on decoded ranks
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string_view>
#include <vector>

#include "core/builder.hpp"
#include "core/subset_check.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "harness/backend.hpp"
#include "harness/tracing.hpp"
#include "tdb/bitmap.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

namespace {

using namespace plt;

struct Fixture {
  tdb::Database db;
  core::RankedView view;
  core::Plt plt{1};
  std::vector<std::vector<Rank>> queries;

  Fixture(tdb::Database source, Count minsup) : db(std::move(source)) {
    view = core::build_ranked_view(db, minsup);
    plt = core::build_plt(view.db, static_cast<Rank>(view.alphabet()));
    Rng rng(5);
    for (int q = 0; q < 64; ++q) {
      std::vector<Rank> query;
      Rank r = 0;
      const auto len = 2 + rng.next_below(3);
      for (std::uint64_t i = 0; i < len; ++i) {
        r += static_cast<Rank>(rng.next_below(8) + 1);
        if (r > view.alphabet()) break;
        query.push_back(r);
      }
      if (!query.empty()) queries.push_back(std::move(query));
    }
  }

  // Sparse: almost every transaction is a distinct vector — the PLT scan's
  // worst case (no duplicate collapse).
  static const Fixture& sparse() {
    static const Fixture f = [] {
      datagen::QuestConfig cfg;
      cfg.transactions = 20000;
      cfg.items = 400;
      cfg.seed = 33;
      return Fixture(datagen::generate_quest(cfg), 20);
    }();
    return f;
  }

  // Dense-short: heavy duplication, so the PLT holds far fewer vectors than
  // there are transactions — the regime where the structure pays off.
  static const Fixture& dense() {
    static const Fixture f = [] {
      datagen::DenseConfig cfg;
      cfg.transactions = 20000;
      cfg.items = 24;
      cfg.density = 0.3;
      cfg.classes = 4;
      cfg.core_fraction = 0.7;
      cfg.seed = 34;
      return Fixture(datagen::generate_dense(cfg), 20);
    }();
    return f;
  }
};

void run_plt_scan(benchmark::State& state, const Fixture& fx) {
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto& q = fx.queries[qi++ % fx.queries.size()];
    benchmark::DoNotOptimize(core::support_of(fx.plt, q));
  }
  state.SetLabel("distinct vectors: " + std::to_string(fx.plt.num_vectors()));
}

void run_horizontal_scan(benchmark::State& state, const Fixture& fx) {
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto& q = fx.queries[qi++ % fx.queries.size()];
    benchmark::DoNotOptimize(core::support_of_scan(fx.view.db, q));
  }
  state.SetLabel("transactions: " + std::to_string(fx.view.db.size()));
}

void BM_Sparse_SupportViaPltScan(benchmark::State& state) {
  run_plt_scan(state, Fixture::sparse());
}
BENCHMARK(BM_Sparse_SupportViaPltScan)->Unit(benchmark::kMicrosecond);

void BM_Sparse_SupportViaHorizontalScan(benchmark::State& state) {
  run_horizontal_scan(state, Fixture::sparse());
}
BENCHMARK(BM_Sparse_SupportViaHorizontalScan)->Unit(benchmark::kMicrosecond);

void BM_Dense_SupportViaPltScan(benchmark::State& state) {
  run_plt_scan(state, Fixture::dense());
}
BENCHMARK(BM_Dense_SupportViaPltScan)->Unit(benchmark::kMicrosecond);

void BM_Dense_SupportViaHorizontalScan(benchmark::State& state) {
  run_horizontal_scan(state, Fixture::dense());
}
BENCHMARK(BM_Dense_SupportViaHorizontalScan)->Unit(benchmark::kMicrosecond);

// Third layout from the taxonomy: dense bitmaps (one bit per
// transaction×item). Queries reuse the fixtures' rank-space itemsets.
void run_bitmap_scan(benchmark::State& state, const Fixture& fx) {
  const tdb::BitmapView bitmap(fx.view.db);
  std::size_t qi = 0;
  for (auto _ : state) {
    const auto& q = fx.queries[qi++ % fx.queries.size()];
    benchmark::DoNotOptimize(
        bitmap.support_of(std::span<const Item>(q.data(), q.size())));
  }
  state.SetLabel("bitmap bytes: " + std::to_string(bitmap.memory_usage()));
}

void BM_Sparse_SupportViaBitmap(benchmark::State& state) {
  run_bitmap_scan(state, Fixture::sparse());
}
BENCHMARK(BM_Sparse_SupportViaBitmap)->Unit(benchmark::kMicrosecond);

void BM_Dense_SupportViaBitmap(benchmark::State& state) {
  run_bitmap_scan(state, Fixture::dense());
}
BENCHMARK(BM_Dense_SupportViaBitmap)->Unit(benchmark::kMicrosecond);

// Per-pair check: positional streaming vs decode-then-std::includes.
void BM_PairPositionalSubset(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::pair<core::PosVec, core::PosVec>> pairs;
  for (int i = 0; i < 256; ++i) {
    std::vector<Rank> small, big;
    Rank r = 0;
    for (int k = 0; k < 30; ++k) {
      r += static_cast<Rank>(rng.next_below(5) + 1);
      big.push_back(r);
      if (rng.next_bool(0.2)) small.push_back(r);
    }
    if (small.empty()) small.push_back(big[0]);
    pairs.emplace_back(core::to_positions(small), core::to_positions(big));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(core::positional_subset(x, y));
  }
}
BENCHMARK(BM_PairPositionalSubset);

void BM_PairDecodeThenIncludes(benchmark::State& state) {
  Rng rng(7);
  std::vector<std::pair<core::PosVec, core::PosVec>> pairs;
  for (int i = 0; i < 256; ++i) {
    std::vector<Rank> small, big;
    Rank r = 0;
    for (int k = 0; k < 30; ++k) {
      r += static_cast<Rank>(rng.next_below(5) + 1);
      big.push_back(r);
      if (rng.next_bool(0.2)) small.push_back(r);
    }
    if (small.empty()) small.push_back(big[0]);
    pairs.emplace_back(core::to_positions(small), core::to_positions(big));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [x, y] = pairs[i++ % pairs.size()];
    const auto rx = core::to_ranks(x);  // materializes two rank buffers
    const auto ry = core::to_ranks(y);
    benchmark::DoNotOptimize(
        std::includes(ry.begin(), ry.end(), rx.begin(), rx.end()));
  }
}
BENCHMARK(BM_PairDecodeThenIncludes);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared --backend flag is
// stripped before the remaining arguments reach google-benchmark.
int main(int argc, char** argv) {
  const plt::Args args(argc, argv);
  if (!plt::harness::apply_backend_flag(args)) return 2;
  if (!plt::harness::apply_plan_flag(args)) return 2;
  plt::harness::TraceScope trace_scope(args);
  std::vector<char*> rest;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--backend") { ++i; continue; }  // space-separated value
    if (arg.rfind("--backend=", 0) == 0) continue;
    rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
