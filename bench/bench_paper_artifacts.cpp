// P1-P5: regenerates every structure the paper draws, and verifies each
// against the hard-coded expected values (exits non-zero on mismatch, so
// this binary doubles as an end-to-end acceptance check).
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok]   " : "  [FAIL] ") << what << '\n';
  if (!ok) ++g_failures;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  constexpr Item A = 1, B = 2, C = 3, D = 4, E = 5, F = 6;
  const auto db = tdb::Database::from_transactions({
      {A, B, C}, {A, B, C}, {A, B, C, D}, {A, B, D, E}, {B, C, D},
      {C, D, F},
  });

  harness::print_banner(std::cout, "P1", "Table 1 + rank assignment",
                        "Table 1, section 4.2");
  const auto view = core::build_ranked_view(db, 2);
  check(view.alphabet() == 4, "four frequent items at minsup 2");
  check(view.support_of(1) == 4 && view.support_of(2) == 5 &&
            view.support_of(3) == 5 && view.support_of(4) == 4,
        "supports (A,4) (B,5) (C,5) (D,4)");
  check(!view.remap.map(E) && !view.remap.map(F), "E and F filtered");

  harness::print_banner(std::cout, "P2", "PLT of items {A,B,C,D}",
                        "Figure 2");
  // In the positional tree, each node's value is Rank(child)-Rank(parent);
  // spot-check the figure: root children carry 1..4, A's children 1,2,3.
  check(core::to_positions(std::vector<Rank>{1, 3}) == core::PosVec({1, 2}),
        "pos(C under A) == 2 (Definition 4.1.2 example)");
  check(core::to_positions(std::vector<Rank>{2, 3, 4}) ==
            core::PosVec({2, 1, 1}),
        "path B->C->D encodes as [2,1,1]");

  harness::print_banner(std::cout, "P3", "matrices / tree structure",
                        "Figure 3");
  const auto built = core::build_from_database(db, 2);
  std::cout << built.plt.to_string();
  check(built.plt.num_vectors() == 5 && built.plt.total_freq() == 6,
        "five distinct vectors covering six transactions");
  check(built.plt.freq_of(core::PosVec{1, 1, 1}) == 2,
        "[1,1,1] (ABC) has frequency 2");
  check(built.plt.freq_of(core::PosVec{3, 1}) == 1, "[3,1] (CD) present");

  harness::print_banner(std::cout, "P4", "database after top-down",
                        "Figure 4 / Algorithm 2");
  const auto table =
      core::topdown_expand(view, core::TopDownVariant::kSweep);
  std::cout << table.to_string();
  const std::map<core::PosVec, Count> expected = {
      {{1}, 4},       {{2}, 5},       {{3}, 5},          {{4}, 4},
      {{1, 1}, 4},    {{1, 2}, 3},    {{1, 3}, 2},       {{2, 1}, 4},
      {{2, 2}, 3},    {{3, 1}, 3},    {{1, 1, 1}, 3},    {{1, 1, 2}, 2},
      {{1, 2, 1}, 1}, {{2, 1, 1}, 2}, {{1, 1, 1, 1}, 1},
  };
  bool exact = true;
  std::size_t seen = 0;
  table.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                     const core::Partition::Entry& entry) {
    const auto it = expected.find(core::PosVec(v.begin(), v.end()));
    exact = exact && it != expected.end() && it->second == entry.freq;
    ++seen;
  });
  check(exact && seen == expected.size(),
        "all 15 subset vectors carry their exact supports");

  harness::print_banner(std::cout, "P5", "D's conditional database",
                        "Figure 5 / Algorithm 3");
  const auto cond = core::conditional_database(built.plt, 4);
  std::map<core::PosVec, Count> got;
  for (const auto& [v, freq] : cond) got[v] += freq;
  for (const auto& [v, freq] : got)
    std::cout << "  " << core::to_string(v) << " freq=" << freq << '\n';
  const std::map<core::PosVec, Count> cond_expected = {
      {{1, 1, 1}, 1}, {{1, 1}, 1}, {{2, 1}, 1}, {{3}, 1}};
  check(got == cond_expected, "CD_D = {[1,1,1],[1,1],[2,1],[3]} all x1");

  std::cout << "\n== final answer: frequent itemsets at support 2 ==\n";
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  std::cout << mined.itemsets.to_string();
  check(mined.itemsets.size() == 13, "13 frequent itemsets");

  std::cout << (g_failures ? "\nARTIFACT CHECK FAILED\n"
                           : "\nall paper artifacts reproduced exactly\n");
  return g_failures ? EXIT_FAILURE : EXIT_SUCCESS;
}
