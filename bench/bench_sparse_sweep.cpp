// E2 — sparse support-threshold sweep (the canonical FIMI-style comparison,
// matching the evaluation style of the papers cited in §3): PLT conditional
// vs Apriori vs FP-growth vs Eclat/dEclat on Quest T10/I4-shaped data.
// Results are cross-checked for exact agreement in every cell.
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E2", "sparse dataset support sweep",
                        "sections 3/5.1 (pattern growth vs candidate "
                        "generation on sparse data)");

  for (const char* dataset : {"quest-sparse", "zipf-sparse"}) {
    const auto db = harness::scaled_dataset(dataset, scale);
    harness::SweepConfig config;
    config.dataset_name = dataset;
    config.db = &db;
    config.supports =
        harness::support_grid(db, {0.02, 0.01, 0.005, 0.002, 0.001});
    config.algorithms = {
        core::Algorithm::kPltConditional, core::Algorithm::kApriori,
        core::Algorithm::kFpGrowth,       core::Algorithm::kHMine,
        core::Algorithm::kEclat,          core::Algorithm::kDEclat,
    };
    const auto cells = harness::run_sweep(config);
    harness::print_sweep(std::cout, dataset, cells);
    harness::print_winners(std::cout, cells);
    std::cout << '\n';
  }
  std::cout << "Expected shape: Apriori degrades fastest as the threshold\n"
               "drops (candidate explosion, repeated scans); the pattern-\n"
               "growth miners (PLT conditional, FP-growth) and the vertical\n"
               "miners stay within a small factor of each other.\n";
  return 0;
}
