// E14 — conditional-filtering ablation: the paper's literal Algorithm 3
// builds each conditional PLT from raw prefixes, while §5.1's discussion of
// the anti-monotone property implies filtering locally-infrequent items
// first (as FP-growth does). Both are implemented; this bench quantifies
// the filtering optimization across sparse and dense workloads (results
// are cross-checked equal in every cell by the harness).
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E14",
                        "conditional item-filtering ablation",
                        "section 5.1 (anti-monotone utilization)");

  const struct {
    const char* dataset;
    std::vector<double> fractions;
  } cases[] = {
      {"quest-sparse", {0.01, 0.004, 0.002}},
      {"mushroom-like", {0.30, 0.20, 0.12}},
      {"short-dense", {0.05, 0.01}},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale * 0.5);
    harness::SweepConfig config;
    config.dataset_name = c.dataset;
    config.db = &db;
    config.supports = harness::support_grid(db, c.fractions);
    config.algorithms = {core::Algorithm::kPltConditional,
                         core::Algorithm::kPltConditionalNoFilter};
    const auto cells = harness::run_sweep(config);
    harness::print_sweep(std::cout, c.dataset, cells);
    std::cout << '\n';
  }
  std::cout << "Expected shape: filtering always wins, and the gap widens\n"
               "as thresholds fall (unfiltered conditional PLTs drag\n"
               "locally-infrequent items through every recursion level).\n";
  return 0;
}
