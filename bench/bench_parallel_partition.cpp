// E7 — partitioned parallel mining: the paper's §6 claim that the PLT's
// partition criteria split the mining into independent per-item tasks.
// Reports thread-count scaling of the partition miner against the
// sequential conditional miner, verifying exact agreement. On a single
// hardware core this demonstrates decomposition overhead rather than
// speedup; the table reports both so the shape is interpretable anywhere.
#include <iostream>

#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "parallel/partition_miner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E7", "partitioned parallel mining",
                        "section 6 (partition criteria -> separate tasks)");

  Table table({"dataset", "threads", "build", "mine", "total", "structure",
               "frequent", "agrees"});
  for (const char* dataset : {"quest-sparse", "mushroom-like"}) {
    const auto db = harness::scaled_dataset(dataset, scale * 0.5);
    const Count minsup = harness::absolute_support(
        db, std::string(dataset) == "quest-sparse" ? 0.005 : 0.25);

    const auto sequential =
        core::mine(db, minsup, core::Algorithm::kPltConditional);
    table.add_row({dataset, "seq",
                   format_duration(sequential.build_seconds),
                   format_duration(sequential.mine_seconds),
                   format_duration(sequential.build_seconds +
                                   sequential.mine_seconds),
                   format_bytes(sequential.structure_bytes),
                   std::to_string(sequential.itemsets.size()), "-"});

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      parallel::ParallelOptions options;
      options.threads = threads;
      const auto result = parallel::mine_parallel(db, minsup, options);
      const bool agrees = core::FrequentItemsets::equal(
          sequential.itemsets, result.itemsets);
      table.add_row({dataset, std::to_string(threads),
                     format_duration(result.build_seconds),
                     format_duration(result.mine_seconds),
                     format_duration(result.build_seconds +
                                     result.mine_seconds),
                     format_bytes(result.structure_bytes),
                     std::to_string(result.itemsets.size()),
                     agrees ? "yes" : "NO"});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: identical itemsets at every thread count;\n"
               "mine time shrinks with threads on multi-core hosts and is\n"
               "flat (plus small pool overhead) on a single core. The\n"
               "partition build pass costs one extra traversal of the\n"
               "database relative to the sequential miner.\n";
  return 0;
}
