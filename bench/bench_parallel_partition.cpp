// E7 — partitioned parallel mining: the paper's §6 claim that the PLT's
// partition criteria split the mining into independent per-item tasks.
// Reports thread-count scaling of the partition miner against the
// sequential conditional miner, verifying exact agreement. On a single
// hardware core this demonstrates decomposition overhead rather than
// speedup; the table reports both so the shape is interpretable anywhere.
// Emits BENCH_parallel_partition.json (--out FILE): per-run timings plus
// the per-rank latency histogram each parallel run merged from its workers.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "obs/histogram.hpp"
#include "parallel/partition_miner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

struct Row {
  std::string dataset;
  std::string mode;  // "seq" or a thread count
  double build_seconds = 0.0;
  double mine_seconds = 0.0;
  std::size_t structure_bytes = 0;
  std::size_t frequent_itemsets = 0;
  bool agrees = true;
  std::string rank_latency_json;  // empty for the sequential baseline
};

void write_json(const std::string& path, double scale,
                const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E7\",\n"
      << "  \"title\": \"partitioned parallel mining\",\n"
      << "  \"scale\": " << scale << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"dataset\": \"" << r.dataset << "\", \"mode\": \""
        << r.mode << "\", \"build_seconds\": " << r.build_seconds
        << ", \"mine_seconds\": " << r.mine_seconds
        << ", \"structure_bytes\": " << r.structure_bytes
        << ", \"frequent_itemsets\": " << r.frequent_itemsets
        << ", \"agrees\": " << (r.agrees ? "true" : "false");
    if (!r.rank_latency_json.empty())
      out << ", \"rank_latency\": " << r.rank_latency_json;
    out << "}" << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E7", "partitioned parallel mining",
                        "section 6 (partition criteria -> separate tasks)");

  Table table({"dataset", "threads", "build", "mine", "total", "structure",
               "frequent", "agrees"});
  std::vector<Row> rows;
  for (const char* dataset : {"quest-sparse", "mushroom-like"}) {
    const auto db = harness::scaled_dataset(dataset, scale * 0.5);
    const Count minsup = harness::absolute_support(
        db, std::string(dataset) == "quest-sparse" ? 0.005 : 0.25);

    const auto sequential =
        core::mine(db, minsup, core::Algorithm::kPltConditional);
    table.add_row({dataset, "seq",
                   format_duration(sequential.build_seconds),
                   format_duration(sequential.mine_seconds),
                   format_duration(sequential.build_seconds +
                                   sequential.mine_seconds),
                   format_bytes(sequential.structure_bytes),
                   std::to_string(sequential.itemsets.size()), "-"});
    rows.push_back({dataset, "seq", sequential.build_seconds,
                    sequential.mine_seconds, sequential.structure_bytes,
                    sequential.itemsets.size(), true, ""});

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      obs::LatencyHistogram rank_latency;
      parallel::ParallelOptions options;
      options.threads = threads;
      options.rank_latency = &rank_latency;
      const auto result = parallel::mine_parallel(db, minsup, options);
      const bool agrees = core::FrequentItemsets::equal(
          sequential.itemsets, result.itemsets);
      table.add_row({dataset, std::to_string(threads),
                     format_duration(result.build_seconds),
                     format_duration(result.mine_seconds),
                     format_duration(result.build_seconds +
                                     result.mine_seconds),
                     format_bytes(result.structure_bytes),
                     std::to_string(result.itemsets.size()),
                     agrees ? "yes" : "NO"});
      rows.push_back({dataset, std::to_string(threads),
                      result.build_seconds, result.mine_seconds,
                      result.structure_bytes, result.itemsets.size(), agrees,
                      rank_latency.to_json()});
    }
  }
  std::cout << table.to_text();
  write_json(args.get("out", "BENCH_parallel_partition.json"), scale, rows);
  std::cout << "\nExpected shape: identical itemsets at every thread count;\n"
               "mine time shrinks with threads on multi-core hosts and is\n"
               "flat (plus small pool overhead) on a single core. The\n"
               "partition build pass costs one extra traversal of the\n"
               "database relative to the sequential miner.\n";
  return 0;
}
