// E22 — closed-loop serving benchmark over the plt-serve daemon. An
// in-process server mmaps one PLT2 blob of the scaled dense dataset; N
// client threads issue one request class at a time in a closed loop (next
// request only after the previous response), so reported throughput is
// the sustainable rate at that concurrency, not an open-loop burst. Each
// thread records per-request wall time into an obs::LatencyHistogram;
// the merged distribution's p50/p99/p999 (log2-bucket upper bounds, see
// obs/histogram.hpp) and the throughput per request class go to
// BENCH_serve.json (--out FILE).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "obs/histogram.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

struct ClassResult {
  std::string name;
  std::size_t requests = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  obs::LatencyHistogram latency;

  double throughput_rps() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0.0;
  }
};

/// A deterministic pool of requests for one class over ranks 1..max_rank.
std::vector<serve::Request> make_pool(serve::Opcode opcode, Rank max_rank,
                                      std::size_t size) {
  std::mt19937 rng(42u + static_cast<unsigned>(opcode));
  std::uniform_int_distribution<Rank> pick_rank(1, std::max<Rank>(max_rank, 1));
  std::uniform_int_distribution<int> pick_len(1, 3);
  std::vector<serve::Request> pool;
  pool.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    serve::Request request;
    request.opcode = opcode;
    if (opcode == serve::Opcode::kTopK) {
      request.k = 10;
    } else if (opcode != serve::Opcode::kPing) {
      std::vector<Rank> ranks;
      const int len = opcode == serve::Opcode::kRule ? 1 : pick_len(rng);
      while (ranks.size() < static_cast<std::size_t>(len)) {
        const Rank rank = pick_rank(rng);
        if (std::find(ranks.begin(), ranks.end(), rank) == ranks.end())
          ranks.push_back(rank);
      }
      std::sort(ranks.begin(), ranks.end());
      request.ranks = std::move(ranks);
      if (opcode == serve::Opcode::kRule) {
        Rank consequent = pick_rank(rng);
        while (consequent == request.ranks.front())
          consequent = pick_rank(rng);
        request.consequent = consequent;
      }
    }
    pool.push_back(std::move(request));
  }
  return pool;
}

/// Closed loop: `threads` clients split `total` requests; each waits for
/// its response before sending the next.
ClassResult run_class(std::uint16_t port, const std::string& name,
                      const std::vector<serve::Request>& pool,
                      std::size_t total, unsigned threads) {
  ClassResult result;
  result.name = name;
  result.requests = total;
  std::vector<obs::LatencyHistogram> latencies(threads);
  std::vector<std::size_t> errors(threads, 0);
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      serve::QueryClient client(port);
      std::uint32_t next_id = 1;
      for (std::size_t i = t; i < total; i += threads) {
        serve::Request request = pool[i % pool.size()];
        request.request_id = next_id++;
        Timer per_request;
        const auto response = client.call(request);
        latencies[t].record_seconds(per_request.seconds());
        if (!response.has_value() || response->status != serve::Status::kOk)
          ++errors[t];
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  result.seconds = wall.seconds();
  for (unsigned t = 0; t < threads; ++t) {
    result.latency.merge(latencies[t]);
    result.errors += errors[t];
  }
  return result;
}

void write_json(const std::string& path, double scale, Count minsup,
                unsigned client_threads, unsigned server_threads,
                std::size_t blob_bytes, const std::vector<ClassResult>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E22\",\n"
      << "  \"title\": \"closed-loop serving over mmap'd PLT2 blobs\",\n"
      << "  \"dataset\": \"short-dense\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"minsup\": " << minsup << ",\n"
      << "  \"client_threads\": " << client_threads << ",\n"
      << "  \"server_threads\": " << server_threads << ",\n"
      << "  \"blob_bytes\": " << blob_bytes << ",\n"
      << "  \"classes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ClassResult& r = rows[i];
    out << "    {\"class\": \"" << r.name << "\""
        << ", \"requests\": " << r.requests << ", \"errors\": " << r.errors
        << ", \"seconds\": " << r.seconds
        << ", \"throughput_rps\": " << r.throughput_rps()
        << ", \"p50_ns\": " << r.latency.percentile(0.50)
        << ", \"p99_ns\": " << r.latency.percentile(0.99)
        << ", \"p999_ns\": " << r.latency.percentile(0.999)
        << ", \"latency\": " << r.latency.to_json() << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto client_threads =
      static_cast<unsigned>(args.get_int("clients", 4));
  const auto server_threads =
      static_cast<unsigned>(args.get_int("server-threads", 2));
  const auto requests = static_cast<std::size_t>(std::max(
      200.0, args.get_double("requests", 5000) * scale));

  harness::print_banner(std::cout, "E22",
                        "closed-loop serving over mmap'd PLT2 blobs",
                        "Lemma 4.1.1 (sum buckets as the serving index)");

  const auto db = harness::scaled_dataset("short-dense", scale);
  const Count minsup = harness::absolute_support(db, 0.05);
  const auto built = core::build_from_database(db, minsup);
  const Rank max_rank = built.view.alphabet();
  const std::vector<std::uint8_t> blob = compress::encode_plt(built.plt);
  const std::string blob_path =
      (std::filesystem::temp_directory_path() / "bench_serve.plt").string();
  compress::write_blob_file(blob, blob_path);

  serve::ServerOptions options;
  options.blob_paths = {blob_path};
  options.threads = server_threads;
  serve::Server server(std::move(options));
  server.start();

  const std::pair<const char*, serve::Opcode> classes[] = {
      {"ping", serve::Opcode::kPing},
      {"support", serve::Opcode::kSupport},
      {"membership", serve::Opcode::kMembership},
      {"top-k", serve::Opcode::kTopK},
      {"rule", serve::Opcode::kRule},
  };
  Table table({"class", "requests", "errors", "seconds", "rps", "p50",
               "p99", "p999"});
  std::vector<ClassResult> rows;
  for (const auto& [name, opcode] : classes) {
    const auto pool = make_pool(opcode, max_rank, 256);
    ClassResult row =
        run_class(server.port(), name, pool, requests, client_threads);
    table.add_row(
        {row.name, std::to_string(row.requests), std::to_string(row.errors),
         format_duration(row.seconds),
         std::to_string(static_cast<std::uint64_t>(row.throughput_rps())),
         format_duration(static_cast<double>(row.latency.percentile(0.50)) /
                         1e9),
         format_duration(static_cast<double>(row.latency.percentile(0.99)) /
                         1e9),
         format_duration(static_cast<double>(row.latency.percentile(0.999)) /
                         1e9)});
    rows.push_back(std::move(row));
  }
  server.stop();
  std::filesystem::remove(blob_path);
  std::cout << table.to_text();

  write_json(args.get("out", "BENCH_serve.json"), scale, minsup,
             client_threads, server_threads, blob.size(), rows);

  std::cout << "\nExpected shape: ping bounds the protocol + event-loop\n"
               "floor; support/rule pay the sum-bucket scans (Lemma 4.1.1)\n"
               "so their tails track blob size; membership stays near ping\n"
               "(one bucket decides); top-k is a cached table read. Zero\n"
               "errors at any concurrency — overload and deadline paths\n"
               "return typed statuses and would count here.\n";
  return 0;
}
