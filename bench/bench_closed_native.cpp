// E16 — native closed mining vs mine-everything-then-condense: CHARM
// produces closed itemsets directly from tidsets, while the post-pass
// route (E9) first materializes the full frequent collection. On data that
// condenses hard, the native miner touches a fraction of the output.
// Agreement between the two routes is asserted per row.
#include <iostream>

#include "baselines/charm.hpp"
#include "core/closed.hpp"
#include "core/miner.hpp"
#include "datagen/transforms.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E16", "native closed mining (CHARM)",
                        "condensed representations, vertical family");

  Table table({"dataset", "minsup", "frequent", "closed", "charm",
               "mine+postpass", "agree"});

  const struct {
    const char* dataset;
    std::vector<double> fractions;
    bool plant_twins;
  } cases[] = {
      {"mushroom-like", {0.30, 0.20, 0.12}, true},
      {"chess-like", {0.85, 0.75}, true},
      {"quest-sparse", {0.01, 0.005}, false},
  };

  for (const auto& c : cases) {
    auto db = harness::scaled_dataset(c.dataset, scale * 0.5);
    if (c.plant_twins) {
      const Item base = db.max_item();
      db = datagen::add_twin_items(
          db, {{1, base + 1}, {2, base + 2}, {3, base + 3}});
    }
    for (const Count minsup : harness::support_grid(db, c.fractions)) {
      Timer charm_timer;
      core::FrequentItemsets charm_closed;
      baselines::mine_charm(db, minsup, core::collect_into(charm_closed));
      const double charm_seconds = charm_timer.seconds();

      Timer postpass_timer;
      const auto mined =
          core::mine(db, minsup, core::Algorithm::kPltConditional);
      const auto postpass_closed = core::closed_itemsets(mined.itemsets);
      const double postpass_seconds = postpass_timer.seconds();

      const bool agree = core::FrequentItemsets::equal(charm_closed,
                                                       postpass_closed);
      table.add_row({c.dataset, std::to_string(minsup),
                     std::to_string(mined.itemsets.size()),
                     std::to_string(postpass_closed.size()),
                     format_duration(charm_seconds),
                     format_duration(postpass_seconds),
                     agree ? "yes" : "NO"});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: identical closed collections; CHARM's\n"
               "advantage grows with the frequent/closed ratio (twin-planted\n"
               "dense data), while on non-condensing sparse data the\n"
               "post-pass route is competitive because the closure adds\n"
               "nothing to skip.\n";
  return 0;
}
