// E13 — Toivonen sample-and-verify vs direct mining: the classic "avoid
// repeated scans of a large database" technique (§1's stated cost concern)
// implemented over the PLT miners. Reports sampling rounds, candidate
// counts, negative-border sizes and end-to-end time against direct exact
// mining — results are exact by construction (and re-verified here).
#include <iostream>

#include "core/border.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E13", "sampling with negative-border "
                                          "verification (Toivonen)",
                        "section 1 (database scanned several times)");

  Table table({"dataset", "minsup", "sample", "rounds", "candidates",
               "border", "fallback", "toivonen", "direct", "exact"});

  const struct {
    const char* dataset;
    double minsup_frac;
  } cases[] = {
      {"quest-sparse", 0.01},
      {"quest-wide", 0.02},
      {"clickstream", 0.01},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale);
    const Count minsup = harness::absolute_support(db, c.minsup_frac);
    for (const double fraction : {0.1, 0.25}) {
      core::ToivonenOptions options;
      options.sample_fraction = fraction;
      options.seed = 5;
      Timer toivonen_timer;
      const auto sampled = core::mine_toivonen(db, minsup, options);
      const double toivonen_seconds = toivonen_timer.seconds();

      Timer direct_timer;
      auto direct =
          core::mine(db, minsup, core::Algorithm::kPltConditional).itemsets;
      const double direct_seconds = direct_timer.seconds();

      const bool exact = core::FrequentItemsets::equal(
          sampled.itemsets, std::move(direct));
      char frac[16];
      std::snprintf(frac, sizeof frac, "%.0f%%", fraction * 100);
      table.add_row({c.dataset, std::to_string(minsup), frac,
                     std::to_string(sampled.attempts),
                     std::to_string(sampled.candidates),
                     std::to_string(sampled.border_size),
                     sampled.used_fallback ? "yes" : "no",
                     format_duration(toivonen_seconds),
                     format_duration(direct_seconds),
                     exact ? "yes" : "NO"});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: one sampling round usually suffices; the\n"
               "negative border stays small relative to the candidate set;\n"
               "results are always exact. The verify pass touches the full\n"
               "database once, so wall-clock gains appear when mining is\n"
               "expensive relative to counting (low thresholds / big data).\n";
  return 0;
}
