# One binary per experiment id in DESIGN.md / EXPERIMENTS.md.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds nothing but the bench executables and
# `for b in build/bench/*; do $b; done` runs the whole suite.
# All binaries accept --scale to shrink/grow the workloads; defaults are
# sized so the full suite completes in a few minutes on a laptop core.

function(plt_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE plt benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

plt_bench(bench_paper_artifacts)     # P1-P5
plt_bench(bench_structure_size)      # E1
plt_bench(bench_sparse_sweep)        # E2
plt_bench(bench_dense_sweep)         # E3
plt_bench(bench_topdown_crossover)   # E4
plt_bench(bench_scalability)         # E5
plt_bench(bench_subset_check)        # E6 (google-benchmark micro)
plt_bench(bench_parallel_partition)  # E7
plt_bench(bench_rank_ablation)       # E8
plt_bench(bench_condensed)           # E9
plt_bench(bench_incremental)         # E10
plt_bench(bench_ooc_mining)          # E11
plt_bench(bench_stream)              # E12
plt_bench(bench_sampling)            # E13
plt_bench(bench_filter_ablation)     # E14
plt_bench(bench_candidate_family)    # E15
plt_bench(bench_closed_native)       # E16
