# One binary per experiment id in DESIGN.md / EXPERIMENTS.md.
# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench holds nothing but the bench executables and
# `for b in build/bench/*; do $b; done` runs the whole suite.
# All binaries accept --scale to shrink/grow the workloads; defaults are
# sized so the full suite completes in a few minutes on a laptop core.

function(plt_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE plt benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

plt_bench(bench_paper_artifacts)     # P1-P5
plt_bench(bench_structure_size)      # E1
plt_bench(bench_sparse_sweep)        # E2
plt_bench(bench_dense_sweep)         # E3
plt_bench(bench_topdown_crossover)   # E4
plt_bench(bench_scalability)         # E5
plt_bench(bench_subset_check)        # E6 (google-benchmark micro)
plt_bench(bench_parallel_partition)  # E7
plt_bench(bench_rank_ablation)       # E8
plt_bench(bench_condensed)           # E9
plt_bench(bench_incremental)         # E10
plt_bench(bench_ooc_mining)          # E11
plt_bench(bench_stream)              # E12
plt_bench(bench_sampling)            # E13
plt_bench(bench_filter_ablation)     # E14
plt_bench(bench_candidate_family)    # E15
plt_bench(bench_closed_native)       # E16
plt_bench(bench_projection_pool)     # E17
plt_bench(bench_kernels)             # E18
plt_bench(bench_adaptive)            # E20
plt_bench(bench_shard)               # E21
plt_bench(bench_serve)               # E22
# The shard bench forks real worker processes: it needs the plt-shard
# binary's path baked in, and the binary built first.
target_compile_definitions(bench_shard PRIVATE
  PLT_SHARD_BIN="$<TARGET_FILE:plt-shard>")
add_dependencies(bench_shard plt-shard)

# Smoke run: every bench binary once at a tiny configuration — a cheap CI
# guard that the whole bench suite still runs end to end. The subset-check
# micro uses google-benchmark flags instead of --scale.
set(PLT_BENCH_SMOKE_SCALE 0.05 CACHE STRING
    "Scale factor bench_smoke passes to every sweep binary")
# Toivonen's lowered sample threshold blows up combinatorially on very
# small scaled datasets (the sample minsup floors near 1), so E13 gets a
# larger floor than the rest of the suite.
set(PLT_BENCH_SMOKE_SCALE_bench_sampling 0.5)
set(PLT_BENCH_SMOKE_TARGETS
  bench_paper_artifacts bench_structure_size bench_sparse_sweep
  bench_dense_sweep bench_topdown_crossover bench_scalability
  bench_parallel_partition bench_rank_ablation bench_condensed
  bench_incremental bench_ooc_mining bench_stream bench_sampling
  bench_filter_ablation bench_candidate_family bench_closed_native
  bench_projection_pool bench_kernels bench_adaptive bench_shard
  bench_serve)
set(PLT_BENCH_SMOKE_COMMANDS "")
foreach(target ${PLT_BENCH_SMOKE_TARGETS})
  set(smoke_scale ${PLT_BENCH_SMOKE_SCALE})
  if(DEFINED PLT_BENCH_SMOKE_SCALE_${target})
    set(smoke_scale ${PLT_BENCH_SMOKE_SCALE_${target}})
  endif()
  list(APPEND PLT_BENCH_SMOKE_COMMANDS
       COMMAND ${CMAKE_BINARY_DIR}/bench/${target}
               --scale ${smoke_scale})
endforeach()
add_custom_target(bench_smoke
  ${PLT_BENCH_SMOKE_COMMANDS}
  COMMAND ${CMAKE_BINARY_DIR}/bench/bench_subset_check
          --benchmark_min_time=0.01
  WORKING_DIRECTORY ${CMAKE_BINARY_DIR}
  COMMENT "Running every bench binary at smoke scale"
  VERBATIM)
add_dependencies(bench_smoke ${PLT_BENCH_SMOKE_TARGETS} bench_subset_check)
