// E4 — top-down vs conditional crossover: "the top down approach does not
// employ the anti-monotone property, which makes it suitable for situations
// where a very low minimum support is provided" (paper §6). On short-dense
// data the top-down expansion cost is support-independent while the
// conditional cost grows as the threshold falls — this bench sweeps the
// threshold down to 1 and reports where (if anywhere) top-down wins.
// Also ablates the two top-down variants (canonical vs paper-staged sweep).
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E4",
                        "top-down vs conditional across the support range",
                        "section 6 (top-down for very low minimum support)");

  const auto db = harness::scaled_dataset("short-dense", scale);
  harness::SweepConfig config;
  config.dataset_name = "short-dense";
  config.db = &db;
  config.supports =
      harness::support_grid(db, {0.5, 0.2, 0.05, 0.01, 0.002, 0.0001});
  config.algorithms = {
      core::Algorithm::kPltConditional,
      core::Algorithm::kPltTopDownCanonical,
      core::Algorithm::kPltTopDownSweep,
  };
  const auto cells = harness::run_sweep(config);
  harness::print_sweep(std::cout, "short-dense", cells);
  harness::print_winners(std::cout, cells);

  // The long-transaction failure mode: the guard must trip rather than blow
  // up memory (documented behaviour, shown here on chess-like data).
  const auto dense = harness::scaled_dataset("chess-like", 0.1 * scale);
  harness::SweepConfig guard;
  guard.dataset_name = "chess-like";
  guard.db = &dense;
  guard.supports = harness::support_grid(dense, {0.05});
  guard.algorithms = {core::Algorithm::kPltTopDownCanonical};
  guard.cross_check = false;
  const auto guard_cells = harness::run_sweep(guard);
  std::cout << '\n';
  harness::print_sweep(std::cout,
                       "long transactions trip the top-down guard",
                       guard_cells);

  std::cout << "\nExpected shape: top-down pays a near-constant expansion\n"
               "cost across the whole sweep (it enumerates every subset\n"
               "regardless of the threshold), so it loses badly at high\n"
               "support and converges with/overtakes the conditional\n"
               "approach as minsup approaches 1, where the conditional\n"
               "recursion degenerates to enumerating the same subsets plus\n"
               "projection overhead. On long transactions it must refuse\n"
               "(GUARD) instead of exhausting memory.\n";
  return 0;
}
