// E4 — top-down vs conditional crossover: "the top down approach does not
// employ the anti-monotone property, which makes it suitable for situations
// where a very low minimum support is provided" (paper §6). On short-dense
// data the top-down expansion cost is support-independent while the
// conditional cost grows as the threshold falls — this bench sweeps the
// threshold down to 1 and reports where (if anywhere) top-down wins.
// Also ablates the two top-down variants (canonical vs paper-staged sweep).
// Emits BENCH_topdown_crossover.json (--out FILE): per-cell timings with the
// dataset statistics the adaptive planner consumes, plus the winner per
// support level — the planner's seed thresholds (core::PlanConfig) are
// calibrated against this artifact.
#include <fstream>
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"

namespace {

using namespace plt;

void write_cells(std::ofstream& out, const std::vector<harness::Cell>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const harness::Cell& c = cells[i];
    out << "      {\"minsup\": " << c.min_support << ", \"algorithm\": \""
        << core::algorithm_name(c.algorithm)
        << "\", \"total_seconds\": " << c.total_seconds
        << ", \"frequent_itemsets\": " << c.frequent_itemsets
        << ", \"max_length\": " << c.max_length
        << ", \"failed\": " << (c.failed ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << '\n';
  }
}

// Fastest non-failed algorithm per support level, with the ratio the
// conditional strategy pays there — the crossover gap the planner's
// root_topdown thresholds are seeded from.
void write_winners(std::ofstream& out,
                   const std::vector<harness::Cell>& cells) {
  std::vector<Count> supports;
  for (const harness::Cell& c : cells)
    if (supports.empty() || supports.back() != c.min_support)
      supports.push_back(c.min_support);
  for (std::size_t i = 0; i < supports.size(); ++i) {
    const harness::Cell* best = nullptr;
    const harness::Cell* conditional = nullptr;
    for (const harness::Cell& c : cells) {
      if (c.min_support != supports[i]) continue;
      if (c.algorithm == core::Algorithm::kPltConditional) conditional = &c;
      if (c.failed) continue;
      if (best == nullptr || c.total_seconds < best->total_seconds) best = &c;
    }
    if (best == nullptr) continue;
    out << "      {\"minsup\": " << supports[i] << ", \"winner\": \""
        << core::algorithm_name(best->algorithm)
        << "\", \"best_seconds\": " << best->total_seconds;
    if (conditional != nullptr && best->total_seconds > 0)
      out << ", \"conditional_vs_best\": "
          << conditional->total_seconds / best->total_seconds;
    out << "}" << (i + 1 < supports.size() ? "," : "") << '\n';
  }
}

void write_json(const std::string& path, double scale,
                const tdb::Stats& stats,
                const std::vector<harness::Cell>& cells,
                const std::vector<harness::Cell>& guard_cells) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E4\",\n"
      << "  \"title\": \"top-down vs conditional crossover\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"dataset\": {\n"
      << "    \"name\": \"short-dense\",\n"
      << "    \"transactions\": " << stats.transactions << ",\n"
      << "    \"distinct_items\": " << stats.distinct_items << ",\n"
      << "    \"avg_len\": " << stats.avg_len << ",\n"
      << "    \"max_len\": " << stats.max_len << ",\n"
      << "    \"density\": " << stats.density << ",\n"
      << "    \"support_gini\": " << stats.support_gini << "\n  },\n"
      << "  \"rows\": [\n";
  write_cells(out, cells);
  out << "  ],\n  \"winners\": [\n";
  write_winners(out, cells);
  out << "  ],\n  \"guard_rows\": [\n";
  write_cells(out, guard_cells);
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E4",
                        "top-down vs conditional across the support range",
                        "section 6 (top-down for very low minimum support)");

  const auto db = harness::scaled_dataset("short-dense", scale);
  harness::SweepConfig config;
  config.dataset_name = "short-dense";
  config.db = &db;
  config.supports =
      harness::support_grid(db, {0.5, 0.2, 0.05, 0.01, 0.002, 0.0001});
  config.algorithms = {
      core::Algorithm::kPltConditional,
      core::Algorithm::kPltTopDownCanonical,
      core::Algorithm::kPltTopDownSweep,
  };
  const auto cells = harness::run_sweep(config);
  harness::print_sweep(std::cout, "short-dense", cells);
  harness::print_winners(std::cout, cells);

  // The long-transaction failure mode: the guard must trip rather than blow
  // up memory (documented behaviour, shown here on chess-like data).
  const auto dense = harness::scaled_dataset("chess-like", 0.1 * scale);
  harness::SweepConfig guard;
  guard.dataset_name = "chess-like";
  guard.db = &dense;
  guard.supports = harness::support_grid(dense, {0.05});
  guard.algorithms = {core::Algorithm::kPltTopDownCanonical};
  guard.cross_check = false;
  const auto guard_cells = harness::run_sweep(guard);
  std::cout << '\n';
  harness::print_sweep(std::cout,
                       "long transactions trip the top-down guard",
                       guard_cells);

  write_json(args.get("out", "BENCH_topdown_crossover.json"), scale,
             tdb::compute_stats(db), cells, guard_cells);

  std::cout << "\nExpected shape: top-down pays a near-constant expansion\n"
               "cost across the whole sweep (it enumerates every subset\n"
               "regardless of the threshold), so it loses badly at high\n"
               "support and converges with/overtakes the conditional\n"
               "approach as minsup approaches 1, where the conditional\n"
               "recursion degenerates to enumerating the same subsets plus\n"
               "projection overhead. On long transactions it must refuse\n"
               "(GUARD) instead of exhausting memory.\n";
  return 0;
}
