// E20 — adaptive execution planner vs every fixed strategy. The planner
// (core/planner.hpp) reads dataset + rank-partition statistics and picks a
// root strategy and per-subtree strategy/kernel-backend; this bench runs the
// matrix {sparse sweep, dense sweep, top-down regime} × {each fixed
// strategy, adaptive} and checks two things per cell: the adaptive run's
// output is identical to the fixed runs, and its time lands within noise of
// the best fixed strategy. Emits BENCH_adaptive.json (--out FILE) with the
// per-cell winner table, adaptive-vs-best/worst ratios, and the planner's
// decision counters. Exits non-zero on any output mismatch.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

struct Strategy {
  const char* label;
  core::Algorithm algorithm;
  const char* plan;  // "" = fixed (process default), or "adaptive"
};

constexpr Strategy kStrategies[] = {
    {"conditional", core::Algorithm::kPltConditional, "fixed"},
    {"topdown", core::Algorithm::kPltTopDownCanonical, "fixed"},
    {"eclat", core::Algorithm::kEclat, "fixed"},
    {"adaptive", core::Algorithm::kPltConditional, "adaptive"},
};

struct CellRun {
  double seconds = 0.0;  // min over reps
  bool failed = false;   // guard trip (top-down overflow)
  std::string plan_root;
  core::ProjectionStats projection;
};

struct MatrixCell {
  std::string dataset;
  Count minsup = 0;
  std::size_t frequent = 0;
  CellRun runs[std::size(kStrategies)];
};

// Runs one (dataset, minsup, strategy) cell `reps` times, keeping the best
// time; verifies every run's output against `reference` (the fixed
// conditional result) — the planner's whole contract is that plans change
// time, never output.
bool run_cell(const tdb::Database& db, Count minsup, const Strategy& s,
              int reps, std::optional<core::FrequentItemsets>& reference,
              CellRun& out, std::size_t& frequent) {
  core::MineOptions options;
  options.plan = s.plan;
  for (int rep = 0; rep < reps; ++rep) {
    core::MineResult result;
    try {
      result = core::mine(db, minsup, s.algorithm, options);
    } catch (const core::TopDownOverflow&) {
      out.failed = true;
      return true;
    }
    const double seconds = result.build_seconds + result.mine_seconds;
    if (rep == 0 || seconds < out.seconds) out.seconds = seconds;
    out.plan_root = result.plan_root;
    out.projection = result.projection;
    if (!reference) {
      reference = result.itemsets;
      frequent = result.itemsets.size();
    } else if (!core::FrequentItemsets::equal(*reference, result.itemsets)) {
      std::cerr << "OUTPUT MISMATCH: " << s.label << " at minsup " << minsup
                << " disagrees with the fixed conditional baseline\n";
      return false;
    }
  }
  return true;
}

void write_json(const std::string& path, double scale, int reps,
                const std::vector<std::pair<std::string, tdb::Stats>>& stats,
                const std::vector<MatrixCell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E20\",\n"
      << "  \"title\": \"adaptive execution planner vs fixed strategies\",\n"
      << "  \"scale\": " << scale << ",\n  \"reps\": " << reps << ",\n"
      << "  \"datasets\": [\n";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const tdb::Stats& s = stats[i].second;
    out << "    {\"name\": \"" << stats[i].first
        << "\", \"transactions\": " << s.transactions
        << ", \"distinct_items\": " << s.distinct_items
        << ", \"avg_len\": " << s.avg_len << ", \"max_len\": " << s.max_len
        << ", \"density\": " << s.density
        << ", \"support_gini\": " << s.support_gini << "}"
        << (i + 1 < stats.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"rows\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const MatrixCell& c = cells[i];
    // Winner/worst over the fixed strategies only — the claim under test is
    // adaptive vs the best and worst choice it could have made.
    const CellRun* best = nullptr;
    const CellRun* worst = nullptr;
    const char* winner = "";
    for (std::size_t s = 0; s + 1 < std::size(kStrategies); ++s) {
      const CellRun& r = c.runs[s];
      if (r.failed) continue;
      if (best == nullptr || r.seconds < best->seconds) {
        best = &r;
        winner = kStrategies[s].label;
      }
      if (worst == nullptr || r.seconds > worst->seconds) worst = &r;
    }
    const CellRun& adaptive = c.runs[std::size(kStrategies) - 1];
    out << "    {\"dataset\": \"" << c.dataset
        << "\", \"minsup\": " << c.minsup
        << ", \"frequent_itemsets\": " << c.frequent;
    for (std::size_t s = 0; s < std::size(kStrategies); ++s) {
      out << ", \"" << kStrategies[s].label << "_seconds\": ";
      if (c.runs[s].failed)
        out << "null";
      else
        out << c.runs[s].seconds;
    }
    out << ", \"winner\": \"" << winner << "\""
        << ", \"adaptive_vs_best\": "
        << (best != nullptr && best->seconds > 0
                ? adaptive.seconds / best->seconds
                : 0.0)
        << ", \"adaptive_vs_worst\": "
        << (worst != nullptr && worst->seconds > 0
                ? adaptive.seconds / worst->seconds
                : 0.0)
        << ", \"plan_root\": \"" << adaptive.plan_root << "\""
        << ", \"decisions\": {\"pooled\": " << adaptive.projection.plan_pooled
        << ", \"single_path\": " << adaptive.projection.plan_single_path
        << ", \"eclat\": " << adaptive.projection.plan_eclat
        << ", \"narrow\": " << adaptive.projection.plan_narrow
        << ", \"wide\": " << adaptive.projection.plan_wide << "}}"
        << (i + 1 < cells.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);
  const int reps = std::max(1, static_cast<int>(args.get_int("reps", 3)));

  harness::print_banner(std::cout, "E20",
                        "adaptive execution planner vs fixed strategies",
                        "section 6 (strategy choice by data shape) + S25");

  // One regime per sweep family: sparse (E2's generator), dense (E3's), and
  // the short-dense top-down crossover regime (E4's) where the support
  // range crosses every root-strategy boundary.
  const struct {
    const char* dataset;
    std::vector<double> fractions;
  } cases[] = {
      {"quest-sparse", {0.02, 0.005, 0.001}},
      {"chess-like", {0.95, 0.85, 0.70}},
      {"short-dense", {0.5, 0.05, 0.002, 0.0001}},
  };

  std::vector<std::pair<std::string, tdb::Stats>> stats;
  std::vector<MatrixCell> cells;
  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale);
    stats.emplace_back(c.dataset, tdb::compute_stats(db));
    for (const double fraction : c.fractions) {
      const Count minsup = harness::absolute_support(db, fraction);
      // Skip duplicate supports the scaled grid can collapse to.
      if (!cells.empty() && cells.back().dataset == c.dataset &&
          cells.back().minsup == minsup)
        continue;
      MatrixCell cell;
      cell.dataset = c.dataset;
      cell.minsup = minsup;
      std::optional<core::FrequentItemsets> reference;
      for (std::size_t s = 0; s < std::size(kStrategies); ++s)
        if (!run_cell(db, minsup, kStrategies[s], reps, reference,
                      cell.runs[s], cell.frequent))
          return 1;
      cells.push_back(std::move(cell));
    }
  }

  Table table({"dataset", "minsup", "conditional", "topdown", "eclat",
               "adaptive", "plan root", "vs best"});
  for (const MatrixCell& c : cells) {
    const CellRun& adaptive = c.runs[std::size(kStrategies) - 1];
    double best = 0.0;
    for (std::size_t s = 0; s + 1 < std::size(kStrategies); ++s)
      if (!c.runs[s].failed &&
          (best == 0.0 || c.runs[s].seconds < best))
        best = c.runs[s].seconds;
    std::vector<std::string> row = {c.dataset, std::to_string(c.minsup)};
    for (std::size_t s = 0; s < std::size(kStrategies); ++s)
      row.push_back(c.runs[s].failed
                        ? "GUARD"
                        : format_duration(c.runs[s].seconds));
    row.push_back(adaptive.plan_root);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx",
                  best > 0 ? adaptive.seconds / best : 0.0);
    row.push_back(buf);
    table.add_row(row);
  }
  std::cout << table.to_text();

  write_json(args.get("out", "BENCH_adaptive.json"), scale, reps, stats,
             cells);

  std::cout << "\nExpected shape: adaptive tracks the best fixed strategy\n"
               "within noise in every cell (it pays only a statistics pass)\n"
               "and beats the worst fixed choice by the full crossover gap\n"
               "where the regimes diverge (short-dense at the support\n"
               "extremes, sparse data vs top-down).\n";
  return 0;
}
