// E10 — incremental maintenance: the PLT is a frequency table, so a
// transaction update is one vector increment/decrement, versus re-running
// the batch construction scan (Algorithm 1). Reports update throughput,
// churn behaviour, and mining-from-maintained-state vs batch equivalence.
#include <iostream>

#include "core/builder.hpp"
#include "core/incremental.hpp"
#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E10", "incremental PLT maintenance",
                        "Algorithm 1 as transaction-level updates");

  Table table({"dataset", "transactions", "bulk load", "adds/s", "removes/s",
               "batch rebuild", "mine(inc)", "mine(batch)", "identical"});

  for (const char* dataset : {"quest-sparse", "short-dense"}) {
    const auto db = harness::scaled_dataset(dataset, scale * 0.5);
    const Count minsup = harness::absolute_support(db, 0.01);
    const Item max_item = db.max_item();

    core::IncrementalPlt inc(max_item);
    Timer load_timer;
    inc.add_all(db);
    const double load_seconds = load_timer.seconds();

    // Churn: remove and re-add the first 2000 transactions.
    const std::size_t churn = std::min<std::size_t>(2000, db.size());
    Timer remove_timer;
    for (std::size_t t = 0; t < churn; ++t) inc.remove(db[t]);
    const double remove_seconds = remove_timer.seconds();
    Timer add_timer;
    for (std::size_t t = 0; t < churn; ++t) inc.add(db[t]);
    const double add_seconds = add_timer.seconds();

    Timer rebuild_timer;
    const auto rebuilt = core::build_from_database(db, minsup);
    const double rebuild_seconds = rebuild_timer.seconds();

    Timer inc_mine_timer;
    const auto inc_mined = inc.mine(minsup);
    const double inc_mine_seconds = inc_mine_timer.seconds();

    Timer batch_mine_timer;
    auto batch_mined =
        core::mine(db, minsup, core::Algorithm::kPltConditional).itemsets;
    const double batch_mine_seconds = batch_mine_timer.seconds();

    const bool identical =
        core::FrequentItemsets::equal(inc_mined, batch_mined);
    const auto rate = [&](double seconds) {
      return std::to_string(static_cast<std::uint64_t>(
          static_cast<double>(churn) / std::max(seconds, 1e-9)));
    };
    table.add_row({dataset, std::to_string(db.size()),
                   format_duration(load_seconds), rate(add_seconds),
                   rate(remove_seconds), format_duration(rebuild_seconds),
                   format_duration(inc_mine_seconds),
                   format_duration(batch_mine_seconds),
                   identical ? "yes" : "NO"});
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: single-transaction updates run at millions\n"
               "per second (one hash upsert each) — refreshing the structure\n"
               "after small deltas is orders of magnitude cheaper than the\n"
               "batch rebuild; mining from the maintained state is identical\n"
               "to mining from scratch.\n";
  return 0;
}
