// E17 — the allocation-free conditional projection engine: pooled iterative
// Algorithm 3 (recycled PLT arenas, flat conditional-db buffer, explicit
// stack) against the seed recursive path that allocates a fresh conditional
// PLT per recursion node. Sweeps the dense datasets at falling support —
// exactly the regime where the paper says conditional projections should be
// cheapest — and records times plus the engine's recycling counters to a
// BENCH_*.json so before/after is machine-readable. Exits non-zero if the
// two paths ever disagree on the mined itemsets.
#include <chrono>
#include <fstream>
#include <iostream>

#include "core/builder.hpp"
#include "core/exec_control.hpp"
#include "core/conditional.hpp"
#include "core/projection_pool.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "obs/trace.hpp"
#include "parallel/partition_miner.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

struct Row {
  std::string dataset;
  Count minsup = 0;
  std::size_t frequent = 0;
  double recursive_seconds = 0.0;
  double pooled_seconds = 0.0;
  double warm_seconds = 0.0;        ///< warm-pool rerun, no control
  double controlled_seconds = 0.0;  ///< warm-pool rerun + armed control
  double scalar_kernel_seconds = 0.0;  ///< warm rerun, scalar kernel backend
  double traced_seconds = 0.0;  ///< warm rerun with a live trace session
  std::uint64_t trace_spans = 0;  ///< spans recorded by that rerun
  std::uint64_t control_checks = 0;
  core::ProjectionStats stats;
};

struct Prepared {
  core::RankedView view;
  std::vector<Item> item_of;
};

Prepared prepare(const tdb::Database& db, Count minsup) {
  Prepared p;
  p.view = core::build_ranked_view(db, minsup);
  const auto max_rank = static_cast<Rank>(p.view.alphabet());
  p.item_of.resize(max_rank);
  for (Rank r = 1; r <= max_rank; ++r) p.item_of[r - 1] = p.view.item_of(r);
  return p;
}

// Both paths re-build the PLT (mining consumes it) so the timed section is
// mine-only and identical in inputs.
double time_recursive(const Prepared& p, Count minsup,
                      core::FrequentItemsets& out) {
  core::Plt plt =
      core::build_plt(p.view.db, static_cast<Rank>(p.view.alphabet()));
  std::vector<Item> suffix;
  Timer timer;
  core::mine_plt_conditional_recursive(plt, p.item_of, suffix, minsup,
                                       core::collect_into(out), {});
  return timer.seconds();
}

double time_pooled(const Prepared& p, Count minsup,
                   core::ProjectionEngine& engine,
                   core::FrequentItemsets& out) {
  core::Plt plt =
      core::build_plt(p.view.db, static_cast<Rank>(p.view.alphabet()));
  std::vector<Item> suffix;
  Timer timer;
  engine.mine(plt, p.item_of, suffix, minsup, core::collect_into(out), {});
  return timer.seconds();
}

// Same pooled mine with a live MiningControl attached (deadline + budget
// set far beyond reach), so every cooperative check actually runs — this
// measures the <2% overhead target for the execution-control layer.
double time_controlled(const Prepared& p, Count minsup,
                       core::ProjectionEngine& engine,
                       core::FrequentItemsets& out,
                       std::uint64_t& checks) {
  core::Plt plt =
      core::build_plt(p.view.db, static_cast<Rank>(p.view.alphabet()));
  core::MiningControl control =
      core::MiningControl::with_deadline(std::chrono::hours(24));
  control.set_memory_budget(std::size_t{1} << 40);
  std::vector<Item> suffix;
  Timer timer;
  engine.set_control(&control, plt.memory_usage());
  engine.mine(plt, p.item_of, suffix, minsup, core::collect_into(out), {});
  const double seconds = timer.seconds();
  engine.set_control(nullptr, 0);
  checks = control.checks();
  return seconds;
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                double scale, const std::string& trace_summary) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E17\",\n"
      << "  \"title\": \"allocation-free conditional projection engine\",\n"
      << "  \"scale\": " << scale << ",\n";
  if (!trace_summary.empty()) out << "  \"trace\": " << trace_summary << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup =
        r.pooled_seconds > 0 ? r.recursive_seconds / r.pooled_seconds : 0.0;
    // The recursive path constructs one fresh conditional PLT per
    // projection, so its allocation count IS projections_built.
    const double alloc_reduction =
        r.stats.fresh_allocations > 0
            ? static_cast<double>(r.stats.projections_built) /
                  static_cast<double>(r.stats.fresh_allocations)
            : 0.0;
    out << "    {\"dataset\": \"" << r.dataset << "\""
        << ", \"minsup\": " << r.minsup
        << ", \"frequent_itemsets\": " << r.frequent
        << ", \"recursive_seconds\": " << r.recursive_seconds
        << ", \"pooled_seconds\": " << r.pooled_seconds
        << ", \"warm_seconds\": " << r.warm_seconds
        << ", \"controlled_seconds\": " << r.controlled_seconds
        << ", \"scalar_kernel_seconds\": " << r.scalar_kernel_seconds
        << ", \"kernel_speedup\": "
        << (r.warm_seconds > 0 ? r.scalar_kernel_seconds / r.warm_seconds
                               : 0.0)
        << ", \"control_overhead\": "
        << (r.warm_seconds > 0
                ? r.controlled_seconds / r.warm_seconds - 1.0
                : 0.0)
        << ", \"traced_seconds\": " << r.traced_seconds
        << ", \"trace_overhead\": "
        << (r.warm_seconds > 0 ? r.traced_seconds / r.warm_seconds - 1.0
                               : 0.0)
        << ", \"trace_spans\": " << r.trace_spans
        << ", \"control_checks\": " << r.control_checks
        << ", \"speedup\": " << speedup
        << ", \"projections_built\": " << r.stats.projections_built
        << ", \"entries_projected\": " << r.stats.entries_projected
        << ", \"baseline_fresh_allocations\": " << r.stats.projections_built
        << ", \"fresh_allocations\": " << r.stats.fresh_allocations
        << ", \"recycled_allocations\": " << r.stats.recycled_allocations
        << ", \"bytes_fresh\": " << r.stats.bytes_fresh
        << ", \"bytes_recycled\": " << r.stats.bytes_recycled
        << ", \"alloc_reduction\": " << alloc_reduction << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);
  const std::string out_path =
      args.get("out", "BENCH_projection_pool.json");

  harness::print_banner(std::cout, "E17",
                        "pooled projection engine vs recursive Algorithm 3",
                        "section 6 (cheap conditional projections) — "
                        "allocation recycling");

  const struct {
    const char* dataset;
    std::vector<double> fractions;
  } cases[] = {
      {"chess-like", {0.90, 0.80, 0.70, 0.60}},
      {"mushroom-like", {0.30, 0.20, 0.10}},
  };

  std::vector<Row> rows;
  Table table({"dataset", "minsup", "frequent", "recursive", "pooled",
               "speedup", "kern spd", "ctl ovh%", "trc ovh%", "projections",
               "fresh", "recycled", "recycled B"});
  bool all_agree = true;
  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale);
    for (const Count minsup : harness::support_grid(db, c.fractions)) {
      const Prepared p = prepare(db, minsup);
      if (p.view.alphabet() == 0) continue;

      core::FrequentItemsets recursive_out;
      const double recursive_seconds =
          time_recursive(p, minsup, recursive_out);

      // Fresh engine per cell: the counters then describe exactly this
      // workload (first-touch pool misses included).
      core::ProjectionEngine engine;
      core::FrequentItemsets pooled_out;
      const double pooled_seconds =
          time_pooled(p, minsup, engine, pooled_out);

      // Snapshot the recycling counters now: they must describe exactly
      // one cold mine, not the warm reruns below.
      const core::ProjectionStats cold_stats = engine.stats();

      // Overhead is measured warm-vs-warm (both reruns reuse the pooled
      // frames) and best-of-3 (scheduling noise on millisecond cells dwarfs
      // the check cost), so the delta is the cost of the cooperative checks
      // alone.
      core::FrequentItemsets warm_out;
      core::FrequentItemsets controlled_out;
      double warm_seconds = 0.0, controlled_seconds = 0.0;
      std::uint64_t control_checks = 0;
      for (int rep = 0; rep < 3; ++rep) {
        warm_out = {};
        const double w = time_pooled(p, minsup, engine, warm_out);
        if (rep == 0 || w < warm_seconds) warm_seconds = w;
        controlled_out = {};
        const double c =
            time_controlled(p, minsup, engine, controlled_out,
                            control_checks);
        if (rep == 0 || c < controlled_seconds) controlled_seconds = c;
      }

      // Same warm engine pinned to the scalar kernel backend: warm vs
      // warm isolates the vectorized-kernel speedup from the pooling win.
      const kernels::Backend selected = kernels::active().backend;
      double scalar_kernel_seconds = 0.0;
      core::FrequentItemsets scalar_out;
      kernels::set_backend(kernels::Backend::kScalar);
      for (int rep = 0; rep < 3; ++rep) {
        scalar_out = {};
        const double s = time_pooled(p, minsup, engine, scalar_out);
        if (rep == 0 || s < scalar_kernel_seconds) scalar_kernel_seconds = s;
      }
      kernels::set_backend(selected);

      // Warm rerun with a live trace session: every span/counter site
      // records for real, so the delta over the untraced warm rerun is the
      // enabled-mode tracing cost (E19). The disabled-mode cost is the warm
      // column itself, compared against a build without the obs layer.
      double traced_seconds = 0.0;
      std::uint64_t trace_spans = 0;
      core::FrequentItemsets traced_out;
      for (int rep = 0; rep < 3; ++rep) {
        traced_out = {};
        obs::TraceSession session;
        const double t = time_pooled(p, minsup, engine, traced_out);
        const auto tree = session.finish();
        if (rep == 0 || t < traced_seconds) {
          traced_seconds = t;
          trace_spans = tree->span_total();
        }
      }
      if (!core::FrequentItemsets::equal(recursive_out, traced_out)) {
        std::cerr << "DISAGREEMENT (traced) at " << c.dataset
                  << " minsup=" << minsup << "\n";
        all_agree = false;
      }

      if (!core::FrequentItemsets::equal(recursive_out, scalar_out)) {
        std::cerr << "DISAGREEMENT (scalar backend) at " << c.dataset
                  << " minsup=" << minsup << "\n";
        all_agree = false;
      }

      if (!core::FrequentItemsets::equal(recursive_out, controlled_out)) {
        std::cerr << "DISAGREEMENT (controlled) at " << c.dataset
                  << " minsup=" << minsup << "\n";
        all_agree = false;
      }
      if (!core::FrequentItemsets::equal(recursive_out, pooled_out)) {
        std::cerr << "DISAGREEMENT at " << c.dataset << " minsup=" << minsup
                  << "\n";
        all_agree = false;
      }

      Row row;
      row.dataset = c.dataset;
      row.minsup = minsup;
      row.frequent = pooled_out.size();
      row.recursive_seconds = recursive_seconds;
      row.pooled_seconds = pooled_seconds;
      row.warm_seconds = warm_seconds;
      row.controlled_seconds = controlled_seconds;
      row.scalar_kernel_seconds = scalar_kernel_seconds;
      row.traced_seconds = traced_seconds;
      row.trace_spans = trace_spans;
      row.control_checks = control_checks;
      row.stats = cold_stats;
      rows.push_back(row);

      table.add_row(
          {row.dataset, std::to_string(minsup), std::to_string(row.frequent),
           format_duration(recursive_seconds), format_duration(pooled_seconds),
           pooled_seconds > 0
               ? std::to_string(recursive_seconds / pooled_seconds)
               : "-",
           warm_seconds > 0
               ? std::to_string(scalar_kernel_seconds / warm_seconds)
               : "-",
           warm_seconds > 0
               ? std::to_string(
                     (controlled_seconds / warm_seconds - 1.0) * 100.0)
               : "-",
           warm_seconds > 0
               ? std::to_string(
                     (traced_seconds / warm_seconds - 1.0) * 100.0)
               : "-",
           std::to_string(row.stats.projections_built),
           std::to_string(row.stats.fresh_allocations),
           std::to_string(row.stats.recycled_allocations),
           format_bytes(row.stats.bytes_recycled)});
    }
  }
  std::cout << table.to_text();

  // Resilience summary: the control-check overhead across the sweep (the
  // execution-control layer targets <2% on the pooled path).
  double warm_total = 0.0, controlled_total = 0.0;
  std::uint64_t checks_total = 0;
  for (const Row& r : rows) {
    warm_total += r.warm_seconds;
    controlled_total += r.controlled_seconds;
    checks_total += r.control_checks;
  }
  if (warm_total > 0)
    std::cout << "\nresilience: " << checks_total << " control checks, "
              << "aggregate overhead "
              << (controlled_total / warm_total - 1.0) * 100.0
              << "% (target < 2%)\n";

  // With --trace the run-wide session also covered the sweep: finish it
  // now so its summary can ride along in the report.
  std::string trace_summary;
  if (trace_scope.active()) {
    trace_scope.write();
    trace_summary = harness::trace_summary_json(*trace_scope.root());
  }
  write_json(out_path, rows, scale, trace_summary);
  std::cout << "\nWrote " << out_path << ".\n"
            << "Expected shape: the recursive baseline pays one fresh PLT\n"
            << "(arenas + hash indexes + buckets) per projection; the pooled\n"
            << "engine pays one per depth, so fresh allocations collapse by\n"
            << "orders of magnitude and mine time improves as support falls\n"
            << "(more projections, deeper chains, warmer pool).\n";
  return all_agree ? 0 : 1;
}
