// E15 — the candidate-generation family tour: the paper's §3 survey lists
// Apriori, AprioriTid, DHP, DIC and Partition as the pre-pattern-growth
// lineage. All five are implemented here; this bench reproduces the classic
// inside-the-family comparison against the PLT conditional miner on one
// sparse and one dense workload (every cell cross-checked for agreement).
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E15", "candidate-generation family",
                        "section 3 (AIS/Apriori/DHP/Partition/DIC survey)");

  const struct {
    const char* dataset;
    std::vector<double> fractions;
  } cases[] = {
      {"quest-sparse", {0.02, 0.01, 0.005}},
      {"mushroom-like", {0.35, 0.25, 0.18}},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale * 0.5);
    harness::SweepConfig config;
    config.dataset_name = c.dataset;
    config.db = &db;
    config.supports = harness::support_grid(db, c.fractions);
    config.algorithms = {
        core::Algorithm::kAis,       core::Algorithm::kApriori,
        core::Algorithm::kAprioriTid, core::Algorithm::kDhp,
        core::Algorithm::kDic,       core::Algorithm::kPartition,
        core::Algorithm::kPltConditional,
    };
    const auto cells = harness::run_sweep(config);
    harness::print_sweep(std::cout, c.dataset, cells);
    harness::print_winners(std::cout, cells);
    std::cout << '\n';
  }
  std::cout << "Expected shape: inside the family, DHP's hash filter trims\n"
               "pass 2, AprioriTid wins once the encoded lists shrink below\n"
               "the raw data, DIC saves scans at the cost of bookkeeping,\n"
               "and Partition trades a second full pass for two-pass IO;\n"
               "the pattern-growth PLT conditional outruns the whole family\n"
               "as thresholds drop — the gap the paper's §3 narrative is\n"
               "built on.\n";
  return 0;
}
