// E12 — sliding-window stream mining: sustained push throughput and
// periodic window mining on a click-stream feed, with batch-equivalence
// verified on the final window. Extends the incremental-maintenance story
// (E10) to the continuous setting of the paper's §1 motivation.
#include <iostream>

#include "core/miner.hpp"
#include "core/stream.hpp"
#include "datagen/clickstream.hpp"
#include "harness/backend.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E12", "sliding-window stream mining",
                        "section 1 (continuously growing databases)");

  datagen::ClickstreamConfig cfg;
  cfg.sessions = static_cast<std::size_t>(40000 * scale);
  cfg.pages = 300;
  cfg.seed = 21;
  const auto stream = datagen::generate_clickstream(cfg);

  Table table({"window", "pushes/s", "mine every", "avg mine", "frequent@end",
               "window mem", "matches batch"});
  for (const std::size_t window_size : {1000u, 5000u, 20000u}) {
    core::SlidingWindowMiner window(window_size, stream.max_item());
    const std::size_t mine_every = window_size / 2;
    const Count minsup = std::max<Count>(2, window_size / 100);

    Timer push_timer;
    double mine_seconds = 0.0;
    std::size_t mines = 0;
    std::size_t final_count = 0;
    for (std::size_t t = 0; t < stream.size(); ++t) {
      window.push(stream[t]);
      if ((t + 1) % mine_every == 0) {
        Timer mine_timer;
        const auto mined = window.mine(minsup);
        mine_seconds += mine_timer.seconds();
        ++mines;
        final_count = mined.size();
      }
    }
    const double push_seconds = push_timer.seconds() - mine_seconds;

    // Verify the final window against a batch build.
    auto windowed = window.mine(minsup);
    auto batch = core::mine(window.window_database(), minsup,
                            core::Algorithm::kPltConditional)
                     .itemsets;
    const bool matches =
        core::FrequentItemsets::equal(std::move(windowed), std::move(batch));

    table.add_row(
        {std::to_string(window_size),
         std::to_string(static_cast<std::uint64_t>(
             static_cast<double>(stream.size()) /
             std::max(push_seconds, 1e-9))),
         std::to_string(mine_every),
         format_duration(mines ? mine_seconds /
                                     static_cast<double>(mines)
                               : 0.0),
         std::to_string(final_count), format_bytes(window.memory_usage()),
         matches ? "yes" : "NO"});
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: push throughput in the millions/second and\n"
               "independent of window size (one increment + one decrement);\n"
               "mining cost tracks window content; results always equal a\n"
               "batch build of the window.\n";
  return 0;
}
