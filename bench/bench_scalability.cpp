// E5 — transaction-count scalability at fixed relative support (paper §1/§6:
// "PLT [is] a solution when large databases are being mined"). Runtime and
// structure size should grow near-linearly in |D| for the PLT conditional
// approach; the comparison includes FP-growth and Apriori.
// Emits BENCH_scalability.json (--out FILE): per-cell timings keyed by
// transaction count, the input to the linearity claim.
#include <fstream>
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

struct SizedCell {
  std::size_t transactions = 0;
  harness::Cell cell;
};

void write_json(const std::string& path, double scale,
                const std::vector<SizedCell>& rows) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E5\",\n"
      << "  \"title\": \"scalability in |D|\",\n"
      << "  \"dataset\": \"quest-sparse\",\n"
      << "  \"minsup_frac\": 0.005,\n"
      << "  \"scale\": " << scale << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const harness::Cell& c = rows[i].cell;
    out << "    {\"transactions\": " << rows[i].transactions
        << ", \"algorithm\": \"" << core::algorithm_name(c.algorithm)
        << "\", \"build_seconds\": " << c.build_seconds
        << ", \"mine_seconds\": " << c.mine_seconds
        << ", \"total_seconds\": " << c.total_seconds
        << ", \"structure_bytes\": " << c.structure_bytes
        << ", \"frequent_itemsets\": " << c.frequent_itemsets
        << ", \"failed\": " << (c.failed ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E5", "scalability in |D|",
                        "sections 1/6 (large databases)");

  Table table({"transactions", "algorithm", "build", "mine", "total",
               "structure", "frequent"});
  std::vector<SizedCell> all_cells;
  for (const double size_scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto db =
        harness::scaled_dataset("quest-sparse", size_scale * scale);
    const Count minsup = harness::absolute_support(db, 0.005);
    harness::SweepConfig config;
    config.dataset_name = "quest-sparse";
    config.db = &db;
    config.supports = {minsup};
    config.algorithms = {core::Algorithm::kPltConditional,
                         core::Algorithm::kFpGrowth,
                         core::Algorithm::kApriori};
    const auto cells = harness::run_sweep(config);
    for (const auto& cell : cells) {
      table.add_row({std::to_string(db.size()),
                     core::algorithm_name(cell.algorithm),
                     format_duration(cell.build_seconds),
                     format_duration(cell.mine_seconds),
                     format_duration(cell.total_seconds),
                     format_bytes(cell.structure_bytes),
                     std::to_string(cell.frequent_itemsets)});
      all_cells.push_back({db.size(), cell});
    }
  }
  std::cout << table.to_text();
  write_json(args.get("out", "BENCH_scalability.json"), scale, all_cells);
  std::cout << "\nExpected shape: at fixed relative support, runtime and\n"
               "structure size grow close to linearly with |D| for the\n"
               "projection miners; Apriori grows superlinearly because each\n"
               "level rescans the whole database.\n";
  return 0;
}
