// E5 — transaction-count scalability at fixed relative support (paper §1/§6:
// "PLT [is] a solution when large databases are being mined"). Runtime and
// structure size should grow near-linearly in |D| for the PLT conditional
// approach; the comparison includes FP-growth and Apriori.
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E5", "scalability in |D|",
                        "sections 1/6 (large databases)");

  Table table({"transactions", "algorithm", "build", "mine", "total",
               "structure", "frequent"});
  std::vector<harness::Cell> all_cells;
  for (const double size_scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto db =
        harness::scaled_dataset("quest-sparse", size_scale * scale);
    const Count minsup = harness::absolute_support(db, 0.005);
    harness::SweepConfig config;
    config.dataset_name = "quest-sparse";
    config.db = &db;
    config.supports = {minsup};
    config.algorithms = {core::Algorithm::kPltConditional,
                         core::Algorithm::kFpGrowth,
                         core::Algorithm::kApriori};
    const auto cells = harness::run_sweep(config);
    for (const auto& cell : cells) {
      table.add_row({std::to_string(db.size()),
                     core::algorithm_name(cell.algorithm),
                     format_duration(cell.build_seconds),
                     format_duration(cell.mine_seconds),
                     format_duration(cell.total_seconds),
                     format_bytes(cell.structure_bytes),
                     std::to_string(cell.frequent_itemsets)});
      all_cells.push_back(cell);
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: at fixed relative support, runtime and\n"
               "structure size grow close to linearly with |D| for the\n"
               "projection miners; Apriori grows superlinearly because each\n"
               "level rescans the whole database.\n";
  return 0;
}
