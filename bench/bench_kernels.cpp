// E18 — vectorized kernel layer: per-kernel scalar-vs-SIMD micro rows plus
// the end-to-end mine() speedup the kernels buy on the dense sweeps. Every
// SIMD measurement is differentially checked against the scalar reference
// in-line (checksums must match — contract rule #1), and the end-to-end
// section verifies the mined itemsets are identical across backends, so
// this binary doubles as a coarse correctness gate. Writes BENCH_kernels.json.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "kernels/kernels.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

// ---------------------------------------------------------------------------
// Micro harness

struct MicroCase {
  std::string kernel;
  std::size_t elements = 0;  ///< elements processed per timed call
  // One timed call against the given backend; the checksum must be
  // backend-independent (differential check) and keeps the work alive.
  std::function<std::uint64_t(const kernels::Dispatch&)> call;
};

struct MicroRow {
  std::string kernel;
  std::string backend;
  std::size_t elements = 0;
  double seconds = 0.0;         ///< per call, best of 3
  double scalar_seconds = 0.0;  ///< scalar reference, same machine state
  double speedup = 0.0;
};

// Calibrates a repetition count to ~20ms then reports best-of-3 seconds per
// call. The checksum of the last call is returned through `checksum`.
double time_case(const MicroCase& c, const kernels::Dispatch& d,
                 std::uint64_t& checksum) {
  std::size_t reps = 1;
  for (;;) {
    Timer t;
    for (std::size_t r = 0; r < reps; ++r) checksum = c.call(d);
    const double s = t.seconds();
    if (s >= 0.02 || reps >= (std::size_t{1} << 24)) break;
    reps *= 2;
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    for (std::size_t r = 0; r < reps; ++r) checksum = c.call(d);
    const double s = t.seconds() / static_cast<double>(reps);
    if (rep == 0 || s < best) best = s;
  }
  return best;
}

std::size_t scaled(double scale, std::size_t base) {
  const auto n = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return std::max<std::size_t>(n, 64);
}

// Strictly increasing u32 list of length n (tidlist-shaped): the universe
// walk comes from `universe` and membership from `membership`, so two lists
// built with the same universe seed but different membership seeds overlap
// the way two independent items' tidlists do (P(match) = keep^2) — the
// data-dependent branch in a scalar merge is then genuinely unpredictable,
// as it is in Eclat, instead of degenerately correlated.
std::vector<std::uint32_t> sorted_list(Rng& universe, Rng& membership,
                                       std::size_t n, double keep) {
  std::vector<std::uint32_t> v;
  v.reserve(n);
  std::uint32_t x = 0;
  while (v.size() < n) {
    x += 1 + static_cast<std::uint32_t>(universe.next_below(3));
    if (membership.next_bool(keep)) v.push_back(x);
  }
  return v;
}

// ---------------------------------------------------------------------------
// End-to-end harness

struct EndToEndRow {
  std::string dataset;
  std::string algorithm;
  Count minsup = 0;
  std::size_t frequent = 0;
  double scalar_seconds = 0.0;
  double simd_seconds = 0.0;
  double speedup = 0.0;
  bool identical = false;
};

double time_mine(const tdb::Database& db, Count minsup,
                 core::Algorithm algorithm, const std::string& backend,
                 core::FrequentItemsets& out) {
  double best = 0.0;
  core::MineOptions options;
  options.kernel_backend = backend;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    core::MineResult result = core::mine(db, minsup, algorithm, options);
    const double s = t.seconds();
    if (rep == 0 || s < best) best = s;
    out = std::move(result.itemsets);
  }
  return best;
}

void write_json(const std::string& path, double scale,
                const std::vector<MicroRow>& micro,
                const std::vector<EndToEndRow>& e2e,
                const std::string& trace_summary) {
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E18\",\n"
      << "  \"title\": \"vectorized kernel layer: scalar vs SIMD\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"best_backend\": \""
      << kernels::backend_name(kernels::best_supported()) << "\",\n";
  if (!trace_summary.empty())
    out << "  \"trace\": " << trace_summary << ",\n";
  out << "  \"micro\": [\n";
  for (std::size_t i = 0; i < micro.size(); ++i) {
    const MicroRow& r = micro[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"backend\": \""
        << r.backend << "\", \"elements\": " << r.elements
        << ", \"seconds_per_call\": " << r.seconds
        << ", \"scalar_seconds_per_call\": " << r.scalar_seconds
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < micro.size() ? "," : "") << '\n';
  }
  out << "  ],\n  \"end_to_end\": [\n";
  for (std::size_t i = 0; i < e2e.size(); ++i) {
    const EndToEndRow& r = e2e[i];
    out << "    {\"dataset\": \"" << r.dataset << "\", \"algorithm\": \""
        << r.algorithm << "\", \"minsup\": " << r.minsup
        << ", \"frequent_itemsets\": " << r.frequent
        << ", \"scalar_seconds\": " << r.scalar_seconds
        << ", \"simd_seconds\": " << r.simd_seconds
        << ", \"speedup\": " << r.speedup
        << ", \"identical_output\": " << (r.identical ? "true" : "false")
        << "}" << (i + 1 < e2e.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);
  const std::string out_path = args.get("out", "BENCH_kernels.json");

  harness::print_banner(std::cout, "E18",
                        "vectorized kernel layer: scalar vs SIMD backends",
                        "section 6 (hot-loop throughput) — runtime-dispatched "
                        "kernels");

  Rng rng(42);
  bool all_agree = true;

  // -------------------------------------------------------------- inputs
  const std::size_t n_words = scaled(scale, std::size_t{1} << 20);
  const std::size_t n_tids = scaled(scale, std::size_t{1} << 18);

  std::vector<std::uint32_t> gaps(n_words);
  for (auto& g : gaps) g = 1 + static_cast<std::uint32_t>(rng.next_below(8));
  std::vector<std::uint32_t> sums(n_words);

  std::vector<std::uint32_t> words(n_words);
  for (auto& w : words) {
    // Position-vector-like byte-length mix: mostly 1-byte values with a
    // tail of wider ones, so the group-varint control bytes vary.
    const std::uint64_t cls = rng.next_below(100);
    const std::uint32_t raw = static_cast<std::uint32_t>(rng.next_u64());
    w = cls < 70 ? (raw & 0xffu) : cls < 90 ? (raw & 0xffffu)
        : cls < 97 ? (raw & 0xffffffu) : raw;
  }
  std::vector<std::uint8_t> encoded(kernels::encoded_block_bound(n_words));
  const std::size_t encoded_len = kernels::scalar_dispatch().encode_varint_block(
      words.data(), words.size(), encoded.data());
  std::vector<std::uint32_t> decoded(n_words);

  Rng universe_a(7), universe_b(7), keep_a(100), keep_b(101);
  const auto tids_a = sorted_list(universe_a, keep_a, n_tids, 0.5);
  const auto tids_b = sorted_list(universe_b, keep_b, n_tids, 0.5);
  Rng universe_c(7), keep_c(102);
  const auto tids_small = sorted_list(
      universe_c, keep_c, std::max<std::size_t>(n_tids / 256, 16), 0.05);
  std::vector<std::uint32_t> isect_out(std::min(tids_a.size(), tids_b.size()) + 4);

  std::vector<std::uint64_t> counts(n_words);
  for (auto& c : counts) c = rng.next_below(1000);

  const std::size_t hash_chunk = 64;

  const MicroCase cases[] = {
      {"peel_prefixes", n_words,
       [&](const kernels::Dispatch& d) {
         d.peel_prefixes(gaps.data(), sums.data(), gaps.size());
         return std::uint64_t{sums.back()} ^ sums[sums.size() / 2];
       }},
      {"hash_positions", n_words,
       [&](const kernels::Dispatch& d) {
         std::uint64_t h = 0;
         for (std::size_t i = 0; i + hash_chunk <= words.size();
              i += hash_chunk)
           h ^= d.hash_positions(words.data() + i, hash_chunk);
         return h;
       }},
      {"equals_positions", n_words,
       [&](const kernels::Dispatch& d) {
         return std::uint64_t{
             d.equals_positions(gaps.data(), gaps.data(), gaps.size())};
       }},
      {"encode_varint_block", n_words,
       [&](const kernels::Dispatch& d) {
         return std::uint64_t{
             d.encode_varint_block(words.data(), words.size(),
                                   encoded.data())};
       }},
      {"decode_varint_block", n_words,
       [&](const kernels::Dispatch& d) {
         const std::size_t consumed = d.decode_varint_block(
             encoded.data(), encoded_len, decoded.data(), decoded.size());
         return std::uint64_t{consumed} ^ decoded.back();
       }},
      {"intersect_sorted", tids_a.size() + tids_b.size(),
       [&](const kernels::Dispatch& d) {
         const std::size_t m =
             d.intersect_sorted(tids_a.data(), tids_a.size(), tids_b.data(),
                                tids_b.size(), isect_out.data());
         return std::uint64_t{m} ^ (m > 0 ? isect_out[m / 2] : 0u);
       }},
      {"intersect_count", tids_a.size() + tids_b.size(),
       [&](const kernels::Dispatch& d) {
         return std::uint64_t{d.intersect_count(
             tids_a.data(), tids_a.size(), tids_b.data(), tids_b.size())};
       }},
      {"intersect_gallop", tids_small.size() + tids_b.size(),
       [&](const kernels::Dispatch& d) {
         return std::uint64_t{d.intersect_count(
             tids_small.data(), tids_small.size(), tids_b.data(),
             tids_b.size())};
       }},
      {"sum_counts", n_words,
       [&](const kernels::Dispatch& d) {
         return d.sum_counts(counts.data(), counts.size());
       }},
      {"sum_positions", n_words,
       [&](const kernels::Dispatch& d) {
         return std::uint64_t{d.sum_positions(words.data(), words.size())};
       }},
  };

  std::vector<const kernels::Dispatch*> backends;
  backends.push_back(&kernels::scalar_dispatch());
  for (const auto b : {kernels::Backend::kSSE42, kernels::Backend::kAVX2})
    if (const kernels::Dispatch* d = kernels::dispatch_for(b))
      backends.push_back(d);

  std::vector<MicroRow> micro;
  Table table({"kernel", "backend", "elements", "s/call", "Melem/s",
               "speedup"});
  for (const MicroCase& c : cases) {
    std::uint64_t scalar_sum = 0;
    const double scalar_s =
        time_case(c, kernels::scalar_dispatch(), scalar_sum);
    for (const kernels::Dispatch* d : backends) {
      std::uint64_t sum = 0;
      const double s = time_case(c, *d, sum);
      if (sum != scalar_sum) {
        std::cerr << "CHECKSUM MISMATCH: " << c.kernel << " on " << d->name
                  << " (" << sum << " != " << scalar_sum << ")\n";
        all_agree = false;
      }
      MicroRow row;
      row.kernel = c.kernel;
      row.backend = d->name;
      row.elements = c.elements;
      row.seconds = s;
      row.scalar_seconds = scalar_s;
      row.speedup = s > 0 ? scalar_s / s : 0.0;
      micro.push_back(row);
      table.add_row({c.kernel, d->name, std::to_string(c.elements),
                     format_duration(s),
                     std::to_string(static_cast<double>(c.elements) /
                                    (s * 1e6)),
                     std::to_string(row.speedup)});
    }
  }
  std::cout << table.to_text();

  // ------------------------------------------------------- end to end
  const struct {
    const char* dataset;
    double fraction;
  } sweeps[] = {
      {"chess-like", 0.70},
      {"chess-like", 0.60},
      {"mushroom-like", 0.20},
      {"mushroom-like", 0.10},
  };
  const struct {
    core::Algorithm algorithm;
    const char* name;
  } algos[] = {
      {core::Algorithm::kPltConditional, "plt-conditional"},
      {core::Algorithm::kEclat, "eclat"},
  };

  std::vector<EndToEndRow> e2e;
  Table e2e_table({"dataset", "algorithm", "minsup", "frequent", "scalar",
                   "simd", "speedup", "identical"});
  for (const auto& sweep : sweeps) {
    const auto db = harness::scaled_dataset(sweep.dataset, scale);
    const auto grid = harness::support_grid(db, {sweep.fraction});
    if (grid.empty()) continue;
    const Count minsup = grid.front();
    for (const auto& algo : algos) {
      core::FrequentItemsets scalar_out, simd_out;
      const double scalar_s =
          time_mine(db, minsup, algo.algorithm, "scalar", scalar_out);
      const double simd_s =
          time_mine(db, minsup, algo.algorithm, "simd", simd_out);
      EndToEndRow row;
      row.dataset = sweep.dataset;
      row.algorithm = algo.name;
      row.minsup = minsup;
      row.frequent = simd_out.size();
      row.scalar_seconds = scalar_s;
      row.simd_seconds = simd_s;
      row.speedup = simd_s > 0 ? scalar_s / simd_s : 0.0;
      row.identical = core::FrequentItemsets::equal(scalar_out, simd_out);
      if (!row.identical) {
        std::cerr << "DISAGREEMENT: " << row.dataset << " " << row.algorithm
                  << " minsup=" << minsup << "\n";
        all_agree = false;
      }
      e2e.push_back(row);
      e2e_table.add_row({row.dataset, row.algorithm, std::to_string(minsup),
                         std::to_string(row.frequent),
                         format_duration(scalar_s), format_duration(simd_s),
                         std::to_string(row.speedup),
                         row.identical ? "yes" : "NO"});
    }
  }
  std::cout << '\n' << e2e_table.to_text();

  // With --trace the run-wide session saw the end-to-end mines (the micro
  // loops call raw dispatch entries, which record nothing): finish it so
  // the kernel call/byte counters ride along in the report.
  std::string trace_summary;
  if (trace_scope.active()) {
    trace_scope.write();
    trace_summary = harness::trace_summary_json(*trace_scope.root());
  }
  write_json(out_path, scale, micro, e2e, trace_summary);
  std::cout << "\nWrote " << out_path << ".\n"
            << "Expected shape: the SIMD rows beat scalar on the\n"
            << "bandwidth-bound kernels (intersect, varint blocks, prefix\n"
            << "sums); every backend produces identical checksums and\n"
            << "identical mined itemsets (contract rule #1).\n";
  return all_agree ? 0 : 1;
}
