// E8 — rank-ordering ablation (design choice called out in DESIGN.md): the
// paper fixes "a lexicographic order" for Rank; FIMI-era systems order items
// by frequency instead. This bench measures how the ordering changes the
// PLT's size (distinct vectors, bytes) and the conditional mining time,
// while the mined itemsets stay identical.
#include <iostream>

#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E8", "rank-ordering ablation",
                        "section 4.1 (Rank function definition)");

  Table table({"dataset", "order", "vectors", "PLT mem", "PLT varint",
               "build", "mine", "frequent"});
  const struct {
    tdb::ItemOrder order;
    const char* name;
  } orders[] = {
      {tdb::ItemOrder::kById, "by-id (paper)"},
      {tdb::ItemOrder::kByFreqAscending, "freq-ascending"},
      {tdb::ItemOrder::kByFreqDescending, "freq-descending"},
  };

  for (const char* dataset : {"quest-sparse", "mushroom-like"}) {
    const auto db = harness::scaled_dataset(dataset, scale * 0.5);
    const Count minsup = harness::absolute_support(
        db, std::string(dataset) == "quest-sparse" ? 0.005 : 0.25);

    std::optional<core::FrequentItemsets> reference;
    for (const auto& [order, name] : orders) {
      Timer build_timer;
      const auto view = core::build_ranked_view(db, minsup, order);
      const auto plt = core::build_plt(
          view.db, static_cast<Rank>(std::max<std::size_t>(
                       1, view.alphabet())));
      const double build = build_timer.seconds();

      core::MineOptions options;
      options.item_order = order;
      Timer mine_timer;
      auto result = core::mine(db, minsup, core::Algorithm::kPltConditional,
                               options);
      const double mine_time = mine_timer.seconds();

      if (!reference) {
        reference = result.itemsets;
      } else if (!core::FrequentItemsets::equal(*reference,
                                                result.itemsets)) {
        std::cerr << "ablation changed the answer — bug!\n";
        return 1;
      }
      table.add_row({dataset, name, std::to_string(plt.num_vectors()),
                     format_bytes(plt.memory_usage()),
                     format_bytes(compress::encoded_size(plt)),
                     format_duration(build), format_duration(mine_time),
                     std::to_string(result.itemsets.size())});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: identical itemset counts for every order;\n"
               "frequency-descending ranks put popular items in low ranks,\n"
               "shrinking position gaps and hence the varint encoding, and\n"
               "usually reducing distinct-vector counts on skewed data.\n";
  return 0;
}
