// E9 — condensed representations (closed / maximal): the FIMI-standard
// companion numbers to any frequent-itemset system (the paper's references
// [13]/[16] report them). Shows the condensation ratio and the post-pass
// cost on top of PLT-conditional mining, with the internal consistency
// checker run on every row.
#include <iostream>

#include "core/closed.hpp"
#include "core/miner.hpp"
#include "datagen/transforms.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E9", "closed & maximal itemsets",
                        "condensed representations (refs [13]/[16])");

  Table table({"dataset", "minsup", "frequent", "closed", "maximal",
               "condense ratio", "mine", "closed pass", "maximal pass",
               "consistent"});

  const struct {
    const char* dataset;
    std::vector<double> fractions;
    bool plant_twins;  // census-style perfectly-correlated attribute pairs
  } cases[] = {
      {"mushroom-like", {0.30, 0.20, 0.12}, true},
      {"chess-like", {0.85, 0.75, 0.65}, true},
      {"quest-sparse", {0.01, 0.004}, false},
  };

  for (const auto& c : cases) {
    auto db = harness::scaled_dataset(c.dataset, scale * 0.5);
    if (c.plant_twins) {
      // Twin the three most universal attributes with fresh item ids —
      // the deterministic attribute dependencies that make real mushroom/
      // chess data condense under closed-itemset mining.
      const Item base = db.max_item();
      db = datagen::add_twin_items(
          db, {{1, base + 1}, {2, base + 2}, {3, base + 3}});
    }
    for (const Count minsup : harness::support_grid(db, c.fractions)) {
      Timer mine_timer;
      const auto mined =
          core::mine(db, minsup, core::Algorithm::kPltConditional);
      const double mine_seconds = mine_timer.seconds();

      Timer closed_timer;
      const auto closed = core::closed_itemsets(mined.itemsets);
      const double closed_seconds = closed_timer.seconds();

      Timer maximal_timer;
      const auto maximal = core::maximal_itemsets(mined.itemsets);
      const double maximal_seconds = maximal_timer.seconds();

      const auto violation =
          core::check_condensed(mined.itemsets, closed, maximal);
      char ratio[32];
      std::snprintf(ratio, sizeof ratio, "%.1fx",
                    closed.empty()
                        ? 0.0
                        : static_cast<double>(mined.itemsets.size()) /
                              static_cast<double>(closed.size()));
      table.add_row({c.dataset, std::to_string(minsup),
                     std::to_string(mined.itemsets.size()),
                     std::to_string(closed.size()),
                     std::to_string(maximal.size()), ratio,
                     format_duration(mine_seconds),
                     format_duration(closed_seconds),
                     format_duration(maximal_seconds),
                     violation.empty() ? "yes" : violation});
    }
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: dense/correlated data condenses hard\n"
               "(closed << frequent, maximal smaller still) while sparse\n"
               "data condenses little; both post-passes cost a small\n"
               "fraction of the mining time; the consistency checker\n"
               "(coverage + support recovery) passes on every row.\n";
  return 0;
}
