// E3 — dense support sweep: "the conditional approach is best used when the
// data is dense and a high support count is required" (paper §6). Sweeps
// chess-like and mushroom-like data from high to moderate thresholds.
#include <iostream>

#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E3", "dense dataset support sweep",
                        "section 6 (conditional approach on dense data at "
                        "high support)");

  const struct {
    const char* dataset;
    std::vector<double> fractions;
  } cases[] = {
      {"chess-like", {0.95, 0.90, 0.85, 0.80, 0.70, 0.60}},
      {"mushroom-like", {0.40, 0.30, 0.20, 0.15, 0.10}},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale);
    harness::SweepConfig config;
    config.dataset_name = c.dataset;
    config.db = &db;
    config.supports = harness::support_grid(db, c.fractions);
    config.algorithms = {
        core::Algorithm::kPltConditional, core::Algorithm::kApriori,
        core::Algorithm::kFpGrowth,       core::Algorithm::kDEclat,
    };
    const auto cells = harness::run_sweep(config);
    harness::print_sweep(std::cout, c.dataset, cells);
    harness::print_winners(std::cout, cells);
    std::cout << '\n';
  }
  std::cout << "Expected shape: on dense data the itemset counts explode as\n"
               "support falls; Apriori's level-wise counting collapses first\n"
               "while the projection-based miners (PLT conditional,\n"
               "FP-growth, dEclat) track the output size.\n";
  return 0;
}
