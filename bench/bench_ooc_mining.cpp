// E11 — out-of-core-style mining from the serialized blob (the indexing
// claim of §1/§6 made operational): conditional mining where the base
// vectors stream from the varint blob via the sum-bucket index and only the
// prefix overlay lives in memory. Compares against fully in-memory mining
// and reports the working-set sizes.
#include <iostream>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E11", "mining from the serialized blob",
                        "sections 1/6 (indexing for large databases)");

  Table table({"dataset", "minsup", "blob", "in-mem PLT", "overlay peak",
               "ooc mine", "in-mem mine", "frequent", "identical"});

  const struct {
    const char* dataset;
    double minsup_frac;
  } cases[] = {
      {"quest-sparse", 0.005},
      {"mushroom-like", 0.25},
      {"clickstream", 0.004},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale * 0.5);
    const Count minsup = harness::absolute_support(db, c.minsup_frac);
    const auto built = core::build_from_database(db, minsup);
    if (built.view.alphabet() == 0) continue;
    const auto blob = compress::encode_plt(built.plt);
    std::vector<Item> item_of(built.view.alphabet());
    for (Rank r = 1; r <= built.view.alphabet(); ++r)
      item_of[r - 1] = built.view.item_of(r);

    core::FrequentItemsets ooc_mined;
    compress::OocStats stats;
    Timer ooc_timer;
    compress::mine_from_blob(blob, item_of, minsup,
                             core::collect_into(ooc_mined), &stats);
    const double ooc_seconds = ooc_timer.seconds();

    Timer mem_timer;
    auto mem_mined =
        core::mine(db, minsup, core::Algorithm::kPltConditional).itemsets;
    const double mem_seconds = mem_timer.seconds();

    table.add_row(
        {c.dataset, std::to_string(minsup), format_bytes(blob.size()),
         format_bytes(built.plt.memory_usage()),
         format_bytes(stats.peak_overlay_bytes),
         format_duration(ooc_seconds), format_duration(mem_seconds),
         std::to_string(ooc_mined.size()),
         core::FrequentItemsets::equal(ooc_mined, std::move(mem_mined))
             ? "yes"
             : "NO"});
  }
  std::cout << table.to_text();
  std::cout << "\nExpected shape: identical itemsets; the blob is several\n"
               "times smaller than the in-memory structure and the resident\n"
               "overlay (re-inserted prefixes only) stays below the full\n"
               "PLT footprint, at a modest decode-time overhead — i.e. the\n"
               "index makes the structure minable without residing in\n"
               "memory, which is the paper's 'large databases' argument.\n";
  return 0;
}
