// E1 — structure sizes: "PLT ... applicable to compression and indexing
// techniques, which makes PLT suitable for supporting large databases"
// (paper §1, §6). Compares, across sparse and dense workloads:
//   raw horizontal database bytes | PLT in-memory | PLT varint-serialized |
//   FP-tree in-memory | distinct PLT vectors vs FP-tree nodes.
#include <iostream>

#include "baselines/fpgrowth.hpp"
#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/memory.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E1", "structure size & compression",
                        "sections 1 and 6 (compression/indexing claim)");

  Table table({"dataset", "minsup", "raw DB", "PLT mem", "PLT varint",
               "ratio", "FP-tree mem", "PLT vectors", "FP nodes"});

  const struct {
    const char* dataset;
    double minsup_frac;
  } cases[] = {
      {"quest-sparse", 0.002},
      {"quest-wide", 0.005},
      {"chess-like", 0.30},
      {"mushroom-like", 0.05},
      {"clickstream", 0.002},
  };

  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, scale);
    const Count minsup = harness::absolute_support(db, c.minsup_frac);

    const auto built = core::build_from_database(db, minsup);
    const std::size_t raw = compress::raw_database_bytes(db);
    const std::size_t plt_mem = built.plt.memory_usage();
    const std::size_t plt_wire = compress::encoded_size(built.plt);

    std::size_t fp_nodes = 0;
    const std::size_t fp_mem =
        baselines::fptree_size_bytes(db, minsup, &fp_nodes);

    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx",
                  static_cast<double>(raw) /
                      static_cast<double>(plt_wire ? plt_wire : 1));
    table.add_row({c.dataset, std::to_string(minsup), format_bytes(raw),
                   format_bytes(plt_mem), format_bytes(plt_wire), ratio,
                   format_bytes(fp_mem),
                   std::to_string(built.plt.num_vectors()),
                   std::to_string(fp_nodes)});
  }
  std::cout << table.to_text()
            << "\nratio = raw DB bytes / varint-serialized PLT bytes.\n"
               "Expected shape: gap-coding makes the serialized PLT several\n"
               "times smaller than the raw database on every workload, and\n"
               "the PLT holds one entry per *distinct* transaction versus\n"
               "an order of magnitude more FP-tree nodes; duplicate collapse\n"
               "(vectors << transactions) additionally appears on short\n"
               "dense rows (see the E6 dense fixture and E11).\n";
  return 0;
}
