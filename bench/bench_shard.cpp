// E21 — shard-parallel mining across processes: the paper's partition
// independence (§4.1/§6) taken to its process-level conclusion. One shared
// PLT2 blob, N worker processes each mining a rank window, a coordinator
// merging the checkpoint logs back into single-process emission order.
// Reports measured-vs-perfect scaling of the worker phase against a
// single-process OOC mine of the same blob, with the coordinator's own
// overhead (split = build+encode+stats, merge = log replay) broken out
// separately, plus the per-shard wall-time distribution as a latency
// histogram. Emits BENCH_shard.json (--out FILE).
//
// NUMA note: the coordinator launches plain child processes; on multi-
// socket hosts pin each worker with --launch-prefix (e.g.
// "numactl --cpunodebind=0 --membind=0" or "taskset -c 0-7") so a shard's
// prefix overlay stays local to the socket that streams its blob window.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/report.hpp"
#include "harness/tracing.hpp"
#include "shard/coordinator.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;
namespace fs = std::filesystem;

struct Row {
  std::size_t workers = 0;
  shard::ShardReport report;
  std::size_t itemsets = 0;
  double total_seconds = 0.0;
};

void write_json(const std::string& path, double scale, Count minsup,
                double single_seconds, std::size_t single_itemsets,
                const std::vector<Row>& rows) {
  const double base = rows.empty() ? 0.0 : rows.front().report.mine_seconds;
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"E21\",\n"
      << "  \"title\": \"shard-parallel mining across processes\",\n"
      << "  \"dataset\": \"quest-sparse\",\n"
      << "  \"scale\": " << scale << ",\n"
      << "  \"minsup\": " << minsup << ",\n"
      << "  \"single_process\": {\"mine_seconds\": " << single_seconds
      << ", \"frequent_itemsets\": " << single_itemsets << "},\n"
      << "  \"numa_note\": \"pin workers via --launch-prefix, e.g. "
         "'numactl --cpunodebind=0 --membind=0' or 'taskset -c 0-7', to "
         "keep each shard's overlay socket-local\",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double speedup =
        r.report.mine_seconds > 0 ? base / r.report.mine_seconds : 0.0;
    out << "    {\"workers\": " << r.workers
        << ", \"shards\": " << r.report.shards
        << ", \"split_seconds\": " << r.report.split_seconds
        << ", \"mine_seconds\": " << r.report.mine_seconds
        << ", \"merge_seconds\": " << r.report.merge_seconds
        << ", \"total_seconds\": " << r.total_seconds
        << ", \"coordinator_overhead_seconds\": "
        << r.report.split_seconds + r.report.merge_seconds
        << ", \"speedup_vs_one_worker\": " << speedup
        << ", \"perfect_speedup\": " << r.workers
        << ", \"efficiency\": "
        << (r.workers > 0 ? speedup / static_cast<double>(r.workers) : 0.0)
        << ", \"launches\": " << r.report.attempts
        << ", \"relaunches\": " << r.report.relaunches
        << ", \"blob_bytes\": " << r.report.blob_bytes
        << ", \"frequent_itemsets\": " << r.itemsets
        << ", \"shard_wall\": " << r.report.shard_wall.to_json() << "}"
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args)) return 2;
  if (!harness::apply_plan_flag(args)) return 2;
  harness::TraceScope trace_scope(args);
  const double scale = args.get_double("scale", 1.0);

  harness::print_banner(std::cout, "E21",
                        "shard-parallel mining across processes",
                        "sections 4.1/6 (independent partitions -> shards)");

  const auto db = harness::scaled_dataset("quest-sparse", scale);
  const Count minsup = harness::absolute_support(db, 0.005);

  // Single-process reference: the exact OOC walk the workers run, in this
  // process with no coordinator — the floor any sharded run is measured
  // against.
  double single_seconds = 0.0;
  std::size_t single_itemsets = 0;
  {
    const auto built = core::build_from_database(db, minsup);
    const auto blob = compress::encode_plt(built.plt);
    std::vector<Item> item_of(built.view.alphabet());
    for (Rank r = 1; r <= built.view.alphabet(); ++r)
      item_of[r - 1] = built.view.item_of(r);
    Timer timer;
    compress::mine_from_blob(blob, item_of, minsup,
                             [&](std::span<const Item>, Count) {
                               ++single_itemsets;
                             });
    single_seconds = timer.seconds();
  }

  Table table({"workers", "split", "mine", "merge", "total", "speedup",
               "efficiency", "shard p50", "shard max", "frequent"});
  std::vector<Row> rows;
  const fs::path job_root =
      fs::temp_directory_path() / "plt_bench_shard_jobs";
  for (const std::size_t workers : {1u, 2u, 4u}) {
    Row row;
    row.workers = workers;
    shard::ShardOptions options;
    options.workers = workers;
    options.dir = (job_root / std::to_string(workers)).string();
    options.worker_binary = PLT_SHARD_BIN;
    fs::remove_all(options.dir);

    std::size_t itemsets = 0;
    Timer total;
    shard::mine_sharded(db, minsup,
                        [&](std::span<const Item>, Count) { ++itemsets; },
                        options, &row.report);
    row.total_seconds = total.seconds();
    row.itemsets = itemsets;
    fs::remove_all(options.dir);

    const double base = rows.empty() ? row.report.mine_seconds
                                     : rows.front().report.mine_seconds;
    const double speedup =
        row.report.mine_seconds > 0 ? base / row.report.mine_seconds : 0.0;
    table.add_row(
        {std::to_string(workers), format_duration(row.report.split_seconds),
         format_duration(row.report.mine_seconds),
         format_duration(row.report.merge_seconds),
         format_duration(row.total_seconds),
         std::to_string(speedup) + "x",
         std::to_string(speedup / static_cast<double>(workers)),
         format_duration(
             static_cast<double>(row.report.shard_wall.percentile_ns(0.5)) /
             1e9),
         format_duration(
             static_cast<double>(row.report.shard_wall.percentile_ns(1.0)) /
             1e9),
         std::to_string(itemsets)});
    rows.push_back(std::move(row));
  }
  fs::remove_all(job_root);
  std::cout << table.to_text();
  std::cout << "single-process OOC mine (no coordinator): "
            << format_duration(single_seconds) << ", " << single_itemsets
            << " itemsets\n";

  write_json(args.get("out", "BENCH_shard.json"), scale, minsup,
             single_seconds, single_itemsets, rows);

  std::cout << "\nExpected shape: every worker count yields the same\n"
               "itemsets; the worker phase shrinks toward mine/N on\n"
               "multi-core hosts (bounded by the heaviest shard, so the\n"
               "weighted split matters), while split and merge stay small\n"
               "and constant — that pair is the coordinator's whole\n"
               "overhead. On one core the sweep shows process-launch\n"
               "overhead instead of speedup. Pin workers per the NUMA note\n"
               "on multi-socket machines.\n";
  return 0;
}
