// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/itemset_collector.hpp"
#include "tdb/database.hpp"

namespace plt::testing {

/// The paper's Table 1 database (items A..F mapped to 1..6; E=5, F=6 are
/// infrequent at the paper's absolute support 2).
inline tdb::Database paper_table1() {
  constexpr Item A = 1, B = 2, C = 3, D = 4, E = 5, F = 6;
  return tdb::Database::from_transactions({
      {A, B, C},        // TID 1
      {A, B, C},        // TID 2
      {A, B, C, D},     // TID 3
      {A, B, D, E},     // TID 4
      {B, C, D},        // TID 5
      {C, D, F},        // TID 6
  });
}

/// Asserts two result sets are identical, with a readable diff on failure.
inline void expect_same_itemsets(core::FrequentItemsets a,
                                 core::FrequentItemsets b,
                                 const char* label = "") {
  a.canonicalize();
  b.canonicalize();
  if (core::FrequentItemsets::equal(a, b)) return;
  ADD_FAILURE() << "itemset mismatch " << label << "\n--- first ---\n"
                << a.to_string() << "--- second ---\n"
                << b.to_string();
}

}  // namespace plt::testing
