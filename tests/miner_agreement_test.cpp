// Cross-miner agreement: every algorithm in the repo (PLT conditional ×2,
// PLT top-down ×2, Apriori, FP-growth, Eclat, dEclat) must produce exactly
// the same frequent itemsets and supports as the brute-force oracle, across
// a parameterized grid of workload shapes, sizes and thresholds.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/brute.hpp"
#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "datagen/clickstream.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "datagen/zipf.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

struct Workload {
  const char* name;
  tdb::Database (*make)(std::uint64_t seed);
};

tdb::Database make_quest(std::uint64_t seed) {
  datagen::QuestConfig cfg;
  cfg.transactions = 250;
  cfg.items = 40;
  cfg.avg_transaction_len = 6.0;
  cfg.avg_pattern_len = 3.0;
  cfg.patterns = 30;
  cfg.seed = seed;
  return datagen::generate_quest(cfg);
}

tdb::Database make_dense(std::uint64_t seed) {
  datagen::DenseConfig cfg;
  cfg.transactions = 200;
  cfg.items = 14;
  cfg.density = 0.45;
  cfg.classes = 3;
  cfg.seed = seed;
  return datagen::generate_dense(cfg);
}

tdb::Database make_zipf(std::uint64_t seed) {
  datagen::ZipfConfig cfg;
  cfg.transactions = 250;
  cfg.items = 60;
  cfg.exponent = 1.1;
  cfg.avg_transaction_len = 5.0;
  cfg.seed = seed;
  return datagen::generate_zipf(cfg);
}

tdb::Database make_clicks(std::uint64_t seed) {
  datagen::ClickstreamConfig cfg;
  cfg.sessions = 250;
  cfg.pages = 40;
  cfg.out_degree = 5;
  cfg.max_session_len = 15;
  cfg.seed = seed;
  return datagen::generate_clickstream(cfg);
}

const Workload kWorkloads[] = {
    {"quest", &make_quest},
    {"dense", &make_dense},
    {"zipf", &make_zipf},
    {"clicks", &make_clicks},
};

class AgreementTest
    : public ::testing::TestWithParam<std::tuple<int, Count, std::uint64_t>> {
};

TEST_P(AgreementTest, AllAlgorithmsMatchOracle) {
  const auto [workload_index, minsup, seed] = GetParam();
  const Workload& workload =
      kWorkloads[static_cast<std::size_t>(workload_index)];
  const auto db = workload.make(seed);

  FrequentItemsets oracle;
  baselines::mine_brute_force(db, minsup, collect_into(oracle));

  for (const Algorithm algorithm : all_algorithms()) {
    MineOptions options;
    options.topdown_max_transaction_len = 22;
    MineResult result;
    try {
      result = mine(db, minsup, algorithm, options);
    } catch (const TopDownOverflow&) {
      // Acceptable only for the top-down variants on long transactions.
      ASSERT_TRUE(algorithm == Algorithm::kPltTopDownCanonical ||
                  algorithm == Algorithm::kPltTopDownSweep)
          << algorithm_name(algorithm);
      continue;
    }
    SCOPED_TRACE(std::string(workload.name) + " minsup=" +
                 std::to_string(minsup) + " seed=" + std::to_string(seed) +
                 " algo=" + algorithm_name(algorithm));
    plt::testing::expect_same_itemsets(oracle, result.itemsets);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),      // workload
                       ::testing::Values<Count>(2, 5, 12), // minsup
                       ::testing::Values<std::uint64_t>(1, 2, 3)),  // seed
    [](const ::testing::TestParamInfo<AgreementTest::ParamType>& info) {
      return std::string(
                 kWorkloads[static_cast<std::size_t>(
                                std::get<0>(info.param))].name) +
             "_s" + std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

// Item-order ablation: mining under frequency orderings must not change the
// answer, only the internal structure.
class ItemOrderTest : public ::testing::TestWithParam<tdb::ItemOrder> {};

TEST_P(ItemOrderTest, OrderingDoesNotChangeResults) {
  const auto db = make_quest(9);
  FrequentItemsets oracle;
  baselines::mine_brute_force(db, 3, collect_into(oracle));
  MineOptions options;
  options.item_order = GetParam();
  const auto result = mine(db, 3, Algorithm::kPltConditional, options);
  plt::testing::expect_same_itemsets(oracle, result.itemsets, "item order");
}

INSTANTIATE_TEST_SUITE_P(Orders, ItemOrderTest,
                         ::testing::Values(tdb::ItemOrder::kById,
                                           tdb::ItemOrder::kByFreqAscending,
                                           tdb::ItemOrder::kByFreqDescending));

// Support-monotonicity property: raising the threshold must yield a subset.
TEST(MinerProperties, ResultsShrinkAsSupportRises) {
  const auto db = make_dense(5);
  std::size_t previous = static_cast<std::size_t>(-1);
  for (const Count minsup : {2u, 5u, 10u, 25u, 60u}) {
    const auto result = mine(db, minsup, Algorithm::kPltConditional);
    EXPECT_LE(result.itemsets.size(), previous) << minsup;
    previous = result.itemsets.size();
  }
}

// Every reported itemset must satisfy the threshold, and every single item
// above the threshold must be reported (completeness at level 1).
TEST(MinerProperties, ThresholdRespectedAndLevel1Complete) {
  const auto db = make_zipf(7);
  const Count minsup = 4;
  const auto result = mine(db, minsup, Algorithm::kFpGrowth);
  for (std::size_t i = 0; i < result.itemsets.size(); ++i)
    EXPECT_GE(result.itemsets.support(i), minsup);
  const auto supports = db.item_supports();
  for (Item item = 0; item < supports.size(); ++item) {
    if (supports[item] >= minsup) {
      EXPECT_EQ(result.itemsets.find_support(Itemset{item}), supports[item])
          << item;
    }
  }
}

TEST(MinerProperties, StatsPopulated) {
  const auto db = make_quest(3);
  for (const Algorithm algorithm : all_algorithms()) {
    const auto result = mine(db, 3, algorithm);
    EXPECT_GE(result.build_seconds, 0.0);
    EXPECT_GE(result.mine_seconds, 0.0);
    if (algorithm != Algorithm::kPltTopDownCanonical &&
        algorithm != Algorithm::kPltTopDownSweep) {
      EXPECT_GT(result.structure_bytes, 0u) << algorithm_name(algorithm);
    }
  }
}

TEST(MinerProperties, AlgorithmNamesAreStable) {
  EXPECT_STREQ(algorithm_name(Algorithm::kPltConditional),
               "plt-conditional");
  EXPECT_STREQ(algorithm_name(Algorithm::kApriori), "apriori");
  EXPECT_STREQ(algorithm_name(Algorithm::kFpGrowth), "fp-growth");
  EXPECT_STREQ(algorithm_name(Algorithm::kHMine), "h-mine");
  EXPECT_STREQ(algorithm_name(Algorithm::kAprioriTid), "apriori-tid");
  EXPECT_STREQ(algorithm_name(Algorithm::kDhp), "dhp");
  EXPECT_STREQ(algorithm_name(Algorithm::kDic), "dic");
  EXPECT_STREQ(algorithm_name(Algorithm::kPartition), "partition");
  EXPECT_STREQ(algorithm_name(Algorithm::kAis), "ais");
  EXPECT_EQ(all_algorithms().size(), 14u);
}

}  // namespace
}  // namespace plt::core
