// Crash-recoverable out-of-core mining: a failpoint kills the blob walk
// mid-run, a second run resumes from the rank-granular checkpoint log, and
// the combined emission sequence must be byte-identical to an uninterrupted
// mine. Also covers the PLT2 container hardening (CRC rejection, legacy
// PLT1 decode) and atomic blob file writes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>
#include <vector>

#include "compress/checkpoint.hpp"
#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "compress/varint.hpp"
#include "core/builder.hpp"
#include "datagen/quest.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace plt::compress {
namespace {

namespace fs = std::filesystem;

// One emission as the sink saw it; sequences compare order-sensitively, so
// equality really is "same bytes in the same order".
using Emissions = std::vector<std::pair<Itemset, Count>>;

struct Workload {
  std::vector<std::uint8_t> blob;
  std::vector<Item> item_of;
};

Workload sample_workload() {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 40;
  cfg.seed = 3;
  const auto built =
      core::build_from_database(datagen::generate_quest(cfg), 3);
  Workload w;
  w.blob = encode_plt(built.plt);
  w.item_of.resize(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    w.item_of[r - 1] = built.view.item_of(r);
  return w;
}

Emissions mine_collecting(const Workload& w, Count minsup,
                          const OocOptions& options = {},
                          OocStats* stats = nullptr) {
  Emissions out;
  mine_from_blob(
      w.blob, w.item_of, minsup,
      [&](std::span<const Item> items, Count support) {
        out.emplace_back(Itemset(items.begin(), items.end()), support);
      },
      stats, options);
  return out;
}

class Checkpoint : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  std::string temp_path(const char* name) const {
    return (fs::path(::testing::TempDir()) / name).string();
  }

  // Runs the workload until the armed "ooc.rank" failpoint kills it,
  // leaving a partial checkpoint log at `path`.
  void crash_run(const Workload& w, Count minsup, const std::string& path,
                 std::uint64_t kill_at_rank_step) {
    FailpointRegistry::Spec spec;
    spec.mode = FailpointRegistry::Mode::kOneShot;
    spec.n = kill_at_rank_step;
    FailpointRegistry::instance().arm("ooc.rank", spec);
    OocOptions options;
    options.checkpoint_path = path;
    EXPECT_THROW((void)mine_collecting(w, minsup, options), InjectedFault);
    FailpointRegistry::instance().disarm("ooc.rank");
  }
};

TEST_F(Checkpoint, KillAndResumeIsByteIdentical) {
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  ASSERT_FALSE(reference.empty());

  const std::string path = temp_path("kill_resume.pltk");
  crash_run(w, 3, path, 5);  // dies entering the 5th rank: 4 ranks durable

  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions resumed = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(resumed, reference);
  EXPECT_EQ(stats.resumed_ranks, 4u);
  EXPECT_GT(stats.checkpoint_records, 0u);
  EXPECT_GT(stats.resilience.crc_verifications, 0u);
  std::remove(path.c_str());
}

TEST_F(Checkpoint, RepeatedCrashesStillConverge) {
  // Crash twice at different depths; each resume extends the log, and the
  // final uninterrupted pass must still reproduce the reference exactly.
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  const std::string path = temp_path("double_crash.pltk");

  crash_run(w, 3, path, 3);
  {
    // Second run resumes past rank 2, then dies again further in.
    FailpointRegistry::Spec spec;
    spec.mode = FailpointRegistry::Mode::kOneShot;
    spec.n = 6;
    FailpointRegistry::instance().arm("ooc.rank", spec);
    OocOptions options;
    options.checkpoint_path = path;
    EXPECT_THROW((void)mine_collecting(w, 3, options), InjectedFault);
    FailpointRegistry::instance().disarm("ooc.rank");
  }

  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions resumed = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(resumed, reference);
  EXPECT_GT(stats.resumed_ranks, 2u);
  std::remove(path.c_str());
}

TEST_F(Checkpoint, ResumeDisabledRestartsFresh) {
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  const std::string path = temp_path("no_resume.pltk");
  crash_run(w, 3, path, 5);

  OocOptions options;
  options.checkpoint_path = path;
  options.resume = false;
  OocStats stats;
  const Emissions mined = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(mined, reference);
  EXPECT_EQ(stats.resumed_ranks, 0u);
  std::remove(path.c_str());
}

TEST_F(Checkpoint, MismatchedSupportIgnoresLog) {
  // The log binds (blob CRC, min_support): a log written at minsup 3 must
  // not be replayed into a minsup 4 mine.
  const auto w = sample_workload();
  const std::string path = temp_path("mismatch.pltk");
  crash_run(w, 3, path, 5);

  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions mined = mine_collecting(w, 4, options, &stats);
  EXPECT_EQ(stats.resumed_ranks, 0u);
  EXPECT_EQ(mined, mine_collecting(w, 4));
  std::remove(path.c_str());
}

TEST_F(Checkpoint, TornTailIsDroppedNotTrusted) {
  // Chop bytes off the log so the last record is torn mid-encoding: the
  // reader must keep the intact prefix, drop the tail, and the resumed
  // mine must still match the reference byte for byte.
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  const std::string path = temp_path("torn.pltk");
  crash_run(w, 3, path, 6);

  const auto size = fs::file_size(path);
  ASSERT_GT(size, 3u);
  fs::resize_file(path, size - 3);

  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions resumed = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(resumed, reference);
  EXPECT_LT(stats.resumed_ranks, 5u);  // the torn record cannot count
  std::remove(path.c_str());
}

TEST_F(Checkpoint, GarbageLogIsIgnored) {
  const auto w = sample_workload();
  const std::string path = temp_path("garbage.pltk");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a checkpoint", f);
    std::fclose(f);
  }
  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions mined = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(stats.resumed_ranks, 0u);
  EXPECT_EQ(mined, mine_collecting(w, 3));
  std::remove(path.c_str());
}

TEST_F(Checkpoint, CompletedRunWritesOneRecordPerRank) {
  const auto w = sample_workload();
  const std::string path = temp_path("complete.pltk");
  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  (void)mine_collecting(w, 3, options, &stats);
  const auto index = build_index(w.blob);
  EXPECT_EQ(stats.checkpoint_records, index.max_rank);
  EXPECT_EQ(stats.resilience.checkpoint_records, index.max_rank);
  std::remove(path.c_str());
}

// ---- rank windows (the shard-worker unit) -------------------------------

TEST_F(Checkpoint, WindowedMiningTilesTheFullRange) {
  // Rank partitions are independent (Def 4.1.3): mining the high window and
  // then the low window of the same blob must concatenate to exactly the
  // full-range emission sequence. The low window's warm pass streams every
  // rank above its rank_hi without emitting, and reports them as warmed.
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  const Rank max_rank = static_cast<Rank>(build_index(w.blob).max_rank);
  ASSERT_GT(max_rank, 2u);
  const Rank split = max_rank / 2;

  OocOptions high;
  high.rank_lo = split + 1;
  high.rank_hi = max_rank;
  OocStats high_stats;
  Emissions combined = mine_collecting(w, 3, high, &high_stats);
  EXPECT_EQ(high_stats.warmed_ranks, 0u);

  OocOptions low;
  low.rank_lo = 1;
  low.rank_hi = split;
  OocStats low_stats;
  const Emissions low_part = mine_collecting(w, 3, low, &low_stats);
  EXPECT_EQ(low_stats.warmed_ranks,
            static_cast<std::uint64_t>(max_rank - split));

  combined.insert(combined.end(), low_part.begin(), low_part.end());
  EXPECT_EQ(combined, reference);
}

TEST_F(Checkpoint, WindowRejectsInvalidBounds) {
  const auto w = sample_workload();
  const Rank max_rank = static_cast<Rank>(build_index(w.blob).max_rank);

  OocOptions empty;
  empty.rank_lo = 3;
  empty.rank_hi = 2;
  EXPECT_THROW((void)mine_collecting(w, 3, empty), std::invalid_argument);

  OocOptions beyond;
  beyond.rank_lo = 1;
  beyond.rank_hi = max_rank + 1;
  EXPECT_THROW((void)mine_collecting(w, 3, beyond), std::invalid_argument);
}

TEST_F(Checkpoint, WindowLogsDoNotCrossReplay) {
  // A log written for one window must never replay into another window of
  // the same blob at the same support: the binding CRC folds the window in.
  const auto w = sample_workload();
  const Rank max_rank = static_cast<Rank>(build_index(w.blob).max_rank);
  ASSERT_GT(max_rank, 4u);
  const Rank split = max_rank / 2;
  const std::string path = temp_path("cross_window.pltk");

  {
    // Crash partway through the high window, leaving a valid windowed log.
    FailpointRegistry::Spec spec;
    spec.mode = FailpointRegistry::Mode::kOneShot;
    spec.n = 3;
    FailpointRegistry::instance().arm("ooc.rank", spec);
    OocOptions high;
    high.checkpoint_path = path;
    high.rank_lo = split + 1;
    high.rank_hi = max_rank;
    EXPECT_THROW((void)mine_collecting(w, 3, high), InjectedFault);
    FailpointRegistry::instance().disarm("ooc.rank");
  }

  OocOptions low;
  low.checkpoint_path = path;
  low.rank_lo = 1;
  low.rank_hi = split;
  OocStats stats;
  const Emissions mined = mine_collecting(w, 3, low, &stats);
  EXPECT_EQ(stats.resumed_ranks, 0u);

  OocOptions low_clean;
  low_clean.rank_lo = 1;
  low_clean.rank_hi = split;
  EXPECT_EQ(mined, mine_collecting(w, 3, low_clean));
  std::remove(path.c_str());
}

TEST_F(Checkpoint, WindowBindingCrcContract) {
  // Full range keeps the raw blob CRC (existing full-range logs stay
  // valid); every proper sub-window derives a distinct binding.
  const std::uint32_t blob_crc = 0xDEADBEEF;
  const Rank max_rank = 10;
  EXPECT_EQ(window_binding_crc(blob_crc, 1, max_rank, max_rank), blob_crc);

  const std::uint32_t low = window_binding_crc(blob_crc, 1, 5, max_rank);
  const std::uint32_t high = window_binding_crc(blob_crc, 6, 10, max_rank);
  EXPECT_NE(low, blob_crc);
  EXPECT_NE(high, blob_crc);
  EXPECT_NE(low, high);
}

TEST_F(Checkpoint, HeaderOnlyLogResumesZeroRanks) {
  // A worker can die after opening its log but before completing any rank.
  // The resumed run must see a valid header, replay nothing, and still
  // produce byte-identical output with one record per rank.
  const auto w = sample_workload();
  const Emissions reference = mine_collecting(w, 3);
  const Rank max_rank = static_cast<Rank>(build_index(w.blob).max_rank);
  const std::string path = temp_path("header_only.pltk");
  { CheckpointWriter writer(path, crc32c(w.blob), 3, max_rank); }

  OocOptions options;
  options.checkpoint_path = path;
  OocStats stats;
  const Emissions resumed = mine_collecting(w, 3, options, &stats);
  EXPECT_EQ(resumed, reference);
  EXPECT_EQ(stats.resumed_ranks, 0u);
  EXPECT_EQ(stats.checkpoint_records, max_rank);
  std::remove(path.c_str());
}

// ---- PLT2 container hardening -------------------------------------------

TEST_F(Checkpoint, Plt2RejectsPayloadCorruptionByCrc) {
  const auto w = sample_workload();
  ASSERT_EQ(w.blob[3], '2');  // the encoder emits the checksummed container
  // Flip one payload byte far from the header: only the frame CRC can
  // notice this class of corruption.
  auto corrupt = w.blob;
  corrupt[corrupt.size() - 8] ^= 0x40;
  EXPECT_THROW((void)decode_plt(corrupt), std::runtime_error);
  EXPECT_THROW((void)build_index(corrupt), std::runtime_error);
}

TEST_F(Checkpoint, LegacyPlt1StillDecodes) {
  // Hand-build a checksum-less v1 blob: two partitions, three vectors.
  std::vector<std::uint8_t> blob{'P', 'L', 'T', '1'};
  put_varint(blob, 4);  // max_rank
  put_varint(blob, 2);  // partitions
  put_varint(blob, 1);  // length 1
  put_varint(blob, 2);  // two entries
  put_varint(blob, 3);  // {3}
  put_varint(blob, 7);  //   freq 7
  put_varint(blob, 4);  // {4}
  put_varint(blob, 2);  //   freq 2
  put_varint(blob, 2);  // length 2
  put_varint(blob, 1);  // one entry
  put_varint(blob, 1);  // {1, 2}: gap-coded 1, 1
  put_varint(blob, 1);
  put_varint(blob, 5);  //   freq 5

  const auto plt = decode_plt(blob);
  EXPECT_EQ(plt.max_rank(), 4u);
  std::size_t entries = 0;
  Count mass = 0;
  plt.for_each([&](core::Plt::Ref, std::span<const Pos>,
                   const core::Partition::Entry& e) {
    ++entries;
    mass += e.freq;
  });
  EXPECT_EQ(entries, 3u);
  EXPECT_EQ(mass, 14u);

  // And the index/OOC path accepts it too.
  const auto index = build_index(blob);
  EXPECT_EQ(index.max_rank, 4u);
}

// ---- atomic blob file writes --------------------------------------------

TEST_F(Checkpoint, BlobFileRoundTrip) {
  const auto w = sample_workload();
  const std::string path = temp_path("blob.plt");
  write_blob_file(w.blob, path);
  EXPECT_EQ(read_blob_file(path), w.blob);
  std::remove(path.c_str());
}

TEST_F(Checkpoint, CrashBeforeRenameLeavesPreviousBlobIntact) {
  const auto w = sample_workload();
  const std::string path = temp_path("atomic.plt");
  write_blob_file(w.blob, path);

  // A "crash" between fsync and rename must leave the destination exactly
  // as it was; only the temp file is abandoned.
  FailpointRegistry::instance().arm("blob.write_file", {});
  const std::vector<std::uint8_t> other(100, 0xAB);
  EXPECT_THROW(write_blob_file(other, path), InjectedFault);
  FailpointRegistry::instance().disarm("blob.write_file");

  EXPECT_EQ(read_blob_file(path), w.blob);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace plt::compress
