// Observability layer (S23): the golden-trace suite plus the invariants the
// tracing design promises — strict span nesting, monotone counters, a
// merged tree that is byte-identical across kernel backends and thread
// counts, trace-on/trace-off mining output equality, and well-formed traces
// on every resilience path (cancel, deadline, budget, failpoint crash +
// checkpoint resume).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "kernels/kernels.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"
#include "util/failpoint.hpp"

#ifndef PLT_OBS_GOLDEN_DIR
#define PLT_OBS_GOLDEN_DIR "."
#endif

namespace plt::obs {
namespace {

using namespace std::chrono_literals;

// Chess-like data needs high support to stay tractable: at 25% support the
// itemset lattice explodes combinatorially. kDenseMinsup is 80% of the 120
// transactions, matching the scale the parallel tests use.
constexpr Count kDenseMinsup = 96;

tdb::Database dense_workload() {
  datagen::DenseConfig cfg = datagen::chess_like(120, 5);
  return datagen::generate_dense(cfg);
}

tdb::Database sparse_workload() {
  datagen::QuestConfig cfg;
  cfg.transactions = 250;
  cfg.items = 40;
  cfg.seed = 9;
  return datagen::generate_quest(cfg);
}

std::string masked_json(const TraceNode& root) {
  TraceExportOptions options;
  options.mask_durations = true;
  return to_json(root, options);
}

// Compares against tests/golden/<name>; PLT_UPDATE_GOLDEN=1 rewrites the
// file instead (run the test binary once with it set after an intentional
// trace-shape change, then commit the diff).
void expect_matches_golden(const std::string& actual, const char* name) {
  const std::string path = std::string(PLT_OBS_GOLDEN_DIR) + "/" + name;
  if (std::getenv("PLT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out) << "cannot write golden " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — regenerate with PLT_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "trace shape drifted from " << path
      << " (PLT_UPDATE_GOLDEN=1 rewrites it if the change is intended)";
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !PLT_OBS_ENABLED
    GTEST_SKIP() << "observability layer compiled out (-DPLT_OBS=OFF)";
#endif
    FailpointRegistry::instance().disarm_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    FailpointRegistry::instance().disarm_all();
    kernels::select_backend("auto");
  }
};

TEST_F(ObsTest, SpanTreeAggregationAndQueries) {
  TraceSession session;
  {
    PLT_SPAN("outer");
    PLT_TRACE_COUNT("ticks", 2);
    {
      PLT_SPAN("inner");
      PLT_TRACE_COUNT("ticks", 3);
    }
    {
      PLT_SPAN("inner");
    }
  }
  const auto root = session.finish();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "trace");

  const TraceNode* outer = root->child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->counter("ticks"), 2u);

  const TraceNode* inner = root->descendant("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  EXPECT_EQ(inner->counter("ticks"), 3u);

  EXPECT_EQ(root->counter_total("ticks"), 5u);
  EXPECT_EQ(root->span_total(), 1u + 2u);  // outer + 2x inner; synthetic
                                           // root carries count 0
  EXPECT_EQ(root->child("absent"), nullptr);
  EXPECT_EQ(root->descendant("outer/absent"), nullptr);
  EXPECT_EQ(root->counter("absent"), 0u);
}

TEST_F(ObsTest, ExportsMaskedAndUnmasked) {
  TraceSession session;
  {
    PLT_SPAN("phase");
    PLT_TRACE_COUNT("work", 7);
  }
  const auto root = session.finish();
  ASSERT_NE(root, nullptr);

  const std::string masked = masked_json(*root);
  EXPECT_NE(masked.find("\"masked\": true"), std::string::npos);
  EXPECT_NE(masked.find("\"phase\""), std::string::npos);
  EXPECT_NE(masked.find("\"work\": 7"), std::string::npos);
  EXPECT_EQ(masked.find("\"ns\""), std::string::npos);
  EXPECT_EQ(masked.find("\"backend\""), std::string::npos);

  TraceExportOptions options;
  options.backend = "scalar";
  const std::string full = to_json(*root, options);
  EXPECT_NE(full.find("\"masked\": false"), std::string::npos);
  EXPECT_NE(full.find("\"ns\""), std::string::npos);
  EXPECT_NE(full.find("\"backend\": \"scalar\""), std::string::npos);

  const std::string folded = to_folded(*root, /*mask_durations=*/true);
  EXPECT_NE(folded.find("trace;phase 1"), std::string::npos);
}

TEST_F(ObsTest, HealthReportsBalancedNesting) {
  TraceSession session;
  {
    PLT_SPAN("a");
    {
      PLT_SPAN("b");
    }
  }
  const TraceHealth health = session.collector().health();
  EXPECT_EQ(health.threads, 1u);
  EXPECT_EQ(health.unbalanced_exits, 0u);
  EXPECT_EQ(health.open_spans, 0u);
  EXPECT_EQ(health.dropped_events, 0u);

  const auto events = session.collector().thread_events();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].size(), 4u);  // enter a, enter b, exit b, exit a
  EXPECT_TRUE(events[0][0].enter);
  EXPECT_STREQ(events[0][1].name, "b");
  EXPECT_FALSE(events[0][2].enter);
  session.finish();
}

// The tentpole pin: mining the paper's Table 1 produces this exact span
// tree — names, nesting, span counts, counters — on the scalar AND the SIMD
// backends. Durations are masked; everything else is byte-compared.
TEST_F(ObsTest, GoldenTraceTable1Conditional) {
  const auto db = testing::paper_table1();
  for (const char* backend : {"scalar", "simd"}) {
    SCOPED_TRACE(backend);
    core::MineOptions options;
    options.kernel_backend = backend;
    const auto result =
        core::mine(db, 2, core::Algorithm::kPltConditional, options);
    ASSERT_NE(result.trace, nullptr);
    expect_matches_golden(masked_json(*result.trace),
                          "trace_table1_conditional.json");
  }
}

TEST_F(ObsTest, GoldenTraceTable1TopDown) {
  const auto db = testing::paper_table1();
  for (const char* backend : {"scalar", "simd"}) {
    SCOPED_TRACE(backend);
    core::MineOptions options;
    options.kernel_backend = backend;
    const auto result =
        core::mine(db, 2, core::Algorithm::kPltTopDownCanonical, options);
    ASSERT_NE(result.trace, nullptr);
    expect_matches_golden(masked_json(*result.trace),
                          "trace_table1_topdown.json");
  }
}

// Some baselines (e.g. the partition miner) re-enter core::mine() per
// chunk, on worker threads: their traces legitimately hold several "mine"
// spans and accumulate itemsets-total across the inner runs, so the checks
// are lower bounds; the golden tests above pin the exact single-pass shape.
TEST_F(ObsTest, EveryAlgorithmProducesARootedTrace) {
  const auto db = testing::paper_table1();
  for (const core::Algorithm algorithm : core::all_algorithms()) {
    SCOPED_TRACE(core::algorithm_name(algorithm));
    const auto result = core::mine(db, 2, algorithm);
    ASSERT_NE(result.trace, nullptr);
    const TraceNode* mine = result.trace->child("mine");
    ASSERT_NE(mine, nullptr);
    EXPECT_GE(mine->count, 1u);
    const TraceNode* algo = mine->child(core::algorithm_name(algorithm));
    ASSERT_NE(algo, nullptr);
    EXPECT_GE(algo->count, 1u);
    EXPECT_GE(result.trace->counter_total("status.completed"), 1u);
    EXPECT_GE(result.trace->counter_total("itemsets-total"),
              result.itemsets.size());
  }
}

// Counters never reset within a session: mining twice under one session
// yields exactly twice every span count and counter of a single mine.
TEST_F(ObsTest, CountersAreMonotoneAcrossMines) {
  const auto db = dense_workload();

  const auto once = core::mine(db, kDenseMinsup, core::Algorithm::kPltConditional);
  ASSERT_NE(once.trace, nullptr);

  TraceSession session;
  (void)core::mine(db, kDenseMinsup, core::Algorithm::kPltConditional);
  (void)core::mine(db, kDenseMinsup, core::Algorithm::kPltConditional);
  const auto twice = session.finish();
  ASSERT_NE(twice, nullptr);

  const TraceNode* mine1 = once.trace->child("mine");
  const TraceNode* mine2 = twice->child("mine");
  ASSERT_NE(mine1, nullptr);
  ASSERT_NE(mine2, nullptr);
  EXPECT_EQ(mine2->count, 2 * mine1->count);
  for (const char* counter :
       {"ranks-processed", "entries-projected", "itemsets-emitted",
        "itemsets-total", "kernel.peel_prefixes.calls",
        "kernel.peel_prefixes.bytes"}) {
    SCOPED_TRACE(counter);
    EXPECT_EQ(twice->counter_total(counter),
              2 * once.trace->counter_total(counter));
  }
}

TEST_F(ObsTest, OuterSessionTakesPrecedenceOverFacade) {
  const auto db = testing::paper_table1();
  TraceSession session;
  const auto result = core::mine(db, 2, core::Algorithm::kPltConditional);
  // The facade's AutoSession stood down: the outer session owns the tree.
  EXPECT_EQ(result.trace, nullptr);
  const auto root = session.finish();
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->child("mine"), nullptr);
}

TEST_F(ObsTest, RuntimeOffRecordsNothing) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  EXPECT_EQ(current_thread_trace(), nullptr);
  const auto result = core::mine(testing::paper_table1(), 2,
                                 core::Algorithm::kPltConditional);
  EXPECT_EQ(result.trace, nullptr);
}

// The merged tree is identical for 1, 4 and 8 worker threads: every rank is
// mined exactly once whichever worker claims it, merge sums commute, and
// scheduling artifacts (steals) are deliberately not traced.
TEST_F(ObsTest, ParallelTraceIsThreadCountInvariant) {
  const auto db = sparse_workload();
  std::vector<std::string> exports;
  core::FrequentItemsets reference;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    parallel::ParallelOptions options;
    options.threads = threads;
    auto result = parallel::mine_parallel(db, 3, options);
    ASSERT_NE(result.trace, nullptr);
    // Worker spans land top-level in the merged tree (workers have no
    // cross-thread parent); exactly one "mine-rank" span ran per rank.
    const TraceNode* ranks = result.trace->child("mine-rank");
    ASSERT_NE(ranks, nullptr);
    const TraceNode* partitions =
        result.trace->descendant("mine-parallel/build-partitions");
    ASSERT_NE(partitions, nullptr);
    EXPECT_EQ(ranks->count, partitions->counter("partitions"));
    exports.push_back(masked_json(*result.trace));
    if (threads == 1)
      reference = result.itemsets;
    else
      testing::expect_same_itemsets(reference, result.itemsets, "threads");
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
}

// Tracing must be a pure observer: enabling it cannot change what is mined
// or the order it is emitted in, on either sweep generator family.
TEST_F(ObsTest, TracingDoesNotChangeMiningOutput) {
  const struct {
    const char* label;
    tdb::Database db;
    Count minsup;
  } generators[] = {
      {"dense", dense_workload(), kDenseMinsup},
      {"sparse", sparse_workload(), 3},
  };
  for (const auto& g : generators) {
    for (const core::Algorithm algorithm :
         {core::Algorithm::kPltConditional,
          core::Algorithm::kPltTopDownSweep}) {
      SCOPED_TRACE(std::string(g.label) + "/" +
                   core::algorithm_name(algorithm));
      set_enabled(false);
      const auto off = core::mine(g.db, g.minsup, algorithm);
      EXPECT_EQ(off.trace, nullptr);
      set_enabled(true);
      const auto on = core::mine(g.db, g.minsup, algorithm);
      ASSERT_NE(on.trace, nullptr);
      // Byte-identical, not just set-equal: same itemsets, same order.
      EXPECT_TRUE(
          core::FrequentItemsets::equal(off.itemsets, on.itemsets));
    }
  }
}

TEST_F(ObsTest, KernelCountersAreBackendInvariant) {
  const auto db = dense_workload();
  std::uint64_t scalar_calls = 0, scalar_bytes = 0;
  for (const char* backend : {"scalar", "simd"}) {
    SCOPED_TRACE(backend);
    core::MineOptions options;
    options.kernel_backend = backend;
    const auto result =
        core::mine(db, kDenseMinsup, core::Algorithm::kPltConditional, options);
    ASSERT_NE(result.trace, nullptr);
    const std::uint64_t calls =
        result.trace->counter_total("kernel.peel_prefixes.calls");
    const std::uint64_t bytes =
        result.trace->counter_total("kernel.peel_prefixes.bytes");
    EXPECT_GT(calls, 0u);
    EXPECT_GT(bytes, 0u);
    if (std::string(backend) == "scalar") {
      scalar_calls = calls;
      scalar_bytes = bytes;
    } else {
      EXPECT_EQ(calls, scalar_calls);
      EXPECT_EQ(bytes, scalar_bytes);
    }
  }
}

// ---- resilience paths: traces stay well-formed when mining stops early --

void expect_clean_stop(const core::MiningControl& control,
                       core::MineStatus expected_status,
                       const char* expected_counter) {
  const auto db = sparse_workload();
  core::MineOptions options;
  options.control = &control;
  TraceSession session;
  const auto result =
      core::mine(db, 2, core::Algorithm::kPltConditional, options);
  EXPECT_EQ(result.status, expected_status);
  const TraceHealth health = session.collector().health();
  EXPECT_EQ(health.unbalanced_exits, 0u);
  EXPECT_EQ(health.open_spans, 0u);
  const auto root = session.finish();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->counter_total(expected_counter), 1u)
      << masked_json(*root);
}

TEST_F(ObsTest, CancelledMineTraceIsWellFormed) {
  core::MiningControl control;
  control.request_cancel();
  expect_clean_stop(control, core::MineStatus::kCancelled,
                    "status.cancelled");
}

TEST_F(ObsTest, DeadlineMineTraceIsWellFormed) {
  const core::MiningControl control = core::MiningControl::with_deadline(0ns);
  expect_clean_stop(control, core::MineStatus::kDeadlineExceeded,
                    "status.deadline-exceeded");
}

TEST_F(ObsTest, BudgetMineTraceIsWellFormed) {
  core::MiningControl control;
  control.set_memory_budget(1);
  expect_clean_stop(control, core::MineStatus::kBudgetExceeded,
                    "status.budget-exceeded");
}

TEST_F(ObsTest, OocCrashAndResumeTracesAreWellFormed) {
  const auto built = core::build_from_database(sparse_workload(), 3);
  const auto blob = compress::encode_plt(built.plt);
  std::vector<Item> item_of(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    item_of[r - 1] = built.view.item_of(r);
  const auto sink = [](std::span<const Item>, Count) {};
  const std::string path =
      (std::string(::testing::TempDir()) + "/obs_resume.pltk");

  // Crash mid-walk: the injected fault unwinds through the facade; the
  // per-call session must be torn down with it.
  {
    FailpointRegistry::Spec spec;
    spec.mode = FailpointRegistry::Mode::kOneShot;
    spec.n = 4;
    FailpointRegistry::instance().arm("ooc.rank", spec);
    compress::OocOptions options;
    options.checkpoint_path = path;
    EXPECT_THROW(compress::mine_from_blob(blob, item_of, 3, sink, nullptr,
                                          options),
                 InjectedFault);
    FailpointRegistry::instance().disarm("ooc.rank");
    EXPECT_FALSE(session_active());
  }

  // Resume: the trace must carry the warm-replay span, the resumed-rank
  // count, the checkpoint spans and the streaming byte counter.
  compress::OocOptions options;
  options.checkpoint_path = path;
  compress::OocStats stats;
  const auto status =
      compress::mine_from_blob(blob, item_of, 3, sink, &stats, options);
  EXPECT_EQ(status, core::MineStatus::kCompleted);
  ASSERT_NE(stats.trace, nullptr);
  const TraceNode* ooc = stats.trace->child("ooc-mine");
  ASSERT_NE(ooc, nullptr);
  ASSERT_NE(ooc->child("ooc-resume"), nullptr);
  EXPECT_EQ(ooc->child("ooc-resume")->counter("resumed-ranks"),
            stats.resumed_ranks);
  EXPECT_GT(stats.trace->counter_total("ranks"), 0u);
  EXPECT_GT(stats.trace->counter_total("bytes-decoded"), 0u);
  const TraceNode* checkpoint = ooc->child("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  EXPECT_EQ(checkpoint->count, stats.trace->counter_total("ranks"));
  std::remove(path.c_str());
}

// ---- latency histogram ---------------------------------------------------
// Independent of the runtime tracing switch: histograms live in stats
// structs (ParallelResult, ShardReport, bench JSON), never in golden
// traces, so they must work with tracing disabled too.

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_index((std::uint64_t{1} << 20) - 1),
            19u);
  EXPECT_EQ(LatencyHistogram::bucket_index(std::uint64_t{1} << 20), 20u);
  EXPECT_EQ(LatencyHistogram::bucket_index(
                std::numeric_limits<std::uint64_t>::max()),
            63u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(1), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_floor_ns(20), std::uint64_t{1} << 20);
}

TEST(LatencyHistogramTest, RecordsCountSumAndPercentileBounds) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0u);  // empty
  h.record(1);
  h.record(10);
  h.record(100);
  h.record(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 1111u);
  EXPECT_EQ(h.bucket(LatencyHistogram::bucket_index(10)), 1u);
  // Quantiles are bucket upper bounds, not exact order statistics.
  EXPECT_EQ(h.percentile_ns(0.0), 1u);     // bucket [0,2)
  EXPECT_EQ(h.percentile_ns(1.0), 1023u);  // bucket [512,1024)
  EXPECT_GE(h.percentile_ns(0.5), 10u);
  EXPECT_LE(h.percentile_ns(0.5), 15u);  // bucket [8,16)
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets), 0u);  // out of range
}

TEST(LatencyHistogramTest, PercentileHonorsDocumentedErrorBound) {
  // percentile(q) is the SLO accessor plt-serve and bench_serve report:
  // the inclusive upper bound 2^(i+1)-1 of the log2 bucket holding the
  // q-th order statistic, so result/2 < v <= result and the reported
  // quantile never underestimates the true one.
  LatencyHistogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);

  std::vector<std::uint64_t> samples;
  LatencyHistogram h;
  for (std::uint64_t v : {1u, 3u, 9u, 27u, 81u, 243u, 729u, 2187u, 6561u,
                          19683u}) {
    samples.push_back(v);
    h.record(v);
  }
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    // The true q-th order statistic with the same index convention the
    // histogram uses (ceil(q * count), 1-based, clamped).
    auto index = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    index = std::min(std::max<std::size_t>(index, 1), samples.size()) - 1;
    const std::uint64_t truth = samples[index];
    const std::uint64_t reported = h.percentile(q);
    EXPECT_GE(reported, truth) << "q=" << q;          // never underestimates
    EXPECT_LT(reported / 2, truth) << "q=" << q;      // within 2x
    EXPECT_EQ(reported, h.percentile_ns(q)) << "q=" << q;  // same accessor
  }

  // Bucket 0 is exact up to the 1ns resolution: only 0 and 1 land there.
  LatencyHistogram zeros;
  zeros.record(0);
  zeros.record(1);
  EXPECT_EQ(zeros.percentile(1.0), 1u);

  // Merged histograms answer percentile queries over the union.
  LatencyHistogram fast, slow;
  for (int i = 0; i < 99; ++i) fast.record(100);   // bucket [64,128)
  slow.record(1u << 20);                           // one outlier
  fast.merge(slow);
  EXPECT_LE(fast.percentile(0.50), 127u);
  EXPECT_LE(fast.percentile(0.98), 127u);
  EXPECT_GT(fast.percentile(1.0), 1u << 20);
}

TEST(LatencyHistogramTest, MergeIsOrderFree) {
  LatencyHistogram a;
  a.record(5);
  a.record(500);
  LatencyHistogram b;
  b.record(7);
  b.record(70000);

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), 4u);
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

TEST(LatencyHistogramTest, RecordSecondsClampsAndScales) {
  LatencyHistogram h;
  h.record_seconds(-1.0);   // clamps to 0 ns
  h.record_seconds(1e-9);   // 1 ns: still bucket 0
  h.record_seconds(2e-9);   // 2 ns: bucket 1
  h.record_seconds(1e300);  // saturates at the top bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(LatencyHistogram::kBuckets - 1), 1u);
}

TEST(LatencyHistogramTest, JsonListsOnlyOccupiedBucketsByteStably) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.to_json(), "{\"count\":0,\"sum_ns\":0,\"buckets\":[]}");

  LatencyHistogram h;
  h.record(0);
  h.record(1);
  h.record(16);
  EXPECT_EQ(h.to_json(),
            "{\"count\":3,\"sum_ns\":17,\"buckets\":["
            "{\"floor_ns\":0,\"count\":2},{\"floor_ns\":16,\"count\":1}]}");
}

TEST(LatencyHistogramTest, ParallelMinerRecordsOneLatencyPerRank) {
  LatencyHistogram latency;
  parallel::ParallelOptions options;
  options.threads = 3;
  options.rank_latency = &latency;
  const auto result =
      parallel::mine_parallel(plt::testing::paper_table1(), 2, options);
  EXPECT_EQ(result.itemsets.size(), 13u);
  // One observation per mined rank (Table 1 keeps 4 ranks at minsup 2),
  // merged deterministically from the per-worker histograms.
  EXPECT_EQ(latency.count(), 4u);
}

}  // namespace
}  // namespace plt::obs
