// Structural validation (DESIGN.md S24): a sound PLT passes every
// paper-invariant check, a corrupted one is rejected with a diagnostic
// naming the violated invariant, and the PLT_VALIDATE hooks in the
// parallel / OOC / codec paths run the checks without changing results.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "core/validate.hpp"
#include "datagen/quest.hpp"
#include "parallel/parallel_build.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"
#include "util/failpoint.hpp"

#include <filesystem>

namespace plt::core {
namespace {

/// Enables validation for one scope and always restores "disabled", so no
/// test leaks the global toggle into its neighbours.
class ValidationOn {
 public:
  ValidationOn() { set_validation_enabled(true); }
  ~ValidationOn() { set_validation_enabled(false); }
};

tdb::Database quest_db(std::uint64_t seed = 7) {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 40;
  cfg.seed = seed;
  return datagen::generate_quest(cfg);
}

TEST(Validate, SoundPltPasses) {
  const auto built = build_from_database(plt::testing::paper_table1(), 2);
  const ValidationReport report = validate(built.plt);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.vectors_checked, 0u);
  EXPECT_GT(report.nodes_checked, 0u);
  EXPECT_EQ(report.to_string(), "");
}

TEST(Validate, PrefixClosedBuildPassesMonotonicity) {
  BuildOptions build;
  build.insert_prefixes = true;
  const auto built = build_from_database(quest_db(), 3,
                                         tdb::ItemOrder::kById, build);
  ValidateOptions options;
  options.expect_prefix_closed = true;
  const ValidationReport report = validate(built.plt, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Validate, EmptyPltPasses) {
  const Plt plt(5);
  EXPECT_TRUE(validate(plt).ok());
}

TEST(Validate, CorruptedStoredSumRejected) {
  auto built = build_from_database(plt::testing::paper_table1(), 2);
  // Break Lemma 4.1.1: the stored sum no longer equals Σ positions. The
  // same corruption desynchronizes the sum index (Definition 4.1.3).
  ASSERT_FALSE(built.plt.bucket(built.plt.max_rank()).empty());
  const Plt::Ref ref = built.plt.bucket(built.plt.max_rank()).front();
  built.plt.entry(ref).sum -= 1;
  const ValidationReport report = validate(built.plt);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("sum"), std::string::npos)
      << report.to_string();
  EXPECT_THROW(validate_or_throw(built.plt, "test"), ValidationError);
}

TEST(Validate, CorruptedArenaOffsetRejected) {
  auto built = build_from_database(plt::testing::paper_table1(), 2);
  Partition* partition = nullptr;
  for (std::uint32_t k = built.plt.max_len(); k >= 1; --k)
    if (built.plt.partition(k) != nullptr &&
        !built.plt.partition(k)->empty()) {
      partition = built.plt.partition(k);
      break;
    }
  ASSERT_NE(partition, nullptr);
  // Entries must tile the arena contiguously (offset == id * k); shifting
  // one breaks the layout and must be rejected, not walked out of bounds.
  partition->entry(0).offset += 1;
  EXPECT_FALSE(validate(built.plt).ok());
}

TEST(Validate, BrokenSupportMonotonicityRejected) {
  BuildOptions build;
  build.insert_prefixes = true;
  auto built = build_from_database(plt::testing::paper_table1(), 2,
                                   tdb::ItemOrder::kById, build);
  // Inflate the frequency of some length-2 vector far above its length-1
  // prefix: legal for a conditional table, a lie for a prefix-closed one.
  ASSERT_NE(built.plt.partition(2), nullptr);
  ASSERT_FALSE(built.plt.partition(2)->empty());
  built.plt.partition(2)->entry(0).freq += 1000000;
  ValidateOptions options;
  options.expect_prefix_closed = true;
  EXPECT_FALSE(validate(built.plt, options).ok());
  // Without the prefix-closed claim the same table is structurally fine.
  EXPECT_TRUE(validate(built.plt).ok());
}

TEST(Validate, StandalonePartitionChecks) {
  Partition partition(2);
  partition.add(std::vector<Pos>{1, 2}, 3);
  partition.add(std::vector<Pos>{2, 1}, 1);
  EXPECT_TRUE(validate(partition, /*max_rank=*/4).ok());
  // Lemma 4.1.2 upper bound: sum 3 exceeds a max_rank of 2.
  EXPECT_FALSE(validate(partition, /*max_rank=*/2).ok());
  // Unknown alphabet (max_rank 0) skips only the upper bound.
  EXPECT_TRUE(validate(partition, /*max_rank=*/0).ok());
  partition.entry(1).sum = 77;
  EXPECT_FALSE(validate(partition, /*max_rank=*/4).ok());
}

TEST(Validate, EnabledToggleOverridesEnv) {
  set_validation_enabled(true);
  EXPECT_TRUE(validation_enabled());
  set_validation_enabled(false);
  EXPECT_FALSE(validation_enabled());
}

// --- hook coverage: the mining paths run their validation under the
// toggle and still produce the reference results ------------------------

TEST(Validate, SerialMineValidatesUnderToggle) {
  const ValidationOn guard;
  const auto db = quest_db(11);
  const auto result = mine(db, 3, Algorithm::kPltConditional);
  const auto reference = mine(db, 3, Algorithm::kApriori);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "validated serial mine");
}

TEST(Validate, ParallelMineValidatesEveryCd) {
  const auto db = quest_db(12);
  const auto reference = mine(db, 3, Algorithm::kPltConditional);
  const ValidationOn guard;
  parallel::ParallelOptions options;
  options.threads = 4;
  const auto result = parallel::mine_parallel(db, 3, options);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "validated parallel mine");
}

TEST(Validate, ParallelBuildValidatesMergedTree) {
  const auto db = quest_db(13);
  const auto built = core::build_from_database(db, 1);
  const ValidationOn guard;
  parallel::BuildOptions options;
  options.threads = 4;
  const Plt parallel_plt = parallel::build_plt_parallel(
      built.view.db, built.view.alphabet(), options);
  EXPECT_TRUE(validate(parallel_plt).ok());
  EXPECT_EQ(parallel_plt.num_vectors(), built.plt.num_vectors());
}

TEST(Validate, CodecRoundTripValidatesDecodedTree) {
  const ValidationOn guard;
  const auto built = build_from_database(quest_db(14), 2);
  const auto blob = compress::encode_plt(built.plt);
  const Plt decoded = compress::decode_plt(blob);
  EXPECT_EQ(decoded.num_vectors(), built.plt.num_vectors());
  EXPECT_EQ(decoded.total_freq(), built.plt.total_freq());
}

TEST(Validate, OocResumeValidatesConditionals) {
  FailpointRegistry::instance().disarm_all();
  const auto db = quest_db(15);
  const auto built = core::build_from_database(db, 3);
  ASSERT_GT(built.view.alphabet(), 0u);
  const auto blob = compress::encode_plt(built.plt);
  std::vector<Item> item_of(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    item_of[r - 1] = built.view.item_of(r);

  FrequentItemsets reference;
  compress::mine_from_blob(blob, item_of, 3, collect_into(reference));

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "validate_resume.pltk")
          .string();
  const ValidationOn guard;
  {
    // Crash a few ranks in, leaving a partial checkpoint behind.
    FailpointRegistry::Spec spec;
    spec.mode = FailpointRegistry::Mode::kOneShot;
    spec.n = 3;
    FailpointRegistry::instance().arm("ooc.rank", spec);
    compress::OocOptions options;
    options.checkpoint_path = path;
    FrequentItemsets partial;
    EXPECT_THROW(compress::mine_from_blob(blob, item_of, 3,
                                          collect_into(partial), nullptr,
                                          options),
                 InjectedFault);
    FailpointRegistry::instance().disarm_all();
  }
  // The resumed run re-derives every conditional PLT under validation.
  compress::OocOptions options;
  options.checkpoint_path = path;
  compress::OocStats stats;
  FrequentItemsets resumed;
  compress::mine_from_blob(blob, item_of, 3, collect_into(resumed), &stats,
                           options);
  EXPECT_GT(stats.resumed_ranks, 0u);
  plt::testing::expect_same_itemsets(resumed, reference,
                                     "validated OOC resume");
  std::filesystem::remove(path);
}

TEST(Validate, HookRejectsCorruptionInsteadOfMining) {
  // End-to-end proof the hook is live: a corrupted PLT fed to the decoder
  // path through validate_or_throw surfaces ValidationError, not garbage.
  auto built = build_from_database(plt::testing::paper_table1(), 2);
  const Plt::Ref ref = built.plt.bucket(built.plt.max_rank()).front();
  built.plt.entry(ref).sum -= 1;
  const ValidationOn guard;
  EXPECT_THROW(maybe_validate(built.plt, "corrupted"), ValidationError);
  set_validation_enabled(false);
  EXPECT_NO_THROW(maybe_validate(built.plt, "corrupted"));
}

}  // namespace
}  // namespace plt::core
