// Unit tests for src/util: rng, timer, table, args, memory, thread pool, log.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <sstream>

#include "util/args.hpp"
#include "util/log.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace plt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_below(10);
    ASSERT_LT(v, 10u);
    seen[v]++;
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  for (const auto& [value, count] : seen) EXPECT_GT(count, 700) << value;
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  // Degenerate interval.
  EXPECT_EQ(rng.next_in(42, 42), 42);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(11);
  for (const double mean : {0.5, 3.0, 10.0, 50.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
      sum += static_cast<double>(rng.next_poisson(mean));
    const double observed = sum / n;
    EXPECT_NEAR(observed, mean, std::max(0.15, mean * 0.05)) << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, JumpProducesIndependentStream) {
  Rng a(23);
  Rng b(23);
  b.jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1000.0 - 1e-9);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(1.5), "1.500 s");
  EXPECT_EQ(format_duration(0.0015), "1.50 ms");
  EXPECT_EQ(format_duration(15e-6), "15.00 us");
  EXPECT_EQ(format_duration(5e-9), "5 ns");
}

TEST(Memory, RssReadable) {
  // On Linux these should be nonzero for a live process.
  EXPECT_GT(current_rss_bytes(), 0u);
  EXPECT_GE(peak_rss_bytes(), current_rss_bytes() / 2);
}

TEST(Memory, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(Table, AlignedTextOutput) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Args, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",       "--alpha=1", "--beta", "2",
                        "positional", "--gamma"};
  Args args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 1);
  EXPECT_EQ(args.get_int("beta", 0), 2);
  EXPECT_TRUE(args.get_bool("gamma", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.get("alpha", ""), "1");
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 1.0);
  EXPECT_EQ(args.get_int("absent", -7), -7);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i)
    pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Log, RespectsLevelThreshold) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  log_info() << "this should be dropped silently";
  set_log_level(before);
  SUCCEED();
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(3.5), "3.5");
  EXPECT_EQ(format_number(12.0), "12");
}

}  // namespace
}  // namespace plt
