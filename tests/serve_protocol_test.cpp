// Protocol-fuzz suite for plt-serve (DESIGN.md S27): unit coverage of the
// frame codec plus adversarial wire-level tests against a live in-process
// daemon — truncated frames, oversized lengths, bad magic/version,
// mid-request disconnects and slow-loris partial writes must produce typed
// errors or clean closes, never a crash. Failpoint-injected short
// reads/writes exercise the resumption paths, and the "serve.deadline"
// failpoint pins the typed-DEADLINE contract deterministically.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "core/subset_check.hpp"
#include "serve/protocol.hpp"
#include "serve_test_support.hpp"
#include "util/failpoint.hpp"

namespace plt::serve {
namespace {

using plt::testing::TestServer;
using plt::testing::write_table1_blob;

Request support_request(std::vector<Rank> ranks, std::uint32_t id = 7,
                        std::uint32_t deadline_ms = 0) {
  Request request;
  request.opcode = Opcode::kSupport;
  request.request_id = id;
  request.deadline_ms = deadline_ms;
  request.ranks = std::move(ranks);
  return request;
}

Status decode_frame(const std::vector<std::uint8_t>& frame, Request& out) {
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(try_frame(frame, kDefaultMaxFrame, payload, consumed),
            FrameResult::kFrame);
  EXPECT_EQ(consumed, frame.size());
  return decode_request(payload, out);
}

// ---- pure codec tests ----

TEST(ServeProtocol, RequestRoundTripEveryOpcode) {
  for (std::uint8_t op = 0; op < kOpcodeCount; ++op) {
    Request request;
    request.opcode = static_cast<Opcode>(op);
    request.blob_id = 3;
    request.request_id = 0xDEADBEEF;
    request.deadline_ms = 250;
    if (request.opcode == Opcode::kSupport ||
        request.opcode == Opcode::kMembership ||
        request.opcode == Opcode::kRule)
      request.ranks = {1, 4, 9};
    if (request.opcode == Opcode::kRule) request.consequent = 12;
    if (request.opcode == Opcode::kTopK) request.k = 17;

    Request decoded;
    ASSERT_EQ(decode_frame(encode_request(request), decoded), Status::kOk)
        << "opcode " << int{op};
    EXPECT_EQ(decoded.opcode, request.opcode);
    EXPECT_EQ(decoded.blob_id, request.blob_id);
    EXPECT_EQ(decoded.request_id, request.request_id);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
    if (request.opcode == Opcode::kSupport ||
        request.opcode == Opcode::kMembership ||
        request.opcode == Opcode::kRule)
      EXPECT_EQ(decoded.ranks, request.ranks);
    EXPECT_EQ(decoded.consequent, request.consequent);
    EXPECT_EQ(decoded.k, request.k);
  }
}

TEST(ServeProtocol, ResponseRoundTrip) {
  Response response;
  response.opcode = Opcode::kRule;
  response.request_id = 42;
  response.support = 4;
  response.antecedent_support = 5;
  response.confidence_ppm = 800000;
  const auto frame = encode_response(response);
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  ASSERT_EQ(try_frame(frame, kDefaultMaxFrame, payload, consumed),
            FrameResult::kFrame);
  Response decoded;
  ASSERT_TRUE(decode_response(payload, decoded));
  EXPECT_EQ(decoded.support, 4u);
  EXPECT_EQ(decoded.antecedent_support, 5u);
  EXPECT_EQ(decoded.confidence_ppm, 800000u);

  Response error;
  error.opcode = Opcode::kSupport;
  error.request_id = 9;
  error.status = Status::kUnknownBlob;
  error.detail = "blob_id not loaded";
  const auto error_frame = encode_response(error);
  ASSERT_EQ(try_frame(error_frame, kDefaultMaxFrame, payload, consumed),
            FrameResult::kFrame);
  ASSERT_TRUE(decode_response(payload, decoded));
  EXPECT_EQ(decoded.status, Status::kUnknownBlob);
  EXPECT_EQ(decoded.detail, "blob_id not loaded");
}

TEST(ServeProtocol, TryFrameNeedsEveryPrefixByte) {
  const auto frame = encode_request(support_request({2, 3}));
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(try_frame(std::span(frame).first(n), kDefaultMaxFrame, payload,
                        consumed),
              FrameResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  EXPECT_EQ(try_frame(frame, kDefaultMaxFrame, payload, consumed),
            FrameResult::kFrame);
}

TEST(ServeProtocol, TryFrameRejectsOversizedLength) {
  std::vector<std::uint8_t> frame = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB
  std::span<const std::uint8_t> payload;
  std::size_t consumed = 0;
  EXPECT_EQ(try_frame(frame, kDefaultMaxFrame, payload, consumed),
            FrameResult::kTooLarge);
}

TEST(ServeProtocol, DecodeRequestTypedErrors) {
  Request out;
  // Bad magic.
  auto frame = encode_request(support_request({1}));
  frame[4] = 'X';
  EXPECT_EQ(decode_frame(frame, out), Status::kBadMagic);
  // Bad version.
  frame = encode_request(support_request({1}));
  frame[4 + 4] = 99;
  EXPECT_EQ(decode_frame(frame, out), Status::kBadVersion);
  // Bad opcode.
  frame = encode_request(support_request({1}));
  frame[4 + 5] = 99;
  EXPECT_EQ(decode_frame(frame, out), Status::kBadOpcode);
  // Truncated body: itemset declares 3 ranks but carries 1.
  frame = encode_request(support_request({1}));
  frame[4 + 16] = 3;  // count lives right after the 16-byte header
  EXPECT_EQ(decode_frame(frame, out), Status::kMalformedBody);
  // Non-increasing ranks.
  {
    Request bad = support_request({1, 2});
    auto encoded = encode_request(bad);
    // Overwrite the second rank (offset 4+16+2+4) with the first's value.
    for (int i = 0; i < 4; ++i)
      encoded[4 + 16 + 2 + 4 + static_cast<std::size_t>(i)] =
          encoded[4 + 16 + 2 + static_cast<std::size_t>(i)];
    EXPECT_EQ(decode_frame(encoded, out), Status::kMalformedBody);
  }
  // Trailing garbage after a complete body.
  frame = encode_request(support_request({1}));
  frame.push_back(0xAB);
  frame[0] = static_cast<std::uint8_t>(frame.size() - 4);  // fix length
  EXPECT_EQ(decode_frame(frame, out), Status::kMalformedBody);
  // Membership with an empty itemset.
  {
    Request membership;
    membership.opcode = Opcode::kMembership;
    EXPECT_EQ(decode_frame(encode_request(membership), out),
              Status::kMalformedBody);
  }
  // Rule whose consequent repeats an antecedent item.
  {
    Request rule;
    rule.opcode = Opcode::kRule;
    rule.ranks = {2, 5};
    rule.consequent = 5;
    EXPECT_EQ(decode_frame(encode_request(rule), out),
              Status::kMalformedBody);
  }
}

// ---- live-daemon tests ----

class ServeWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::instance().disarm_all();
    blob_path_ = write_table1_blob(2, "wire_table1.plt");
    server_ = std::make_unique<TestServer>(
        std::vector<std::string>{blob_path_});
  }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  std::uint16_t port() const { return server_->port(); }

  std::string blob_path_;
  std::unique_ptr<TestServer> server_;
};

TEST_F(ServeWireTest, BadMagicGetsTypedErrorThenClose) {
  QueryClient client(port());
  auto frame = encode_request(support_request({1}));
  frame[4] = 'Z';
  client.send_raw(frame);
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadMagic);
  // Stream integrity is gone: the server closes after the diagnostic.
  EXPECT_FALSE(client.read_response().has_value());
  // And the daemon is still alive for new connections.
  QueryClient probe(port());
  EXPECT_TRUE(probe.ping());
}

TEST_F(ServeWireTest, OversizedLengthGetsTypedErrorThenClose) {
  QueryClient client(port());
  const std::vector<std::uint8_t> huge_prefix = {0xFF, 0xFF, 0xFF, 0x7F};
  client.send_raw(huge_prefix);
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kFrameTooLarge);
  EXPECT_FALSE(client.read_response().has_value());
}

TEST_F(ServeWireTest, BadVersionGetsTypedErrorThenClose) {
  QueryClient client(port());
  auto frame = encode_request(support_request({1}));
  frame[4 + 4] = 9;
  client.send_raw(frame);
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadVersion);
  EXPECT_FALSE(client.read_response().has_value());
}

TEST_F(ServeWireTest, RequestLevelErrorKeepsConnectionUsable) {
  QueryClient client(port());
  auto frame = encode_request(support_request({1}, /*id=*/21));
  frame[4 + 5] = 42;  // unknown opcode byte
  client.send_raw(frame);
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kBadOpcode);
  EXPECT_EQ(response->request_id, 21u);
  // Same connection still answers real queries.
  EXPECT_EQ(client.support(0, std::vector<Rank>{1}), 4u);
}

TEST_F(ServeWireTest, UnknownBlobIsTyped) {
  QueryClient client(port());
  Request request = support_request({1}, /*id=*/5);
  request.blob_id = 7;
  const auto response = client.call(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kUnknownBlob);
}

TEST_F(ServeWireTest, MidRequestDisconnectIsSurvived) {
  {
    QueryClient client(port());
    const auto frame = encode_request(support_request({1, 2, 3}));
    client.send_raw(std::span(frame).first(frame.size() / 2));
    client.shutdown_write();
    // Server sees EOF with a partial frame buffered: clean close, no reply.
    EXPECT_FALSE(client.read_response().has_value());
  }
  QueryClient probe(port());
  EXPECT_TRUE(probe.ping());
  EXPECT_GE(server_->server().stats().disconnects, 1u);
}

TEST_F(ServeWireTest, SlowLorisPartialWritesStillAnswer) {
  QueryClient client(port());
  const auto frame = encode_request(support_request({1, 2}, /*id=*/77));
  for (const std::uint8_t byte : frame) {
    client.send_raw(std::span(&byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_EQ(response->request_id, 77u);
  EXPECT_EQ(response->support, 4u);  // {A,B} in Table 1
}

TEST_F(ServeWireTest, PipelinedRequestsAllAnswerById) {
  QueryClient client(port());
  std::vector<std::uint8_t> burst;
  for (std::uint32_t id = 1; id <= 20; ++id) {
    const auto frame =
        encode_request(support_request({1u + id % 3}, /*id=*/id));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  client.send_raw(burst);
  std::vector<bool> seen(21, false);
  for (int i = 0; i < 20; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, Status::kOk);
    ASSERT_GE(response->request_id, 1u);
    ASSERT_LE(response->request_id, 20u);
    EXPECT_FALSE(seen[response->request_id]);
    seen[response->request_id] = true;
  }
}

TEST_F(ServeWireTest, FailpointShortReadsAndWritesResume) {
  // Every third socket op is truncated to one byte, on both the daemon and
  // this client (shared process registry) — answers must be unaffected.
  FailpointRegistry::Spec every3;
  every3.mode = FailpointRegistry::Mode::kEveryNth;
  every3.n = 3;
  FailpointRegistry::instance().arm("serve.socket.read", every3);
  FailpointRegistry::instance().arm("serve.socket.write", every3);
  QueryClient client(port());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.support(0, std::vector<Rank>{1, 2}), 4u);
    EXPECT_EQ(client.support(0, std::vector<Rank>{3, 4}), 3u);  // {C,D}
  }
  EXPECT_GT(FailpointRegistry::instance().hits("serve.socket.read"), 0u);
  EXPECT_GT(FailpointRegistry::instance().hits("serve.socket.write"), 0u);
}

TEST_F(ServeWireTest, DeadlineTripIsAlwaysTypedNeverSilent) {
  // The acceptance contract: a deadline that expires mid-scan produces the
  // typed DEADLINE_EXCEEDED response. The "serve.deadline" failpoint
  // simulates the clock expiring at the first per-bucket checkpoint, so
  // the path is deterministic.
  FailpointRegistry::instance().arm("serve.deadline",
                                    FailpointRegistry::Spec{});
  QueryClient client(port());
  // Multi-rank support scans buckets; membership checks one bucket; a rule
  // runs two scans — every class must come back typed.
  for (const Opcode opcode :
       {Opcode::kSupport, Opcode::kMembership, Opcode::kRule}) {
    Request request;
    request.opcode = opcode;
    request.request_id = 1000 + static_cast<std::uint32_t>(opcode);
    request.deadline_ms = 1;
    request.ranks = {1, 2};
    if (opcode == Opcode::kRule) request.consequent = 3;
    const auto response = client.call(request);
    ASSERT_TRUE(response.has_value()) << to_string(opcode);
    EXPECT_EQ(response->status, Status::kDeadlineExceeded)
        << to_string(opcode);
    EXPECT_EQ(response->request_id, request.request_id);
    EXPECT_FALSE(response->detail.empty());
  }
  FailpointRegistry::instance().disarm_all();
  // The daemon kept running and counted every trip per class.
  const serve::StatsSnapshot stats = server_->server().stats();
  EXPECT_GE(stats.per_class[static_cast<std::size_t>(Opcode::kSupport)]
                .deadline_exceeded,
            1u);
  EXPECT_GE(stats.per_class[static_cast<std::size_t>(Opcode::kRule)]
                .deadline_exceeded,
            1u);
  QueryClient probe(port());
  EXPECT_EQ(probe.support(0, std::vector<Rank>{1, 2}), 4u);
}

TEST_F(ServeWireTest, RandomFrameFuzzNeverCrashes) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::uniform_int_distribution<std::size_t> len_dist(0, 64);
  for (int iteration = 0; iteration < 150; ++iteration) {
    QueryClient client(port());
    std::vector<std::uint8_t> bytes(len_dist(rng));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(byte_dist(rng));
    if (iteration % 3 == 0) {
      // Mutate a valid frame instead of raw noise: deeper decode coverage.
      auto frame = encode_request(support_request({1, 3}));
      if (!bytes.empty())
        for (std::size_t i = 0; i < bytes.size() && i < frame.size(); ++i)
          frame[frame.size() - 1 - i] ^= bytes[i];
      bytes = frame;
    }
    try {
      client.send_raw(bytes);
      client.shutdown_write();
      // Drain whatever the server says until it closes our stream.
      while (true) {
        std::uint8_t sink[256];
        if (!read_exact(client.fd(), sink, 1)) break;
        (void)sink;
      }
    } catch (const SocketError&) {
      // Resets are fine; crashes are not.
    }
  }
  QueryClient probe(port());
  EXPECT_TRUE(probe.ping());
  EXPECT_EQ(probe.support(0, std::vector<Rank>{1, 2}), 4u);
}

TEST_F(ServeWireTest, StatsDocumentIsWellFormedJson) {
  QueryClient client(port());
  ASSERT_TRUE(client.ping());
  const Response stats = client.stats();
  EXPECT_EQ(stats.generation, 1u);
  const std::string& json = stats.detail;
  EXPECT_NE(json.find("\"daemon\":\"plt-serve\""), std::string::npos);
  EXPECT_NE(json.find("\"ping\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  // Balanced braces — cheap structural sanity for the hand-built JSON.
  int depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(ServeWireTest, ReloadSwapsGenerationUnderTraffic) {
  QueryClient client(port());
  EXPECT_EQ(client.support(0, std::vector<Rank>{1}), 4u);
  const Response reloaded = client.reload();
  EXPECT_EQ(reloaded.generation, 2u);
  EXPECT_EQ(client.support(0, std::vector<Rank>{1}), 4u);
  EXPECT_GE(server_->server().stats().reloads, 1u);
}

}  // namespace
}  // namespace plt::serve
