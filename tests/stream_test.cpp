// Sliding-window miner: window semantics, eviction, and batch equivalence
// at every point of a randomized stream.
#include <gtest/gtest.h>

#include "core/miner.hpp"
#include "core/stream.hpp"
#include "datagen/zipf.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

FrequentItemsets batch(const tdb::Database& db, Count minsup) {
  return mine(db, minsup, Algorithm::kPltConditional).itemsets;
}

TEST(SlidingWindow, FillsThenSlides) {
  SlidingWindowMiner window(3, 10);
  window.push({1, 2});
  window.push({1, 3});
  EXPECT_EQ(window.size(), 2u);
  window.push({1, 4});
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(window.item_support(1), 3u);
  window.push({5, 6});  // evicts {1,2}
  EXPECT_EQ(window.size(), 3u);
  EXPECT_EQ(window.item_support(1), 2u);
  EXPECT_EQ(window.item_support(2), 0u);
  EXPECT_EQ(window.item_support(5), 1u);
}

TEST(SlidingWindow, MineMatchesBatchOfWindowContent) {
  Rng rng(41);
  SlidingWindowMiner window(50, 15);
  std::vector<Item> row;
  for (int t = 0; t < 400; ++t) {
    row.clear();
    for (Item i = 1; i <= 15; ++i)
      if (rng.next_bool(0.25)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    window.push(row);
    if (t % 57 == 0 && window.size() >= 5) {
      plt::testing::expect_same_itemsets(
          window.mine(3), batch(window.window_database(), 3), "window");
    }
  }
  EXPECT_EQ(window.size(), 50u);
  plt::testing::expect_same_itemsets(
      window.mine(5), batch(window.window_database(), 5), "final window");
}

TEST(SlidingWindow, ConceptDrift) {
  // Phase 1 floods {1,2}; phase 2 floods {3,4}. After the window fully
  // turns over, phase-1 patterns must vanish.
  SlidingWindowMiner window(20, 4);
  for (int i = 0; i < 20; ++i) window.push({1, 2});
  EXPECT_EQ(window.mine(15).find_support(Itemset{1, 2}), 20u);
  for (int i = 0; i < 20; ++i) window.push({3, 4});
  const auto mined = window.mine(15);
  EXPECT_EQ(mined.find_support(Itemset{1, 2}), 0u);
  EXPECT_EQ(mined.find_support(Itemset{3, 4}), 20u);
}

TEST(SlidingWindow, DuplicateAndEmptyPushes) {
  SlidingWindowMiner window(4, 6);
  window.push({2, 2, 1});  // dedup to {1,2}
  window.push(std::span<const Item>{});  // ignored
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.mine(1).find_support(Itemset{1, 2}), 1u);
}

TEST(SlidingWindow, CapacityOne) {
  SlidingWindowMiner window(1, 5);
  window.push({1});
  window.push({2});
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.item_support(1), 0u);
  EXPECT_EQ(window.item_support(2), 1u);
}

TEST(SlidingWindow, MemoryReported) {
  SlidingWindowMiner window(8, 8);
  window.push({1, 2, 3});
  EXPECT_GT(window.memory_usage(), 0u);
}

}  // namespace
}  // namespace plt::core
