// Fault-injection registry: trigger modes, deterministic streams, spec
// parsing, counters, and the failpoints wired into the library's I/O and
// thread-pool paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "compress/codec.hpp"
#include "core/plt.hpp"
#include "tdb/io.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace plt {
namespace {

// Every test starts and ends with a clean registry: the singleton is shared
// across the whole binary, so a leaked armed point would poison neighbours.
class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::instance().disarm_all(); }
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }

  static FailpointRegistry& reg() { return FailpointRegistry::instance(); }
};

TEST_F(Failpoint, AlwaysFiresEveryEvaluation) {
  reg().arm("t.always", {});
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(reg().evaluate("t.always"), InjectedFault);
  EXPECT_EQ(reg().evaluations("t.always"), 3u);
  EXPECT_EQ(reg().hits("t.always"), 3u);
}

TEST_F(Failpoint, UnarmedPointIsSilent) {
  EXPECT_NO_THROW(reg().evaluate("t.never"));
  EXPECT_FALSE(reg().armed("t.never"));
  EXPECT_EQ(reg().evaluations("t.never"), 0u);
}

TEST_F(Failpoint, FaultCarriesPointName) {
  reg().arm("t.named", {});
  try {
    reg().evaluate("t.named");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& fault) {
    EXPECT_EQ(fault.failpoint, "t.named");
    EXPECT_NE(std::string(fault.what()).find("t.named"), std::string::npos);
  }
}

TEST_F(Failpoint, EveryNthFiresOnMultiples) {
  FailpointRegistry::Spec spec;
  spec.mode = FailpointRegistry::Mode::kEveryNth;
  spec.n = 3;
  reg().arm("t.every", spec);
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    try {
      reg().evaluate("t.every");
    } catch (const InjectedFault&) {
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST_F(Failpoint, OneShotFiresExactlyOnce) {
  FailpointRegistry::Spec spec;
  spec.mode = FailpointRegistry::Mode::kOneShot;
  spec.n = 2;
  reg().arm("t.oneshot", spec);
  std::vector<int> fired;
  for (int i = 1; i <= 10; ++i) {
    try {
      reg().evaluate("t.oneshot");
    } catch (const InjectedFault&) {
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(reg().hits("t.oneshot"), 1u);
  EXPECT_EQ(reg().evaluations("t.oneshot"), 10u);
}

TEST_F(Failpoint, ProbabilityStreamIsDeterministic) {
  FailpointRegistry::Spec spec;
  spec.mode = FailpointRegistry::Mode::kProbability;
  spec.probability = 0.5;
  spec.seed = 42;
  const auto pattern = [&] {
    reg().arm("t.prob", spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      try {
        reg().evaluate("t.prob");
        fires.push_back(false);
      } catch (const InjectedFault&) {
        fires.push_back(true);
      }
    }
    return fires;
  };
  const auto first = pattern();
  const auto second = pattern();  // re-arming resets the stream
  EXPECT_EQ(first, second);
  const auto hits =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(hits, 50u);  // ~100 expected; a degenerate stream would show here
  EXPECT_LT(hits, 150u);
}

TEST_F(Failpoint, DisarmStopsFiring) {
  reg().arm("t.disarm", {});
  EXPECT_THROW(reg().evaluate("t.disarm"), InjectedFault);
  reg().disarm("t.disarm");
  EXPECT_FALSE(reg().armed("t.disarm"));
  EXPECT_NO_THROW(reg().evaluate("t.disarm"));
}

TEST_F(Failpoint, TotalHitsIsMonotonic) {
  const auto before = reg().total_hits();
  reg().arm("t.total", {});
  EXPECT_THROW(reg().evaluate("t.total"), InjectedFault);
  EXPECT_THROW(reg().evaluate("t.total"), InjectedFault);
  EXPECT_EQ(reg().total_hits(), before + 2);
}

TEST_F(Failpoint, SpecListParsing) {
  reg().arm_from_spec(
      "a=always;b=every:3;c=oneshot:2;d=prob:0.25:seed9");
  EXPECT_TRUE(reg().armed("a"));
  EXPECT_TRUE(reg().armed("b"));
  EXPECT_TRUE(reg().armed("c"));
  EXPECT_TRUE(reg().armed("d"));
  EXPECT_THROW(reg().evaluate("a"), InjectedFault);
  EXPECT_NO_THROW(reg().evaluate("b"));  // 1st of every:3
}

TEST_F(Failpoint, MalformedSpecsThrow) {
  EXPECT_THROW(reg().arm_from_spec("no-equals"), std::invalid_argument);
  EXPECT_THROW(reg().arm_from_spec("=always"), std::invalid_argument);
  EXPECT_THROW(reg().arm_from_spec("a=wat"), std::invalid_argument);
  EXPECT_THROW(reg().arm_from_spec("a=every:x"), std::invalid_argument);
  EXPECT_THROW(reg().arm_from_spec("a=prob:zz"), std::invalid_argument);
}

TEST_F(Failpoint, FimiReaderSiteFires) {
  reg().arm("tdb.read_fimi", {});
  std::istringstream in("1 2 3\n");
  EXPECT_THROW((void)tdb::read_fimi(in), InjectedFault);
}

TEST_F(Failpoint, CodecSitesFire) {
  core::Plt plt(3);
  plt.add(core::PosVec{1, 2}, 4);
  reg().arm("codec.encode", {});
  EXPECT_THROW((void)compress::encode_plt(plt), InjectedFault);
  reg().disarm("codec.encode");

  const auto blob = compress::encode_plt(plt);
  reg().arm("codec.decode", {});
  EXPECT_THROW((void)compress::decode_plt(blob), InjectedFault);
}

TEST_F(Failpoint, ThreadPoolTaskFaultPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto clean = pool.submit([] { return 7; });
  EXPECT_EQ(clean.get(), 7);

  FailpointRegistry::Spec spec;
  spec.mode = FailpointRegistry::Mode::kOneShot;
  spec.n = 1;
  reg().arm("thread_pool.task", spec);
  auto faulty = pool.submit([] { return 1; });
  EXPECT_THROW(faulty.get(), InjectedFault);
  // The pool survives an injected task fault: later tasks run normally.
  auto after = pool.submit([] { return 2; });
  EXPECT_EQ(after.get(), 2);
}

}  // namespace
}  // namespace plt
