# Shell-level CLI checks that assert on exit codes and diagnostics, which
# plain add_test COMMAND lines cannot express. Invoked as
#   cmake -DCHECK=<name> -DPLT_MINE=<path> [-DOUT_DIR=<dir>] -P cli_checks.cmake

if(CHECK STREQUAL "bad-backend")
  # An unknown --backend must refuse to run (exit non-zero) with a clear
  # diagnostic, never silently bench/mine on the wrong kernels.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --backend bogus
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-mine accepted an unknown --backend (exit 0)")
  endif()
  if(NOT err MATCHES "unknown or unavailable kernel backend")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown backend; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "trace-files")
  # --trace / --trace-folded must produce well-formed exports covering the
  # run. Only registered when the obs layer is compiled in (PLT_OBS=ON).
  file(MAKE_DIRECTORY ${OUT_DIR})
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.1
                          --trace ${OUT_DIR}/cli_trace.json
                          --trace-folded ${OUT_DIR}/cli_trace.folded
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --trace exited ${code}:\n${err}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.json json)
  if(NOT json MATCHES "plt-trace-v1")
    message(FATAL_ERROR "trace JSON missing format tag:\n${json}")
  endif()
  if(NOT json MATCHES "\"mine\"")
    message(FATAL_ERROR "trace JSON missing the mine span:\n${json}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.folded folded)
  if(NOT folded MATCHES "trace;mine")
    message(FATAL_ERROR "folded trace missing the mine stack:\n${folded}")
  endif()
elseif(CHECK STREQUAL "validate")
  # --validate must announce itself, run the structural checks on every PLT
  # the invocation builds, and leave the mined results unchanged.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --validate
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --validate exited ${code}:\n${err}")
  endif()
  if(NOT err MATCHES "structural validation: enabled")
    message(FATAL_ERROR
            "--validate did not announce validation; stderr was:\n${err}")
  endif()
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2
                  RESULT_VARIABLE ref_code
                  OUTPUT_VARIABLE ref_out
                  ERROR_VARIABLE ref_err)
  if(NOT out STREQUAL ref_out)
    message(FATAL_ERROR "--validate changed the mined output:\n"
            "--- with --validate ---\n${out}"
            "--- without ---\n${ref_out}")
  endif()
else()
  message(FATAL_ERROR "unknown CHECK: '${CHECK}'")
endif()
