# Shell-level CLI checks that assert on exit codes and diagnostics, which
# plain add_test COMMAND lines cannot express. Invoked as
#   cmake -DCHECK=<name> -DPLT_MINE=<path> [-DOUT_DIR=<dir>] -P cli_checks.cmake

if(CHECK STREQUAL "bad-backend")
  # An unknown --backend must refuse to run (exit non-zero) with a clear
  # diagnostic, never silently bench/mine on the wrong kernels.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --backend bogus
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-mine accepted an unknown --backend (exit 0)")
  endif()
  if(NOT err MATCHES "unknown or unavailable kernel backend")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown backend; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "bad-plan")
  # An unknown --plan must refuse to run (exit non-zero, usage text), never
  # silently mine under the wrong execution plan.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --plan bogus
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-mine accepted an unknown --plan (exit 0)")
  endif()
  if(NOT err MATCHES "unknown --plan")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown plan; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "plan-identity")
  # The planner's whole contract at the CLI: --plan adaptive and the default
  # fixed plan print byte-identical itemsets.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.01 --limit 0 --plan fixed
                  RESULT_VARIABLE fixed_code
                  OUTPUT_VARIABLE fixed_out
                  ERROR_VARIABLE fixed_err)
  if(NOT fixed_code EQUAL 0)
    message(FATAL_ERROR "plt-mine --plan fixed exited ${fixed_code}:\n"
            "${fixed_err}")
  endif()
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.01 --limit 0 --plan adaptive
                  RESULT_VARIABLE adaptive_code
                  OUTPUT_VARIABLE adaptive_out
                  ERROR_VARIABLE adaptive_err)
  if(NOT adaptive_code EQUAL 0)
    message(FATAL_ERROR "plt-mine --plan adaptive exited ${adaptive_code}:\n"
            "${adaptive_err}")
  endif()
  if(NOT fixed_out STREQUAL adaptive_out)
    message(FATAL_ERROR "--plan adaptive changed the mined output:\n"
            "--- fixed ---\n${fixed_out}"
            "--- adaptive ---\n${adaptive_out}")
  endif()
elseif(CHECK STREQUAL "trace-files")
  # --trace / --trace-folded must produce well-formed exports covering the
  # run. Only registered when the obs layer is compiled in (PLT_OBS=ON).
  file(MAKE_DIRECTORY ${OUT_DIR})
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.1
                          --trace ${OUT_DIR}/cli_trace.json
                          --trace-folded ${OUT_DIR}/cli_trace.folded
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --trace exited ${code}:\n${err}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.json json)
  if(NOT json MATCHES "plt-trace-v1")
    message(FATAL_ERROR "trace JSON missing format tag:\n${json}")
  endif()
  if(NOT json MATCHES "\"mine\"")
    message(FATAL_ERROR "trace JSON missing the mine span:\n${json}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.folded folded)
  if(NOT folded MATCHES "trace;mine")
    message(FATAL_ERROR "folded trace missing the mine stack:\n${folded}")
  endif()
elseif(CHECK STREQUAL "validate")
  # --validate must announce itself, run the structural checks on every PLT
  # the invocation builds, and leave the mined results unchanged.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --validate
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --validate exited ${code}:\n${err}")
  endif()
  if(NOT err MATCHES "structural validation: enabled")
    message(FATAL_ERROR
            "--validate did not announce validation; stderr was:\n${err}")
  endif()
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2
                  RESULT_VARIABLE ref_code
                  OUTPUT_VARIABLE ref_out
                  ERROR_VARIABLE ref_err)
  if(NOT out STREQUAL ref_out)
    message(FATAL_ERROR "--validate changed the mined output:\n"
            "--- with --validate ---\n${out}"
            "--- without ---\n${ref_out}")
  endif()
elseif(CHECK STREQUAL "serve-bad-flag")
  # plt-serve's flags are strict: an unknown flag is a usage error (exit
  # non-zero), never a silently ignored option on a long-running daemon.
  execute_process(COMMAND ${PLT_SERVE} ${OUT_DIR}/nonexistent.plt
                          --bogus-flag 1
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-serve accepted an unknown flag (exit 0)")
  endif()
  if(NOT err MATCHES "unknown flag --bogus-flag")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown flag; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "serve-missing-blob")
  # A missing blob must fail the startup load, before the socket serves.
  execute_process(COMMAND ${PLT_SERVE} ${OUT_DIR}/does_not_exist.plt
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-serve served a missing blob (exit 0)")
  endif()
elseif(CHECK STREQUAL "serve-corrupt-blob")
  # A corrupt blob (one flipped payload byte) must fail the CRC verification
  # in build_index at startup and exit non-zero.
  file(MAKE_DIRECTORY ${OUT_DIR})
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.1
                          --emit-blob ${OUT_DIR}/corrupt_src.plt
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --emit-blob exited ${code}:\n${err}")
  endif()
  # Overwrite the last byte with its complement (always payload/CRC bytes,
  # never the magic) so the CRC verification in build_index must fire.
  execute_process(COMMAND sh -c
      "cp '${OUT_DIR}/corrupt_src.plt' '${OUT_DIR}/corrupt.plt' || exit 1
       size=$(wc -c < '${OUT_DIR}/corrupt.plt')
       last=$(tail -c 1 '${OUT_DIR}/corrupt.plt' | od -An -tu1 | tr -d ' ')
       printf \"\\\\$(printf '%03o' $(( (last + 1) % 256 )))\" |
         dd of='${OUT_DIR}/corrupt.plt' bs=1 seek=$(( size - 1 )) \
            conv=notrunc 2>/dev/null"
                  RESULT_VARIABLE flip_code)
  if(NOT flip_code EQUAL 0)
    message(FATAL_ERROR "could not corrupt the blob copy")
  endif()
  execute_process(COMMAND ${PLT_SERVE} ${OUT_DIR}/corrupt.plt
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-serve served a corrupt blob (exit 0)")
  endif()
  if(NOT err MATCHES "CRC|checksum|corrupt|truncated|mismatch")
    message(FATAL_ERROR
            "corrupt blob rejected without a CRC diagnostic; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "serve-round-trip")
  # The serving pipeline end to end: plt-mine --emit-blob, daemon on an
  # ephemeral port (--ready-file publishes it), plt-query answers, a second
  # daemon on the same port exits non-zero (port in use), clean SIGTERM.
  file(MAKE_DIRECTORY ${OUT_DIR})
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.1
                          --emit-blob ${OUT_DIR}/roundtrip.plt
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --emit-blob exited ${code}:\n${err}")
  endif()
  execute_process(COMMAND sh -c
      "set -e
       rm -f '${OUT_DIR}/roundtrip.port'
       '${PLT_SERVE}' '${OUT_DIR}/roundtrip.plt' \
         --ready-file '${OUT_DIR}/roundtrip.port' &
       daemon=$!
       trap 'kill $daemon 2>/dev/null || true' EXIT
       for i in $(seq 1 100); do
         [ -s '${OUT_DIR}/roundtrip.port' ] && break
         sleep 0.1
       done
       [ -s '${OUT_DIR}/roundtrip.port' ] || {
         echo 'daemon never wrote the ready file' >&2; exit 1; }
       port=$(cat '${OUT_DIR}/roundtrip.port')
       '${PLT_QUERY}' --port $port --op ping
       '${PLT_QUERY}' --port $port --op support --ranks 1 \
         > '${OUT_DIR}/roundtrip.support'
       grep -Eq '^[0-9]+$' '${OUT_DIR}/roundtrip.support' || {
         echo 'plt-query support did not print a number' >&2; exit 1; }
       '${PLT_QUERY}' --port $port --op topk --k 3 \
         > '${OUT_DIR}/roundtrip.topk'
       [ $(wc -l < '${OUT_DIR}/roundtrip.topk') -ge 1 ] || {
         echo 'plt-query topk printed nothing' >&2; exit 1; }
       if '${PLT_SERVE}' '${OUT_DIR}/roundtrip.plt' --port $port \
            2> '${OUT_DIR}/roundtrip.conflict'; then
         echo 'second daemon bound an in-use port (exit 0)' >&2; exit 1
       fi
       grep -qi 'use' '${OUT_DIR}/roundtrip.conflict' || {
         echo 'port conflict lacked a diagnostic' >&2
         cat '${OUT_DIR}/roundtrip.conflict' >&2; exit 1; }
       kill -TERM $daemon
       wait $daemon"
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "serve round-trip failed (exit ${code}):\n"
            "${out}\n${err}")
  endif()
else()
  message(FATAL_ERROR "unknown CHECK: '${CHECK}'")
endif()
