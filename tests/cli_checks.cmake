# Shell-level CLI checks that assert on exit codes and diagnostics, which
# plain add_test COMMAND lines cannot express. Invoked as
#   cmake -DCHECK=<name> -DPLT_MINE=<path> [-DOUT_DIR=<dir>] -P cli_checks.cmake

if(CHECK STREQUAL "bad-backend")
  # An unknown --backend must refuse to run (exit non-zero) with a clear
  # diagnostic, never silently bench/mine on the wrong kernels.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --backend bogus
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-mine accepted an unknown --backend (exit 0)")
  endif()
  if(NOT err MATCHES "unknown or unavailable kernel backend")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown backend; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "bad-plan")
  # An unknown --plan must refuse to run (exit non-zero, usage text), never
  # silently mine under the wrong execution plan.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --plan bogus
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(code EQUAL 0)
    message(FATAL_ERROR "plt-mine accepted an unknown --plan (exit 0)")
  endif()
  if(NOT err MATCHES "unknown --plan")
    message(FATAL_ERROR
            "missing/garbled diagnostic for unknown plan; stderr was:\n"
            "${err}")
  endif()
elseif(CHECK STREQUAL "plan-identity")
  # The planner's whole contract at the CLI: --plan adaptive and the default
  # fixed plan print byte-identical itemsets.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.01 --limit 0 --plan fixed
                  RESULT_VARIABLE fixed_code
                  OUTPUT_VARIABLE fixed_out
                  ERROR_VARIABLE fixed_err)
  if(NOT fixed_code EQUAL 0)
    message(FATAL_ERROR "plt-mine --plan fixed exited ${fixed_code}:\n"
            "${fixed_err}")
  endif()
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.01 --limit 0 --plan adaptive
                  RESULT_VARIABLE adaptive_code
                  OUTPUT_VARIABLE adaptive_out
                  ERROR_VARIABLE adaptive_err)
  if(NOT adaptive_code EQUAL 0)
    message(FATAL_ERROR "plt-mine --plan adaptive exited ${adaptive_code}:\n"
            "${adaptive_err}")
  endif()
  if(NOT fixed_out STREQUAL adaptive_out)
    message(FATAL_ERROR "--plan adaptive changed the mined output:\n"
            "--- fixed ---\n${fixed_out}"
            "--- adaptive ---\n${adaptive_out}")
  endif()
elseif(CHECK STREQUAL "trace-files")
  # --trace / --trace-folded must produce well-formed exports covering the
  # run. Only registered when the obs layer is compiled in (PLT_OBS=ON).
  file(MAKE_DIRECTORY ${OUT_DIR})
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup-frac 0.1
                          --trace ${OUT_DIR}/cli_trace.json
                          --trace-folded ${OUT_DIR}/cli_trace.folded
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --trace exited ${code}:\n${err}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.json json)
  if(NOT json MATCHES "plt-trace-v1")
    message(FATAL_ERROR "trace JSON missing format tag:\n${json}")
  endif()
  if(NOT json MATCHES "\"mine\"")
    message(FATAL_ERROR "trace JSON missing the mine span:\n${json}")
  endif()
  file(READ ${OUT_DIR}/cli_trace.folded folded)
  if(NOT folded MATCHES "trace;mine")
    message(FATAL_ERROR "folded trace missing the mine stack:\n${folded}")
  endif()
elseif(CHECK STREQUAL "validate")
  # --validate must announce itself, run the structural checks on every PLT
  # the invocation builds, and leave the mined results unchanged.
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2 --validate
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "plt-mine --validate exited ${code}:\n${err}")
  endif()
  if(NOT err MATCHES "structural validation: enabled")
    message(FATAL_ERROR
            "--validate did not announce validation; stderr was:\n${err}")
  endif()
  execute_process(COMMAND ${PLT_MINE} --dataset short-dense --scale 0.2
                          --minsup 2
                  RESULT_VARIABLE ref_code
                  OUTPUT_VARIABLE ref_out
                  ERROR_VARIABLE ref_err)
  if(NOT out STREQUAL ref_out)
    message(FATAL_ERROR "--validate changed the mined output:\n"
            "--- with --validate ---\n${out}"
            "--- without ---\n${ref_out}")
  endif()
else()
  message(FATAL_ERROR "unknown CHECK: '${CHECK}'")
endif()
