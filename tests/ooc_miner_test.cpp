// Out-of-core blob mining: identical results to in-memory conditional
// mining, byte accounting, and malformed-blob behaviour.
#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "datagen/dense.hpp"
#include "test_support.hpp"

namespace plt::compress {
namespace {

std::vector<Item> identity_items(const core::RankedView& view) {
  std::vector<Item> item_of(view.alphabet());
  for (Rank r = 1; r <= view.alphabet(); ++r)
    item_of[r - 1] = view.item_of(r);
  return item_of;
}

TEST(OocMiner, PaperExample) {
  const auto db = plt::testing::paper_table1();
  const auto built = core::build_from_database(db, 2);
  const auto blob = encode_plt(built.plt);

  core::FrequentItemsets mined;
  mine_from_blob(blob, identity_items(built.view), 2,
                 core::collect_into(mined));
  const auto reference = core::mine(db, 2, core::Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(mined, reference.itemsets, "table1");
  EXPECT_EQ(mined.size(), 13u);
}

class OocAgreement
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Count>> {};

TEST_P(OocAgreement, MatchesInMemoryConditional) {
  const auto [seed, minsup] = GetParam();
  datagen::QuestConfig cfg;
  cfg.transactions = 400;
  cfg.items = 50;
  cfg.seed = seed;
  const auto db = datagen::generate_quest(cfg);
  const auto built = core::build_from_database(db, minsup);
  if (built.view.alphabet() == 0) return;
  const auto blob = encode_plt(built.plt);

  core::FrequentItemsets mined;
  OocStats stats;
  mine_from_blob(blob, identity_items(built.view), minsup,
                 core::collect_into(mined), &stats);
  const auto reference =
      core::mine(db, minsup, core::Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(mined, reference.itemsets, "ooc");

  // Every base entry is decoded exactly once: payload bytes = blob minus
  // the header/partition framing.
  EXPECT_GT(stats.bytes_decoded, 0u);
  EXPECT_LT(stats.bytes_decoded, blob.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OocAgreement,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<Count>(3, 8, 25)));

TEST(OocMiner, DenseWorkload) {
  const auto db = datagen::generate_dense(datagen::mushroom_like(500, 3));
  const auto built = core::build_from_database(db, 150);
  const auto blob = encode_plt(built.plt);
  core::FrequentItemsets mined;
  OocStats stats;
  mine_from_blob(blob, identity_items(built.view), 150,
                 core::collect_into(mined), &stats);
  const auto reference =
      core::mine(db, 150, core::Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(mined, reference.itemsets, "dense");
  EXPECT_GT(stats.peak_overlay_bytes, 0u);
}

TEST(OocMiner, MalformedBlobThrows) {
  const std::vector<std::uint8_t> junk{'J', 'U', 'N', 'K', 1, 2, 3};
  core::FrequentItemsets sink_target;
  EXPECT_THROW(mine_from_blob(junk, {1, 2, 3}, 1,
                              core::collect_into(sink_target)),
               std::runtime_error);
}

TEST(OocMiner, ItemMapTooSmallThrows) {
  // Untrusted-input path: the blob's max_rank comes off disk, so an
  // undersized item map is a recoverable error, not an assertion.
  const auto db = plt::testing::paper_table1();
  const auto built = core::build_from_database(db, 2);
  const auto blob = encode_plt(built.plt);
  core::FrequentItemsets sink_target;
  EXPECT_THROW(mine_from_blob(blob, {1, 2}, 2,
                              core::collect_into(sink_target)),
               std::runtime_error);
}

}  // namespace
}  // namespace plt::compress
