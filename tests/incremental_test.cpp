// Incremental PLT maintenance: add/remove equivalence with batch builds,
// tombstone handling, and failure injection.
#include <gtest/gtest.h>

#include "core/incremental.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

FrequentItemsets batch_mine(const tdb::Database& db, Count minsup) {
  return mine(db, minsup, Algorithm::kPltConditional).itemsets;
}

TEST(Incremental, MatchesBatchAfterBulkLoad) {
  const auto db = plt::testing::paper_table1();
  IncrementalPlt inc(6);
  inc.add_all(db);
  EXPECT_EQ(inc.size(), 6u);
  plt::testing::expect_same_itemsets(inc.mine(2), batch_mine(db, 2),
                                     "bulk load");
}

TEST(Incremental, AddThenMineRepeatedly) {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 30;
  cfg.seed = 5;
  const auto db = datagen::generate_quest(cfg);

  IncrementalPlt inc(30);
  tdb::Database so_far;
  for (std::size_t t = 0; t < db.size(); ++t) {
    inc.add(db[t]);
    so_far.add(db[t]);
    if ((t + 1) % 100 == 0) {
      plt::testing::expect_same_itemsets(inc.mine(5), batch_mine(so_far, 5),
                                         "incremental prefix");
    }
  }
}

TEST(Incremental, RemoveUndoesAdd) {
  IncrementalPlt inc(10);
  inc.add({1, 2, 3});
  inc.add({1, 2});
  inc.add({1, 2, 3});
  inc.remove({1, 2, 3});
  EXPECT_EQ(inc.size(), 2u);
  const auto mined = inc.mine(1);
  EXPECT_EQ(mined.find_support(Itemset{1, 2, 3}), 1u);
  EXPECT_EQ(mined.find_support(Itemset{1, 2}), 2u);
  EXPECT_EQ(inc.item_support(3), 1u);
}

TEST(Incremental, RemoveToZeroLeavesConsistentState) {
  IncrementalPlt inc(5);
  inc.add({1, 2});
  inc.remove({2, 1});  // order-insensitive
  EXPECT_EQ(inc.size(), 0u);
  EXPECT_TRUE(inc.mine(1).empty());
  // Re-adding after a tombstone works.
  inc.add({1, 2});
  EXPECT_EQ(inc.mine(1).find_support(Itemset{1, 2}), 1u);
}

TEST(Incremental, RemoveAbsentThrows) {
  IncrementalPlt inc(5);
  inc.add({1, 2});
  EXPECT_THROW(inc.remove({1, 3}), std::invalid_argument);
  EXPECT_THROW(inc.remove({1, 2, 3}), std::invalid_argument);
  inc.remove({1, 2});
  EXPECT_THROW(inc.remove({1, 2}), std::invalid_argument);
}

TEST(Incremental, OutOfRangeItemsThrow) {
  IncrementalPlt inc(5);
  EXPECT_THROW(inc.add({0}), std::invalid_argument);
  EXPECT_THROW(inc.add({6}), std::invalid_argument);
}

TEST(Incremental, RandomizedChurnMatchesBatch) {
  Rng rng(77);
  IncrementalPlt inc(12);
  std::vector<std::vector<Item>> live;
  for (int op = 0; op < 600; ++op) {
    if (live.empty() || rng.next_bool(0.65)) {
      std::vector<Item> row;
      for (Item i = 1; i <= 12; ++i)
        if (rng.next_bool(0.3)) row.push_back(i);
      if (row.empty()) row.push_back(1);
      inc.add(row);
      live.push_back(row);
    } else {
      const auto victim = rng.next_below(live.size());
      inc.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  tdb::Database batch;
  for (const auto& row : live) batch.add(row);
  EXPECT_EQ(inc.size(), live.size());
  if (!live.empty()) {
    plt::testing::expect_same_itemsets(inc.mine(3), batch_mine(batch, 3),
                                       "churn");
  }
}

TEST(Incremental, ToDatabaseRoundTrip) {
  const auto db = plt::testing::paper_table1();
  IncrementalPlt inc(6);
  inc.add_all(db);
  const auto rebuilt = inc.to_database();
  // Same multiset of transactions (order may differ) -> same mining answer.
  plt::testing::expect_same_itemsets(batch_mine(rebuilt, 2),
                                     batch_mine(db, 2), "to_database");
  EXPECT_EQ(rebuilt.size(), db.size());
}

TEST(Incremental, DistinctVectorsCollapseDuplicates) {
  IncrementalPlt inc(8);
  for (int i = 0; i < 50; ++i) inc.add({2, 4, 8});
  EXPECT_EQ(inc.size(), 50u);
  EXPECT_EQ(inc.distinct_vectors(), 1u);
  EXPECT_GT(inc.memory_usage(), 0u);
}

}  // namespace
}  // namespace plt::core
