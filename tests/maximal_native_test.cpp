// Native maximal mining (MaxMiner-style) and AIS and the bitmap layout:
// each validated against its reference implementation.
#include <gtest/gtest.h>

#include "baselines/ais.hpp"
#include "baselines/brute.hpp"
#include "baselines/maxminer.hpp"
#include "core/closed.hpp"
#include "core/miner.hpp"
#include "core/subset_check.hpp"
#include "core/builder.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "tdb/bitmap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt {
namespace {

using core::FrequentItemsets;

FrequentItemsets maximal_reference(const tdb::Database& db, Count minsup) {
  const auto mined = core::mine(db, minsup, core::Algorithm::kFpGrowth);
  return core::maximal_itemsets(mined.itemsets);
}

FrequentItemsets maxminer(const tdb::Database& db, Count minsup) {
  FrequentItemsets out;
  baselines::mine_maxminer(db, minsup, core::collect_into(out));
  return out;
}

TEST(MaxMiner, PaperExample) {
  const auto db = plt::testing::paper_table1();
  const auto mined = maxminer(db, 2);
  // Maximal at minsup 2: ABC, ABD, BCD.
  EXPECT_EQ(mined.size(), 3u);
  EXPECT_EQ(mined.find_support(Itemset{1, 2, 3}), 3u);
  plt::testing::expect_same_itemsets(mined, maximal_reference(db, 2),
                                     "maxminer table1");
}

class MaxMinerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Count>> {};

TEST_P(MaxMinerSweep, MatchesPostPassMaximal) {
  const auto [seed, minsup] = GetParam();
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (int t = 0; t < 150; ++t) {
    row.clear();
    for (Item i = 1; i <= 13; ++i)
      if (rng.next_bool(0.35)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  plt::testing::expect_same_itemsets(maxminer(db, minsup),
                                     maximal_reference(db, minsup),
                                     "maxminer sweep");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxMinerSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(11, 12, 13, 14),
                       ::testing::Values<Count>(2, 6, 18, 45)));

TEST(MaxMiner, DenseLookaheadFires) {
  // Many identical long rows: the lookahead should collapse the search to
  // one maximal set immediately.
  tdb::Database db;
  for (int i = 0; i < 50; ++i) db.add({1, 2, 3, 4, 5, 6, 7, 8});
  const auto mined = maxminer(db, 10);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined.itemset(0).size(), 8u);
  EXPECT_EQ(mined.support(0), 50u);
}

TEST(MaxMiner, Degenerate) {
  tdb::Database empty;
  EXPECT_TRUE(maxminer(empty, 1).empty());
}

TEST(Ais, PaperExample) {
  FrequentItemsets mined;
  baselines::mine_ais(plt::testing::paper_table1(), 2,
                      core::collect_into(mined));
  FrequentItemsets expected;
  baselines::mine_brute_force(plt::testing::paper_table1(), 2,
                              core::collect_into(expected));
  plt::testing::expect_same_itemsets(mined, expected, "ais table1");
}

TEST(Ais, QuestWorkload) {
  datagen::QuestConfig cfg;
  cfg.transactions = 250;
  cfg.items = 25;
  cfg.seed = 3;
  const auto db = datagen::generate_quest(cfg);
  FrequentItemsets mined, expected;
  baselines::mine_ais(db, 4, core::collect_into(mined));
  baselines::mine_brute_force(db, 4, core::collect_into(expected));
  plt::testing::expect_same_itemsets(mined, expected, "ais quest");
}

TEST(Bitmap, ContainsMatchesDatabase) {
  const auto db = plt::testing::paper_table1();
  const tdb::BitmapView bitmap(db);
  EXPECT_EQ(bitmap.transactions(), 6u);
  for (std::size_t t = 0; t < db.size(); ++t) {
    for (Item i = 1; i <= 8; ++i) {
      const auto row = db[t];
      const bool expected =
          std::binary_search(row.begin(), row.end(), i);
      EXPECT_EQ(bitmap.contains(t, i), expected) << t << " " << i;
    }
  }
}

TEST(Bitmap, SupportMatchesScan) {
  Rng rng(31);
  tdb::Database db;
  std::vector<Item> row;
  for (int t = 0; t < 300; ++t) {
    row.clear();
    for (Item i = 1; i <= 70; ++i)  // cross the 64-bit word boundary
      if (rng.next_bool(0.2)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  const tdb::BitmapView bitmap(db);
  const auto view = core::build_ranked_view(db, 1);
  for (int trial = 0; trial < 200; ++trial) {
    Itemset query;
    Item item = 0;
    const auto len = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < len; ++i) {
      item += static_cast<Item>(rng.next_below(18) + 1);
      if (item > 70) break;
      query.push_back(item);
    }
    if (query.empty()) continue;
    Count expected = 0;
    for (std::size_t t = 0; t < db.size(); ++t)
      expected += std::includes(db[t].begin(), db[t].end(), query.begin(),
                                query.end());
    EXPECT_EQ(bitmap.support_of(query), expected);
  }
  (void)view;
}

TEST(Bitmap, OutOfRangeItems) {
  const auto db = tdb::Database::from_rows({{1, 2}});
  const tdb::BitmapView bitmap(db);
  EXPECT_FALSE(bitmap.contains(0, 99));
  EXPECT_EQ(bitmap.support_of(Itemset{99}), 0u);
  EXPECT_GT(bitmap.memory_usage(), 0u);
}

}  // namespace
}  // namespace plt
