// Tests for the physical tree form (Figure 3(b)/Figure 1): construction
// from the table form, lossless round trip, navigation, and the full
// lexicographic tree's combinatorics.
#include <gtest/gtest.h>

#include <map>

#include "core/builder.hpp"
#include "core/tree_view.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

std::map<PosVec, Count> plt_contents(const Plt& plt) {
  std::map<PosVec, Count> out;
  plt.for_each([&](Plt::Ref, std::span<const Pos> v,
                   const Partition::Entry& e) {
    out[PosVec(v.begin(), v.end())] = e.freq;
  });
  return out;
}

TEST(TreeView, PaperExampleTree) {
  const auto built =
      build_from_database(plt::testing::paper_table1(), 2);
  const TreeView tree = TreeView::from_plt(built.plt);

  // Paths of Figure 3(b): the five stored vectors share the [1,1] prefix
  // where possible. Root -> 1 -> 1 -> 1 holds ABC (freq 2).
  const auto abc = tree.find(PosVec{1, 1, 1});
  ASSERT_NE(abc, TreeView::kRoot);
  EXPECT_EQ(tree.node(abc).freq, 2u);
  EXPECT_EQ(tree.node(abc).rank, 3u);

  // ABCD extends the same path: one more child [1].
  const auto abcd = tree.find(PosVec{1, 1, 1, 1});
  ASSERT_NE(abcd, TreeView::kRoot);
  EXPECT_EQ(tree.node(abcd).parent, abc);
  EXPECT_EQ(tree.node(abcd).freq, 1u);

  // Internal nodes carry zero frequency.
  const auto ab = tree.find(PosVec{1, 1});
  ASSERT_NE(ab, TreeView::kRoot);
  EXPECT_EQ(tree.node(ab).freq, 0u);

  EXPECT_EQ(tree.find(PosVec{4}), TreeView::kRoot);  // no such path
}

TEST(TreeView, RoundTripToPlt) {
  const auto built =
      build_from_database(plt::testing::paper_table1(), 2);
  const TreeView tree = TreeView::from_plt(built.plt);
  const Plt back = tree.to_plt(built.plt.max_rank());
  EXPECT_EQ(plt_contents(back), plt_contents(built.plt));
}

TEST(TreeView, PathReconstruction) {
  Plt plt(8);
  plt.add(PosVec{2, 3, 1}, 4);
  const TreeView tree = TreeView::from_plt(plt);
  const auto id = tree.find(PosVec{2, 3, 1});
  ASSERT_NE(id, TreeView::kRoot);
  EXPECT_EQ(tree.path(id), (PosVec{2, 3, 1}));
  EXPECT_EQ(tree.node(id).rank, 6u);
}

TEST(TreeView, ChildrenSortedByPosition) {
  Plt plt(8);
  plt.add(PosVec{3}, 1);
  plt.add(PosVec{1}, 1);
  plt.add(PosVec{2}, 1);
  const TreeView tree = TreeView::from_plt(plt);
  const auto& root_children = tree.node(TreeView::kRoot).children;
  ASSERT_EQ(root_children.size(), 3u);
  EXPECT_EQ(tree.node(root_children[0]).position, 1u);
  EXPECT_EQ(tree.node(root_children[1]).position, 2u);
  EXPECT_EQ(tree.node(root_children[2]).position, 3u);
}

TEST(TreeView, SharedPrefixesShareNodes) {
  Plt plt(8);
  plt.add(PosVec{1, 1, 1}, 1);
  plt.add(PosVec{1, 1, 2}, 1);
  plt.add(PosVec{1, 2}, 1);
  const TreeView tree = TreeView::from_plt(plt);
  // Nodes: [1], [1,1], [1,1,1], [1,1,2], [1,2] -> 5 (+ root).
  EXPECT_EQ(tree.node_count(), 6u);
}

TEST(TreeView, FullLexicographicTreeNodeCount) {
  // Figure 1's tree over n items has 2^n - 1 nodes (every non-empty subset).
  for (const Rank n : {1u, 2u, 3u, 4u, 6u}) {
    const TreeView tree = TreeView::full_lexicographic(n);
    EXPECT_EQ(tree.node_count(), (1u << n)) << n;  // + root
  }
}

TEST(TreeView, FullLexicographicFigure2Positions) {
  const TreeView tree = TreeView::full_lexicographic(4);
  // Node C under A (= path ranks {1,3}) sits at position 2 — the paper's
  // Definition 4.1.2 example.
  const auto a = tree.find(PosVec{1});
  ASSERT_NE(a, TreeView::kRoot);
  const auto c_under_a = tree.child(a, 2);
  ASSERT_NE(c_under_a, TreeView::kRoot);
  EXPECT_EQ(tree.node(c_under_a).rank, 3u);
}

TEST(TreeView, FullLexicographicGuard) {
  EXPECT_DEATH(TreeView::full_lexicographic(17), "guarded");
}

TEST(TreeView, RenderingContainsStructure) {
  Plt plt(4);
  plt.add(PosVec{1, 2}, 7);
  const TreeView tree = TreeView::from_plt(plt);
  const auto text = tree.to_string();
  EXPECT_NE(text.find("(root)"), std::string::npos);
  EXPECT_NE(text.find("freq=7"), std::string::npos);
  EXPECT_NE(text.find("rank 3"), std::string::npos);
}

TEST(TreeView, WalkDepths) {
  Plt plt(4);
  plt.add(PosVec{1, 1, 1}, 1);
  const TreeView tree = TreeView::from_plt(plt);
  std::vector<std::size_t> depths;
  tree.walk([&](TreeView::NodeId, std::size_t depth) {
    depths.push_back(depth);
  });
  EXPECT_EQ(depths, (std::vector<std::size_t>{1, 2, 3}));
}

}  // namespace
}  // namespace plt::core
