// Unit tests for the transactional-database substrate: storage, FIMI IO
// (including failure injection), statistics, remapping, vertical layout.
#include <gtest/gtest.h>

#include <sstream>

#include "tdb/database.hpp"
#include "tdb/io.hpp"
#include "tdb/remap.hpp"
#include "tdb/stats.hpp"
#include "tdb/vertical.hpp"

namespace plt::tdb {
namespace {

TEST(Database, AddSortsAndDeduplicates) {
  Database db;
  db.add({5, 1, 3, 3, 1});
  ASSERT_EQ(db.size(), 1u);
  const auto t = db[0];
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 1u);
  EXPECT_EQ(t[1], 3u);
  EXPECT_EQ(t[2], 5u);
  EXPECT_EQ(db.max_item(), 5u);
}

TEST(Database, FromRowsAndEquality) {
  const auto a = Database::from_rows({{1, 2}, {2, 3}});
  const auto b = Database::from_rows({{2, 1}, {3, 2}});
  EXPECT_TRUE(a == b);
  const auto c = Database::from_rows({{1, 2}});
  EXPECT_FALSE(a == c);
}

TEST(Database, ItemSupports) {
  const auto db = Database::from_rows({{1, 2}, {2, 3}, {2}});
  const auto supports = db.item_supports();
  ASSERT_EQ(supports.size(), 4u);
  EXPECT_EQ(supports[0], 0u);
  EXPECT_EQ(supports[1], 1u);
  EXPECT_EQ(supports[2], 3u);
  EXPECT_EQ(supports[3], 1u);
}

TEST(Database, EmptyDatabase) {
  Database db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.total_items(), 0u);
  EXPECT_TRUE(db.item_supports().size() == 1u);
}

TEST(Io, RoundTrip) {
  const auto db = Database::from_rows({{1, 5, 9}, {2}, {3, 4}});
  std::ostringstream out;
  write_fimi(db, out);
  std::istringstream in(out.str());
  const auto loaded = read_fimi(in);
  EXPECT_TRUE(db == loaded);
}

TEST(Io, ParsesWhitespaceVariants) {
  std::istringstream in("1  2\t3\n\n7\n");
  const auto db = read_fimi(in);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db[0].size(), 3u);
  EXPECT_EQ(db[1].size(), 1u);
}

TEST(Io, RejectsNonNumericTokens) {
  std::istringstream in("1 2\n3 x 4\n");
  EXPECT_THROW(read_fimi(in), std::runtime_error);
}

TEST(Io, RejectsOverflowingIds) {
  std::istringstream in("99999999999999999999\n");
  EXPECT_THROW(read_fimi(in), std::runtime_error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_fimi_file("/nonexistent/path/data.dat"),
               std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  const auto db = Database::from_rows({{10, 20}, {30}});
  const std::string path = ::testing::TempDir() + "/plt_io_test.dat";
  write_fimi_file(db, path);
  const auto loaded = read_fimi_file(path);
  EXPECT_TRUE(db == loaded);
}

TEST(Stats, BasicShape) {
  const auto db = Database::from_rows({{1, 2, 3}, {1, 2}, {9}});
  const auto s = compute_stats(db);
  EXPECT_EQ(s.transactions, 3u);
  EXPECT_EQ(s.total_items, 6u);
  EXPECT_EQ(s.distinct_items, 4u);
  EXPECT_EQ(s.min_len, 1u);
  EXPECT_EQ(s.max_len, 3u);
  EXPECT_DOUBLE_EQ(s.avg_len, 2.0);
  EXPECT_DOUBLE_EQ(s.density, 0.5);
  ASSERT_GE(s.length_histogram.size(), 4u);
  EXPECT_EQ(s.length_histogram[1], 1u);
  EXPECT_EQ(s.length_histogram[2], 1u);
  EXPECT_EQ(s.length_histogram[3], 1u);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Stats, GiniZeroForUniformSupports) {
  const auto db = Database::from_rows({{1, 2}, {1, 2}});
  const auto s = compute_stats(db);
  EXPECT_NEAR(s.support_gini, 0.0, 1e-12);
}

TEST(Stats, GiniGrowsWithSkew) {
  const auto uniform = Database::from_rows({{1}, {2}, {3}, {4}});
  Database skewed;
  for (int i = 0; i < 97; ++i) skewed.add({1});
  skewed.add({2});
  skewed.add({3});
  skewed.add({4});
  EXPECT_GT(compute_stats(skewed).support_gini,
            compute_stats(uniform).support_gini + 0.3);
}

TEST(Remap, FiltersInfrequentAndRenumbers) {
  const auto db =
      Database::from_rows({{1, 5, 9}, {1, 5}, {1, 9}, {1}, {7}});
  const auto remap = build_remap(db, 2);
  // Supports: 1->4, 5->2, 9->2, 7->1. Survivors by id: 1, 5, 9.
  EXPECT_EQ(remap.alphabet_size(), 3u);
  EXPECT_EQ(remap.map(1), std::optional<Item>(1));
  EXPECT_EQ(remap.map(5), std::optional<Item>(2));
  EXPECT_EQ(remap.map(9), std::optional<Item>(3));
  EXPECT_EQ(remap.map(7), std::nullopt);
  EXPECT_EQ(remap.map(100), std::nullopt);
  EXPECT_EQ(remap.unmap(2), 5u);
  EXPECT_EQ(remap.support[0], 4u);
}

TEST(Remap, FreqAscendingOrder) {
  const auto db =
      Database::from_rows({{1, 5, 9}, {1, 5}, {1, 9}, {1}, {9}});
  // Supports: 1->4, 5->2, 9->3.
  const auto remap = build_remap(db, 2, ItemOrder::kByFreqAscending);
  EXPECT_EQ(remap.map(5), std::optional<Item>(1));  // least frequent first
  EXPECT_EQ(remap.map(9), std::optional<Item>(2));
  EXPECT_EQ(remap.map(1), std::optional<Item>(3));
}

TEST(Remap, FreqDescendingOrder) {
  const auto db =
      Database::from_rows({{1, 5, 9}, {1, 5}, {1, 9}, {1}, {9}});
  const auto remap = build_remap(db, 2, ItemOrder::kByFreqDescending);
  EXPECT_EQ(remap.map(1), std::optional<Item>(1));  // most frequent first
  EXPECT_EQ(remap.map(9), std::optional<Item>(2));
  EXPECT_EQ(remap.map(5), std::optional<Item>(3));
}

TEST(Remap, TiesBrokenByItemId) {
  const auto db = Database::from_rows({{3, 7}, {3, 7}});
  const auto remap = build_remap(db, 1, ItemOrder::kByFreqAscending);
  EXPECT_EQ(remap.map(3), std::optional<Item>(1));
  EXPECT_EQ(remap.map(7), std::optional<Item>(2));
}

TEST(Remap, ApplyDropsEmptyTransactions) {
  const auto db = Database::from_rows({{1, 2}, {9}, {1}});
  const auto remap = build_remap(db, 2);  // only item 1 survives
  const auto mapped = apply_remap(db, remap);
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_EQ(mapped[0].size(), 1u);
  EXPECT_EQ(mapped[0][0], 1u);
}

TEST(Remap, UnmapItemsetSortsOriginals) {
  const auto db = Database::from_rows({{10, 20, 30}, {10, 20, 30}});
  const auto remap = build_remap(db, 1, ItemOrder::kByFreqAscending);
  const Itemset mapped{3, 1};
  const auto original = unmap_itemset(remap, mapped);
  ASSERT_EQ(original.size(), 2u);
  EXPECT_LT(original[0], original[1]);
}

TEST(Vertical, TidsetsMatchDatabase) {
  const auto db = Database::from_rows({{1, 3}, {2, 3}, {1, 2, 3}});
  const VerticalView v(db);
  EXPECT_EQ(v.transactions(), 3u);
  const auto t1 = v.tidset(1);
  ASSERT_EQ(t1.size(), 2u);
  EXPECT_EQ(t1[0], 0u);
  EXPECT_EQ(t1[1], 2u);
  EXPECT_EQ(v.support(3), 3u);
  EXPECT_EQ(v.support(99), 0u);  // out-of-range item -> empty
}

TEST(Vertical, IntersectAndDifference) {
  const std::vector<Tid> a{1, 3, 5, 7};
  const std::vector<Tid> b{3, 4, 5};
  const auto inter = intersect(a, b);
  EXPECT_EQ(inter, (std::vector<Tid>{3, 5}));
  const auto diff = difference(a, b);
  EXPECT_EQ(diff, (std::vector<Tid>{1, 7}));
}

TEST(Vertical, MemoryUsageIsPositive) {
  const auto db = Database::from_rows({{1, 2, 3}});
  const VerticalView v(db);
  EXPECT_GT(v.memory_usage(), 0u);
}

}  // namespace
}  // namespace plt::tdb
