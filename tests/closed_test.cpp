// Closed/maximal itemset tests: definitions checked directly against
// brute-force filters on randomized workloads, plus hand-checked cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/closed.hpp"
#include "core/miner.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

// Direct-from-definition filters (quadratic; tests only).
FrequentItemsets closed_brute(const FrequentItemsets& frequent) {
  FrequentItemsets out;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    bool is_closed = true;
    for (std::size_t j = 0; j < frequent.size() && is_closed; ++j) {
      if (i == j) continue;
      const auto s = frequent.itemset(j);
      if (s.size() > z.size() &&
          frequent.support(j) == frequent.support(i) &&
          std::includes(s.begin(), s.end(), z.begin(), z.end()))
        is_closed = false;
    }
    if (is_closed) out.add(z, frequent.support(i));
  }
  return out;
}

FrequentItemsets maximal_brute(const FrequentItemsets& frequent) {
  FrequentItemsets out;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    bool is_maximal = true;
    for (std::size_t j = 0; j < frequent.size() && is_maximal; ++j) {
      if (i == j) continue;
      const auto s = frequent.itemset(j);
      if (s.size() > z.size() &&
          std::includes(s.begin(), s.end(), z.begin(), z.end()))
        is_maximal = false;
    }
    if (is_maximal) out.add(z, frequent.support(i));
  }
  return out;
}

TEST(Closed, PaperExample) {
  const auto mined =
      mine(plt::testing::paper_table1(), 2, Algorithm::kPltConditional);
  const auto closed = closed_itemsets(mined.itemsets);
  // {A} sup 4 == {A,B} sup 4 -> {A} not closed. {B},{C} sup 5 are closed.
  EXPECT_EQ(closed.find_support(Itemset{1}), 0u);
  EXPECT_EQ(closed.find_support(Itemset{2}), 5u);
  EXPECT_EQ(closed.find_support(Itemset{3}), 5u);
  EXPECT_EQ(closed.find_support(Itemset{1, 2}), 4u);
  plt::testing::expect_same_itemsets(closed, closed_brute(mined.itemsets),
                                     "closed");
}

TEST(Maximal, PaperExample) {
  const auto mined =
      mine(plt::testing::paper_table1(), 2, Algorithm::kPltConditional);
  const auto maximal = maximal_itemsets(mined.itemsets);
  // Maximal at minsup 2: ABC, ABD, BCD (every smaller set extends).
  EXPECT_EQ(maximal.size(), 3u);
  EXPECT_EQ(maximal.find_support(Itemset{1, 2, 3}), 3u);
  EXPECT_EQ(maximal.find_support(Itemset{1, 2, 4}), 2u);
  EXPECT_EQ(maximal.find_support(Itemset{2, 3, 4}), 2u);
  plt::testing::expect_same_itemsets(maximal,
                                     maximal_brute(mined.itemsets),
                                     "maximal");
}

class CondensedTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Count>> {};

TEST_P(CondensedTest, MatchesDefinitionsAndInvariants) {
  const auto [seed, minsup] = GetParam();
  datagen::DenseConfig cfg;
  cfg.transactions = 200;
  cfg.items = 14;
  cfg.density = 0.4;
  cfg.classes = 3;
  cfg.seed = seed;
  const auto db = datagen::generate_dense(cfg);
  const auto mined = mine(db, minsup, Algorithm::kFpGrowth);

  const auto closed = closed_itemsets(mined.itemsets);
  const auto maximal = maximal_itemsets(mined.itemsets);
  plt::testing::expect_same_itemsets(closed, closed_brute(mined.itemsets),
                                     "closed");
  plt::testing::expect_same_itemsets(maximal,
                                     maximal_brute(mined.itemsets),
                                     "maximal");
  EXPECT_EQ(check_condensed(mined.itemsets, closed, maximal), "");
  // Condensation: maximal <= closed <= frequent.
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), mined.itemsets.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CondensedTest,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4),
                       ::testing::Values<Count>(3, 8, 20)));

TEST(Condensed, CheckerDetectsViolations) {
  const auto mined =
      mine(plt::testing::paper_table1(), 2, Algorithm::kPltConditional);
  const auto closed = closed_itemsets(mined.itemsets);
  auto maximal = maximal_itemsets(mined.itemsets);
  // Corrupt maximal: add a non-closed itemset.
  maximal.add(Itemset{1}, 4);
  EXPECT_NE(check_condensed(mined.itemsets, closed, maximal), "");
}

TEST(Condensed, SingletonsOnly) {
  const auto db = tdb::Database::from_rows({{1}, {2}, {1}, {2}});
  const auto mined = mine(db, 2, Algorithm::kPltConditional);
  const auto closed = closed_itemsets(mined.itemsets);
  const auto maximal = maximal_itemsets(mined.itemsets);
  EXPECT_EQ(closed.size(), 2u);   // both singletons closed
  EXPECT_EQ(maximal.size(), 2u);  // and maximal
}

TEST(Condensed, EmptyInput) {
  FrequentItemsets none;
  EXPECT_TRUE(closed_itemsets(none).empty());
  EXPECT_TRUE(maximal_itemsets(none).empty());
}

}  // namespace
}  // namespace plt::core
