// Differential suite for the adaptive execution planner: on the paper's
// Table 1 and scaled-down versions of both sweep generators, the adaptive
// plan must produce exactly what the fixed plan produces — canonically
// always, and in raw emission order whenever the root strategy is pinned
// (DESIGN.md S25 proves per-subtree strategies are emission-order
// invariant, which is what keeps OOC checkpoint logs exact across plans).
// Runs with structural validation on, and under tsan via the threaded
// label (plans are shared immutably across parallel workers).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "core/planner.hpp"
#include "core/validate.hpp"
#include "harness/datasets.hpp"
#include "harness/experiment.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"

namespace plt {
namespace {

struct PlanGuard {
  ~PlanGuard() { core::select_plan("fixed"); }
};

// Raw emission-order equality — stricter than FrequentItemsets::equal,
// which canonicalizes both sides first.
void expect_same_order(const core::FrequentItemsets& fixed,
                       const core::FrequentItemsets& adaptive,
                       const char* label) {
  ASSERT_EQ(fixed.size(), adaptive.size()) << label;
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    ASSERT_EQ(fixed.support(i), adaptive.support(i))
        << label << " at emission " << i;
    const auto a = fixed.itemset(i);
    const auto b = adaptive.itemset(i);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << label << " at emission " << i;
  }
}

// A config that pins the root to the conditional engine so only the
// per-subtree strategies differ — the regime where raw order must match.
core::PlanConfig subtree_only() {
  core::PlanConfig config;
  config.allow_root_topdown = false;
  config.allow_root_eclat = false;
  return config;
}

// MineOptions::plan switches the process-wide selection (mirroring
// kernel_backend), so baselines must pin "fixed" explicitly — an earlier
// adaptive run in the same test would otherwise leak into them.
core::MineOptions fixed_plan() {
  core::MineOptions options;
  options.plan = "fixed";
  return options;
}

TEST(AdaptiveDifferential, Table1EverySupport) {
  PlanGuard guard;
  const auto db = testing::paper_table1();
  for (Count minsup = 1; minsup <= 6; ++minsup) {
    const auto fixed = core::mine(db, minsup, core::Algorithm::kPltConditional,
                                  fixed_plan());

    core::MineOptions adaptive;
    adaptive.plan = "adaptive";
    const auto planned =
        core::mine(db, minsup, core::Algorithm::kPltConditional, adaptive);
    testing::expect_same_itemsets(fixed.itemsets, planned.itemsets,
                                  "table1 adaptive");

    core::MineOptions pinned = adaptive;
    pinned.plan_config = subtree_only();
    const auto ordered =
        core::mine(db, minsup, core::Algorithm::kPltConditional, pinned);
    expect_same_order(fixed.itemsets, ordered.itemsets, "table1 raw order");
  }
}

// Both sweep generators at bench scale-down: the exact matrix
// bench_adaptive times, here only checked for output identity.
TEST(AdaptiveDifferential, SweepGenerators) {
  PlanGuard guard;
  core::set_validation_enabled(true);
  const struct {
    const char* dataset;
    double scale;
    double fraction;
  } cases[] = {
      {"quest-sparse", 0.05, 0.01},
      {"quest-sparse", 0.05, 0.002},
      {"chess-like", 0.05, 0.85},
      {"chess-like", 0.05, 0.70},
      {"short-dense", 0.05, 0.05},
      {"short-dense", 0.05, 0.001},
  };
  for (const auto& c : cases) {
    const auto db = harness::scaled_dataset(c.dataset, c.scale);
    const Count minsup = harness::absolute_support(db, c.fraction);
    const auto fixed = core::mine(db, minsup, core::Algorithm::kPltConditional,
                                  fixed_plan());

    core::MineOptions adaptive;
    adaptive.plan = "adaptive";
    const auto planned =
        core::mine(db, minsup, core::Algorithm::kPltConditional, adaptive);
    testing::expect_same_itemsets(fixed.itemsets, planned.itemsets,
                                  c.dataset);

    core::MineOptions pinned = adaptive;
    pinned.plan_config = subtree_only();
    const auto ordered =
        core::mine(db, minsup, core::Algorithm::kPltConditional, pinned);
    expect_same_order(fixed.itemsets, ordered.itemsets, c.dataset);
  }
  core::set_validation_enabled(false);
}

// The planner is shared by reference across workers; results must not
// depend on the plan or the thread count.
TEST(AdaptiveDifferential, ParallelThreadCounts) {
  PlanGuard guard;
  const auto db = harness::scaled_dataset("quest-sparse", 0.05);
  const Count minsup = harness::absolute_support(db, 0.005);
  const auto reference = core::mine(
      db, minsup, core::Algorithm::kPltConditional, fixed_plan());
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    parallel::ParallelOptions options;
    options.threads = threads;
    options.plan = "adaptive";
    const auto result = parallel::mine_parallel(db, minsup, options);
    testing::expect_same_itemsets(reference.itemsets, result.itemsets,
                                  "parallel adaptive");
  }
}

TEST(AdaptiveDifferential, ParallelRejectsUnknownPlan) {
  PlanGuard guard;
  parallel::ParallelOptions options;
  options.plan = "bogus";
  EXPECT_THROW(
      parallel::mine_parallel(testing::paper_table1(), 2, options),
      std::invalid_argument);
}

// The OOC walk streams subtrees through the same pooled engine; checkpoint
// records replay emissions verbatim, so the raw order must be
// plan-invariant (not just the canonical set).
TEST(AdaptiveDifferential, OutOfCoreBlobPath) {
  PlanGuard guard;
  const auto db = harness::scaled_dataset("short-dense", 0.05);
  const Count minsup = harness::absolute_support(db, 0.01);
  const auto built = core::build_from_database(db, minsup);
  const auto blob = compress::encode_plt(built.plt);
  std::vector<Item> item_of(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    item_of[r - 1] = built.view.item_of(r);

  compress::OocOptions fixed_ooc;
  fixed_ooc.plan = "fixed";
  core::FrequentItemsets fixed;
  ASSERT_EQ(compress::mine_from_blob(blob, item_of, minsup,
                                     core::collect_into(fixed), nullptr,
                                     fixed_ooc),
            core::MineStatus::kCompleted);

  compress::OocOptions adaptive;
  adaptive.plan = "adaptive";
  core::FrequentItemsets planned;
  ASSERT_EQ(compress::mine_from_blob(blob, item_of, minsup,
                                     core::collect_into(planned), nullptr,
                                     adaptive),
            core::MineStatus::kCompleted);
  expect_same_order(fixed, planned, "ooc raw order");

  compress::OocOptions bogus;
  bogus.plan = "bogus";
  core::FrequentItemsets sinkhole;
  EXPECT_THROW(compress::mine_from_blob(blob, item_of, minsup,
                                        core::collect_into(sinkhole),
                                        nullptr, bogus),
               std::invalid_argument);
}

}  // namespace
}  // namespace plt
