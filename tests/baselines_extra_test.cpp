// Targeted tests for the extended candidate-generation family: AprioriTid,
// DHP, DIC and the Partition algorithm (the agreement suite already runs
// them against the oracle; these pin algorithm-specific behaviours).
#include <gtest/gtest.h>

#include "baselines/apriori.hpp"
#include "baselines/brute.hpp"
#include "baselines/counting.hpp"
#include "baselines/dic.hpp"
#include "baselines/partition_alg.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::baselines {
namespace {

using core::FrequentItemsets;

FrequentItemsets oracle(const tdb::Database& db, Count minsup) {
  FrequentItemsets out;
  mine_brute_force(db, minsup, core::collect_into(out));
  return out;
}

tdb::Database random_db(std::uint64_t seed, std::size_t transactions,
                        std::size_t items, double density) {
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (std::size_t t = 0; t < transactions; ++t) {
    row.clear();
    for (Item i = 1; i <= items; ++i)
      if (rng.next_bool(density)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  return db;
}

TEST(CountingTrie, ExactSupportsMixedLengths) {
  const auto db = plt::testing::paper_table1();
  const std::vector<Itemset> candidates = {
      {1}, {2, 3}, {1, 2, 3}, {1, 3, 4}, {5}, {1, 2, 3, 4}, {6, 7}};
  const auto counts = count_supports(db, candidates);
  EXPECT_EQ(counts, (std::vector<Count>{4, 4, 3, 1, 1, 1, 0}));
}

TEST(CountingTrie, DuplicateCandidateSharesLeaf) {
  const auto db = plt::testing::paper_table1();
  // The second copy lands on the same trie leaf, so only one of the two
  // entries accumulates; this is a documented precondition (unique input).
  const std::vector<Itemset> candidates = {{2, 3}};
  EXPECT_EQ(count_supports(db, candidates)[0], 4u);
}

TEST(AprioriTid, PaperExample) {
  FrequentItemsets mined;
  mine_apriori_tid(plt::testing::paper_table1(), 2,
                   core::collect_into(mined));
  plt::testing::expect_same_itemsets(
      mined, oracle(plt::testing::paper_table1(), 2), "apriori-tid");
}

TEST(AprioriTid, StatsReportEncodedDatabase) {
  BaselineStats stats;
  FrequentItemsets mined;
  mine_apriori_tid(random_db(5, 150, 12, 0.3), 5, core::collect_into(mined),
                   &stats);
  EXPECT_GT(stats.structure_bytes, 0u);
  EXPECT_GE(stats.mine_seconds, 0.0);
}

TEST(Dhp, AgreesWithApriorAcrossBucketCounts) {
  const auto db = random_db(7, 200, 14, 0.3);
  FrequentItemsets reference;
  mine_apriori(db, 4, core::collect_into(reference));
  // Tiny bucket tables force heavy collisions; pruning must stay safe.
  for (const std::size_t buckets : {2u, 16u, 256u, 1u << 16}) {
    FrequentItemsets mined;
    mine_dhp(db, 4, core::collect_into(mined), nullptr, buckets);
    plt::testing::expect_same_itemsets(mined, reference,
                                       "dhp bucket sweep");
  }
}

TEST(Dic, BlockSizeDoesNotChangeTheAnswer) {
  const auto db = random_db(9, 157, 12, 0.35);  // prime-ish size: partial
  const auto reference = oracle(db, 5);         // final block every cycle
  for (const std::size_t block : {1u, 7u, 64u, 157u, 1000u}) {
    DicOptions options;
    options.block_size = block;
    FrequentItemsets mined;
    mine_dic(db, 5, core::collect_into(mined), nullptr, options);
    plt::testing::expect_same_itemsets(mined, reference,
                                       "dic block sweep");
  }
}

TEST(Dic, PaperExampleSmallBlocks) {
  DicOptions options;
  options.block_size = 2;
  FrequentItemsets mined;
  mine_dic(plt::testing::paper_table1(), 2, core::collect_into(mined),
           nullptr, options);
  EXPECT_EQ(mined.size(), 13u);
  EXPECT_EQ(mined.find_support(Itemset{2, 3, 4}), 2u);
}

TEST(Partition, ChunkCountDoesNotChangeTheAnswer) {
  const auto db = random_db(11, 230, 13, 0.3);
  const auto reference = oracle(db, 6);
  for (const std::size_t chunks : {1u, 2u, 5u, 16u, 230u, 1000u}) {
    PartitionOptions options;
    options.partitions = chunks;
    FrequentItemsets mined;
    mine_partition(db, 6, core::collect_into(mined), nullptr, options);
    plt::testing::expect_same_itemsets(mined, reference,
                                       "partition chunk sweep");
  }
}

TEST(Partition, SkewedDataAcrossChunks) {
  // Pattern concentrated in the last chunk: locally frequent there, absent
  // elsewhere — must still be found (and globally verified).
  tdb::Database db;
  for (int i = 0; i < 90; ++i) db.add({1u + static_cast<Item>(i % 7)});
  for (int i = 0; i < 10; ++i) db.add({20, 21});
  PartitionOptions options;
  options.partitions = 4;
  FrequentItemsets mined;
  mine_partition(db, 8, core::collect_into(mined), nullptr, options);
  EXPECT_EQ(mined.find_support(Itemset{20, 21}), 10u);
}

TEST(NewBaselines, EmptyAndDegenerate) {
  tdb::Database empty;
  for (const auto algorithm :
       {core::Algorithm::kAprioriTid, core::Algorithm::kDhp,
        core::Algorithm::kDic, core::Algorithm::kPartition}) {
    const auto result = core::mine(empty, 1, algorithm);
    EXPECT_TRUE(result.itemsets.empty())
        << core::algorithm_name(algorithm);
  }
  const auto single = tdb::Database::from_rows({{42}});
  for (const auto algorithm :
       {core::Algorithm::kAprioriTid, core::Algorithm::kDhp,
        core::Algorithm::kDic, core::Algorithm::kPartition}) {
    const auto result = core::mine(single, 1, algorithm);
    EXPECT_EQ(result.itemsets.find_support(Itemset{42}), 1u)
        << core::algorithm_name(algorithm);
  }
}

}  // namespace
}  // namespace plt::baselines
