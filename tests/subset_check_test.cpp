// Positional subset checking: correctness of the streaming prefix-sum
// inclusion test against std::includes, and support_of against full scans.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/builder.hpp"
#include "core/subset_check.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

TEST(SubsetCheck, HandPickedCases) {
  // {1,3} ⊆ {1,2,3}: [1,2] vs [1,1,1].
  EXPECT_TRUE(positional_subset(PosVec{1, 2}, PosVec{1, 1, 1}));
  // {2} ⊆ {1,2,3}.
  EXPECT_TRUE(positional_subset(PosVec{2}, PosVec{1, 1, 1}));
  // {4} ⊄ {1,2,3}.
  EXPECT_FALSE(positional_subset(PosVec{4}, PosVec{1, 1, 1}));
  // {1,4} ⊄ {1,2,3}.
  EXPECT_FALSE(positional_subset(PosVec{1, 3}, PosVec{1, 1, 1}));
  // Equal sets.
  EXPECT_TRUE(positional_subset(PosVec{2, 1}, PosVec{2, 1}));
  // Longer can't be a subset of shorter.
  EXPECT_FALSE(positional_subset(PosVec{1, 1, 1}, PosVec{1, 2}));
  // Empty set is a subset of anything.
  EXPECT_TRUE(positional_subset(PosVec{}, PosVec{3}));
  EXPECT_TRUE(positional_subset(PosVec{}, PosVec{}));
}

TEST(SubsetCheck, RandomizedAgainstStdIncludes) {
  Rng rng(71);
  for (int trial = 0; trial < 3000; ++trial) {
    auto make = [&](std::size_t max_size) {
      std::vector<Rank> ranks;
      Rank r = 0;
      const auto n = rng.next_below(max_size + 1);
      for (std::uint64_t i = 0; i < n; ++i) {
        r += static_cast<Rank>(rng.next_below(4) + 1);
        ranks.push_back(r);
      }
      return ranks;
    };
    const auto x = make(6);
    const auto y = make(10);
    const bool expected =
        std::includes(y.begin(), y.end(), x.begin(), x.end());
    EXPECT_EQ(positional_subset(to_positions(x), to_positions(y)), expected);
    EXPECT_EQ(ranks_subset_of(x, to_positions(y)), expected);
  }
}

TEST(SubsetCheck, SupportQueriesAgree) {
  Rng rng(73);
  tdb::Database db;
  std::vector<Item> row;
  for (int t = 0; t < 200; ++t) {
    row.clear();
    for (Item i = 1; i <= 14; ++i)
      if (rng.next_bool(0.3)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  const auto view = build_ranked_view(db, 1);
  const Plt plt = build_plt(view.db, static_cast<Rank>(view.alphabet()));

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Rank> query;
    Rank r = 0;
    const auto len = 1 + rng.next_below(4);
    for (std::uint64_t i = 0; i < len; ++i) {
      r += static_cast<Rank>(rng.next_below(4) + 1);
      if (r > view.alphabet()) break;
      query.push_back(r);
    }
    if (query.empty()) continue;
    EXPECT_EQ(support_of(plt, query), support_of_scan(view.db, query));
  }
}

TEST(SubsetCheck, EmptyQueryIsTotalMass) {
  const auto db = tdb::Database::from_rows({{1, 2}, {2, 3}, {1}});
  const auto view = build_ranked_view(db, 1);
  const Plt plt = build_plt(view.db, 3);
  EXPECT_EQ(support_of(plt, {}), 3u);
}

TEST(SubsetCheck, AggregatedDuplicatesCountFully) {
  tdb::Database db;
  for (int i = 0; i < 10; ++i) db.add({1, 2, 3});
  const auto view = build_ranked_view(db, 1);
  const Plt plt = build_plt(view.db, 3);
  const std::vector<Rank> q{1, 3};
  EXPECT_EQ(support_of(plt, q), 10u);
}

}  // namespace
}  // namespace plt::core
