// Tests for the Partition hash table and the Plt container (sum buckets,
// iteration, memory accounting, rendering).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/plt.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

TEST(Partition, AddAndFind) {
  Partition p(3);
  bool created = false;
  const auto id = p.add(PosVec{1, 1, 2}, 2, created);
  EXPECT_TRUE(created);
  EXPECT_EQ(p.find(PosVec{1, 1, 2}), id);
  EXPECT_EQ(p.entry(id).freq, 2u);
  EXPECT_EQ(p.entry(id).sum, 4u);
  EXPECT_EQ(p.find(PosVec{1, 2, 1}), Partition::kNoEntry);
}

TEST(Partition, DuplicateAddAccumulates) {
  Partition p(2);
  bool created = false;
  const auto a = p.add(PosVec{2, 3}, 1, created);
  EXPECT_TRUE(created);
  const auto b = p.add(PosVec{2, 3}, 4, created);
  EXPECT_FALSE(created);
  EXPECT_EQ(a, b);
  EXPECT_EQ(p.entry(a).freq, 5u);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.total_freq(), 5u);
}

TEST(Partition, GrowsPastInitialIndexSize) {
  Partition p(1);
  for (Pos v = 1; v <= 1000; ++v) p.add(PosVec{v}, 1);
  EXPECT_EQ(p.size(), 1000u);
  for (Pos v = 1; v <= 1000; ++v) {
    const auto id = p.find(PosVec{v});
    ASSERT_NE(id, Partition::kNoEntry) << v;
    EXPECT_EQ(p.entry(id).freq, 1u);
  }
}

TEST(Partition, RandomizedAgainstStdMap) {
  Rng rng(55);
  Partition p(4);
  std::map<PosVec, Count> reference;
  for (int op = 0; op < 5000; ++op) {
    PosVec v;
    for (int i = 0; i < 4; ++i)
      v.push_back(static_cast<Pos>(rng.next_below(6) + 1));
    const Count freq = rng.next_below(3) + 1;
    p.add(v, freq);
    reference[v] += freq;
  }
  EXPECT_EQ(p.size(), reference.size());
  for (const auto& [v, freq] : reference) {
    const auto id = p.find(v);
    ASSERT_NE(id, Partition::kNoEntry);
    EXPECT_EQ(p.entry(id).freq, freq);
  }
}

TEST(Partition, IterationCoversAllEntriesOnce) {
  Partition p(2);
  p.add(PosVec{1, 1}, 1);
  p.add(PosVec{2, 1}, 2);
  p.add(PosVec{1, 3}, 3);
  std::set<std::pair<Pos, Pos>> seen;
  p.for_each([&](Partition::EntryId, std::span<const Pos> v,
                 const Partition::Entry&) {
    seen.insert({v[0], v[1]});
  });
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Partition, HashSpreads) {
  // Sanity: nearby vectors hash differently most of the time.
  std::set<std::uint64_t> hashes;
  for (Pos a = 1; a <= 16; ++a)
    for (Pos b = 1; b <= 16; ++b) hashes.insert(Partition::hash(PosVec{a, b}));
  EXPECT_GT(hashes.size(), 250u);
}

TEST(PartitionDeath, WrongLengthRejected) {
  Partition p(2);
  EXPECT_DEATH(p.add(PosVec{1}, 1), "length");
  EXPECT_DEATH(p.find(PosVec{1, 2, 3}), "length");
}

TEST(Plt, AddRoutesToCorrectPartitionAndBucket) {
  Plt plt(6);
  plt.add(PosVec{1, 2}, 1);      // sum 3, len 2
  plt.add(PosVec{3}, 2);         // sum 3, len 1
  plt.add(PosVec{1, 1, 1}, 1);   // sum 3, len 3
  plt.add(PosVec{6}, 1);         // sum 6, len 1

  EXPECT_EQ(plt.max_len(), 3u);
  EXPECT_EQ(plt.num_vectors(), 4u);
  EXPECT_EQ(plt.total_freq(), 5u);

  const auto bucket3 = plt.bucket(3);
  EXPECT_EQ(bucket3.size(), 3u);
  EXPECT_EQ(plt.bucket(6).size(), 1u);
  EXPECT_EQ(plt.bucket(1).size(), 0u);

  EXPECT_EQ(plt.freq_of(PosVec{3}), 2u);
  EXPECT_EQ(plt.freq_of(PosVec{2, 1}), 0u);
  EXPECT_EQ(plt.freq_of(PosVec{1, 2, 3, 4}), 0u);  // no such partition
}

TEST(Plt, DuplicateAddDoesNotDuplicateBucketEntry) {
  Plt plt(4);
  plt.add(PosVec{2, 2}, 1);
  plt.add(PosVec{2, 2}, 1);
  EXPECT_EQ(plt.bucket(4).size(), 1u);
  EXPECT_EQ(plt.freq_of(PosVec{2, 2}), 2u);
}

TEST(Plt, ForEachVisitsEverything) {
  Plt plt(8);
  plt.add(PosVec{1}, 1);
  plt.add(PosVec{2, 2}, 2);
  plt.add(PosVec{1, 1, 1}, 3);
  Count total = 0;
  std::size_t count = 0;
  plt.for_each([&](Plt::Ref, std::span<const Pos>,
                   const Partition::Entry& e) {
    total += e.freq;
    ++count;
  });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(total, 6u);
}

TEST(Plt, ToStringListsPartitions) {
  Plt plt(4);
  plt.add(PosVec{1, 1}, 3);
  const auto text = plt.to_string();
  EXPECT_NE(text.find("D2:"), std::string::npos);
  EXPECT_NE(text.find("[1,1] sum=2 freq=3"), std::string::npos);
}

TEST(Plt, MemoryUsageGrowsWithContent) {
  Plt small(4);
  small.add(PosVec{1}, 1);
  Plt big(4);
  for (Pos a = 1; a <= 4; ++a)
    for (Pos b = 1; a + b <= 4; ++b) big.add(PosVec{a, b}, 1);
  EXPECT_GT(big.memory_usage(), 0u);
  EXPECT_GE(big.memory_usage(), small.memory_usage());
}

TEST(PltDeath, SumAboveMaxRankRejected) {
  Plt plt(3);
  EXPECT_DEATH(plt.add(PosVec{2, 2}, 1), "exceeds");
  EXPECT_DEATH(plt.add(PosVec{}, 1), "empty");
}

}  // namespace
}  // namespace plt::core
