// Golden tests pinning the paper's worked example end-to-end: Table 1,
// the §4.2 rank assignment, the Figure 3 matrices structure, the Figure 4
// database after top-down propagation, and the Figure 5 conditional
// database of item D.
#include <gtest/gtest.h>

#include <map>

#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

constexpr Item A = 1, B = 2, C = 3, D = 4;
constexpr Count kMinSup = 2;  // the paper's absolute support count

// §4.2: frequent 1-items {(A,4),(B,5),(C,5),(D,4)}; Rank(A..D) = 1..4.
TEST(PaperExample, RankAssignment) {
  const auto view =
      build_ranked_view(plt::testing::paper_table1(), kMinSup);
  ASSERT_EQ(view.alphabet(), 4u);
  EXPECT_EQ(view.item_of(1), A);
  EXPECT_EQ(view.item_of(2), B);
  EXPECT_EQ(view.item_of(3), C);
  EXPECT_EQ(view.item_of(4), D);
  EXPECT_EQ(view.support_of(1), 4u);
  EXPECT_EQ(view.support_of(2), 5u);
  EXPECT_EQ(view.support_of(3), 5u);
  EXPECT_EQ(view.support_of(4), 4u);
  // E and F are filtered out.
  EXPECT_EQ(view.remap.map(5), std::nullopt);
  EXPECT_EQ(view.remap.map(6), std::nullopt);
}

// Figure 3(a): the matrices (partition) structure after construction.
TEST(PaperExample, Figure3MatricesStructure) {
  const auto built =
      build_from_database(plt::testing::paper_table1(), kMinSup);
  const Plt& plt = built.plt;

  // Six transactions collapse to five distinct vectors.
  EXPECT_EQ(plt.num_vectors(), 5u);
  EXPECT_EQ(plt.total_freq(), 6u);
  EXPECT_EQ(plt.max_len(), 4u);

  // D2: CD -> [3,1] x1.
  EXPECT_EQ(plt.freq_of(PosVec{3, 1}), 1u);
  // D3: ABC -> [1,1,1] x2 (TIDs 1,2); ABD -> [1,1,2] x1; BCD -> [2,1,1] x1.
  EXPECT_EQ(plt.freq_of(PosVec{1, 1, 1}), 2u);
  EXPECT_EQ(plt.freq_of(PosVec{1, 1, 2}), 1u);
  EXPECT_EQ(plt.freq_of(PosVec{2, 1, 1}), 1u);
  // D4: ABCD -> [1,1,1,1] x1.
  EXPECT_EQ(plt.freq_of(PosVec{1, 1, 1, 1}), 1u);

  // Stored sums (the paper keeps V.sum with each vector).
  const auto* d3 = plt.partition(3);
  ASSERT_NE(d3, nullptr);
  const auto id = d3->find(PosVec{1, 1, 2});
  ASSERT_NE(id, Partition::kNoEntry);
  EXPECT_EQ(d3->entry(id).sum, 4u);
}

// Figure 4: every subset's exact support after top-down propagation.
TEST(PaperExample, Figure4TopDownDatabase) {
  const auto view =
      build_ranked_view(plt::testing::paper_table1(), kMinSup);
  for (const auto variant :
       {TopDownVariant::kCanonical, TopDownVariant::kSweep}) {
    const Plt table = topdown_expand(view, variant);

    const std::map<PosVec, Count> expected = {
        {{1}, 4},          // A
        {{2}, 5},          // B
        {{3}, 5},          // C
        {{4}, 4},          // D
        {{1, 1}, 4},       // AB
        {{1, 2}, 3},       // AC
        {{1, 3}, 2},       // AD
        {{2, 1}, 4},       // BC
        {{2, 2}, 3},       // BD
        {{3, 1}, 3},       // CD
        {{1, 1, 1}, 3},    // ABC
        {{1, 1, 2}, 2},    // ABD
        {{1, 2, 1}, 1},    // ACD
        {{2, 1, 1}, 2},    // BCD
        {{1, 1, 1, 1}, 1}, // ABCD
    };
    std::size_t seen = 0;
    table.for_each([&](Plt::Ref, std::span<const Pos> v,
                       const Partition::Entry& e) {
      const auto it = expected.find(PosVec(v.begin(), v.end()));
      ASSERT_NE(it, expected.end())
          << "unexpected vector " << to_string(v) << " (variant "
          << (variant == TopDownVariant::kCanonical ? "canonical" : "sweep")
          << ")";
      EXPECT_EQ(e.freq, it->second) << to_string(v);
      ++seen;
    });
    EXPECT_EQ(seen, expected.size());
  }
}

// Figure 5(a): D's conditional database is the prefixes of the sum-4 bucket.
TEST(PaperExample, Figure5ConditionalDatabaseOfD) {
  const auto built =
      build_from_database(plt::testing::paper_table1(), kMinSup);
  const auto cond = conditional_database(built.plt, /*j=*/4);

  std::map<PosVec, Count> collected;
  for (const auto& [v, freq] : cond) collected[v] += freq;
  const std::map<PosVec, Count> expected = {
      {{1, 1, 1}, 1},  // from ABCD
      {{1, 1}, 1},     // from ABD
      {{2, 1}, 1},     // from BCD
      {{3}, 1},        // from CD
  };
  EXPECT_EQ(collected, expected);

  // Support of D = mass of the bucket = 4.
  Count support = 0;
  for (const auto ref : built.plt.bucket(4))
    support += built.plt.entry(ref).freq;
  EXPECT_EQ(support, 4u);
}

// The full frequent-itemset answer for Table 1 at support 2, which every
// miner must reproduce: 13 itemsets (all subsets except ACD and ABCD).
TEST(PaperExample, FrequentItemsetsAtSupport2) {
  const std::map<Itemset, Count> expected = {
      {{A}, 4},      {{B}, 5},      {{C}, 5},      {{D}, 4},
      {{A, B}, 4},   {{A, C}, 3},   {{A, D}, 2},   {{B, C}, 4},
      {{B, D}, 3},   {{C, D}, 3},   {{A, B, C}, 3}, {{A, B, D}, 2},
      {{B, C, D}, 2},
  };
  for (const Algorithm algorithm : all_algorithms()) {
    const auto result =
        mine(plt::testing::paper_table1(), kMinSup, algorithm);
    ASSERT_EQ(result.itemsets.size(), expected.size())
        << algorithm_name(algorithm) << "\n"
        << result.itemsets.to_string();
    for (const auto& [items, support] : expected) {
      EXPECT_EQ(result.itemsets.find_support(items), support)
          << algorithm_name(algorithm);
    }
  }
}

// The infrequent-by-one itemsets must NOT be reported.
TEST(PaperExample, InfrequentItemsetsExcluded) {
  const auto result = mine(plt::testing::paper_table1(), kMinSup,
                           Algorithm::kPltConditional);
  EXPECT_EQ(result.itemsets.find_support(Itemset{A, C, D}), 0u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{A, B, C, D}), 0u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{5}), 0u);  // E infrequent
}

// Paper note: raising the threshold to 3 kills AD, ABD, BCD.
TEST(PaperExample, HigherSupportThreshold) {
  const auto result =
      mine(plt::testing::paper_table1(), 3, Algorithm::kPltConditional);
  EXPECT_EQ(result.itemsets.size(), 10u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{A, D}), 0u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{A, B, C}), 3u);
}

// Figure 2 sanity: in the full lexicographic tree over {A,B,C,D}, pos values
// along any path reconstruct the ranks (spot checks from the figure).
TEST(PaperExample, Figure2PositionValues) {
  // Path A->C: V={1,3} ranks -> positions [1,2]: C is "in position two
  // lexicographically as a child of A" (Definition 4.1.2's example).
  const PosVec ac = to_positions(std::vector<Rank>{1, 3});
  EXPECT_EQ(ac, (PosVec{1, 2}));
  // Root children carry their own ranks.
  EXPECT_EQ(to_positions(std::vector<Rank>{4}), (PosVec{4}));
}

}  // namespace
}  // namespace plt::core
