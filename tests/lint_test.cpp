// plt_lint unit + golden-fixture tests. The fixtures under
// tests/lint/fixtures mimic the repo layout; every line that must be
// reported carries a trailing `EXPECT(rule)` marker (a comment-only marker
// line points at the next line), so each fixture is its own golden file:
// the test derives the expected (line, rule) set from the markers and
// requires the linter to produce exactly that — nothing missing, nothing
// extra, suppressions honoured.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace plt::lint {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string fixture_root() { return PLT_LINT_FIXTURE_DIR; }

LintConfig fixture_config() {
  LintConfig config;
  parse_registry(read_file(fixture_root() + "/src/obs/span_names.hpp"),
                 config.registry_spans, config.registry_counters);
  return config;
}

using Expected = std::multiset<std::pair<std::size_t, std::string>>;

/// Expected findings encoded in the fixture itself: `EXPECT(rule)` markers
/// on the offending line, or on a comment-only line directly above it.
Expected parse_markers(const SourceText& text) {
  Expected expected;
  const std::string tag = "EXPECT(";
  for (std::size_t l = 0; l < text.raw.size(); ++l) {
    const std::string& raw = text.raw[l];
    const std::string& code = text.lines[l];
    const bool comment_only =
        std::all_of(code.begin(), code.end(),
                    [](char c) { return c == ' ' || c == '\t'; });
    for (std::size_t at = raw.find(tag); at != std::string::npos;
         at = raw.find(tag, at + tag.size())) {
      const std::size_t close = raw.find(')', at);
      if (close == std::string::npos) break;
      const std::string rule =
          raw.substr(at + tag.size(), close - at - tag.size());
      expected.emplace(comment_only ? l + 2 : l + 1, rule);
    }
  }
  return expected;
}

void expect_golden(const std::string& rel_path) {
  const std::string content = read_file(fixture_root() + "/" + rel_path);
  const SourceText text = classify(content);
  const Expected expected = parse_markers(text);
  ASSERT_FALSE(expected.empty()) << rel_path << " has no EXPECT markers";

  Expected actual;
  for (const Finding& f : lint_file(rel_path, content, fixture_config())) {
    EXPECT_EQ(f.file, rel_path);
    EXPECT_FALSE(f.message.empty());
    actual.emplace(f.line, f.rule);
  }
  EXPECT_EQ(actual, expected) << "findings diverge from the EXPECT "
                              << "markers in " << rel_path;
}

TEST(LintGolden, KernelPurity) {
  expect_golden("src/kernels/bad_kernel.hpp");
}
TEST(LintGolden, ControlCoverage) {
  expect_golden("src/core/ignores_control.cpp");
}
TEST(LintGolden, AssertUntrustedIndex) {
  expect_golden("src/compress/unguarded_decode.cpp");
}
TEST(LintGolden, AssertUntrustedIndexShard) {
  expect_golden("src/shard/unguarded_summary.cpp");
}
TEST(LintGolden, AssertUntrustedIndexServe) {
  expect_golden("src/serve/unchecked_wire_length.cpp");
}
TEST(LintGolden, SpanRegistry) {
  expect_golden("src/core/unregistered_span.cpp");
}
TEST(LintGolden, NoBannedApis) {
  expect_golden("src/util/banned.cpp");
}
TEST(LintGolden, TaintBounds) {
  expect_golden("src/serve/tainted_bounds.cpp");
}
TEST(LintGolden, SyscallCheck) {
  expect_golden("src/serve/unchecked_syscall.cpp");
}
TEST(LintGolden, TypedStatus) {
  expect_golden("src/shard/silent_catch.cpp");
}

TEST(LintGolden, RegistryFixtureParses) {
  const LintConfig config = fixture_config();
  EXPECT_EQ(config.registry_spans,
            (std::vector<std::string>{"mine", "projection"}));
  EXPECT_EQ(config.registry_counters,
            (std::vector<std::string>{"itemsets-total", "kernel.demo.bytes",
                                      "kernel.demo.calls"}));
}

TEST(LintGolden, RealRegistryParses) {
  // The real registry must parse and contain the core mining names the
  // library emits on every run.
  std::vector<std::string> spans, counters;
  parse_registry(read_file(std::string(PLT_LINT_REPO_SRC) +
                           "/obs/span_names.hpp"),
                 spans, counters);
  EXPECT_NE(std::find(spans.begin(), spans.end(), "mine"), spans.end());
  EXPECT_NE(std::find(counters.begin(), counters.end(), "itemsets-total"),
            counters.end());
  EXPECT_GT(spans.size(), 8u);
  EXPECT_GT(counters.size(), 15u);
}

// --- unit tests over the library pieces --------------------------------

TEST(LintClassify, BlanksCommentsTracksStrings) {
  const SourceText text = classify(
      "int a; // new here\n"
      "/* throw\n"
      "   rand */ int b;\n"
      "const char* s = \"new int\";\n");
  ASSERT_EQ(text.line_count(), 4u);
  EXPECT_EQ(text.lines[0].find("new"), std::string::npos);
  EXPECT_EQ(text.lines[1].find("throw"), std::string::npos);
  EXPECT_EQ(text.lines[2].find("rand"), std::string::npos);
  EXPECT_NE(text.lines[2].find("int b;"), std::string::npos);
  // The string chars survive but are marked in_string.
  const std::size_t quote = text.lines[3].find('"');
  ASSERT_NE(quote, std::string::npos);
  EXPECT_TRUE(text.in_string[3][quote]);
  EXPECT_TRUE(text.in_string[3][text.lines[3].find("new int")]);
  EXPECT_FALSE(text.in_string[3][0]);
  // Raw lines keep the original text.
  EXPECT_NE(text.raw[0].find("// new here"), std::string::npos);
}

TEST(LintClassify, RawStringsAndCharLiterals) {
  const SourceText text = classify(
      "auto r = R\"(new \"quoted\" throw)\";\n"
      "char c = '\\''; int after = 1;\n");
  const std::size_t inner = text.lines[0].find("throw");
  ASSERT_NE(inner, std::string::npos);
  EXPECT_TRUE(text.in_string[0][inner]);
  const std::size_t after = text.lines[1].find("after");
  ASSERT_NE(after, std::string::npos);
  EXPECT_FALSE(text.in_string[1][after]);
}

TEST(LintSuppressions, LineAndFileScopes) {
  const SourceText text = classify(
      "// plt-lint: allow-file(span-registry)\n"
      "int a;\n"
      "// plt-lint: allow(no-banned-apis, kernel-purity)\n"
      "int b;\n"
      "int c;\n");
  const Suppressions sup = parse_suppressions(text);
  EXPECT_TRUE(sup.allows("span-registry", 1));
  EXPECT_TRUE(sup.allows("span-registry", 5));
  EXPECT_FALSE(sup.allows("no-banned-apis", 2));
  EXPECT_TRUE(sup.allows("no-banned-apis", 3));   // the pragma line
  EXPECT_TRUE(sup.allows("no-banned-apis", 4));   // ...and the next
  EXPECT_TRUE(sup.allows("kernel-purity", 4));
  EXPECT_FALSE(sup.allows("no-banned-apis", 5));
  EXPECT_FALSE(sup.allows("control-coverage", 4));
}

TEST(LintRules, NamesAreStable) {
  const std::vector<std::string> expected = {
      "kernel-purity", "control-coverage", "assert-untrusted-index",
      "span-registry", "no-banned-apis",   "taint-bounds",
      "syscall-check", "typed-status"};
  EXPECT_EQ(all_rules(), expected);
  for (const std::string& rule : expected) EXPECT_TRUE(is_rule(rule));
  EXPECT_FALSE(is_rule("nonsense"));
}

TEST(LintRules, SubsetRunsOnlySelectedRules) {
  LintConfig config = fixture_config();
  config.rules = {"kernel-purity"};
  const std::string rel = "src/kernels/bad_kernel.hpp";
  for (const Finding& f :
       lint_file(rel, read_file(fixture_root() + "/" + rel), config))
    EXPECT_EQ(f.rule, "kernel-purity");
}

TEST(LintRules, PathScoping) {
  // A kernel-purity violation outside src/kernels/ is not kernel code.
  const std::string content = "int* f(int n) { return new int[n]; }\n";
  LintConfig config = fixture_config();
  config.rules = {"kernel-purity"};
  EXPECT_TRUE(lint_file("src/core/f.cpp", content, config).empty());
  EXPECT_EQ(lint_file("src/kernels/f.hpp", content, config).size(), 1u);
  // Files outside src/ (tests, tools) are never linted for src contracts.
  config.rules = all_rules();
  EXPECT_TRUE(lint_file("tests/f.cpp", content, config).empty());
}

TEST(LintRules, FlowRulesScopedToIoLayers) {
  // The same unchecked ::write is a finding in serve/shard and out of
  // scope elsewhere (raw syscalls simply don't appear in the core).
  const std::string content = "void f(int fd) { ::write(fd, \"x\", 1); }\n";
  LintConfig config = fixture_config();
  config.rules = {"syscall-check"};
  EXPECT_EQ(lint_file("src/serve/w.cpp", content, config).size(), 1u);
  EXPECT_EQ(lint_file("src/shard/w.cpp", content, config).size(), 1u);
  EXPECT_TRUE(lint_file("src/core/w.cpp", content, config).empty());
}

TEST(LintRules, TaintBoundsIsFlowSensitive) {
  // Identical code modulo one bounds branch: the check placed between
  // taint (parse call) and use (subscript) is what flips the verdict.
  LintConfig config = fixture_config();
  config.rules = {"taint-bounds"};
  const std::string checked =
      "int f(const unsigned char* w, const int* t, unsigned n) {\n"
      "  unsigned long c = 0;\n"
      "  unsigned slot = parse_u32(w, c);\n"
      "  if (slot >= n) return 0;\n"
      "  return t[slot];\n"
      "}\n";
  const std::string unchecked =
      "int f(const unsigned char* w, const int* t, unsigned n) {\n"
      "  unsigned long c = 0;\n"
      "  unsigned slot = parse_u32(w, c);\n"
      "  return t[slot];\n"
      "}\n";
  EXPECT_TRUE(lint_file("src/serve/q.cpp", checked, config).empty());
  const auto findings = lint_file("src/serve/q.cpp", unchecked, config);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "taint-bounds");
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(LintJson, EscapesAndSorts) {
  Finding f1{"src/b.cpp", 7, "no-banned-apis", "uses \"rand\"", "rand();"};
  Finding f2{"src/a.cpp", 9, "kernel-purity", "tab\there", "x\\y"};
  const std::string json =
      to_json({f1, f2}, {"kernel-purity", "no-banned-apis"}, 2);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":2"), std::string::npos);
  EXPECT_NE(json.find("uses \\\"rand\\\""), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("x\\\\y"), std::string::npos);
  // a.cpp sorts before b.cpp regardless of argument order.
  EXPECT_LT(json.find("src/a.cpp"), json.find("src/b.cpp"));
}

TEST(LintJson, EmptyReport) {
  const std::string json = to_json({}, all_rules(), 0);
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos);
}

}  // namespace
}  // namespace plt::lint
