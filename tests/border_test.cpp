// Negative border and Toivonen sampling: border definition checked against
// brute force, exactness of the sampled miner on randomized workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/border.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

// Brute-force negative border: minimal itemsets not in F (over subsets of
// the universe up to maxlen+1).
std::set<Itemset> border_brute(const FrequentItemsets& frequent,
                               const std::vector<Item>& universe) {
  std::set<Itemset> in_frequent;
  std::size_t max_len = 0;
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    in_frequent.insert(Itemset(z.begin(), z.end()));
    max_len = std::max(max_len, z.size());
  }
  std::set<Itemset> border;
  // Enumerate all subsets of the universe up to max_len+1 (small tests).
  const auto n = universe.size();
  PLT_ASSERT(n <= 20, "brute border only for small universes");
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    Itemset z;
    for (std::size_t b = 0; b < n; ++b)
      if (mask & (1u << b)) z.push_back(universe[b]);
    if (z.size() > max_len + 1) continue;
    if (in_frequent.count(z)) continue;
    // minimal: every proper (k-1)-subset in F (or k == 1).
    bool minimal = true;
    for (std::size_t drop = 0; drop < z.size() && minimal; ++drop) {
      if (z.size() == 1) break;
      Itemset s;
      for (std::size_t j = 0; j < z.size(); ++j)
        if (j != drop) s.push_back(z[j]);
      minimal = in_frequent.count(s) > 0;
    }
    if (minimal) border.insert(z);
  }
  return border;
}

TEST(NegativeBorder, PaperExample) {
  const auto db = plt::testing::paper_table1();
  const auto mined = mine(db, 2, Algorithm::kPltConditional);
  std::vector<Item> universe{1, 2, 3, 4, 5, 6};
  const auto border = negative_border(mined.itemsets, universe);
  const std::set<Itemset> got(border.begin(), border.end());
  // Infrequent minimal sets: {5}, {6} (items E, F) and {1,3,4} (ACD —
  // its pair subsets AC, AD, CD are all frequent).
  EXPECT_EQ(got, border_brute(mined.itemsets, universe));
  EXPECT_TRUE(got.count(Itemset{5}));
  EXPECT_TRUE(got.count(Itemset{6}));
  EXPECT_TRUE(got.count(Itemset{1, 3, 4}));
  EXPECT_FALSE(got.count(Itemset{1, 2, 3, 4}));  // not minimal (ACD below)
}

TEST(NegativeBorder, RandomizedAgainstBruteForce) {
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    tdb::Database db;
    std::vector<Item> row;
    for (int t = 0; t < 60; ++t) {
      row.clear();
      for (Item i = 1; i <= 9; ++i)
        if (rng.next_bool(0.35)) row.push_back(i);
      if (row.empty()) row.push_back(1);
      db.add(row);
    }
    const auto mined = mine(db, 4, Algorithm::kPltConditional);
    std::vector<Item> universe;
    const auto supports = db.item_supports();
    for (Item i = 0; i < supports.size(); ++i)
      if (supports[i] > 0) universe.push_back(i);
    const auto border = negative_border(mined.itemsets, universe);
    const std::set<Itemset> got(border.begin(), border.end());
    EXPECT_EQ(got, border_brute(mined.itemsets, universe)) << trial;
  }
}

TEST(NegativeBorder, EmptyFrequentSet) {
  FrequentItemsets none;
  const auto border = negative_border(none, {3, 7});
  ASSERT_EQ(border.size(), 2u);  // every universe item is minimal-infrequent
}

TEST(Toivonen, ExactOnPaperExample) {
  ToivonenOptions options;
  options.sample_fraction = 0.5;
  options.seed = 3;
  const auto result =
      mine_toivonen(plt::testing::paper_table1(), 2, options);
  const auto reference =
      mine(plt::testing::paper_table1(), 2, Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "toivonen table1");
  EXPECT_GE(result.attempts, 1u);
}

class ToivonenSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Count>> {};

TEST_P(ToivonenSweep, AlwaysExact) {
  const auto [seed, minsup] = GetParam();
  datagen::QuestConfig cfg;
  cfg.transactions = 2000;
  cfg.items = 50;
  cfg.seed = seed;
  const auto db = datagen::generate_quest(cfg);
  ToivonenOptions options;
  options.sample_fraction = 0.3;
  options.seed = seed * 7 + 1;
  const auto result = mine_toivonen(db, minsup, options);
  const auto reference = mine(db, minsup, Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "toivonen sweep");
  EXPECT_GT(result.candidates + (result.used_fallback ? 1 : 0), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ToivonenSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<Count>(20, 60, 150)));

TEST(Toivonen, TinySampleFallsBackButStaysExact) {
  datagen::QuestConfig cfg;
  cfg.transactions = 500;
  cfg.items = 30;
  cfg.seed = 8;
  const auto db = datagen::generate_quest(cfg);
  ToivonenOptions options;
  options.sample_fraction = 0.02;  // almost certainly misses patterns
  options.lowering = 1.0;          // no safety margin
  options.max_retries = 1;
  const auto result = mine_toivonen(db, 10, options);
  const auto reference = mine(db, 10, Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "fallback");
}

}  // namespace
}  // namespace plt::core
