// Tests for the workload generators: determinism, parameter effects, and
// the statistical shapes that stand in for the FIMI benchmarks.
#include <gtest/gtest.h>

#include "datagen/clickstream.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "datagen/registry.hpp"
#include "datagen/zipf.hpp"
#include "tdb/stats.hpp"
#include "util/rng.hpp"

namespace plt::datagen {
namespace {

TEST(Quest, DeterministicForSameSeed) {
  QuestConfig cfg;
  cfg.transactions = 500;
  cfg.seed = 99;
  EXPECT_TRUE(generate_quest(cfg) == generate_quest(cfg));
}

TEST(Quest, DifferentSeedsDiffer) {
  QuestConfig a, b;
  a.transactions = b.transactions = 500;
  a.seed = 1;
  b.seed = 2;
  EXPECT_FALSE(generate_quest(a) == generate_quest(b));
}

TEST(Quest, AverageTransactionLengthTracksConfig) {
  QuestConfig cfg;
  cfg.transactions = 4000;
  cfg.avg_transaction_len = 10.0;
  cfg.seed = 5;
  const auto stats = tdb::compute_stats(generate_quest(cfg));
  EXPECT_NEAR(stats.avg_len, 10.0, 2.5);
  EXPECT_EQ(stats.transactions, 4000u);
}

TEST(Quest, SparseCharacter) {
  QuestConfig cfg;
  cfg.transactions = 3000;
  cfg.items = 870;
  cfg.seed = 42;
  const auto stats = tdb::compute_stats(generate_quest(cfg));
  EXPECT_LT(stats.density, 0.05);       // sparse
  EXPECT_GT(stats.support_gini, 0.3);   // skewed popularity
}

TEST(Quest, ItemIdsWithinUniverse) {
  QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 50;
  cfg.seed = 3;
  const auto db = generate_quest(cfg);
  EXPECT_LE(db.max_item(), 50u);
  EXPECT_GE(db.max_item(), 1u);
}

TEST(Dense, DensityTracksConfig) {
  DenseConfig cfg;
  cfg.transactions = 1500;
  cfg.items = 80;
  cfg.density = 0.4;
  cfg.seed = 4;
  const auto stats = tdb::compute_stats(generate_dense(cfg));
  EXPECT_NEAR(stats.density, 0.4, 0.08);
}

TEST(Dense, ChessLikePresetShape) {
  const auto db = generate_dense(chess_like(800));
  const auto stats = tdb::compute_stats(db);
  EXPECT_LE(stats.distinct_items, 75u);
  EXPECT_GT(stats.density, 0.35);  // chess is ~0.49 dense
  EXPECT_EQ(stats.transactions, 800u);
}

TEST(Dense, MushroomLikePresetShape) {
  const auto db = generate_dense(mushroom_like(800));
  const auto stats = tdb::compute_stats(db);
  EXPECT_LE(stats.distinct_items, 119u);
  EXPECT_NEAR(stats.density, 0.19, 0.07);
}

TEST(Dense, Deterministic) {
  const auto cfg = chess_like(300, 123);
  EXPECT_TRUE(generate_dense(cfg) == generate_dense(cfg));
}

TEST(Zipf, SamplerRespectsSupportAndSkew) {
  ZipfSampler sampler(100, 1.2);
  Rng rng(6);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 20000; ++i) {
    const auto r = sampler.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
    counts[r]++;
  }
  // Rank 1 must dominate rank 10 roughly by 10^1.2.
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(Zipf, GeneratorShape) {
  ZipfConfig cfg;
  cfg.transactions = 2000;
  cfg.items = 500;
  cfg.seed = 8;
  const auto stats = tdb::compute_stats(generate_zipf(cfg));
  EXPECT_EQ(stats.transactions, 2000u);
  EXPECT_GT(stats.support_gini, 0.5);  // heavy-tailed
}

TEST(Clickstream, SessionsAreBoundedAndDeterministic) {
  ClickstreamConfig cfg;
  cfg.sessions = 800;
  cfg.seed = 10;
  const auto db = generate_clickstream(cfg);
  EXPECT_EQ(db.size(), 800u);
  const auto stats = tdb::compute_stats(db);
  EXPECT_LE(stats.max_len, cfg.max_session_len);
  EXPECT_TRUE(db == generate_clickstream(cfg));
}

TEST(Registry, AllDatasetsGenerate) {
  for (const auto& spec : dataset_registry()) {
    const auto db = spec.generate(200, 1);
    EXPECT_GT(db.size(), 0u) << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
  }
}

TEST(Registry, NamedLookupAndUnknownName) {
  const auto db = make_dataset("short-dense", 150, 2);
  EXPECT_GT(db.size(), 100u);
  EXPECT_THROW(make_dataset("no-such-dataset"), std::out_of_range);
}

TEST(Registry, StableNames) {
  // EXPERIMENTS.md refers to these names; renaming them breaks the docs.
  std::vector<std::string> names;
  for (const auto& spec : dataset_registry()) names.push_back(spec.name);
  const std::vector<std::string> expected{
      "quest-sparse", "quest-wide",  "chess-like", "mushroom-like",
      "zipf-sparse",  "clickstream", "short-dense"};
  EXPECT_EQ(names, expected);
}

}  // namespace
}  // namespace plt::datagen
