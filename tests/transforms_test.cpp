// Dataset transform tests: twin planting and transaction sampling.
#include <gtest/gtest.h>

#include "core/closed.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "datagen/transforms.hpp"
#include "test_support.hpp"

namespace plt::datagen {
namespace {

TEST(Twins, TwinAlwaysCoOccurs) {
  const auto db = tdb::Database::from_rows({{1, 2}, {2, 3}, {1, 3}});
  const auto twinned = add_twin_items(db, {{1, 9}});
  ASSERT_EQ(twinned.size(), 3u);
  for (std::size_t t = 0; t < twinned.size(); ++t) {
    const auto row = twinned[t];
    const bool has1 = std::binary_search(row.begin(), row.end(), Item{1});
    const bool has9 = std::binary_search(row.begin(), row.end(), Item{9});
    EXPECT_EQ(has1, has9) << t;
  }
}

TEST(Twins, ExistingTwinIdRemovedWhereGeneratorAbsent) {
  // Twin id 3 already occurs on its own; after twinning to item 1 it must
  // appear exactly where 1 does.
  const auto db = tdb::Database::from_rows({{1, 2}, {3}, {1, 3}});
  const auto twinned = add_twin_items(db, {{1, 3}});
  EXPECT_EQ(twinned.size(), 2u);  // lone {3} becomes empty and is dropped
  for (std::size_t t = 0; t < twinned.size(); ++t) {
    const auto row = twinned[t];
    EXPECT_TRUE(std::binary_search(row.begin(), row.end(), Item{1}));
    EXPECT_TRUE(std::binary_search(row.begin(), row.end(), Item{3}));
  }
}

TEST(Twins, TwinsCollapseUnderClosure) {
  QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 20;
  cfg.seed = 6;
  const auto db = generate_quest(cfg);
  const auto twinned = add_twin_items(db, {{1, 21}, {2, 22}});
  const auto mined = core::mine(twinned, 5, core::Algorithm::kFpGrowth);
  const auto closed = core::closed_itemsets(mined.itemsets);
  // Twins only inflate the frequent set, never the closed set beyond the
  // twin-free closure count (each closed set simply absorbs its twins).
  const auto base_mined = core::mine(db, 5, core::Algorithm::kFpGrowth);
  const auto base_closed = core::closed_itemsets(base_mined.itemsets);
  EXPECT_EQ(closed.size(), base_closed.size());
  EXPECT_GT(mined.itemsets.size(), base_mined.itemsets.size());
}

TEST(Twins, SelfTwinDies) {
  const auto db = tdb::Database::from_rows({{1}});
  EXPECT_DEATH(add_twin_items(db, {{1, 1}}), "twin");
}

TEST(Sampling, FractionZeroAndOne) {
  const auto db = plt::testing::paper_table1();
  EXPECT_EQ(sample_transactions(db, 0.0, 1).size(), 0u);
  EXPECT_EQ(sample_transactions(db, 1.0, 1).size(), db.size());
}

TEST(Sampling, ApproximatesFractionAndIsDeterministic) {
  QuestConfig cfg;
  cfg.transactions = 5000;
  cfg.seed = 2;
  const auto db = generate_quest(cfg);
  const auto a = sample_transactions(db, 0.3, 9);
  const auto b = sample_transactions(db, 0.3, 9);
  EXPECT_TRUE(a == b);
  EXPECT_NEAR(static_cast<double>(a.size()), 1500.0, 150.0);
  const auto c = sample_transactions(db, 0.3, 10);
  EXPECT_FALSE(a == c);
}

TEST(Sampling, SampleMiningApproximatesFullMining) {
  // Toivonen-style sanity: supports on a 50% sample, scaled x2, should be
  // close to the full-database supports for high-support itemsets.
  QuestConfig cfg;
  cfg.transactions = 8000;
  cfg.items = 60;
  cfg.seed = 12;
  const auto db = generate_quest(cfg);
  const auto sample = sample_transactions(db, 0.5, 3);
  const auto full = core::mine(db, 400, core::Algorithm::kPltConditional);
  const auto sampled =
      core::mine(sample, 150, core::Algorithm::kPltConditional);
  for (std::size_t i = 0; i < full.itemsets.size(); ++i) {
    const auto items = full.itemsets.itemset(i);
    const double scaled =
        2.0 * static_cast<double>(sampled.itemsets.find_support(items));
    const auto truth = static_cast<double>(full.itemsets.support(i));
    EXPECT_NEAR(scaled, truth, truth * 0.25 + 20.0);
  }
}

}  // namespace
}  // namespace plt::datagen
