// Cooperative execution control: cancellation, deadlines and memory
// budgets must unwind every algorithm path cleanly — sequential facade,
// work-stealing parallel miner, parallel builder, and the out-of-core blob
// miner — returning a valid prefix of the results and the right status.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "parallel/parallel_build.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

using namespace std::chrono_literals;

tdb::Database workload(std::uint64_t seed = 11) {
  datagen::QuestConfig cfg;
  cfg.transactions = 600;
  cfg.items = 60;
  cfg.seed = seed;
  return datagen::generate_quest(cfg);
}

TEST(MiningControl, FreshControlNeverTrips) {
  MiningControl control;
  EXPECT_FALSE(control.limited());
  EXPECT_FALSE(control.should_stop(1u << 30));
  EXPECT_EQ(control.status(), MineStatus::kCompleted);
  EXPECT_EQ(control.checks(), 1u);
}

TEST(MiningControl, CancellationLatches) {
  MiningControl control;
  control.request_cancel();
  EXPECT_TRUE(control.cancel_requested());
  EXPECT_TRUE(control.should_stop());
  EXPECT_EQ(control.status(), MineStatus::kCancelled);
  // Latching is sticky: a later budget violation cannot overwrite the
  // first cause.
  control.set_memory_budget(1);
  EXPECT_TRUE(control.should_stop(1u << 20));
  EXPECT_EQ(control.status(), MineStatus::kCancelled);
}

TEST(MiningControl, DeadlineTrips) {
  const MiningControl control = MiningControl::with_deadline(0ns);
  EXPECT_TRUE(control.limited());
  EXPECT_TRUE(control.should_stop());
  EXPECT_EQ(control.status(), MineStatus::kDeadlineExceeded);
}

TEST(MiningControl, BudgetTripsOnlyWhenReported) {
  MiningControl control;
  control.set_memory_budget(1000);
  EXPECT_FALSE(control.should_stop(0));    // unknown usage never trips
  EXPECT_FALSE(control.should_stop(999));
  EXPECT_TRUE(control.should_stop(1001));
  EXPECT_EQ(control.status(), MineStatus::kBudgetExceeded);
}

TEST(MiningControl, StatusStrings) {
  EXPECT_STREQ(to_string(MineStatus::kCompleted), "completed");
  EXPECT_STREQ(to_string(MineStatus::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(MineStatus::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(to_string(MineStatus::kBudgetExceeded), "budget-exceeded");
}

TEST(ExecControl, EveryAlgorithmHonoursCancellation) {
  const auto db = workload();
  for (const Algorithm algorithm : all_algorithms()) {
    MiningControl control;
    control.request_cancel();
    MineOptions options;
    options.control = &control;
    const auto result = mine(db, 3, algorithm, options);
    EXPECT_EQ(result.status, MineStatus::kCancelled)
        << algorithm_name(algorithm);
    EXPECT_GT(result.resilience.control_checks, 0u)
        << algorithm_name(algorithm);
    // Whatever was emitted before the stop is a valid prefix: real
    // itemsets with real supports.
    for (std::size_t i = 0; i < result.itemsets.size(); ++i)
      ASSERT_GE(result.itemsets.support(i), 3u) << algorithm_name(algorithm);
  }
}

TEST(ExecControl, CompletedRunReportsCompletedWithControlAttached) {
  const auto db = workload();
  MiningControl control;
  control.set_memory_budget(1u << 30);  // generous: must not trip
  MineOptions options;
  options.control = &control;
  const auto result = mine(db, 3, Algorithm::kPltConditional, options);
  EXPECT_EQ(result.status, MineStatus::kCompleted);
  EXPECT_GT(result.resilience.control_checks, 0u);
  const auto reference = mine(db, 3, Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(result.itemsets, reference.itemsets,
                                     "controlled-completed");
}

TEST(ExecControl, TinyBudgetDegradesWithHint) {
  const auto db = workload();
  MiningControl control;
  control.set_memory_budget(16);  // smaller than any real structure
  MineOptions options;
  options.control = &control;
  const auto result = mine(db, 3, Algorithm::kPltConditional, options);
  EXPECT_EQ(result.status, MineStatus::kBudgetExceeded);
  EXPECT_NE(result.degradation_hint.find("mine_from_blob"),
            std::string::npos);
}

TEST(ExecControl, ExpiredDeadlineStopsSequentialMine) {
  const auto db = workload();
  const MiningControl control = MiningControl::with_deadline(0ns);
  MineOptions options;
  options.control = &control;
  const auto result = mine(db, 3, Algorithm::kPltConditional, options);
  EXPECT_EQ(result.status, MineStatus::kDeadlineExceeded);
}

TEST(ExecControl, ParallelMinerStopsOnCancelledControl) {
  const auto db = workload();
  MiningControl control;
  control.request_cancel();
  parallel::ParallelOptions options;
  options.threads = 4;
  options.control = &control;
  const auto result = parallel::mine_parallel(db, 3, options);
  EXPECT_EQ(result.status, MineStatus::kCancelled);
  for (std::size_t i = 0; i < result.itemsets.size(); ++i)
    ASSERT_GE(result.itemsets.support(i), 3u);
}

TEST(ExecControl, ParallelMinerCancelledFromAnotherThread) {
  // Cross-thread cancellation: the canceller races the workers on the
  // shared atomic state (TSan covers this suite). Either outcome — finished
  // before the cancel landed, or stopped early — must be internally
  // consistent.
  const auto db = workload(13);
  MiningControl control;
  parallel::ParallelOptions options;
  options.threads = 4;
  options.control = &control;
  std::thread canceller([&control] {
    std::this_thread::sleep_for(1ms);
    control.request_cancel();
  });
  const auto result = parallel::mine_parallel(db, 2, options);
  canceller.join();
  EXPECT_TRUE(result.status == MineStatus::kCompleted ||
              result.status == MineStatus::kCancelled);
  for (std::size_t i = 0; i < result.itemsets.size(); ++i)
    ASSERT_GE(result.itemsets.support(i), 2u);
}

TEST(ExecControl, ParallelBuildStopsOnCancelledControl) {
  const auto db = workload();
  const auto view = build_ranked_view(db, 3);
  MiningControl control;
  control.request_cancel();
  parallel::BuildOptions options;
  options.threads = 4;
  options.control = &control;
  const auto built = parallel::build_plt_parallel(
      view.db, static_cast<Rank>(view.alphabet()), options);
  (void)built;  // partial structure; the contract is only "returns cleanly"
  EXPECT_EQ(control.status(), MineStatus::kCancelled);
}

TEST(ExecControl, OocMinerStopsOnCancelledControl) {
  const auto db = workload();
  const auto built = core::build_from_database(db, 3);
  const auto blob = compress::encode_plt(built.plt);
  std::vector<Item> item_of(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    item_of[r - 1] = built.view.item_of(r);

  MiningControl control;
  control.request_cancel();
  compress::OocOptions options;
  options.control = &control;
  compress::OocStats stats;
  FrequentItemsets mined;
  const MineStatus status = compress::mine_from_blob(
      blob, item_of, 3, collect_into(mined), &stats, options);
  EXPECT_EQ(status, MineStatus::kCancelled);
  EXPECT_EQ(mined.size(), 0u);  // checked before the first rank
  EXPECT_GT(stats.resilience.control_checks, 0u);
}

// A workload whose exhaustive mine takes far longer than 50ms: dense rows
// at low support explode combinatorially, so only a working deadline can
// bring these runs home quickly.
tdb::Database heavy_workload() {
  tdb::Database db;
  for (int t = 0; t < 400; ++t) {
    std::vector<Item> row;
    for (Item i = 1; i <= 22; ++i)
      if (((t + i) % 7) != 0) row.push_back(i);
    db.add(row);
  }
  return db;
}

TEST(ExecControl, FiftyMsDeadlineBoundsSequentialMine) {
  const auto db = heavy_workload();
  const MiningControl control = MiningControl::with_deadline(50ms);
  MineOptions options;
  options.control = &control;
  const auto start = std::chrono::steady_clock::now();
  const auto result = mine(db, 2, Algorithm::kPltConditional, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status, MineStatus::kDeadlineExceeded);
  EXPECT_LT(elapsed, 10s);  // generous: the point is "bounded", not "fast"
}

TEST(ExecControl, FiftyMsDeadlineBoundsParallelMine) {
  const auto db = heavy_workload();
  const MiningControl control = MiningControl::with_deadline(50ms);
  parallel::ParallelOptions options;
  options.threads = 4;
  options.control = &control;
  const auto start = std::chrono::steady_clock::now();
  const auto result = parallel::mine_parallel(db, 2, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status, MineStatus::kDeadlineExceeded);
  EXPECT_LT(elapsed, 10s);
}

TEST(ExecControl, FiftyMsDeadlineBoundsOocMine) {
  const auto db = heavy_workload();
  const auto built = core::build_from_database(db, 2);
  const auto blob = compress::encode_plt(built.plt);
  std::vector<Item> item_of(built.view.alphabet());
  for (Rank r = 1; r <= built.view.alphabet(); ++r)
    item_of[r - 1] = built.view.item_of(r);

  const MiningControl control = MiningControl::with_deadline(50ms);
  compress::OocOptions options;
  options.control = &control;
  FrequentItemsets mined;
  const auto start = std::chrono::steady_clock::now();
  const MineStatus status = compress::mine_from_blob(
      blob, item_of, 2, collect_into(mined), nullptr, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status, MineStatus::kDeadlineExceeded);
  EXPECT_LT(elapsed, 10s);
}

TEST(ExecControl, ResilienceStatsMerge) {
  ResilienceStats a{1, 2, 3, 4};
  const ResilienceStats b{10, 20, 30, 40};
  a.merge(b);
  EXPECT_EQ(a.control_checks, 11u);
  EXPECT_EQ(a.failpoint_hits, 22u);
  EXPECT_EQ(a.crc_verifications, 33u);
  EXPECT_EQ(a.checkpoint_records, 44u);
}

}  // namespace
}  // namespace plt::core
