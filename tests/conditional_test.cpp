// Conditional-approach tests: Algorithm 3's bucket/prefix mechanics, the
// filtered and unfiltered variants, agreement with the oracle, and the
// anti-monotone pruning behaviour.
#include <gtest/gtest.h>

#include <set>

#include "baselines/brute.hpp"
#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

tdb::Database random_db(std::uint64_t seed, std::size_t transactions,
                        std::size_t items, double density) {
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (std::size_t t = 0; t < transactions; ++t) {
    row.clear();
    for (Item i = 1; i <= items; ++i)
      if (rng.next_bool(density)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  return db;
}

TEST(Conditional, MatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = random_db(seed, 80, 12, 0.3);
    for (const Count minsup : {1u, 2u, 4u, 10u}) {
      FrequentItemsets expected;
      baselines::mine_brute_force(db, minsup, collect_into(expected));
      FrequentItemsets actual;
      mine_conditional(build_ranked_view(db, minsup), minsup,
                       collect_into(actual));
      plt::testing::expect_same_itemsets(expected, actual, "conditional");
    }
  }
}

TEST(Conditional, UnfilteredVariantAgrees) {
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const auto db = random_db(seed, 60, 10, 0.35);
    const auto filtered = mine(db, 3, Algorithm::kPltConditional);
    const auto unfiltered = mine(db, 3, Algorithm::kPltConditionalNoFilter);
    plt::testing::expect_same_itemsets(filtered.itemsets,
                                       unfiltered.itemsets, "filter on/off");
  }
}

TEST(Conditional, ConditionalDatabaseExtraction) {
  // Hand-checkable: {1,2,3} x2, {2,3} x1, {3} x1 (items are ranks already).
  const auto db = tdb::Database::from_rows({{1, 2, 3}, {1, 2, 3}, {2, 3},
                                            {3}});
  const auto view = build_ranked_view(db, 1);
  const Plt plt = build_plt(view.db, 3);
  const auto cond = conditional_database(plt, 3);
  // Prefixes: [1,1] (freq 2), [2] (freq 1); the singleton {3} contributes
  // support but no prefix.
  std::set<std::pair<PosVec, Count>> got(cond.begin(), cond.end());
  const std::set<std::pair<PosVec, Count>> expected{{{1, 1}, 2}, {{2}, 1}};
  EXPECT_EQ(got, expected);
}

TEST(Conditional, BucketMassIsItemSupport) {
  const auto db = random_db(21, 100, 10, 0.3);
  const auto view = build_ranked_view(db, 1);
  Plt plt = build_plt(view.db, static_cast<Rank>(view.alphabet()));
  // Before any mining, the bucket for the highest rank r holds exactly the
  // transactions whose maximum item is r.
  const auto max_rank = static_cast<Rank>(view.alphabet());
  Count mass = 0;
  for (const auto ref : plt.bucket(max_rank)) mass += plt.entry(ref).freq;
  Count expected = 0;
  for (std::size_t t = 0; t < view.db.size(); ++t)
    if (view.db[t].back() == max_rank) expected += 1;
  EXPECT_EQ(mass, expected);
}

TEST(Conditional, SuffixSupportsAreProjectionSupports) {
  // Mining {suffix=j}: reported support of {i,j} must equal the number of
  // transactions containing both — checked against the oracle on Table 1.
  const auto db = plt::testing::paper_table1();
  FrequentItemsets mined;
  mine_conditional(build_ranked_view(db, 2), 2, collect_into(mined));
  EXPECT_EQ(mined.find_support(Itemset{1, 4}), 2u);   // AD
  EXPECT_EQ(mined.find_support(Itemset{2, 3}), 4u);   // BC
  EXPECT_EQ(mined.find_support(Itemset{2, 3, 4}), 2u);  // BCD
}

TEST(Conditional, AntiMonotonePruningStopsRecursion) {
  // With threshold above every pair support, only 1-itemsets survive and
  // the miner must not recurse into infrequent extensions.
  const auto db = tdb::Database::from_rows(
      {{1, 2}, {1, 3}, {2, 3}, {1}, {2}, {3}});
  FrequentItemsets mined;
  mine_conditional(build_ranked_view(db, 3), 3, collect_into(mined));
  ASSERT_EQ(mined.size(), 3u);
  const auto counts = mined.level_counts();
  ASSERT_GE(counts.size(), 2u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(Conditional, EmptyDatabaseAndNoFrequentItems) {
  tdb::Database empty;
  FrequentItemsets a;
  mine_conditional(build_ranked_view(empty, 1), 1, collect_into(a));
  EXPECT_TRUE(a.empty());

  const auto db = tdb::Database::from_rows({{1}, {2}});
  FrequentItemsets b;
  mine_conditional(build_ranked_view(db, 5), 5, collect_into(b));
  EXPECT_TRUE(b.empty());
}

TEST(Conditional, DuplicateHeavyDatabase) {
  // Aggregation path: many identical transactions must collapse into a
  // single vector whose frequency drives all supports.
  tdb::Database db;
  for (int i = 0; i < 500; ++i) db.add({2, 4, 6});
  for (int i = 0; i < 100; ++i) db.add({2, 4});
  FrequentItemsets mined;
  mine_conditional(build_ranked_view(db, 100), 100, collect_into(mined));
  EXPECT_EQ(mined.find_support(Itemset{2, 4, 6}), 500u);
  EXPECT_EQ(mined.find_support(Itemset{2, 4}), 600u);
  EXPECT_EQ(mined.find_support(Itemset{2}), 600u);
  EXPECT_EQ(mined.size(), 7u);
}

TEST(Conditional, DeepRecursionChain) {
  // A 16-item single transaction repeated: the single maximal itemset has
  // 2^16-1 frequent subsets at minsup=3; exercise deep conditional chains.
  tdb::Database db;
  std::vector<Item> row;
  for (Item i = 1; i <= 16; ++i) row.push_back(i);
  for (int i = 0; i < 3; ++i) db.add(row);
  FrequentItemsets mined;
  mine_conditional(build_ranked_view(db, 3), 3, collect_into(mined));
  EXPECT_EQ(mined.size(), (1u << 16) - 1);
  EXPECT_EQ(mined.find_support(Itemset(row.begin(), row.end())), 3u);
}

}  // namespace
}  // namespace plt::core
