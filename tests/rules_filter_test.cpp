// Rule post-processing tests: metric filters, top-k ordering, redundancy
// pruning semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/miner.hpp"
#include "rules/filter.hpp"
#include "test_support.hpp"

namespace plt::rules {
namespace {

std::vector<Rule> table1_rules(double min_confidence = 0.0) {
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  RuleOptions options;
  options.min_confidence = min_confidence;
  return generate_rules(mined.itemsets, db.size(), options);
}

TEST(Filter, ByConfidenceThreshold) {
  const auto all = table1_rules();
  const auto strong = filter_by(all, RuleMetric::kConfidence, 0.8);
  EXPECT_LT(strong.size(), all.size());
  for (const auto& rule : strong)
    EXPECT_GE(rule.metrics.confidence, 0.8);
  // Equivalent to generating with the threshold directly.
  EXPECT_EQ(strong.size(), table1_rules(0.8).size());
}

TEST(Filter, ByLiftKeepsOnlyPositiveAssociations) {
  const auto lifted = filter_by(table1_rules(), RuleMetric::kLift, 1.0001);
  for (const auto& rule : lifted) EXPECT_GT(rule.metrics.lift, 1.0);
}

TEST(TopK, OrderedDescendingAndDeterministic) {
  const auto top = top_k_by(table1_rules(), RuleMetric::kConfidence, 5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].metrics.confidence, top[i].metrics.confidence);
  const auto again = top_k_by(table1_rules(), RuleMetric::kConfidence, 5);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].antecedent, again[i].antecedent) << i;
    EXPECT_EQ(top[i].consequent, again[i].consequent) << i;
  }
}

TEST(TopK, KLargerThanInput) {
  const auto all = table1_rules(0.9);
  EXPECT_EQ(top_k_by(all, RuleMetric::kSupport, 10000).size(), all.size());
}

TEST(Redundancy, SubsetAntecedentWins) {
  // {A}=>{B} has conf 1.0; {A,C}=>{B} also 1.0 -> redundant.
  const auto all = table1_rules();
  const auto pruned = prune_redundant(all);
  const auto find = [&](const std::vector<Rule>& rules, Itemset x,
                        Itemset y) {
    return std::any_of(rules.begin(), rules.end(), [&](const Rule& r) {
      return r.antecedent == x && r.consequent == y;
    });
  };
  ASSERT_TRUE(find(all, {1}, {2}));
  ASSERT_TRUE(find(all, {1, 3}, {2}));
  EXPECT_TRUE(find(pruned, {1}, {2}));
  EXPECT_FALSE(find(pruned, {1, 3}, {2}));
  EXPECT_LT(pruned.size(), all.size());
}

TEST(Redundancy, StrongerSpecificRuleSurvives) {
  // A longer antecedent with strictly higher confidence must be kept.
  const auto all = table1_rules();
  const auto pruned = prune_redundant(all);
  for (const auto& rule : pruned) {
    for (const auto& other : all) {
      if (other.consequent != rule.consequent) continue;
      if (other.antecedent.size() >= rule.antecedent.size()) continue;
      if (!std::includes(rule.antecedent.begin(), rule.antecedent.end(),
                         other.antecedent.begin(), other.antecedent.end()))
        continue;
      EXPECT_LT(other.metrics.confidence + 1e-9, rule.metrics.confidence)
          << to_string(rule) << " should have been pruned by "
          << to_string(other);
    }
  }
}

TEST(Redundancy, EmptyInput) {
  EXPECT_TRUE(prune_redundant({}).empty());
}

TEST(MetricValue, AllMetricsAccessible) {
  Rule rule;
  rule.metrics = compute_metrics(4, 5, 6, 10);
  EXPECT_DOUBLE_EQ(metric_value(rule, RuleMetric::kSupport), 0.4);
  EXPECT_DOUBLE_EQ(metric_value(rule, RuleMetric::kConfidence), 0.8);
  EXPECT_GT(metric_value(rule, RuleMetric::kLift), 1.0);
  EXPECT_GT(metric_value(rule, RuleMetric::kLeverage), 0.0);
}

}  // namespace
}  // namespace plt::rules
