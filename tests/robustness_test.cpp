// Robustness / failure-injection suite: randomly corrupted serialized
// blobs and hostile FIMI inputs must produce clean errors (or, when the
// corruption happens to decode, a structurally valid result) — never
// crashes, hangs, or silent misuse.
#include <gtest/gtest.h>

#include <sstream>

#include "compress/codec.hpp"
#include "compress/index.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "datagen/quest.hpp"
#include "tdb/io.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt {
namespace {

std::vector<std::uint8_t> sample_blob() {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 40;
  cfg.seed = 3;
  const auto built =
      core::build_from_database(datagen::generate_quest(cfg), 3);
  return compress::encode_plt(built.plt);
}

TEST(Fuzz, SingleByteCorruptionNeverCrashesDecode) {
  const auto blob = sample_blob();
  Rng rng(1);
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = blob;
    const auto pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<std::uint8_t>(rng.next_u64());
    try {
      const auto plt = compress::decode_plt(mutated);
      // If it decoded, the result must be structurally valid.
      plt.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                       const core::Partition::Entry& e) {
        ASSERT_TRUE(core::is_valid(v, plt.max_rank()));
        (void)e;
      });
    } catch (const std::runtime_error&) {
      // expected for most corruptions
    }
  }
}

TEST(Fuzz, TruncationAtEveryPrefixLength) {
  const auto blob = sample_blob();
  // Check a spread of truncation points (full sweep is slow; step through).
  for (std::size_t len = 0; len < blob.size(); len += 7) {
    const std::span<const std::uint8_t> prefix(blob.data(), len);
    try {
      (void)compress::decode_plt(prefix);
    } catch (const std::runtime_error&) {
    }
    try {
      (void)compress::build_index(prefix);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, RandomBytesAsBlob) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      (void)compress::decode_plt(junk);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

// Drives a (possibly corrupt) blob through the full out-of-core mining
// path. Any outcome is fine except a crash or a hang; itemsets that do
// come out must respect min_support.
void mine_blob_expecting_no_crash(std::span<const std::uint8_t> blob,
                                  Count minsup) {
  // Oversized identity map so corrupted max_rank values up to the format
  // cap still exercise the miner instead of the item_of guard.
  static const std::vector<Item> item_of = [] {
    std::vector<Item> ids(4096);
    for (std::size_t i = 0; i < ids.size(); ++i)
      ids[i] = static_cast<Item>(i + 1);
    return ids;
  }();
  try {
    compress::mine_from_blob(blob, item_of, minsup,
                             [&](std::span<const Item>, Count support) {
                               ASSERT_GE(support, minsup);
                             });
  } catch (const std::runtime_error&) {
    // expected for most corruptions (CRC mismatch, truncated varints,
    // undersized item map when max_rank was mangled upward)
  }
}

TEST(Fuzz, OocMinerSingleByteCorruption) {
  const auto blob = sample_blob();
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = blob;
    const auto pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<std::uint8_t>(rng.next_u64());
    mine_blob_expecting_no_crash(mutated, 3);
  }
}

TEST(Fuzz, OocMinerTruncation) {
  const auto blob = sample_blob();
  for (std::size_t len = 0; len < blob.size(); len += 7)
    mine_blob_expecting_no_crash({blob.data(), len}, 3);
  SUCCEED();
}

TEST(Fuzz, OocMinerRandomBytes) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    mine_blob_expecting_no_crash(junk, 2);
  }
  SUCCEED();
}

TEST(Fuzz, HostileFimiInputs) {
  const char* inputs[] = {
      "",                          // empty
      "\n\n\n",                    // blank lines
      "1 2 3",                     // no trailing newline
      "0 0 0\n",                   // zeros are valid ids
      "4294967295\n",              // max u32
      "1 1 1 1 1\n",               // duplicates
      "   7   \n",                 // whitespace
  };
  for (const char* text : inputs) {
    std::istringstream in(text);
    const auto db = tdb::read_fimi(in);  // must not throw on these
    (void)db;
  }
  const char* bad[] = {
      "1 -2\n",            // negative
      "abc\n",             // letters
      "1 2x\n",            // trailing garbage
      "4294967296\n",      // overflow
      "1,2,3\n",           // wrong separator
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW((void)tdb::read_fimi(in), std::runtime_error) << text;
  }
}

TEST(Fuzz, MiningNeverBreaksOnDegenerateShapes) {
  // Single-item universe, all-identical rows, one giant transaction (below
  // the guard), staircase rows.
  std::vector<tdb::Database> shapes;
  shapes.push_back(tdb::Database::from_rows({{1}, {1}, {1}}));
  {
    tdb::Database db;
    for (int i = 0; i < 100; ++i) db.add({1, 2, 3, 4, 5});
    shapes.push_back(std::move(db));
  }
  {
    // One maximal 14-item transaction: 2^14-1 frequent itemsets at
    // minsup 1. (Kept at 14 deliberately — the candidate-generation
    // baselines are quadratic in per-transaction candidates, so larger
    // single transactions belong behind the top-down-style guards, not in
    // a smoke test.)
    tdb::Database db;
    std::vector<Item> big;
    for (Item i = 1; i <= 14; ++i) big.push_back(i);
    db.add(big);
    shapes.push_back(std::move(db));
  }
  {
    tdb::Database db;
    std::vector<Item> row;
    for (Item i = 1; i <= 12; ++i) {
      row.push_back(i);
      db.add(row);
    }
    shapes.push_back(std::move(db));
  }
  for (const auto& db : shapes) {
    for (const Count minsup : {1u, 2u, 1000u}) {
      for (const core::Algorithm algorithm : core::all_algorithms()) {
        try {
          const auto result = core::mine(db, minsup, algorithm);
          for (std::size_t i = 0; i < result.itemsets.size(); ++i)
            ASSERT_GE(result.itemsets.support(i), minsup);
        } catch (const core::TopDownOverflow&) {
          // acceptable on the giant-transaction shape
        }
      }
    }
  }
}

}  // namespace
}  // namespace plt
