// Top-down approach tests: variant equivalence, exactness of the expanded
// subset table against brute-force counting, guard behaviour, and edge cases.
#include <gtest/gtest.h>

#include <map>

#include "baselines/brute.hpp"
#include "core/miner.hpp"
#include "core/subset_check.hpp"
#include "core/topdown.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

tdb::Database random_db(std::uint64_t seed, std::size_t transactions,
                        std::size_t items, double density) {
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (std::size_t t = 0; t < transactions; ++t) {
    row.clear();
    for (Item i = 1; i <= items; ++i)
      if (rng.next_bool(density)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  return db;
}

std::map<PosVec, Count> expand_to_map(const RankedView& view,
                                      TopDownVariant variant) {
  const Plt table = topdown_expand(view, variant);
  std::map<PosVec, Count> out;
  table.for_each([&](Plt::Ref, std::span<const Pos> v,
                     const Partition::Entry& e) {
    out.emplace(PosVec(v.begin(), v.end()), e.freq);
  });
  return out;
}

TEST(TopDown, VariantsProduceIdenticalTables) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto db = random_db(seed, 60, 10, 0.35);
    const auto view = build_ranked_view(db, 2);
    EXPECT_EQ(expand_to_map(view, TopDownVariant::kCanonical),
              expand_to_map(view, TopDownVariant::kSweep))
        << "seed " << seed;
  }
}

// Exactness: every expanded vector's frequency equals the true support
// counted directly on the ranked database.
TEST(TopDown, ExpandedFrequenciesAreExactSupports) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const auto db = random_db(seed, 40, 9, 0.4);
    const auto view = build_ranked_view(db, 1);
    const auto table = expand_to_map(view, TopDownVariant::kCanonical);
    for (const auto& [v, freq] : table) {
      const auto ranks = to_ranks(v);
      ASSERT_EQ(freq, support_of_scan(view.db, ranks))
          << to_string(v) << " seed " << seed;
    }
  }
}

// Completeness: the expansion contains every subset of every transaction.
TEST(TopDown, ExpansionIsComplete) {
  const auto db = random_db(21, 25, 8, 0.5);
  const auto view = build_ranked_view(db, 1);
  const auto table = expand_to_map(view, TopDownVariant::kCanonical);
  // Every itemset with nonzero support over the ranked db must be present.
  const auto alphabet = static_cast<Rank>(view.alphabet());
  std::vector<Rank> ranks;
  const std::uint32_t limit = 1u << alphabet;
  for (std::uint32_t mask = 1; mask < limit; ++mask) {
    ranks.clear();
    for (Rank r = 1; r <= alphabet; ++r)
      if (mask & (1u << (r - 1))) ranks.push_back(r);
    const Count support = support_of_scan(view.db, ranks);
    if (support == 0) continue;
    const auto it = table.find(to_positions(ranks));
    ASSERT_NE(it, table.end());
    EXPECT_EQ(it->second, support);
  }
}

TEST(TopDown, MiningMatchesBruteForce) {
  for (std::uint64_t seed = 31; seed <= 35; ++seed) {
    const auto db = random_db(seed, 50, 10, 0.3);
    for (const Count minsup : {1u, 2u, 5u}) {
      FrequentItemsets expected;
      baselines::mine_brute_force(db, minsup, collect_into(expected));
      const auto view = build_ranked_view(db, minsup);
      FrequentItemsets actual;
      mine_topdown(view, minsup, collect_into(actual));
      plt::testing::expect_same_itemsets(expected, actual, "topdown");
    }
  }
}

TEST(TopDown, GuardRejectsLongTransactions) {
  const auto db = random_db(41, 10, 30, 0.95);  // ~28-item transactions
  const auto view = build_ranked_view(db, 1);
  TopDownOptions options;
  options.max_transaction_len = 20;
  EXPECT_THROW(topdown_expand(view, TopDownVariant::kCanonical, options),
               TopDownOverflow);
}

TEST(TopDown, GuardRejectsVectorBudgetBlowup) {
  // 22-item transactions pass the length guard but overflow a tiny budget.
  const auto db = random_db(43, 6, 22, 1.0);
  const auto view = build_ranked_view(db, 1);
  TopDownOptions options;
  options.max_transaction_len = 24;
  options.max_total_vectors = 1000;
  EXPECT_THROW(topdown_expand(view, TopDownVariant::kSweep, options),
               TopDownOverflow);
}

TEST(TopDown, FacadeReportsGuardThroughMineOptions) {
  const auto db = random_db(47, 8, 30, 0.95);
  MineOptions options;
  options.topdown_max_transaction_len = 16;
  EXPECT_THROW(mine(db, 1, Algorithm::kPltTopDownCanonical, options),
               TopDownOverflow);
}

TEST(TopDown, EmptyAndDegenerateInputs) {
  tdb::Database empty;
  FrequentItemsets none;
  mine_topdown(build_ranked_view(empty, 1), 1, collect_into(none));
  EXPECT_TRUE(none.empty());

  // All items infrequent at the threshold.
  const auto db = tdb::Database::from_rows({{1}, {2}, {3}});
  FrequentItemsets still_none;
  mine_topdown(build_ranked_view(db, 2), 2, collect_into(still_none));
  EXPECT_TRUE(still_none.empty());
}

TEST(TopDown, SingleItemDatabase) {
  const auto db = tdb::Database::from_rows({{7}, {7}, {7}});
  const auto view = build_ranked_view(db, 2);
  FrequentItemsets result;
  mine_topdown(view, 2, collect_into(result));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result.find_support(Itemset{7}), 3u);
}

// The paper positions top-down for very low minimum support on dense short
// transactions; make sure that regime actually completes and agrees.
TEST(TopDown, ShortDenseLowSupportRegime) {
  datagen::DenseConfig cfg;
  cfg.transactions = 300;
  cfg.items = 14;
  cfg.density = 0.4;
  cfg.classes = 2;
  cfg.seed = 77;
  const auto db = datagen::generate_dense(cfg);
  FrequentItemsets expected;
  baselines::mine_brute_force(db, 2, collect_into(expected));
  const auto result = mine(db, 2, Algorithm::kPltTopDownSweep);
  plt::testing::expect_same_itemsets(expected, result.itemsets,
                                     "short-dense");
}

}  // namespace
}  // namespace plt::core
