// Projection-pool engine tests: differential agreement of the pooled
// iterative Algorithm 3 against the seed recursive path and FP-growth on
// randomized dense + sparse databases, recycling/counter semantics, the
// Plt/Partition reset-and-reuse primitives, and byte-identical determinism
// of the work-stealing parallel miner across thread counts.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "core/projection_pool.hpp"
#include "datagen/quest.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

tdb::Database random_db(std::uint64_t seed, std::size_t transactions,
                        std::size_t items, double density) {
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (std::size_t t = 0; t < transactions; ++t) {
    row.clear();
    for (Item i = 1; i <= items; ++i)
      if (rng.next_bool(density)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  return db;
}

FrequentItemsets mine_pooled(const tdb::Database& db, Count minsup,
                             ProjectionEngine* engine = nullptr,
                             bool filter = true) {
  FrequentItemsets out;
  const auto view = build_ranked_view(db, minsup);
  if (view.alphabet() == 0) return out;
  const auto max_rank = static_cast<Rank>(view.alphabet());
  Plt plt = build_plt(view.db, max_rank);
  std::vector<Item> item_of(max_rank);
  for (Rank r = 1; r <= max_rank; ++r) item_of[r - 1] = view.item_of(r);
  std::vector<Item> suffix;
  ConditionalOptions options;
  options.filter_conditional_items = filter;
  ProjectionEngine local;
  ProjectionEngine& used = engine ? *engine : local;
  used.mine(plt, item_of, suffix, minsup, collect_into(out), options);
  return out;
}

FrequentItemsets mine_recursive(const tdb::Database& db, Count minsup) {
  FrequentItemsets out;
  const auto view = build_ranked_view(db, minsup);
  if (view.alphabet() == 0) return out;
  const auto max_rank = static_cast<Rank>(view.alphabet());
  Plt plt = build_plt(view.db, max_rank);
  std::vector<Item> item_of(max_rank);
  for (Rank r = 1; r <= max_rank; ++r) item_of[r - 1] = view.item_of(r);
  std::vector<Item> suffix;
  mine_plt_conditional_recursive(plt, item_of, suffix, minsup,
                                 collect_into(out), {});
  return out;
}

/// Raw, order-sensitive equality — stricter than FrequentItemsets::equal.
void expect_byte_identical(const FrequentItemsets& a,
                           const FrequentItemsets& b, const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ia = a.itemset(i), ib = b.itemset(i);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin(), ib.end()))
        << label << " itemset " << i;
    ASSERT_EQ(a.support(i), b.support(i)) << label << " support " << i;
  }
}

TEST(ProjectionPool, DifferentialAgainstRecursiveAndFpGrowth) {
  // >= 20 randomized cases across sparse and dense shapes; the pooled
  // engine, the seed recursive path and FP-growth must emit identical
  // itemset/support sets.
  struct Shape {
    std::size_t transactions, items;
    double density;
  };
  const Shape shapes[] = {
      {120, 24, 0.18},  // sparse
      {90, 12, 0.55},   // dense
  };
  int cases = 0;
  for (const Shape& shape : shapes) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto db =
          random_db(seed * 97 + 3, shape.transactions, shape.items,
                    shape.density);
      for (const Count minsup : {2u, 5u}) {
        const auto pooled = mine_pooled(db, minsup);
        const auto recursive = mine_recursive(db, minsup);
        const auto fp = mine(db, minsup, Algorithm::kFpGrowth);
        plt::testing::expect_same_itemsets(recursive, pooled,
                                           "pooled vs recursive");
        plt::testing::expect_same_itemsets(fp.itemsets, pooled,
                                           "pooled vs fp-growth");
        ++cases;
      }
    }
  }
  EXPECT_GE(cases, 20);
}

TEST(ProjectionPool, PooledEmissionOrderMatchesRecursive) {
  // The explicit-stack rewrite must preserve the recursive path's exact
  // emission order, not just the canonical set.
  for (std::uint64_t seed = 40; seed <= 44; ++seed) {
    const auto db = random_db(seed, 100, 14, 0.4);
    expect_byte_identical(mine_recursive(db, 3), mine_pooled(db, 3),
                          "emission order");
  }
}

TEST(ProjectionPool, UnfilteredVariantAgrees) {
  const auto db = random_db(7, 80, 10, 0.35);
  const auto filtered = mine_pooled(db, 3, nullptr, true);
  const auto unfiltered = mine_pooled(db, 3, nullptr, false);
  plt::testing::expect_same_itemsets(filtered, unfiltered, "filter on/off");
}

TEST(ProjectionPool, EngineReuseAcrossMinesIsClean) {
  // One engine mining many databases must not leak state between runs —
  // this is the parallel miner's per-worker usage pattern.
  ProjectionEngine engine;
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    const auto db = random_db(seed, 70, 11, 0.45);
    const auto fresh = mine_pooled(db, 2);
    const auto reused = mine_pooled(db, 2, &engine);
    expect_byte_identical(fresh, reused, "engine reuse");
  }
  EXPECT_GT(engine.stats().recycled_allocations, 0u);
  EXPECT_GT(engine.memory_usage(), 0u);
}

TEST(ProjectionPool, RecyclingDominatesOnDeepWorkloads) {
  // A 14-item transaction repeated: depth-13 conditional chains with many
  // siblings per depth. The pool holds one frame per depth, so recycled
  // acquisitions must dwarf fresh ones (the acceptance criterion's >= 2x).
  tdb::Database db;
  std::vector<Item> row;
  for (Item i = 1; i <= 14; ++i) row.push_back(i);
  for (int i = 0; i < 3; ++i) db.add(row);
  ProjectionEngine engine;
  const auto mined = mine_pooled(db, 3, &engine);
  EXPECT_EQ(mined.size(), (1u << 14) - 1);
  const ProjectionStats& stats = engine.stats();
  EXPECT_GT(stats.projections_built, 0u);
  EXPECT_GT(stats.entries_projected, 0u);
  EXPECT_GE(stats.recycled_allocations, 2 * stats.fresh_allocations);
  // Every projection beyond the first per depth reused a pooled frame.
  EXPECT_EQ(stats.recycled_allocations + stats.fresh_allocations,
            stats.projections_built);
  EXPECT_GT(stats.bytes_recycled, 0u);
}

TEST(ProjectionPool, FlatCondDbLayout) {
  FlatCondDb db;
  const PosVec a{1, 2, 1};
  const PosVec b{4};
  db.push(a, 3);
  db.push(b, 7);
  ASSERT_EQ(db.size(), 2u);
  const auto& records = db.records();
  EXPECT_EQ(records[0].offset, 0u);
  EXPECT_EQ(records[0].len, 3u);
  EXPECT_EQ(records[0].freq, 3u);
  EXPECT_EQ(records[1].offset, 3u);
  EXPECT_EQ(records[1].len, 1u);
  const auto va = db.positions(records[0]);
  EXPECT_TRUE(std::equal(va.begin(), va.end(), a.begin(), a.end()));
  db.clear();
  EXPECT_TRUE(db.empty());
}

TEST(ProjectionPool, PltResetRetargetsAndReuses) {
  Plt plt(6);
  plt.add(PosVec{1, 2}, 2);
  plt.add(PosVec{3, 1, 2}, 1);
  ASSERT_EQ(plt.num_vectors(), 2u);

  // Reset to a smaller alphabet: empty, capacity retained.
  plt.reset(3);
  EXPECT_EQ(plt.max_rank(), 3u);
  EXPECT_EQ(plt.num_vectors(), 0u);
  EXPECT_EQ(plt.total_freq(), 0u);
  EXPECT_EQ(plt.max_len(), 0u);
  EXPECT_EQ(plt.freq_of(PosVec{1, 2}), 0u);

  plt.add(PosVec{1, 2}, 5);
  EXPECT_EQ(plt.freq_of(PosVec{1, 2}), 5u);
  ASSERT_EQ(plt.bucket(3).size(), 1u);

  // Reset back to a wider alphabet works too.
  plt.reset(8);
  plt.add(PosVec{5, 3}, 1);
  EXPECT_EQ(plt.freq_of(PosVec{5, 3}), 1u);
  EXPECT_EQ(plt.bucket(3).size(), 0u);
}

TEST(ProjectionPool, PartitionResetKeepsIndexConsistent) {
  Partition p(2);
  for (Pos x = 1; x <= 40; ++x) p.add(PosVec{x, 1}, x);
  const std::size_t bytes = p.reset();
  EXPECT_GT(bytes, 0u);  // capacity retained for reuse
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.find(PosVec{3, 1}), Partition::kNoEntry);
  for (Pos x = 1; x <= 10; ++x) p.add(PosVec{1, x}, 1);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_NE(p.find(PosVec{1, 7}), Partition::kNoEntry);
}

TEST(ProjectionPool, MineResultCarriesProjectionStats) {
  const auto db = random_db(31, 120, 14, 0.4);
  const auto result = mine(db, 3, Algorithm::kPltConditional);
  EXPECT_GT(result.projection.projections_built, 0u);
  EXPECT_GT(result.projection.entries_projected, 0u);
  // Baselines don't project through the engine.
  const auto fp = mine(db, 3, Algorithm::kFpGrowth);
  EXPECT_EQ(fp.projection.projections_built, 0u);
}

TEST(ProjectionPool, ParallelByteIdenticalAcrossThreadCounts) {
  datagen::QuestConfig cfg;
  cfg.transactions = 350;
  cfg.items = 50;
  cfg.seed = 17;
  const auto db = datagen::generate_quest(cfg);
  const Count minsup = 3;

  parallel::ParallelOptions base;
  base.threads = 1;
  const auto reference = parallel::mine_parallel(db, minsup, base);
  ASSERT_GT(reference.itemsets.size(), 0u);
  for (const std::size_t threads : {2u, 8u}) {
    parallel::ParallelOptions options;
    options.threads = threads;
    const auto result = parallel::mine_parallel(db, minsup, options);
    expect_byte_identical(reference.itemsets, result.itemsets,
                          "thread count determinism");
  }
}

TEST(ProjectionPool, ParallelStealsAccountedWithManyWorkers) {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 40;
  cfg.seed = 23;
  const auto db = datagen::generate_quest(cfg);
  parallel::ParallelOptions options;
  options.threads = 8;
  options.steal_chunk = 1;
  const auto result = parallel::mine_parallel(db, 3, options);
  // Counters aggregate across workers; steal count is workload-dependent
  // but the projection counters must be deterministic.
  const auto again = parallel::mine_parallel(db, 3, options);
  EXPECT_EQ(result.projection.projections_built,
            again.projection.projections_built);
  EXPECT_EQ(result.projection.entries_projected,
            again.projection.entries_projected);
}

}  // namespace
}  // namespace plt::core
