// Property tests for the position-vector encoding: Lemma 4.1.1 (ranks are
// prefix sums), Lemma 4.1.2 (injectivity), Lemma 4.1.3 (level-(k-1) subset
// forms) and Property 4.1.1 adjacents, on both hand-picked and randomized
// itemsets.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/position_vector.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

std::vector<Rank> random_itemset(Rng& rng, Rank max_rank, std::size_t size) {
  std::set<Rank> picked;
  while (picked.size() < size)
    picked.insert(static_cast<Rank>(rng.next_below(max_rank) + 1));
  return {picked.begin(), picked.end()};
}

TEST(PositionVector, PaperExampleEncoding) {
  // Table 1 itemset {A,B,D} with ranks 1,2,4 -> [1,1,2].
  const std::vector<Rank> ranks{1, 2, 4};
  const PosVec v = to_positions(ranks);
  EXPECT_EQ(v, (PosVec{1, 1, 2}));
  EXPECT_EQ(vector_sum(v), 4u);  // sum == rank of last item (Lemma 4.1.1)
  EXPECT_EQ(to_ranks(v), ranks);
}

TEST(PositionVector, SingleItem) {
  const std::vector<Rank> ranks{7};
  EXPECT_EQ(to_positions(ranks), (PosVec{7}));
  EXPECT_EQ(to_ranks(PosVec{7}), ranks);
}

TEST(PositionVector, EmptyVector) {
  EXPECT_TRUE(to_positions({}).empty());
  EXPECT_TRUE(to_ranks({}).empty());
  EXPECT_EQ(vector_sum({}), 0u);
}

TEST(PositionVector, IsValidRejectsZeroAndOverflow) {
  EXPECT_TRUE(is_valid(PosVec{1, 2, 1}, 4));
  EXPECT_FALSE(is_valid(PosVec{1, 2, 2}, 4));  // sum 5 > 4
  EXPECT_FALSE(is_valid(PosVec{0, 1}, 4));     // zero position
  EXPECT_TRUE(is_valid(PosVec{}, 4));
}

TEST(PositionVector, DropLastAndMergeForms) {
  const PosVec v{1, 1, 2};  // {1,2,4}
  EXPECT_EQ(drop_last(v), (PosVec{1, 1}));        // {1,2}
  EXPECT_EQ(merge_at(v, 0), (PosVec{2, 2}));      // {2,4}
  EXPECT_EQ(merge_at(v, 1), (PosVec{1, 3}));      // {1,4}
}

TEST(PositionVector, LevelSubsetsOfSingleton) {
  EXPECT_TRUE(level_subsets(PosVec{3}).empty());
}

TEST(PositionVector, ToString) {
  EXPECT_EQ(to_string(PosVec{1, 2, 1}), "[1,2,1]");
  EXPECT_EQ(to_string(PosVec{}), "[]");
}

// Lemma 4.1.1 as a property: Rank(x_i) == Σ_{j<=i} pos(x_j).
TEST(PositionVector, Lemma411_RoundTripRandomized) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const auto size = 1 + rng.next_below(12);
    const auto ranks = random_itemset(rng, 64, size);
    const PosVec v = to_positions(ranks);
    ASSERT_EQ(to_ranks(v), ranks);
    ASSERT_EQ(vector_sum(v), ranks.back());
    for (const Pos p : v) ASSERT_GE(p, 1u);
  }
}

// Lemma 4.1.2 as a property: distinct itemsets -> distinct vectors.
TEST(PositionVector, Lemma412_InjectivityRandomized) {
  Rng rng(103);
  std::set<std::vector<Rank>> itemsets;
  std::set<PosVec> vectors;
  for (int trial = 0; trial < 2000; ++trial) {
    const auto size = 1 + rng.next_below(8);
    const auto ranks = random_itemset(rng, 32, size);
    itemsets.insert(ranks);
    vectors.insert(to_positions(ranks));
  }
  EXPECT_EQ(itemsets.size(), vectors.size());
}

// Lemma 4.1.3 as a property: the level-(k-1) forms are exactly the encodings
// of the k-1 element-drop subsets, in drop order {last, x1, x2, ...}.
TEST(PositionVector, Lemma413_SubsetFormsRandomized) {
  Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    const auto size = 2 + rng.next_below(9);
    const auto ranks = random_itemset(rng, 48, size);
    const PosVec v = to_positions(ranks);
    const auto forms = level_subsets(v);
    ASSERT_EQ(forms.size(), ranks.size());

    // Form (a): drop the last element.
    std::vector<Rank> expect(ranks.begin(), ranks.end() - 1);
    ASSERT_EQ(forms[0], to_positions(expect));

    // Form (b) with 0-based merge index i: drops the 0-based element i
    // (its position value folds into the successor's).
    for (std::size_t i = 0; i + 1 < ranks.size(); ++i) {
      std::vector<Rank> subset;
      for (std::size_t j = 0; j < ranks.size(); ++j)
        if (j != i) subset.push_back(ranks[j]);
      ASSERT_EQ(forms[i + 1], to_positions(subset))
          << "merge index " << i;
    }
  }
}

// Property 4.1.1 consequence used throughout: the vector of a subset is
// reachable by a sequence of merges/drops; verify one random chain.
TEST(PositionVector, SubsetReachableByDeletionChain) {
  Rng rng(109);
  for (int trial = 0; trial < 200; ++trial) {
    const auto size = 3 + rng.next_below(8);
    auto ranks = random_itemset(rng, 40, size);
    PosVec v = to_positions(ranks);
    // Delete elements in decreasing index order (the canonical order).
    while (ranks.size() > 1) {
      const auto del = rng.next_below(ranks.size());
      PosVec next =
          (del + 1 == ranks.size()) ? drop_last(v)
                                    : merge_at(v, del);
      ranks.erase(ranks.begin() + static_cast<std::ptrdiff_t>(del));
      ASSERT_EQ(next, to_positions(ranks));
      v = std::move(next);
    }
  }
}

TEST(PositionVectorDeath, RejectsNonIncreasingRanks) {
  EXPECT_DEATH(to_positions(std::vector<Rank>{3, 3}), "strictly increasing");
  EXPECT_DEATH(to_positions(std::vector<Rank>{5, 2}), "strictly increasing");
}

TEST(PositionVectorDeath, MergeOutOfRange) {
  EXPECT_DEATH(merge_at(PosVec{1, 2}, 1), "out of range");
}

}  // namespace
}  // namespace plt::core
