// Differential tests for the vectorized kernel layer: every compiled SIMD
// backend is pinned to the scalar reference (contract rule #1 — identical
// bits, including hashes and mod-2^32 wrap-around) on randomized and
// adversarial inputs, and mine() output is checked byte-identical across
// backends in emission order, not just as canonicalized sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/counting.hpp"
#include "core/miner.hpp"
#include "harness/datasets.hpp"
#include "kernels/kernels.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt {
namespace {

using kernels::Dispatch;

std::vector<const Dispatch*> simd_backends() {
  std::vector<const Dispatch*> v;
  for (const auto b : {kernels::Backend::kSSE42, kernels::Backend::kAVX2})
    if (const Dispatch* d = kernels::dispatch_for(b)) v.push_back(d);
  return v;
}

// Sizes that straddle every vector width boundary plus a few big ones.
const std::size_t kSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,   9,   15,  16,
                              17, 23, 31, 32, 33, 63, 64, 65, 100, 1000, 4096};

std::vector<std::uint32_t> random_words(Rng& rng, std::size_t n,
                                        std::uint32_t lo = 0,
                                        std::uint32_t hi = 0xffffffffu) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v)
    w = lo + static_cast<std::uint32_t>(rng.next_below(hi - lo + 1ull));
  return v;
}

// Strictly increasing tidlist-like vector.
std::vector<std::uint32_t> random_sorted(Rng& rng, std::size_t n,
                                         std::uint32_t max_gap) {
  std::vector<std::uint32_t> v(n);
  std::uint32_t x = static_cast<std::uint32_t>(rng.next_below(4));
  for (auto& w : v) {
    x += 1 + static_cast<std::uint32_t>(rng.next_below(max_gap));
    w = x;
  }
  return v;
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_EQ(kernels::scalar_dispatch().backend, kernels::Backend::kScalar);
  EXPECT_STREQ(kernels::scalar_dispatch().name, "scalar");
  EXPECT_NE(kernels::dispatch_for(kernels::Backend::kScalar), nullptr);
  EXPECT_NE(&kernels::active(), nullptr);
}

TEST(KernelDispatch, SelectBackendSemantics) {
  const kernels::Backend before = kernels::active().backend;
  EXPECT_TRUE(kernels::select_backend(""));  // no-op
  EXPECT_EQ(kernels::active().backend, before);
  EXPECT_TRUE(kernels::select_backend("scalar"));
  EXPECT_EQ(kernels::active().backend, kernels::Backend::kScalar);
  EXPECT_TRUE(kernels::select_backend("auto"));
  EXPECT_EQ(kernels::active().backend, kernels::best_supported());
  EXPECT_TRUE(kernels::select_backend("simd"));
  EXPECT_EQ(kernels::active().backend, kernels::best_supported());
  EXPECT_FALSE(kernels::select_backend("neon"));
  EXPECT_EQ(kernels::active().backend, kernels::best_supported());
  // Named backends succeed exactly when compiled in + CPU-supported.
  for (const auto& [name, backend] :
       {std::pair<std::string, kernels::Backend>{"sse42",
                                                 kernels::Backend::kSSE42},
        {"avx2", kernels::Backend::kAVX2}}) {
    const bool available = kernels::dispatch_for(backend) != nullptr;
    EXPECT_EQ(kernels::select_backend(name), available) << name;
    if (available) EXPECT_EQ(kernels::active().backend, backend);
  }
  EXPECT_TRUE(kernels::select_backend("auto"));
}

TEST(KernelDispatch, BestSupportedHasTable) {
  EXPECT_NE(kernels::dispatch_for(kernels::best_supported()), nullptr);
}

TEST(KernelDiff, PeelPrefixes) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(1);
  for (const std::size_t n : kSizes) {
    const auto gaps = random_words(rng, n, 1, 50);
    std::vector<std::uint32_t> ref(n), got(n);
    kernels::scalar_dispatch().peel_prefixes(gaps.data(), ref.data(), n);
    for (const Dispatch* d : backends) {
      std::fill(got.begin(), got.end(), 0u);
      d->peel_prefixes(gaps.data(), got.data(), n);
      EXPECT_EQ(ref, got) << d->name << " n=" << n;
    }
  }
}

TEST(KernelDiff, PeelPrefixesWrapsMod32) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  // Values near UINT32_MAX force the running sum to wrap many times; every
  // backend must wrap identically (the projection engine's re-basing
  // subtraction relies on exact mod-2^32 behaviour).
  Rng rng(2);
  const auto gaps =
      random_words(rng, 133, 0xf0000000u, std::numeric_limits<std::uint32_t>::max());
  std::vector<std::uint32_t> ref(gaps.size()), got(gaps.size());
  kernels::scalar_dispatch().peel_prefixes(gaps.data(), ref.data(),
                                           gaps.size());
  for (const Dispatch* d : backends) {
    d->peel_prefixes(gaps.data(), got.data(), gaps.size());
    EXPECT_EQ(ref, got) << d->name;
  }
  // Spot-check the wrap is real arithmetic mod 2^32, not saturation.
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    acc += gaps[i];
    ASSERT_EQ(ref[i], acc);
  }
}

TEST(KernelDiff, PeelPrefixesUnalignedOffsets) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(3);
  const auto gaps = random_words(rng, 200, 1, 9);
  std::vector<std::uint32_t> ref(gaps.size()), got(gaps.size());
  for (std::size_t off = 0; off < 9; ++off) {
    const std::size_t n = gaps.size() - off;
    kernels::scalar_dispatch().peel_prefixes(gaps.data() + off, ref.data(),
                                             n);
    for (const Dispatch* d : backends) {
      d->peel_prefixes(gaps.data() + off, got.data(), n);
      EXPECT_TRUE(std::equal(ref.begin(), ref.begin() + static_cast<std::ptrdiff_t>(n),
                             got.begin()))
          << d->name << " off=" << off;
    }
  }
}

TEST(KernelDiff, HashPositions) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(4);
  for (const std::size_t n : kSizes) {
    for (int rep = 0; rep < 4; ++rep) {
      const auto v = random_words(rng, n);
      const std::uint64_t ref =
          kernels::scalar_dispatch().hash_positions(v.data(), n);
      for (const Dispatch* d : backends)
        EXPECT_EQ(d->hash_positions(v.data(), n), ref)
            << d->name << " n=" << n;
    }
  }
  // Unaligned starts.
  const auto big = random_words(rng, 100);
  for (std::size_t off = 0; off < 9; ++off) {
    const std::uint64_t ref = kernels::scalar_dispatch().hash_positions(
        big.data() + off, big.size() - off);
    for (const Dispatch* d : backends)
      EXPECT_EQ(d->hash_positions(big.data() + off, big.size() - off), ref)
          << d->name << " off=" << off;
  }
}

TEST(KernelDiff, EqualsPositions) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(5);
  for (const std::size_t n : kSizes) {
    const auto a = random_words(rng, n);
    auto b = a;
    for (const Dispatch* d : backends)
      EXPECT_TRUE(d->equals_positions(a.data(), b.data(), n))
          << d->name << " n=" << n;
    if (n == 0) continue;
    // Flip one word at every position: the compare may not miss any lane.
    for (std::size_t i = 0; i < n; ++i) {
      b[i] ^= 0x40u;
      for (const Dispatch* d : backends)
        EXPECT_FALSE(d->equals_positions(a.data(), b.data(), n))
            << d->name << " n=" << n << " i=" << i;
      b[i] = a[i];
    }
  }
}

std::vector<std::uint32_t> varint_mix(Rng& rng, std::size_t n) {
  std::vector<std::uint32_t> v(n);
  for (auto& w : v) {
    const std::uint64_t cls = rng.next_below(4);
    const std::uint32_t raw = static_cast<std::uint32_t>(rng.next_u64());
    w = cls == 0 ? (raw & 0xffu) : cls == 1 ? (raw & 0xffffu)
        : cls == 2 ? (raw & 0xffffffu) : raw;
  }
  return v;
}

TEST(KernelDiff, VarintBlockRoundTrip) {
  const auto backends = simd_backends();
  Rng rng(6);
  for (const std::size_t n : kSizes) {
    const auto values = varint_mix(rng, n);
    std::vector<std::uint8_t> ref_bytes(kernels::encoded_block_bound(n));
    const std::size_t ref_len = kernels::scalar_dispatch().encode_varint_block(
        values.data(), n, ref_bytes.data());
    EXPECT_EQ(ref_len, kernels::encoded_block_size(values.data(), n));
    // Scalar decode closes the loop.
    std::vector<std::uint32_t> decoded(n);
    EXPECT_EQ(kernels::scalar_dispatch().decode_varint_block(
                  ref_bytes.data(), ref_len, decoded.data(), n),
              ref_len);
    EXPECT_EQ(decoded, values);
    for (const Dispatch* d : backends) {
      // Canonical encoding: identical bytes, not just decodable ones.
      std::vector<std::uint8_t> got_bytes(kernels::encoded_block_bound(n));
      const std::size_t got_len =
          d->encode_varint_block(values.data(), n, got_bytes.data());
      ASSERT_EQ(got_len, ref_len) << d->name << " n=" << n;
      EXPECT_TRUE(std::equal(ref_bytes.begin(),
                             ref_bytes.begin() + static_cast<std::ptrdiff_t>(ref_len),
                             got_bytes.begin()))
          << d->name << " n=" << n;
      std::vector<std::uint32_t> got(n);
      EXPECT_EQ(d->decode_varint_block(ref_bytes.data(), ref_len, got.data(),
                                       n),
                ref_len)
          << d->name << " n=" << n;
      EXPECT_EQ(got, values) << d->name << " n=" << n;
      // Slack after the block must not change what is decoded.
      got_bytes.assign(ref_bytes.begin(), ref_bytes.end());
      got_bytes.resize(ref_len + 64, 0xee);
      EXPECT_EQ(d->decode_varint_block(got_bytes.data(), got_bytes.size(),
                                       got.data(), n),
                ref_len)
          << d->name << " n=" << n;
      EXPECT_EQ(got, values) << d->name << " n=" << n;
    }
  }
}

TEST(KernelDiff, VarintBlockTruncationIsAnError) {
  const auto backends = simd_backends();
  Rng rng(7);
  const auto values = varint_mix(rng, 37);
  std::vector<std::uint8_t> bytes(kernels::encoded_block_bound(values.size()));
  const std::size_t len = kernels::scalar_dispatch().encode_varint_block(
      values.data(), values.size(), bytes.data());
  std::vector<std::uint32_t> out(values.size());
  std::vector<const Dispatch*> all = {&kernels::scalar_dispatch()};
  all.insert(all.end(), backends.begin(), backends.end());
  for (const Dispatch* d : all) {
    for (const std::size_t cut : {std::size_t{0}, std::size_t{1}, len / 2,
                                  len - 1}) {
      EXPECT_EQ(d->decode_varint_block(bytes.data(), cut, out.data(),
                                       values.size()),
                kernels::kDecodeError)
          << d->name << " cut=" << cut;
    }
    EXPECT_EQ(d->decode_varint_block(bytes.data(), 0, out.data(), 0),
              std::size_t{0})
        << d->name;
  }
}

TEST(KernelDiff, VarintBlockByteLengthBoundaries) {
  // Deterministic pins at every group-varint byte-length boundary,
  // including the full-width 0xffffffff lane: the encoder's truncating
  // byte-extraction casts (-Wconversion audit) must shed exactly the bits
  // the next lane re-reads.
  const std::vector<std::uint32_t> values = {
      0,        1,         0xffu,      0x100u,      0xffffu,
      0x10000u, 0xffffffu, 0x1000000u, 0xffffffffu};
  std::vector<std::uint8_t> bytes(kernels::encoded_block_bound(values.size()));
  const std::size_t len = kernels::scalar_dispatch().encode_varint_block(
      values.data(), values.size(), bytes.data());
  // 3 control bytes (groups of 4,4,1) + Σ byte lengths 1+1+1+2+2+3+3+4+4.
  EXPECT_EQ(len, 24u);
  std::vector<std::uint32_t> decoded(values.size());
  EXPECT_EQ(kernels::scalar_dispatch().decode_varint_block(
                bytes.data(), len, decoded.data(), values.size()),
            len);
  EXPECT_EQ(decoded, values);
  for (const Dispatch* d : simd_backends()) {
    std::vector<std::uint8_t> got_bytes(bytes.size());
    EXPECT_EQ(d->encode_varint_block(values.data(), values.size(),
                                     got_bytes.data()),
              len)
        << d->name;
    EXPECT_TRUE(std::equal(bytes.begin(),
                           bytes.begin() + static_cast<std::ptrdiff_t>(len),
                           got_bytes.begin()))
        << d->name;
    std::fill(decoded.begin(), decoded.end(), 0u);
    EXPECT_EQ(d->decode_varint_block(bytes.data(), len, decoded.data(),
                                     values.size()),
              len)
        << d->name;
    EXPECT_EQ(decoded, values) << d->name;
  }
}

TEST(KernelDiff, IntersectSortedAndCount) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(8);
  const struct {
    std::size_t na, nb;
    std::uint32_t gap_a, gap_b;
  } shapes[] = {
      {0, 0, 1, 1},       {0, 17, 1, 1},     {1, 1, 1, 1},
      {1, 1000, 1, 1},    {5, 7, 2, 2},      {8, 8, 2, 2},
      {9, 9, 3, 3},       {16, 33, 2, 2},    {100, 100, 2, 2},
      {255, 257, 3, 3},   {1000, 1000, 2, 2}, {4096, 4099, 4, 4},
      {31, 4096, 2, 2},  // galloping path (ratio > 32)
      {3, 4096, 1, 8},   // galloping, sparse big side
  };
  for (const auto& s : shapes) {
    for (int rep = 0; rep < 3; ++rep) {
      const auto a = random_sorted(rng, s.na, s.gap_a);
      const auto b = random_sorted(rng, s.nb, s.gap_b);
      std::vector<std::uint32_t> expected;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(expected));
      std::vector<std::uint32_t> out(std::min(s.na, s.nb) + 4, 0xdeadbeefu);
      const std::size_t ref = kernels::scalar_dispatch().intersect_sorted(
          a.data(), s.na, b.data(), s.nb, out.data());
      ASSERT_EQ(ref, expected.size());
      ASSERT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
      EXPECT_EQ(kernels::scalar_dispatch().intersect_count(a.data(), s.na,
                                                           b.data(), s.nb),
                ref);
      for (const Dispatch* d : backends) {
        std::fill(out.begin(), out.end(), 0xdeadbeefu);
        EXPECT_EQ(d->intersect_sorted(a.data(), s.na, b.data(), s.nb,
                                      out.data()),
                  ref)
            << d->name << " na=" << s.na << " nb=" << s.nb;
        EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
            << d->name << " na=" << s.na << " nb=" << s.nb;
        EXPECT_EQ(d->intersect_count(a.data(), s.na, b.data(), s.nb), ref)
            << d->name;
      }
      // Identical inputs and fully disjoint inputs are the branchy edges.
      std::vector<std::uint32_t> c = a;
      std::vector<std::uint32_t> disjoint(s.na);
      for (std::size_t i = 0; i < s.na; ++i)
        disjoint[i] = (s.na > 0 && !a.empty() ? a.back() : 0u) + 1u +
                      static_cast<std::uint32_t>(i);
      std::vector<std::uint32_t> out2(s.na + 4);
      for (const Dispatch* d : backends) {
        EXPECT_EQ(d->intersect_count(a.data(), s.na, c.data(), s.na), s.na)
            << d->name;
        EXPECT_EQ(d->intersect_count(a.data(), s.na, disjoint.data(), s.na),
                  0u)
            << d->name;
      }
    }
  }
}

TEST(KernelDiff, SumReductions) {
  const auto backends = simd_backends();
  if (backends.empty()) GTEST_SKIP() << "no SIMD backend compiled/supported";
  Rng rng(9);
  for (const std::size_t n : kSizes) {
    // Near-max u32 words: sum_positions must wrap mod 2^32 identically.
    const auto words = random_words(rng, n, 0xfffffff0u,
                                    std::numeric_limits<std::uint32_t>::max());
    const std::uint32_t ref32 =
        kernels::scalar_dispatch().sum_positions(words.data(), n);
    std::vector<std::uint64_t> counts(n);
    for (auto& c : counts) c = rng.next_u64();
    const std::uint64_t ref64 =
        kernels::scalar_dispatch().sum_counts(counts.data(), n);
    for (const Dispatch* d : backends) {
      EXPECT_EQ(d->sum_positions(words.data(), n), ref32)
          << d->name << " n=" << n;
      EXPECT_EQ(d->sum_counts(counts.data(), n), ref64)
          << d->name << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: emission order (not just the canonicalized set) must be
// byte-identical across backends — the hash kernel feeds unordered_map
// iteration orders, so this is the strictest observable contract.

void expect_identical_emission(const core::FrequentItemsets& a,
                               const core::FrequentItemsets& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ia = a.itemset(i);
    const auto ib = b.itemset(i);
    ASSERT_TRUE(ia.size() == ib.size() &&
                std::equal(ia.begin(), ia.end(), ib.begin()))
        << label << " itemset " << i;
    ASSERT_EQ(a.support(i), b.support(i)) << label << " support " << i;
  }
}

class BackendGuard {
 public:
  BackendGuard() : before_(kernels::active().backend) {}
  ~BackendGuard() { kernels::set_backend(before_); }

 private:
  kernels::Backend before_;
};

TEST(KernelEndToEnd, MineByteIdenticalAcrossBackends) {
  if (simd_backends().empty())
    GTEST_SKIP() << "no SIMD backend compiled/supported";
  const BackendGuard guard;
  const struct {
    const char* name;
    tdb::Database db;
    Count minsup;
    double minsup_frac;  // used when minsup == 0
  } cases[] = {
      // Dense generators need dataset-appropriate supports (the bench
      // sweeps use 0.60+ on chess-like); going lower explodes the
      // frequent-itemset count combinatorially.
      {"paper_table1", testing::paper_table1(), 2, 0.0},
      {"chess-like", harness::scaled_dataset("chess-like", 0.05), 0, 0.65},
      {"mushroom-like", harness::scaled_dataset("mushroom-like", 0.05), 0,
       0.30},
  };
  for (const auto& c : cases) {
    const Count minsup =
        c.minsup != 0 ? c.minsup
                      : harness::support_grid(c.db, {c.minsup_frac}).front();
    std::vector<core::Algorithm> algorithms = {
        core::Algorithm::kPltConditional, core::Algorithm::kEclat,
        core::Algorithm::kDEclat, core::Algorithm::kAprioriTid};
    // The top-down guard (rightly) refuses the generated datasets' long
    // transactions; the paper db exercises that path.
    if (std::string(c.name) == "paper_table1")
      algorithms.push_back(core::Algorithm::kPltTopDownCanonical);
    for (const core::Algorithm algorithm : algorithms) {
      core::MineOptions scalar_opt;
      scalar_opt.kernel_backend = "scalar";
      const core::MineResult ref = core::mine(c.db, minsup, algorithm,
                                              scalar_opt);
      for (const Dispatch* d : simd_backends()) {
        core::MineOptions opt;
        opt.kernel_backend = d->name;
        const core::MineResult got = core::mine(c.db, minsup, algorithm, opt);
        expect_identical_emission(
            ref.itemsets, got.itemsets,
            std::string(c.name) + "/" + core::algorithm_name(algorithm) +
                "/" + d->name);
      }
    }
  }
}

TEST(KernelEndToEnd, UnknownBackendThrows) {
  const BackendGuard guard;
  core::MineOptions opt;
  opt.kernel_backend = "warp9";
  EXPECT_THROW(core::mine(testing::paper_table1(), 2,
                          core::Algorithm::kPltConditional, opt),
               std::invalid_argument);
}

TEST(KernelEndToEnd, CountSupportsVerticalMatchesTrie) {
  const BackendGuard guard;
  const auto db = harness::scaled_dataset("mushroom-like", 0.05);
  Rng rng(10);
  std::vector<Itemset> candidates;
  candidates.push_back({});  // empty candidate: support = |db|
  for (int i = 0; i < 60; ++i) {
    Itemset c;
    Item item = 1;
    const std::size_t len = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < len; ++k) {
      item += 1 + static_cast<Item>(rng.next_below(8));
      c.push_back(item);
    }
    candidates.push_back(c);
  }
  // The trie maps each distinct candidate to one counter, so duplicate
  // candidates would be credited to a single index — dedupe first.
  std::sort(candidates.begin() + 1, candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const auto trie = baselines::count_supports(db, candidates);
  for (const char* backend : {"scalar", "simd"}) {
    ASSERT_TRUE(kernels::select_backend(backend));
    EXPECT_EQ(baselines::count_supports_vertical(db, candidates), trie)
        << backend;
  }
}

}  // namespace
}  // namespace plt
