// Minimal registry for the fixture tree: the golden tests run plt_lint
// with --root pointing here, so this file plays the role of the real
// src/obs/span_names.hpp.
#pragma once

namespace plt::obs::names {

inline constexpr const char* kSpans[] = {
    "mine",
    "projection",
};

inline constexpr const char* kCounters[] = {
    "itemsets-total",
    "kernel.demo.bytes",
    "kernel.demo.calls",
};

}  // namespace plt::obs::names
