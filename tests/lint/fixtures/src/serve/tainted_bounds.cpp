// taint-bounds fixture (S28): a value produced by a decode/parse/read
// call — or filled in as a Reader-accessor out-parameter — is tainted and
// must pass a bounds check (PLT_ASSERT, branch, std::min/clamp, direct
// comparison) before indexing or sizing anything. The rule is
// flow-sensitive in stream order, so a check AFTER the use still fires.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#define PLT_ASSERT(cond, msg) ((void)0)

namespace fixture {

std::uint32_t parse_u32(const std::uint8_t* wire, std::size_t& cursor);

struct Reader {
  const std::uint8_t* bytes;
  std::size_t pos;
  bool u16(std::uint16_t& out);
};

std::uint32_t use_before_check(const std::uint8_t* wire,
                               const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t slot = parse_u32(wire, cursor);
  // EXPECT(taint-bounds)
  return table[slot];
}

std::vector<std::uint8_t> sized_from_wire(const std::uint8_t* wire) {
  std::size_t cursor = 0;
  const std::uint32_t count = parse_u32(wire, cursor);
  std::vector<std::uint8_t> out;
  // EXPECT(taint-bounds)
  out.resize(count);
  return out;
}

std::uint32_t check_too_late(const std::uint8_t* wire, std::size_t n,
                             const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t slot = parse_u32(wire, cursor);
  // EXPECT(taint-bounds)
  const std::uint32_t value = table[slot];
  if (slot >= n) return 0;
  return value;
}

// The branch checks the CALL's success, not the out-parameter's bounds:
// rank stays tainted through the condition.
std::uint16_t out_param_stays_tainted(Reader& reader,
                                      const std::uint16_t* table) {
  std::uint16_t rank = 0;
  if (!reader.u16(rank)) return 0;
  // EXPECT(taint-bounds)
  return table[rank];
}

std::uint32_t branch_checked(const std::uint8_t* wire, std::size_t n,
                             const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t slot = parse_u32(wire, cursor);
  if (slot >= n) return 0;
  return table[slot];
}

std::uint32_t assert_checked(const std::uint8_t* wire, std::size_t n,
                             const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t slot = parse_u32(wire, cursor);
  PLT_ASSERT(slot < n, "slot decoded in range");
  return table[slot];
}

std::uint32_t clamped(const std::uint8_t* wire, std::size_t n,
                      const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t want = parse_u32(wire, cursor);
  const std::size_t take = std::min<std::size_t>(want, n - 1);
  return table[take];
}

std::uint32_t vetted_elsewhere(const std::uint8_t* wire,
                               const std::uint32_t* table) {
  std::size_t cursor = 0;
  const std::uint32_t slot = parse_u32(wire, cursor);
  // The dispatcher validated slot before handing the frame to this
  // helper (see the routing table). plt-lint: allow(taint-bounds)
  return table[slot];
}

}  // namespace fixture
