// assert-untrusted-index fixture for the serve layer (S28): frame
// decoders consume bytes straight off a TCP socket, so a decode function
// that subscripts the wire without a PLT_ASSERT / bounds throw is the
// classic unchecked wire-length bug.
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#define PLT_ASSERT(cond, msg) ((void)0)

namespace fixture {

// EXPECT(assert-untrusted-index)
std::uint32_t decode_frame_length(const std::uint8_t* wire, std::size_t n) {
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(wire[i]) << (8 * i);
  return length + static_cast<std::uint32_t>(n);
}

std::uint32_t decode_frame_length_checked(const std::uint8_t* wire,
                                          std::size_t n) {
  if (n < 4) throw std::runtime_error("short frame prefix");
  std::uint32_t length = 0;
  for (std::size_t i = 0; i < 4; ++i)
    length |= static_cast<std::uint32_t>(wire[i]) << (8 * i);
  return length;
}

std::uint8_t read_opcode(const std::uint8_t* wire, std::size_t n) {
  PLT_ASSERT(n >= 6, "fixed header present");
  return wire[5];
}

// Not a decode/read/parse name: subscripting is the caller's business.
std::uint8_t frame_byte(const std::uint8_t* wire, std::size_t i) {
  return wire[i];
}

}  // namespace fixture
