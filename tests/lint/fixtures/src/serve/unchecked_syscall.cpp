// syscall-check fixture (S28): raw globally-qualified syscall returns in
// the serve/shard layers must be consumed — assigned, branched on,
// compared, or returned. Statement position and bare (void) discards need
// a reviewed allow() pragma. Unqualified method calls are out of scope.
#include <cstddef>

extern "C" {
long read(int fd, void* buf, unsigned long n);
long write(int fd, const void* buf, unsigned long n);
int accept(int fd, void* addr, void* len);
int epoll_ctl(int ep, int op, int fd, void* ev);
int setsockopt(int fd, int level, int name, const void* val,
               unsigned int len);
}

namespace fixture {

void fire_and_forget(int fd, const void* buf) {
  // EXPECT(syscall-check)
  ::write(fd, buf, 1);
}

void cast_away(int ep, int fd, void* ev) {
  // EXPECT(syscall-check)
  (void)::epoll_ctl(ep, 1, fd, ev);
}

void vetted_discard(int fd, const int* one) {
  // Best-effort socket knob; failure downgrades latency, never
  // correctness. plt-lint: allow(syscall-check)
  (void)::setsockopt(fd, 6, 1, one, sizeof(*one));
}

long assigned(int fd, void* buf, std::size_t n) {
  const long got = ::read(fd, buf, n);
  if (got < 0) return 0;
  return got;
}

int branch_checked(int ep, int fd, void* ev) {
  if (::epoll_ctl(ep, 3, fd, ev) != 0) return -1;
  return 0;
}

int returned(int fd) { return ::accept(fd, nullptr, nullptr); }

int compared_after(int fd, void* buf, std::size_t n) {
  while (::read(fd, buf, n) > 0) {
  }
  return 0;
}

struct Channel {
  long read(void* buf, std::size_t n);
};

long method_not_a_syscall(Channel& channel, void* buf) {
  channel.read(buf, 4);
  return 0;
}

}  // namespace fixture
