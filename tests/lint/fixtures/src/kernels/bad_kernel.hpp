// kernel-purity fixture: a kernel implementation that allocates, throws,
// and does IO. Every marked line must be reported; the suppressed one and
// the comment/string decoys must not.
#pragma once

// Words inside comments never count: new delete throw cout malloc.
#include <cstddef>

namespace fixture {

inline int* allocate_scratch(std::size_t n) {
  return new int[n];  // EXPECT(kernel-purity) EXPECT(no-banned-apis)
}

inline void report(int code) {
  if (code != 0) throw code;  // EXPECT(kernel-purity)
}

inline const char* describe() {
  return "a string mentioning new and throw is fine";
}

// plt-lint: allow(kernel-purity)
inline void* intentional(std::size_t n) { return malloc(n); }

inline int pure_kernel(const int* data, std::size_t n) {
  int sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += data[i];
  return sum;
}

}  // namespace fixture
