// no-banned-apis fixture: nondeterministic / unsafe APIs and raw
// new/delete. `= delete`, make_unique-style code and strings are fine.
#include <cstdlib>
#include <memory>

namespace fixture {

int roll_dice() {
  return rand();  // EXPECT(no-banned-apis)
}

void seed_dice(unsigned s) {
  srand(s);  // EXPECT(no-banned-apis)
}

int* raw_alloc(int n) {
  return new int[n];  // EXPECT(no-banned-apis)
}

void raw_free(int* p) {
  delete[] p;  // EXPECT(no-banned-apis)
}

struct NoCopy {
  NoCopy(const NoCopy&) = delete;  // fine: deleted function, not delete-expr
};

std::unique_ptr<int> good_alloc() { return std::make_unique<int>(7); }

const char* describe() { return "rand and new inside a string are fine"; }

// plt-lint: allow(no-banned-apis)
int suppressed_roll() { return rand(); }

}  // namespace fixture
