// assert-untrusted-index fixture: decode/read/parse functions that
// subscript without a PLT_ASSERT / throw are the bug; guarded ones and
// non-decode helpers are fine.
#include <cstddef>
#include <stdexcept>

#define PLT_ASSERT(cond, msg) ((void)0)

namespace fixture {

// EXPECT(assert-untrusted-index)
unsigned decode_header(const unsigned char* bytes, std::size_t n) {
  unsigned value = 0;
  for (std::size_t i = 0; i < 4; ++i) value |= bytes[i];
  return value + static_cast<unsigned>(n);
}

unsigned decode_checked(const unsigned char* bytes, std::size_t n) {
  if (n < 4) throw std::runtime_error("truncated");
  unsigned value = 0;
  for (std::size_t i = 0; i < 4; ++i) value |= bytes[i];
  return value;
}

unsigned read_asserted(const unsigned char* bytes, std::size_t n) {
  PLT_ASSERT(n >= 4, "need 4 bytes");
  return bytes[0] | bytes[3];
}

// Not a decode/read/parse name: subscripting is the caller's business.
unsigned sum_block(const unsigned char* bytes, std::size_t n) {
  unsigned value = 0;
  for (std::size_t i = 0; i < n; ++i) value += bytes[i];
  return value;
}

// "thread" merely contains "read": not an untrusted-input function.
unsigned thread_local_slot(const unsigned* slots, std::size_t i) {
  return slots[i];
}

}  // namespace fixture
