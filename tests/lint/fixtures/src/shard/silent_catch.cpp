// typed-status fixture (S28): every catch handler in the serve/shard
// layers sits on a failpoint-reachable error path (InjectedFault and
// friends propagate by throw), so it must produce a typed outcome —
// return a Status/MineStatus/error response, rethrow, return a value, or
// at minimum log — never swallow the exception silently.
#include <exception>
#include <stdexcept>

namespace fixture {

enum class MineStatus { kCompleted, kFailed };

int risky();
void log_warn(const char* msg);

int swallowed(int fallback) {
  try {
    return risky();
  } catch (const std::exception&) {  // EXPECT(typed-status)
  }
  return fallback;
}

void bare_return_drop(int* out) {
  try {
    *out = risky();
  } catch (...) {  // EXPECT(typed-status)
    return;
  }
}

bool flag_flip_only() {
  bool ok = true;
  try {
    risky();
  } catch (const std::exception&) {  // EXPECT(typed-status)
    ok = false;
  }
  return ok;
}

MineStatus typed(int* out) {
  try {
    *out = risky();
  } catch (const std::exception&) {
    return MineStatus::kFailed;
  }
  return MineStatus::kCompleted;
}

int rethrown() {
  try {
    return risky();
  } catch (const std::runtime_error&) {
    throw;
  }
}

void logged() {
  try {
    risky();
  } catch (const std::exception&) {
    log_warn("worker attempt failed; relaunching");
  }
}

int value_returned(int fallback) {
  try {
    return risky();
  } catch (...) {
    return fallback;
  }
}

void best_effort_probe() {
  try {
    risky();
  }
  // Liveness probe only; the outcome is the timeout that follows.
  // plt-lint: allow(typed-status)
  catch (...) {
  }
}

}  // namespace fixture
