// assert-untrusted-index fixture for the shard layer: manifest/summary
// decoders consume bytes written by another process (or another machine),
// so subscripting without a PLT_ASSERT / throw is the bug — same contract
// the compress/ and tdb/ decoders carry.
#include <cstddef>
#include <stdexcept>

#define PLT_ASSERT(cond, msg) ((void)0)

namespace fixture {

// EXPECT(assert-untrusted-index)
unsigned decode_summary(const unsigned char* bytes, std::size_t n) {
  unsigned shard_id = bytes[0];
  unsigned rank_lo = bytes[1];
  return shard_id + rank_lo + static_cast<unsigned>(n);
}

unsigned decode_manifest(const unsigned char* bytes, std::size_t n) {
  if (n < 8) throw std::runtime_error("manifest truncated");
  return bytes[4] | bytes[7];
}

unsigned read_window(const unsigned char* bytes, std::size_t n) {
  PLT_ASSERT(n >= 2, "need rank_lo and rank_hi");
  return bytes[0] | bytes[1];
}

// Not a decode/read/parse name: free to subscript.
unsigned merge_counts(const unsigned* counts, std::size_t i) {
  return counts[i];
}

}  // namespace fixture
