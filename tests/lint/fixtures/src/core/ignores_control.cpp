// control-coverage fixture: binding a MiningControl and never consulting
// it is the bug; consulting, forwarding, or storing it is fine, and
// declarations without bodies are out of scope.
namespace plt::core {
class MiningControl {
 public:
  bool should_stop(unsigned long bytes) const;
};
}  // namespace plt::core

namespace fixture {

// EXPECT(control-coverage)
int drops_cancellation(const plt::core::MiningControl* control, int work) {
  int done = 0;
  for (int i = 0; i < work; ++i) ++done;
  return done;
}

int checks_properly(const plt::core::MiningControl* control, int work) {
  int done = 0;
  for (int i = 0; i < work; ++i) {
    if (control != nullptr && control->should_stop(0)) break;
    ++done;
  }
  return done;
}

int forwards(const plt::core::MiningControl& control, int work) {
  return checks_properly(&control, work);
}

// A declaration binds nothing: no body, no finding.
int just_a_prototype(const plt::core::MiningControl* control, int work);

struct Scope {
  // Constructor-initializer use counts as a use.
  explicit Scope(const plt::core::MiningControl* c) : control(c) {}
  const plt::core::MiningControl* control;
};

}  // namespace fixture
