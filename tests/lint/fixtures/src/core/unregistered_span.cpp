// span-registry fixture: names must be literals found in the registry
// (fixture registry: spans {mine, projection}, counters {itemsets-total,
// kernel.demo.bytes, kernel.demo.calls}).
#define PLT_SPAN(name) ((void)name)
#define PLT_TRACE_COUNT(name, n) ((void)name)

namespace obs {
inline void count_kernel(const char*, const char*, unsigned long) {}
}  // namespace obs

const char* dynamic_name();

void phases() {
  PLT_SPAN("mine");
  PLT_SPAN("totally-unregistered");  // EXPECT(span-registry)
  PLT_TRACE_COUNT("itemsets-total", 3);
  PLT_TRACE_COUNT("bogus-counter", 3);  // EXPECT(span-registry)
  PLT_SPAN(dynamic_name());  // EXPECT(span-registry)
  obs::count_kernel("kernel.demo.calls", "kernel.demo.bytes", 64);
  obs::count_kernel("kernel.oops.calls",  // EXPECT(span-registry)
                    "kernel.demo.bytes", 64);
  // plt-lint: allow(span-registry)
  PLT_SPAN("suppressed-and-unregistered");
}
