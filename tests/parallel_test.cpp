// Parallel partition miner: results identical to the sequential conditional
// miner for any thread count, on all workload shapes.
#include <gtest/gtest.h>

#include "core/miner.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "parallel/partition_miner.hpp"
#include "test_support.hpp"

namespace plt::parallel {
namespace {

tdb::Database quest_db(std::uint64_t seed) {
  datagen::QuestConfig cfg;
  cfg.transactions = 400;
  cfg.items = 60;
  cfg.seed = seed;
  return datagen::generate_quest(cfg);
}

class ThreadCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCountTest, MatchesSequentialConditional) {
  const auto db = quest_db(3);
  const Count minsup = 4;
  const auto sequential =
      core::mine(db, minsup, core::Algorithm::kPltConditional);
  ParallelOptions options;
  options.threads = GetParam();
  const auto parallel = mine_parallel(db, minsup, options);
  plt::testing::expect_same_itemsets(sequential.itemsets, parallel.itemsets,
                                     "parallel vs sequential");
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values<std::size_t>(1, 2, 4, 8));

TEST(Parallel, PaperExampleAnswer) {
  ParallelOptions options;
  options.threads = 3;
  const auto result = mine_parallel(plt::testing::paper_table1(), 2, options);
  EXPECT_EQ(result.itemsets.size(), 13u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{2, 3, 4}), 2u);  // BCD
}

TEST(Parallel, DenseWorkload) {
  const auto db = datagen::generate_dense(datagen::chess_like(200, 3));
  const Count minsup = 160;  // high support keeps the run small
  const auto sequential =
      core::mine(db, minsup, core::Algorithm::kPltConditional);
  ParallelOptions options;
  options.threads = 4;
  const auto parallel = mine_parallel(db, minsup, options);
  plt::testing::expect_same_itemsets(sequential.itemsets, parallel.itemsets,
                                     "dense");
}

TEST(Parallel, NoFrequentItems) {
  const auto db = tdb::Database::from_rows({{1}, {2}, {3}});
  const auto result = mine_parallel(db, 2, {});
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(Parallel, EmptyDatabase) {
  tdb::Database empty;
  const auto result = mine_parallel(empty, 1, {});
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(Parallel, DeterministicAfterCanonicalization) {
  const auto db = quest_db(11);
  ParallelOptions options;
  options.threads = 4;
  auto a = mine_parallel(db, 3, options).itemsets;
  auto b = mine_parallel(db, 3, options).itemsets;
  EXPECT_TRUE(core::FrequentItemsets::equal(std::move(a), std::move(b)));
}

TEST(Parallel, StatsPopulated) {
  const auto db = quest_db(13);
  ParallelOptions options;
  options.threads = 2;
  const auto result = mine_parallel(db, 3, options);
  EXPECT_GT(result.structure_bytes, 0u);
  EXPECT_GE(result.build_seconds, 0.0);
  EXPECT_GE(result.mine_seconds, 0.0);
}

}  // namespace
}  // namespace plt::parallel
