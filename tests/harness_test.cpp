// Experiment-harness tests: support grids, sweep execution, cross-check
// failure detection, and report rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/datasets.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "test_support.hpp"

namespace plt::harness {
namespace {

TEST(Harness, AbsoluteSupportRoundsUpAndClampsToOne) {
  const auto db = plt::testing::paper_table1();  // 6 transactions
  EXPECT_EQ(absolute_support(db, 0.5), 3u);
  EXPECT_EQ(absolute_support(db, 0.34), 3u);   // ceil(2.04)
  EXPECT_EQ(absolute_support(db, 0.0001), 1u);
  EXPECT_EQ(absolute_support(db, 1.0), 6u);
}

TEST(Harness, SupportGridSortedDescendingUnique) {
  const auto db = plt::testing::paper_table1();
  const auto grid = support_grid(db, {0.5, 0.1, 0.5, 0.9});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_EQ(grid[0], 6u);
  EXPECT_EQ(grid[1], 3u);
  EXPECT_EQ(grid[2], 1u);
}

TEST(Harness, ScaledDatasetRespectsScale) {
  const auto half = scaled_dataset("short-dense", 0.1);
  const auto full = scaled_dataset("short-dense", 0.2);
  EXPECT_LT(half.size(), full.size());
  EXPECT_THROW(scaled_dataset("nope", 1.0), std::out_of_range);
}

TEST(Harness, SweepRunsAllCellsAndCrossChecks) {
  const auto db = plt::testing::paper_table1();
  SweepConfig config;
  config.dataset_name = "table1";
  config.db = &db;
  config.supports = {3, 2};
  config.algorithms = {core::Algorithm::kPltConditional,
                       core::Algorithm::kApriori,
                       core::Algorithm::kFpGrowth};
  const auto cells = run_sweep(config);
  ASSERT_EQ(cells.size(), 6u);
  for (const auto& cell : cells) {
    EXPECT_FALSE(cell.failed);
    EXPECT_EQ(cell.dataset, "table1");
  }
  // At support 2 the paper's answer is 13 itemsets of max length 3.
  EXPECT_EQ(cells[3].min_support, 2u);
  EXPECT_EQ(cells[3].frequent_itemsets, 13u);
  EXPECT_EQ(cells[3].max_length, 3u);
}

TEST(Harness, SweepRecordsGuardFailures) {
  // One 30-item transaction trips the top-down guard but not the others.
  std::vector<Item> wide;
  for (Item i = 1; i <= 30; ++i) wide.push_back(i);
  tdb::Database db;
  db.add(wide);
  db.add(wide);
  SweepConfig config;
  config.dataset_name = "wide";
  config.db = &db;
  config.supports = {2};
  config.algorithms = {core::Algorithm::kPltTopDownCanonical};
  config.mine_options.topdown_max_transaction_len = 16;
  config.cross_check = false;
  const auto cells = run_sweep(config);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_TRUE(cells[0].failed);
  EXPECT_NE(cells[0].failure_reason.find("refused"), std::string::npos);
}

TEST(Harness, ReportRendering) {
  const auto db = plt::testing::paper_table1();
  SweepConfig config;
  config.dataset_name = "table1";
  config.db = &db;
  config.supports = {2};
  config.algorithms = {core::Algorithm::kPltConditional,
                       core::Algorithm::kEclat};
  const auto cells = run_sweep(config);

  std::ostringstream out;
  print_banner(out, "E2", "sparse sweep", "paper section 5.1");
  print_sweep(out, "results", cells, /*csv=*/true);
  print_winners(out, cells);
  const auto text = out.str();
  EXPECT_NE(text.find("E2"), std::string::npos);
  EXPECT_NE(text.find("plt-conditional"), std::string::npos);
  EXPECT_NE(text.find("winners"), std::string::npos);
  EXPECT_NE(text.find("csv:"), std::string::npos);
}

}  // namespace
}  // namespace plt::harness
