// Edge-condition coverage across modules: boundary inputs the main suites
// do not naturally reach.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/miner.hpp"
#include "core/tree_view.hpp"
#include "harness/experiment.hpp"
#include "parallel/parallel_build.hpp"
#include "tdb/stats.hpp"
#include "test_support.hpp"
#include "util/args.hpp"

namespace plt {
namespace {

TEST(Edge, BuildPltSkipsEmptyTransactions) {
  // A raw database (not remapped) can contain empty rows; the builder must
  // tolerate them rather than assert.
  tdb::Database db;
  db.add(std::span<const Item>{});
  db.add({1, 2});
  const auto plt = core::build_plt(db, 2);
  EXPECT_EQ(plt.num_vectors(), 1u);
  EXPECT_EQ(plt.total_freq(), 1u);

  parallel::BuildOptions options;
  options.threads = 2;
  const auto parallel_plt = parallel::build_plt_parallel(db, 2, options);
  EXPECT_EQ(parallel_plt.total_freq(), 1u);
}

TEST(Edge, TreeViewEmptyPathIsRoot) {
  const auto tree = core::TreeView::full_lexicographic(3);
  EXPECT_EQ(tree.find(core::PosVec{}), core::TreeView::kRoot);
  EXPECT_TRUE(tree.path(core::TreeView::kRoot).empty());
}

TEST(Edge, FindSupportOnEmptyCollection) {
  core::FrequentItemsets empty;
  EXPECT_EQ(empty.find_support(Itemset{1}), 0u);
  EXPECT_TRUE(empty.to_string().empty());
  EXPECT_EQ(empty.max_length(), 0u);
  EXPECT_TRUE(empty.level_counts().empty());
}

TEST(Edge, ArgsNegativeNumberValues) {
  const char* argv[] = {"prog", "--offset", "-5", "--ratio=-1.5"};
  const Args args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("offset", 0), -5);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), -1.5);
}

TEST(Edge, MineAtThresholdEqualDatabaseSize) {
  const auto db = plt::testing::paper_table1();
  // Only B and C appear in >= 5 of 6 transactions; at 6, nothing survives.
  const auto at5 = core::mine(db, 5, core::Algorithm::kPltConditional);
  EXPECT_EQ(at5.itemsets.size(), 2u);
  const auto at6 = core::mine(db, 6, core::Algorithm::kPltConditional);
  EXPECT_TRUE(at6.itemsets.empty());
  const auto at7 = core::mine(db, 7, core::Algorithm::kFpGrowth);
  EXPECT_TRUE(at7.itemsets.empty());
}

TEST(Edge, ItemZeroIsAValidItem) {
  // FIMI files may use item id 0; the whole stack must handle it.
  const auto db = tdb::Database::from_rows({{0, 1}, {0, 1}, {0}});
  for (const auto algorithm :
       {core::Algorithm::kPltConditional, core::Algorithm::kApriori,
        core::Algorithm::kEclat, core::Algorithm::kFpGrowth}) {
    const auto result = core::mine(db, 2, algorithm);
    EXPECT_EQ(result.itemsets.find_support(Itemset{0}), 3u)
        << core::algorithm_name(algorithm);
    EXPECT_EQ(result.itemsets.find_support(Itemset{0, 1}), 2u)
        << core::algorithm_name(algorithm);
  }
}

TEST(Edge, SingleTransactionDatabase) {
  const auto db = tdb::Database::from_rows({{2, 4, 6}});
  const auto result = core::mine(db, 1, core::Algorithm::kPltTopDownSweep);
  EXPECT_EQ(result.itemsets.size(), 7u);  // all non-empty subsets
  EXPECT_EQ(result.itemsets.find_support(Itemset{2, 4, 6}), 1u);
}

TEST(Edge, StatsOnSingleItemUniverse) {
  tdb::Database db;
  for (int i = 0; i < 10; ++i) db.add({7});
  const auto stats = tdb::compute_stats(db);
  EXPECT_EQ(stats.distinct_items, 1u);
  EXPECT_DOUBLE_EQ(stats.density, 1.0);
  EXPECT_DOUBLE_EQ(stats.support_gini, 0.0);
}

TEST(Edge, SweepWithBruteForceReference) {
  // The facade's brute-force path participates in sweeps like any miner.
  const auto db = plt::testing::paper_table1();
  harness::SweepConfig config;
  config.dataset_name = "table1";
  config.db = &db;
  config.supports = {2};
  config.algorithms = {core::Algorithm::kBruteForce,
                       core::Algorithm::kPltConditional};
  const auto cells = harness::run_sweep(config);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].frequent_itemsets, 13u);
  EXPECT_FALSE(cells[0].failed);
}

TEST(Edge, MaxRankOneAlphabet) {
  // The smallest possible mining universe.
  tdb::Database db;
  for (int i = 0; i < 5; ++i) db.add({9});
  const auto view = core::build_ranked_view(db, 3);
  ASSERT_EQ(view.alphabet(), 1u);
  const auto plt = core::build_plt(view.db, 1);
  EXPECT_EQ(plt.max_len(), 1u);
  EXPECT_EQ(plt.bucket(1).size(), 1u);
}

}  // namespace
}  // namespace plt
