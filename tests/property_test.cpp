// Cross-cutting property tests: algebraic laws the core abstractions must
// satisfy, swept over randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "compress/varint.hpp"
#include "core/itemset_collector.hpp"
#include "core/plt.hpp"
#include "core/subset_check.hpp"
#include "util/rng.hpp"

namespace plt {
namespace {

core::PosVec random_vec(Rng& rng, std::size_t max_len, Pos max_gap) {
  core::PosVec v;
  const auto len = 1 + rng.next_below(max_len);
  for (std::uint64_t i = 0; i < len; ++i)
    v.push_back(static_cast<Pos>(rng.next_below(max_gap) + 1));
  return v;
}

// Subset relation laws: reflexive, antisymmetric (on distinct vectors),
// transitive.
TEST(Property, PositionalSubsetIsPartialOrder) {
  Rng rng(201);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = random_vec(rng, 6, 4);
    const auto b = random_vec(rng, 6, 4);
    const auto c = random_vec(rng, 6, 4);
    EXPECT_TRUE(core::positional_subset(a, a));
    if (core::positional_subset(a, b) && core::positional_subset(b, a))
      EXPECT_EQ(a, b);
    if (core::positional_subset(a, b) && core::positional_subset(b, c))
      EXPECT_TRUE(core::positional_subset(a, c));
  }
}

// Every level-(k-1) subset form is accepted by the subset checker.
TEST(Property, LevelSubsetsAreSubsets) {
  Rng rng(203);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto v = random_vec(rng, 8, 4);
    for (const auto& s : core::level_subsets(v)) {
      EXPECT_TRUE(core::positional_subset(s, v))
          << core::to_string(s) << " vs " << core::to_string(v);
      EXPECT_FALSE(core::positional_subset(v, s));
    }
  }
}

// Plt::add is commutative and associative in frequency: any insertion order
// of the same multiset yields identical contents.
TEST(Property, PltInsertionOrderIrrelevant) {
  Rng rng(205);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<core::PosVec, Count>> inserts;
    for (int i = 0; i < 60; ++i)
      inserts.emplace_back(random_vec(rng, 5, 3), rng.next_below(4) + 1);

    core::Plt forward(32), shuffled(32);
    for (const auto& [v, f] : inserts) forward.add(v, f);
    auto mixed = inserts;
    rng.shuffle(mixed);
    for (const auto& [v, f] : mixed) shuffled.add(v, f);

    EXPECT_EQ(forward.num_vectors(), shuffled.num_vectors());
    EXPECT_EQ(forward.total_freq(), shuffled.total_freq());
    forward.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                         const core::Partition::Entry& e) {
      EXPECT_EQ(shuffled.freq_of(v), e.freq);
    });
  }
}

// Canonicalization is idempotent and order-insensitive.
TEST(Property, CanonicalizeIdempotentAndOrderFree) {
  Rng rng(207);
  core::FrequentItemsets a, b;
  std::vector<std::pair<Itemset, Count>> rows;
  for (int i = 0; i < 100; ++i) {
    Itemset items;
    Item item = 0;
    const auto len = 1 + rng.next_below(5);
    for (std::uint64_t j = 0; j < len; ++j) {
      item += static_cast<Item>(rng.next_below(5) + 1);
      items.push_back(item);
    }
    rows.emplace_back(items, rng.next_below(100) + 1);
  }
  for (const auto& [items, support] : rows) a.add(items, support);
  rng.shuffle(rows);
  for (const auto& [items, support] : rows) b.add(items, support);

  a.canonicalize();
  auto a_twice = a;
  a_twice.canonicalize();
  EXPECT_EQ(a.to_string(), a_twice.to_string());
  b.canonicalize();
  // Same multiset of (itemset, support) rows -> identical rendering.
  EXPECT_EQ(a.to_string(), b.to_string());
}

// Varint: encoding length is monotone in the value, and concatenated
// streams decode to the original sequence.
TEST(Property, VarintMonotoneAndStreamable) {
  Rng rng(209);
  std::uint64_t prev = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t value = prev + rng.next_below(1u << 20);
    EXPECT_GE(compress::varint_size(value), compress::varint_size(prev));
    prev = value;
  }
  std::vector<std::uint64_t> values;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_u64() >> rng.next_below(64);
    values.push_back(v);
    compress::put_varint(stream, v);
  }
  std::size_t offset = 0;
  for (const auto v : values)
    EXPECT_EQ(compress::get_varint(stream, offset), v);
  EXPECT_EQ(offset, stream.size());
}

// support_of over a PLT is monotone: adding any vector never decreases any
// query's answer.
TEST(Property, SupportMonotoneUnderInsertion) {
  Rng rng(211);
  core::Plt plt(20);
  std::vector<std::vector<Rank>> queries;
  for (int q = 0; q < 20; ++q) {
    std::vector<Rank> query;
    Rank r = 0;
    const auto len = 1 + rng.next_below(3);
    for (std::uint64_t i = 0; i < len; ++i) {
      r += static_cast<Rank>(rng.next_below(5) + 1);
      if (r > 20) break;
      query.push_back(r);
    }
    if (!query.empty()) queries.push_back(query);
  }
  std::vector<Count> last(queries.size(), 0);
  for (int step = 0; step < 100; ++step) {
    core::PosVec v;
    Rank sum = 0;
    do {
      v = random_vec(rng, 5, 4);
      sum = core::vector_sum(v);
    } while (sum > 20);
    plt.add(v, 1);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const Count now = core::support_of(plt, queries[q]);
      EXPECT_GE(now, last[q]);
      last[q] = now;
    }
  }
}

}  // namespace
}  // namespace plt
