// Adaptive execution planner (DESIGN.md S25): partition statistics pinned
// against the paper's Table 1, the cost-model branches each forced through
// a threshold config, plan-name validation, and the end-to-end contract —
// every plan mines the identical itemsets, only the strategy audit trail
// (MineResult::plan_root, ProjectionStats::plan_*) changes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/miner.hpp"
#include "core/planner.hpp"
#include "core/rank.hpp"
#include "tdb/stats.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

constexpr Count kMinSup = 2;

// Every test leaves the process on the fixed plan (the default) so test
// order can't leak an adaptive selection into unrelated suites.
struct PlanGuard {
  ~PlanGuard() { select_plan("fixed"); }
};

tdb::Database ranked_table1() {
  return build_ranked_view(plt::testing::paper_table1(), kMinSup).db;
}

// -- satellite: compute_partition_stats pinned on Table 1 ----------------

// Ranked Table 1 (A..D = 1..4): partition 4 holds ABCD, ABD, BCD, CD —
// conditional prefixes {1,2,3}, {1,2}, {2,3}, {3}.
TEST(PartitionStats, Table1Partition4) {
  const auto s = tdb::compute_partition_stats(ranked_table1(), 4);
  EXPECT_EQ(s.rank, 4u);
  EXPECT_EQ(s.transactions, 4u);
  EXPECT_EQ(s.prefix_items, 8u);
  EXPECT_EQ(s.max_prefix_len, 3u);
  EXPECT_DOUBLE_EQ(s.avg_prefix_len, 2.0);
  EXPECT_NEAR(s.density, 2.0 / 3.0, 1e-12);
  // Prefix supports of ranks 1..3 are {2, 3, 3}: Gini = 1/12.
  EXPECT_NEAR(s.support_gini, 1.0 / 12.0, 1e-12);
}

// Partition 3 holds ABC x2 — two identical full prefixes {1,2}.
TEST(PartitionStats, Table1Partition3) {
  const auto s = tdb::compute_partition_stats(ranked_table1(), 3);
  EXPECT_EQ(s.transactions, 2u);
  EXPECT_EQ(s.prefix_items, 4u);
  EXPECT_EQ(s.max_prefix_len, 2u);
  EXPECT_DOUBLE_EQ(s.avg_prefix_len, 2.0);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
  EXPECT_DOUBLE_EQ(s.support_gini, 0.0);
}

// No Table 1 transaction tops out at rank 1 or 2.
TEST(PartitionStats, Table1EmptyPartitions) {
  const auto db = ranked_table1();
  for (const Rank j : {Rank{1}, Rank{2}}) {
    const auto s = tdb::compute_partition_stats(db, j);
    EXPECT_EQ(s.rank, j);
    EXPECT_EQ(s.transactions, 0u);
    EXPECT_EQ(s.prefix_items, 0u);
    EXPECT_DOUBLE_EQ(s.density, 0.0);
    EXPECT_DOUBLE_EQ(s.support_gini, 0.0);
  }
}

TEST(PartitionStats, AllPartitionsMatchSingleScan) {
  const auto db = ranked_table1();
  const auto all = tdb::compute_all_partition_stats(db, 4);
  ASSERT_EQ(all.size(), 4u);
  for (Rank j = 1; j <= 4; ++j) {
    const auto one = tdb::compute_partition_stats(db, j);
    EXPECT_EQ(all[j - 1].rank, one.rank);
    EXPECT_EQ(all[j - 1].transactions, one.transactions);
    EXPECT_EQ(all[j - 1].prefix_items, one.prefix_items);
    EXPECT_EQ(all[j - 1].max_prefix_len, one.max_prefix_len);
    EXPECT_DOUBLE_EQ(all[j - 1].avg_prefix_len, one.avg_prefix_len);
    EXPECT_DOUBLE_EQ(all[j - 1].density, one.density);
    EXPECT_DOUBLE_EQ(all[j - 1].support_gini, one.support_gini);
  }
}

TEST(PartitionStats, EmptyDatabase) {
  const auto s = tdb::compute_partition_stats(tdb::Database{}, 3);
  EXPECT_EQ(s.rank, 3u);
  EXPECT_EQ(s.transactions, 0u);
  EXPECT_DOUBLE_EQ(s.density, 0.0);
}

// Rank-1 partitions have no conditional prefixes by construction, so every
// prefix statistic is zero even with members present.
TEST(PartitionStats, SingleItemPartition) {
  const auto db = tdb::Database::from_transactions({{1}, {1}, {1}});
  const auto s = tdb::compute_partition_stats(db, 1);
  EXPECT_EQ(s.transactions, 3u);
  EXPECT_EQ(s.prefix_items, 0u);
  EXPECT_EQ(s.max_prefix_len, 0u);
  EXPECT_DOUBLE_EQ(s.density, 0.0);
}

TEST(PartitionStats, AllIdenticalTransactions) {
  const auto db = tdb::Database::from_transactions(
      {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
  const auto s = tdb::compute_partition_stats(db, 3);
  EXPECT_EQ(s.transactions, 4u);
  EXPECT_DOUBLE_EQ(s.density, 1.0);
  EXPECT_DOUBLE_EQ(s.support_gini, 0.0);
}

// Max-rank boundaries: the top partition of compute_all_partition_stats
// absorbs exactly the transactions whose highest rank IS max_rank;
// transactions topping out above the requested range are skipped, not
// misfiled into the top partition, and directly probing a partition above
// every present rank yields the zeroed "no members" shape.
TEST(PartitionStats, MaxRankBoundary) {
  const auto db = tdb::Database::from_transactions(
      {{1, 2, 3, 4}, {2, 4}, {1, 2}, {1, 6}});
  const auto all = tdb::compute_all_partition_stats(db, 4);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[3].rank, 4u);
  EXPECT_EQ(all[3].transactions, 2u);  // {1,2,3,4}, {2,4}; {1,6} tops at 6
  EXPECT_EQ(all[3].prefix_items, 4u);  // prefixes {1,2,3} and {2}
  EXPECT_EQ(all[1].transactions, 1u);  // {1,2}
  EXPECT_EQ(all[0].transactions, 0u);

  const auto s = tdb::compute_partition_stats(db, 5);
  EXPECT_EQ(s.rank, 5u);
  EXPECT_EQ(s.transactions, 0u);
  EXPECT_EQ(s.prefix_items, 0u);
  EXPECT_DOUBLE_EQ(s.density, 0.0);
}

// -- cost-model branches, each forced through the config -----------------

TEST(Planner, SubtreeSinglePathWinsWhenAllowed) {
  const Planner planner;
  SubtreeShape shape;
  shape.records = 1;
  shape.child_ranks = 5;
  shape.single_path = true;
  EXPECT_EQ(planner.choose_subtree(shape, nullptr),
            Planner::Subtree::kSinglePath);

  PlanConfig no_single;
  no_single.allow_subtree_single_path = false;
  // A single-path shape is also a small shape, so the veto falls to eclat.
  EXPECT_EQ(Planner(no_single).choose_subtree(shape, nullptr),
            Planner::Subtree::kEclat);
}

TEST(Planner, SubtreeEclatOnlyForSmallShapes) {
  PlanConfig config;
  config.eclat_max_records = 8;
  config.eclat_max_ranks = 4;
  const Planner planner(config);
  SubtreeShape small;
  small.records = 8;
  small.child_ranks = 4;
  EXPECT_EQ(planner.choose_subtree(small, nullptr),
            Planner::Subtree::kEclat);
  SubtreeShape too_many = small;
  too_many.records = 9;
  EXPECT_EQ(planner.choose_subtree(too_many, nullptr),
            Planner::Subtree::kPooled);
  SubtreeShape too_deep = small;
  too_deep.child_ranks = 5;
  EXPECT_EQ(planner.choose_subtree(too_deep, nullptr),
            Planner::Subtree::kPooled);
}

TEST(Planner, SubtreeDensePartitionVetoesEclat) {
  const Planner planner;
  SubtreeShape small;
  small.records = 4;
  small.child_ranks = 3;
  tdb::PartitionStats dense;
  dense.density = 0.95;
  EXPECT_EQ(planner.choose_subtree(small, &dense),
            Planner::Subtree::kPooled);
  tdb::PartitionStats sparse;
  sparse.density = 0.10;
  EXPECT_EQ(planner.choose_subtree(small, &sparse),
            Planner::Subtree::kEclat);
}

TEST(Planner, RootBranches) {
  const auto view = build_ranked_view(plt::testing::paper_table1(), kMinSup);
  const auto stats = tdb::compute_stats(view.db);
  const auto partitions = tdb::compute_all_partition_stats(view.db, 4);

  // Defaults: Table 1 is a shallow lattice at a high threshold (ranked
  // max_len 4, minsup 2/6), so the second eclat gate takes the root.
  EXPECT_EQ(Planner().choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kEclat);

  // With the vertical root off, projection keeps it: the threshold is far
  // above the top-down crossover.
  PlanConfig no_eclat;
  no_eclat.allow_root_eclat = false;
  EXPECT_EQ(Planner(no_eclat).choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kConditional);

  // The shallow gate needs BOTH short transactions and a high threshold:
  // tightening either knob past Table 1's shape (ranked max_len 4,
  // frac 1/3) makes it fall back to projection.
  PlanConfig deep;
  deep.root_eclat_max_len = 3;
  EXPECT_EQ(Planner(deep).choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kConditional);
  PlanConfig low_frac;
  low_frac.root_eclat_min_minsup_frac = 0.5;
  EXPECT_EQ(Planner(low_frac).choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kConditional);

  PlanConfig force_topdown;
  force_topdown.allow_root_topdown = true;
  force_topdown.allow_root_eclat = false;
  force_topdown.root_topdown_max_minsup_frac = 1.0;
  force_topdown.root_topdown_min_density = 0.0;
  EXPECT_EQ(Planner(force_topdown).choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kTopDown);
  // The guard cap always wins over the config cap.
  EXPECT_EQ(Planner(force_topdown).choose_root(stats, partitions, kMinSup, 3),
            Planner::Root::kConditional);

  PlanConfig force_eclat;
  force_eclat.allow_root_topdown = false;
  force_eclat.root_eclat_max_density = 1.0;
  EXPECT_EQ(Planner(force_eclat).choose_root(stats, partitions, kMinSup, 24),
            Planner::Root::kEclat);
}

TEST(Planner, SinglePathProbeUsesFullSuffix) {
  const auto db = tdb::Database::from_transactions(
      {{1, 2, 3}, {1, 2, 3}, {1, 2, 3}});
  Planner planner;
  planner.set_partition_stats(tdb::compute_all_partition_stats(db, 3));
  bool resolved = false;
  // Every partition at or above rank 3 is full (or empty), so CD_3 is a
  // provable single path: no probe, resolved positively.
  EXPECT_FALSE(planner.wants_single_path_probe(3, &resolved));
  EXPECT_TRUE(resolved);
  // Unknown top rank (a nested subtree): the O(records) probe must run.
  EXPECT_TRUE(planner.wants_single_path_probe(0, &resolved));
  EXPECT_FALSE(resolved);

  // A partial partition above poisons the suffix below it.
  Planner mixed;
  mixed.set_partition_stats(tdb::compute_all_partition_stats(
      tdb::Database::from_transactions({{1, 2, 3}, {2, 3}, {1, 2}}), 3));
  EXPECT_TRUE(mixed.wants_single_path_probe(2, &resolved));
  EXPECT_FALSE(resolved);

  PlanConfig no_single;
  no_single.allow_subtree_single_path = false;
  Planner off(no_single);
  off.set_partition_stats(tdb::compute_all_partition_stats(db, 3));
  EXPECT_FALSE(off.wants_single_path_probe(3, &resolved));
  EXPECT_FALSE(resolved);
}

// -- plan selection and the facade audit trail ---------------------------

TEST(Planner, SelectPlanValidation) {
  PlanGuard guard;
  EXPECT_TRUE(select_plan(""));  // keep current
  EXPECT_TRUE(select_plan("adaptive"));
  EXPECT_EQ(active_plan(), PlanMode::kAdaptive);
  EXPECT_FALSE(select_plan("bogus"));
  EXPECT_EQ(active_plan(), PlanMode::kAdaptive);  // failed select is a no-op
  EXPECT_TRUE(select_plan("fixed"));
  EXPECT_EQ(active_plan(), PlanMode::kFixed);
}

TEST(Planner, MineRejectsUnknownPlan) {
  PlanGuard guard;
  MineOptions options;
  options.plan = "bogus";
  EXPECT_THROW(mine(plt::testing::paper_table1(), kMinSup,
                    Algorithm::kPltConditional, options),
               std::invalid_argument);
}

TEST(Planner, AdaptiveRootAuditTrail) {
  PlanGuard guard;
  const auto db = plt::testing::paper_table1();
  const auto fixed = mine(db, kMinSup, Algorithm::kPltConditional);
  EXPECT_EQ(fixed.plan_root, "");

  MineOptions adaptive;
  adaptive.plan = "adaptive";
  // Table 1 trips the shallow-lattice eclat gate by default, so pin the
  // vertical root off to audit the conditional branch.
  adaptive.plan_config.allow_root_eclat = false;
  const auto conditional =
      mine(db, kMinSup, Algorithm::kPltConditional, adaptive);
  EXPECT_EQ(conditional.plan_root, "conditional");
  plt::testing::expect_same_itemsets(fixed.itemsets, conditional.itemsets,
                                     "adaptive conditional");

  MineOptions topdown = adaptive;
  topdown.plan_config.allow_root_topdown = true;
  topdown.plan_config.root_topdown_max_minsup_frac = 1.0;
  topdown.plan_config.root_topdown_min_density = 0.0;
  const auto expanded =
      mine(db, kMinSup, Algorithm::kPltConditional, topdown);
  EXPECT_EQ(expanded.plan_root, "topdown");
  plt::testing::expect_same_itemsets(fixed.itemsets, expanded.itemsets,
                                     "adaptive topdown");

  MineOptions eclat = adaptive;
  eclat.plan_config.allow_root_topdown = false;
  eclat.plan_config.allow_root_eclat = true;
  eclat.plan_config.root_eclat_max_density = 1.0;
  const auto vertical =
      mine(db, kMinSup, Algorithm::kPltConditional, eclat);
  EXPECT_EQ(vertical.plan_root, "eclat");
  plt::testing::expect_same_itemsets(fixed.itemsets, vertical.itemsets,
                                     "adaptive eclat");
}

// Forcing each subtree strategy must leave the counters showing only that
// strategy ran (plus the unavoidable pooled frames above it).
TEST(Planner, AdaptiveSubtreeCounters) {
  PlanGuard guard;
  const auto db = plt::testing::paper_table1();
  const auto fixed = mine(db, kMinSup, Algorithm::kPltConditional);

  MineOptions pooled_only;
  pooled_only.plan = "adaptive";
  pooled_only.plan_config.allow_root_topdown = false;
  pooled_only.plan_config.allow_root_eclat = false;
  pooled_only.plan_config.allow_subtree_single_path = false;
  pooled_only.plan_config.allow_subtree_eclat = false;
  const auto pooled =
      mine(db, kMinSup, Algorithm::kPltConditional, pooled_only);
  EXPECT_GT(pooled.projection.plan_pooled, 0u);
  EXPECT_EQ(pooled.projection.plan_single_path, 0u);
  EXPECT_EQ(pooled.projection.plan_eclat, 0u);
  plt::testing::expect_same_itemsets(fixed.itemsets, pooled.itemsets,
                                     "pooled only");

  MineOptions eclat_only = pooled_only;
  eclat_only.plan_config.allow_subtree_eclat = true;
  eclat_only.plan_config.eclat_max_records = ~std::size_t{0};
  eclat_only.plan_config.eclat_max_ranks = ~Rank{0};
  eclat_only.plan_config.eclat_max_partition_density = 1.5;
  const auto eclat =
      mine(db, kMinSup, Algorithm::kPltConditional, eclat_only);
  EXPECT_GT(eclat.projection.plan_eclat, 0u);
  EXPECT_EQ(eclat.projection.plan_single_path, 0u);
  EXPECT_EQ(eclat.projection.plan_pooled, 0u);
  plt::testing::expect_same_itemsets(fixed.itemsets, eclat.itemsets,
                                     "eclat only");

  MineOptions with_single = pooled_only;
  with_single.plan_config.allow_subtree_single_path = true;
  const auto single =
      mine(db, kMinSup, Algorithm::kPltConditional, with_single);
  EXPECT_GT(single.projection.plan_single_path, 0u);
  plt::testing::expect_same_itemsets(fixed.itemsets, single.itemsets,
                                     "single-path allowed");
}

// The fixed plan must not consult the planner at all: its projection
// counters stay zero, keeping golden traces and published numbers intact.
TEST(Planner, FixedPlanLeavesNoPlanCounters) {
  PlanGuard guard;
  const auto fixed =
      mine(plt::testing::paper_table1(), kMinSup,
           Algorithm::kPltConditional);
  EXPECT_EQ(fixed.projection.plan_pooled, 0u);
  EXPECT_EQ(fixed.projection.plan_single_path, 0u);
  EXPECT_EQ(fixed.projection.plan_eclat, 0u);
  EXPECT_EQ(fixed.projection.plan_narrow, 0u);
  EXPECT_EQ(fixed.projection.plan_wide, 0u);
}

}  // namespace
}  // namespace plt::core
