// Parallel PLT construction: chunked build + merge must equal the
// sequential Algorithm 1 exactly, for any thread count and both prefix
// modes.
#include <gtest/gtest.h>

#include <map>

#include "core/builder.hpp"
#include "datagen/quest.hpp"
#include "parallel/parallel_build.hpp"
#include "test_support.hpp"

namespace plt::parallel {
namespace {

std::map<core::PosVec, Count> contents(const core::Plt& plt) {
  std::map<core::PosVec, Count> out;
  plt.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                   const core::Partition::Entry& e) {
    out[core::PosVec(v.begin(), v.end())] = e.freq;
  });
  return out;
}

class ParallelBuildTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelBuildTest, EqualsSequentialBuild) {
  datagen::QuestConfig cfg;
  cfg.transactions = 1000;
  cfg.items = 60;
  cfg.seed = 21;
  const auto db = datagen::generate_quest(cfg);
  const auto view = core::build_ranked_view(db, 3);
  const auto max_rank = static_cast<Rank>(view.alphabet());

  for (const bool prefixes : {false, true}) {
    core::BuildOptions build;
    build.insert_prefixes = prefixes;
    const auto sequential = core::build_plt(view.db, max_rank, build);

    BuildOptions options;
    options.threads = GetParam();
    options.build = build;
    const auto parallel = build_plt_parallel(view.db, max_rank, options);
    EXPECT_EQ(contents(parallel), contents(sequential))
        << "prefixes=" << prefixes;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelBuildTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 8));

TEST(ParallelBuild, PaperExample) {
  const auto view =
      core::build_ranked_view(plt::testing::paper_table1(), 2);
  BuildOptions options;
  options.threads = 4;
  const auto plt = build_plt_parallel(view.db, 4, options);
  EXPECT_EQ(plt.num_vectors(), 5u);
  EXPECT_EQ(plt.freq_of(core::PosVec{1, 1, 1}), 2u);
}

TEST(ParallelBuild, MoreThreadsThanTransactions) {
  const auto db = tdb::Database::from_rows({{1, 2}, {2, 3}});
  const auto view = core::build_ranked_view(db, 1);
  BuildOptions options;
  options.threads = 16;
  const auto plt = build_plt_parallel(view.db, 3, options);
  EXPECT_EQ(plt.total_freq(), 2u);
}

TEST(ParallelBuild, MergeAddsFrequencies) {
  core::Plt a(4), b(4);
  a.add(core::PosVec{1, 1}, 2);
  b.add(core::PosVec{1, 1}, 3);
  b.add(core::PosVec{4}, 1);
  merge_plt(a, b);
  EXPECT_EQ(a.freq_of(core::PosVec{1, 1}), 5u);
  EXPECT_EQ(a.freq_of(core::PosVec{4}), 1u);
}

TEST(ParallelBuildDeath, MismatchedAlphabets) {
  core::Plt a(4), b(5);
  EXPECT_DEATH(merge_plt(a, b), "different alphabets");
}

}  // namespace
}  // namespace plt::parallel
