// Cross-module differential tests: independent implementations of the same
// semantics are driven with shared random inputs and must coincide —
// table-form vs tree-form vs serialized-form PLT, four support-query
// implementations, and the three condensed-mining routes.
#include <gtest/gtest.h>

#include <map>

#include "baselines/charm.hpp"
#include "baselines/maxminer.hpp"
#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "core/closed.hpp"
#include "core/miner.hpp"
#include "core/subset_check.hpp"
#include "core/tree_view.hpp"
#include "datagen/quest.hpp"
#include "tdb/bitmap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt {
namespace {

std::map<core::PosVec, Count> contents(const core::Plt& plt) {
  std::map<core::PosVec, Count> out;
  plt.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                   const core::Partition::Entry& e) {
    out[core::PosVec(v.begin(), v.end())] = e.freq;
  });
  return out;
}

tdb::Database random_db(std::uint64_t seed, std::size_t transactions,
                        std::size_t items, double density) {
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (std::size_t t = 0; t < transactions; ++t) {
    row.clear();
    for (Item i = 1; i <= items; ++i)
      if (rng.next_bool(density)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  return db;
}

// PLT -> tree -> PLT and PLT -> blob -> PLT must all be the identity.
TEST(Differential, ThreeFormsOfThePltCoincide) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto db = random_db(seed, 120, 15, 0.3);
    const auto built = core::build_from_database(db, 2);
    const auto reference = contents(built.plt);

    const auto via_tree = core::TreeView::from_plt(built.plt)
                              .to_plt(built.plt.max_rank());
    EXPECT_EQ(contents(via_tree), reference) << "tree seed " << seed;

    const auto via_blob =
        compress::decode_plt(compress::encode_plt(built.plt));
    EXPECT_EQ(contents(via_blob), reference) << "blob seed " << seed;
  }
}

// Four independent support-query implementations on shared random queries.
TEST(Differential, FourSupportQueryImplementationsAgree) {
  Rng rng(301);
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const auto db = random_db(seed, 250, 16, 0.3);
    const auto view = core::build_ranked_view(db, 1);
    const auto plt =
        core::build_plt(view.db, static_cast<Rank>(view.alphabet()));
    const tdb::BitmapView bitmap(view.db);

    for (int trial = 0; trial < 120; ++trial) {
      std::vector<Rank> query;
      Rank r = 0;
      const auto len = 1 + rng.next_below(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        r += static_cast<Rank>(rng.next_below(5) + 1);
        if (r > view.alphabet()) break;
        query.push_back(r);
      }
      if (query.empty()) continue;

      const Count via_plt = core::support_of(plt, query);
      const Count via_scan = core::support_of_scan(view.db, query);
      const Count via_bitmap = bitmap.support_of(
          std::span<const Item>(query.data(), query.size()));
      // Brute force over rows.
      Count via_brute = 0;
      for (std::size_t t = 0; t < view.db.size(); ++t) {
        const auto row = view.db[t];
        via_brute += std::includes(row.begin(), row.end(), query.begin(),
                                   query.end());
      }
      EXPECT_EQ(via_plt, via_brute);
      EXPECT_EQ(via_scan, via_brute);
      EXPECT_EQ(via_bitmap, via_brute);
    }
  }
}

// The three condensed-mining routes: post-pass, CHARM, MaxMiner.
TEST(Differential, CondensedRoutesCoincide) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    const auto db = random_db(seed, 160, 12, 0.4);
    for (const Count minsup : {3u, 12u, 40u}) {
      const auto full = core::mine(db, minsup, core::Algorithm::kFpGrowth);

      core::FrequentItemsets via_charm;
      baselines::mine_charm(db, minsup, core::collect_into(via_charm));
      plt::testing::expect_same_itemsets(
          via_charm, core::closed_itemsets(full.itemsets), "closed routes");

      core::FrequentItemsets via_maxminer;
      baselines::mine_maxminer(db, minsup,
                               core::collect_into(via_maxminer));
      plt::testing::expect_same_itemsets(
          via_maxminer, core::maximal_itemsets(full.itemsets),
          "maximal routes");
    }
  }
}

// Serialized mining == in-memory mining == tree-round-tripped mining, all
// the way to final itemsets.
TEST(Differential, MiningAfterRoundTripsIsUnchanged) {
  const auto db = random_db(31, 200, 14, 0.35);
  const Count minsup = 4;
  const auto built = core::build_from_database(db, minsup);
  const auto direct = core::mine(db, minsup, core::Algorithm::kPltConditional);

  // Rebuild the database from the tree form and mine it again.
  const auto tree_plt =
      core::TreeView::from_plt(built.plt).to_plt(built.plt.max_rank());
  tdb::Database rebuilt;
  std::vector<Item> row;
  tree_plt.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                        const core::Partition::Entry& e) {
    row.clear();
    Rank acc = 0;
    for (const Pos p : v) {
      acc += p;
      row.push_back(built.view.item_of(acc));
    }
    for (Count c = 0; c < e.freq; ++c) rebuilt.add(row);
  });
  const auto re_mined =
      core::mine(rebuilt, minsup, core::Algorithm::kPltConditional);
  plt::testing::expect_same_itemsets(direct.itemsets, re_mined.itemsets,
                                     "tree round trip mining");
}

}  // namespace
}  // namespace plt
