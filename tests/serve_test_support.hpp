// Shared helpers for the plt-serve suites: build a Table 1 blob on disk and
// run an in-process daemon on an ephemeral port.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "test_support.hpp"

namespace plt::testing {

/// Builds the paper's Table 1 PLT at `minsup` (no prefix insertion, so
/// core::support_of is an exact reference) and writes the PLT2 blob under
/// gtest's temp dir. Returns the blob path.
inline std::string write_table1_blob(Count minsup, const std::string& name) {
  const core::BuiltPlt built = core::build_from_database(
      paper_table1(), minsup);
  const std::vector<std::uint8_t> bytes = compress::encode_plt(built.plt);
  const std::string path = ::testing::TempDir() + name;
  compress::write_blob_file(bytes, path);
  return path;
}

/// An in-process daemon over one or more blobs, stopped on destruction.
class TestServer {
 public:
  explicit TestServer(std::vector<std::string> blob_paths,
                      unsigned threads = 1, std::uint32_t deadline_ms = 0) {
    serve::ServerOptions options;
    options.blob_paths = std::move(blob_paths);
    options.threads = threads;
    options.default_deadline_ms = deadline_ms;
    server_ = std::make_unique<serve::Server>(std::move(options));
    server_->start();
  }
  explicit TestServer(serve::ServerOptions options) {
    server_ = std::make_unique<serve::Server>(std::move(options));
    server_->start();
  }
  ~TestServer() { server_->stop(); }

  std::uint16_t port() const { return server_->port(); }
  serve::Server& server() { return *server_; }

 private:
  std::unique_ptr<serve::Server> server_;
};

}  // namespace plt::testing
