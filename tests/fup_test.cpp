// FUP incremental result maintenance: exact equivalence with batch mining
// of the combined database, and the rescan-frugality property.
#include <gtest/gtest.h>

#include "core/fup.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::core {
namespace {

FrequentItemsets batch(const tdb::Database& db, Count minsup) {
  return mine(db, minsup, Algorithm::kPltConditional).itemsets;
}

tdb::Database combined(const tdb::Database& a, const tdb::Database& b) {
  tdb::Database out;
  for (std::size_t t = 0; t < a.size(); ++t) out.add(a[t]);
  for (std::size_t t = 0; t < b.size(); ++t) out.add(b[t]);
  return out;
}

TEST(Fup, PaperExamplePlusDelta) {
  const auto old_db = plt::testing::paper_table1();
  const auto old_frequent = batch(old_db, 2);
  const auto delta = tdb::Database::from_rows({{1, 3, 4}, {1, 3, 4}});
  const auto result = fup_update(old_db, old_frequent, 2, delta, 2);
  plt::testing::expect_same_itemsets(result.itemsets,
                                     batch(combined(old_db, delta), 2),
                                     "fup table1");
  // ACD was infrequent (support 1); the delta promotes it to 3.
  EXPECT_EQ(result.itemsets.find_support(Itemset{1, 3, 4}), 3u);
  EXPECT_GT(result.rescanned, 0u);
}

class FupSweep : public ::testing::TestWithParam<
                     std::tuple<std::uint64_t, Count, Count>> {};

TEST_P(FupSweep, MatchesBatchMiningOfCombined) {
  const auto [seed, old_minsup, new_minsup] = GetParam();
  datagen::QuestConfig cfg;
  cfg.transactions = 600;
  cfg.items = 40;
  cfg.seed = seed;
  const auto old_db = datagen::generate_quest(cfg);
  cfg.transactions = 150;
  cfg.seed = seed + 100;
  const auto delta = datagen::generate_quest(cfg);

  const auto old_frequent = batch(old_db, old_minsup);
  const auto result =
      fup_update(old_db, old_frequent, old_minsup, delta, new_minsup);
  plt::testing::expect_same_itemsets(
      result.itemsets, batch(combined(old_db, delta), new_minsup), "fup");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FupSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<Count>(5, 12),
                       ::testing::Values<Count>(12, 20)));

TEST(Fup, EmptyDelta) {
  const auto old_db = plt::testing::paper_table1();
  const auto old_frequent = batch(old_db, 2);
  tdb::Database delta;
  const auto result = fup_update(old_db, old_frequent, 2, delta, 2);
  plt::testing::expect_same_itemsets(result.itemsets, old_frequent,
                                     "fup empty delta");
  EXPECT_EQ(result.rescanned, 0u);
}

TEST(Fup, ThresholdRaiseWithoutDelta) {
  const auto old_db = plt::testing::paper_table1();
  const auto old_frequent = batch(old_db, 2);
  tdb::Database delta;
  const auto result = fup_update(old_db, old_frequent, 2, delta, 3);
  plt::testing::expect_same_itemsets(result.itemsets, batch(old_db, 3),
                                     "fup raise");
}

TEST(Fup, BrandNewItemsInDelta) {
  const auto old_db = plt::testing::paper_table1();
  const auto old_frequent = batch(old_db, 2);
  tdb::Database delta;
  for (int i = 0; i < 4; ++i) delta.add({50, 51});
  const auto result = fup_update(old_db, old_frequent, 2, delta, 2);
  EXPECT_EQ(result.itemsets.find_support(Itemset{50, 51}), 4u);
  plt::testing::expect_same_itemsets(result.itemsets,
                                     batch(combined(old_db, delta), 2),
                                     "fup new items");
}

TEST(Fup, RescanFrugality) {
  // The FUP setting keeps the support *fraction* constant, so the absolute
  // threshold rises with the database: minsup 30/3000 -> 33/3300. A small
  // delta then rescans only a tiny candidate set (losers need
  // new-old+1 = 4 delta occurrences to qualify).
  datagen::QuestConfig cfg;
  cfg.transactions = 3000;
  cfg.items = 60;
  cfg.seed = 5;
  const auto old_db = datagen::generate_quest(cfg);
  cfg.transactions = 300;
  cfg.seed = 6;
  const auto delta = datagen::generate_quest(cfg);
  const Count old_minsup = 30;
  const Count new_minsup = 33;  // same 1% of the grown database
  const auto old_frequent = batch(old_db, old_minsup);
  const auto result =
      fup_update(old_db, old_frequent, old_minsup, delta, new_minsup);
  plt::testing::expect_same_itemsets(
      result.itemsets, batch(combined(old_db, delta), new_minsup),
      "fup big");
  EXPECT_LT(result.rescanned,
            (result.winner_candidates + result.loser_candidates) / 10 + 50)
      << "rescanned " << result.rescanned << " of "
      << result.winner_candidates + result.loser_candidates;
}

TEST(FupDeath, DecreasingThresholdRejected) {
  const auto old_db = plt::testing::paper_table1();
  const auto old_frequent = batch(old_db, 3);
  tdb::Database delta;
  EXPECT_DEATH(fup_update(old_db, old_frequent, 3, delta, 2),
               "non-decreasing");
}

}  // namespace
}  // namespace plt::core
