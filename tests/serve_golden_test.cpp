// Golden-answer suite for plt-serve: the full set of support, membership,
// top-k and rule answers over the paper's Table 1 database, queried through
// the real daemon + wire protocol at EVERY support threshold (minsup 1..7),
// rendered as one deterministic text document and byte-compared against the
// committed fixture tests/golden/serve_table1.txt. The document is rendered
// once per kernel backend (scalar, and the best SIMD tier the CPU supports)
// and must be byte-identical across them — the serving answers may not
// depend on which decode kernel ran.
//
// PLT_UPDATE_GOLDEN=1 rewrites the fixture (review the diff!).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "kernels/kernels.hpp"
#include "serve_test_support.hpp"

#ifndef PLT_SERVE_GOLDEN_DIR
#define PLT_SERVE_GOLDEN_DIR "."
#endif

namespace plt::serve {
namespace {

using plt::testing::TestServer;
using plt::testing::write_table1_blob;

/// All answers for one minsup, through the wire.
void render_minsup(std::ostream& out, Count minsup) {
  const std::string blob = write_table1_blob(
      minsup, "golden_minsup" + std::to_string(minsup) + ".plt");
  TestServer server({blob});
  QueryClient client(server.port());

  out << "== minsup " << minsup << " ==\n";
  out << "empty-support " << client.support(0, std::vector<Rank>{}) << '\n';
  // Every non-empty subset of ranks 1..6 (rank 5/6 fall outside the
  // alphabet at most thresholds: support 0, absent).
  for (std::uint32_t mask = 1; mask < 64; ++mask) {
    std::vector<Rank> ranks;
    for (Rank rank = 1; rank <= 6; ++rank)
      if ((mask >> (rank - 1)) & 1u) ranks.push_back(rank);
    out << "support";
    for (const Rank rank : ranks) out << ' ' << rank;
    out << " = " << client.support(0, ranks) << '\n';
    const Response membership = client.membership(0, ranks);
    out << "member";
    for (const Rank rank : ranks) out << ' ' << rank;
    out << " = " << (membership.member ? "yes" : "no") << ' '
        << membership.support << '\n';
  }
  out << "topk";
  for (const TopEntry& entry : client.top_k(0, 10))
    out << ' ' << entry.rank << ':' << entry.support;
  out << '\n';
  for (const Rank antecedent : {1u, 2u, 3u}) {
    for (const Rank consequent : {1u, 2u, 3u, 4u}) {
      if (consequent == antecedent) continue;
      const Response rule =
          client.rule(0, std::vector<Rank>{antecedent}, consequent);
      out << "rule " << antecedent << "->" << consequent << " = "
          << rule.support << '/' << rule.antecedent_support << " ppm "
          << rule.confidence_ppm << '\n';
    }
  }
}

std::string render_document() {
  std::ostringstream out;
  out << "plt-serve golden answers, Table 1 (items A..F = ranks by id)\n";
  for (Count minsup = 1; minsup <= 7; ++minsup) render_minsup(out, minsup);
  return out.str();
}

void expect_matches_golden(const std::string& actual, const char* name) {
  const std::string path = std::string(PLT_SERVE_GOLDEN_DIR) + "/" + name;
  if (std::getenv("PLT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — regenerate with PLT_UPDATE_GOLDEN=1";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << " (PLT_UPDATE_GOLDEN=1 rewrites it if the change is intended)";
}

TEST(ServeGolden, AllThresholdsMatchFixtureOnEveryBackend) {
  const kernels::Backend original = kernels::active().backend;

  ASSERT_TRUE(kernels::set_backend(kernels::Backend::kScalar));
  const std::string scalar_doc = render_document();
  expect_matches_golden(scalar_doc, "serve_table1.txt");

  const kernels::Backend best = kernels::best_supported();
  if (best != kernels::Backend::kScalar) {
    ASSERT_TRUE(kernels::set_backend(best));
    const std::string simd_doc = render_document();
    EXPECT_EQ(simd_doc, scalar_doc)
        << "serving answers diverged between scalar and "
        << kernels::backend_name(best);
  }
  kernels::set_backend(original);
}

}  // namespace
}  // namespace plt::serve
