// Concurrency suite for plt-serve (runs under TSan via the `threaded`
// label): N client threads firing every request class at a multi-worker
// daemon must get byte-for-byte the answers a single sequential client
// gets, hot swaps must never produce a wrong or dropped answer, the
// admission-control path must reject with the typed OVERLOADED status
// rather than queueing silently, and the merged trace tree recorded across
// all worker threads must stay well-formed with only registered names.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>

#include "core/subset_check.hpp"
#include "obs/span_names.hpp"
#include "obs/trace.hpp"
#include "serve_test_support.hpp"

namespace plt::serve {
namespace {

using plt::testing::TestServer;
using plt::testing::write_table1_blob;

/// One expected exchange: the request plus the full response a sequential
/// client observed (compared field-by-field after the concurrent run).
struct Exchange {
  Request request;
  Response expected;
};

std::vector<Request> workload(std::uint16_t blob_id) {
  std::vector<Request> requests;
  auto add = [&](Opcode opcode, std::vector<Rank> ranks, Rank consequent = 0,
                 std::uint32_t k = 0) {
    Request request;
    request.opcode = opcode;
    request.blob_id = blob_id;
    request.ranks = std::move(ranks);
    request.consequent = consequent;
    request.k = k;
    requests.push_back(std::move(request));
  };
  // Every non-empty subset of ranks 1..4 as support and membership queries.
  for (std::uint32_t mask = 1; mask < 16; ++mask) {
    std::vector<Rank> ranks;
    for (Rank rank = 1; rank <= 4; ++rank)
      if ((mask >> (rank - 1)) & 1u) ranks.push_back(rank);
    add(Opcode::kSupport, ranks);
    add(Opcode::kMembership, ranks);
  }
  add(Opcode::kSupport, {});  // empty set: all transactions
  for (std::uint32_t k : {0u, 1u, 3u, 100u}) add(Opcode::kTopK, {}, 0, k);
  add(Opcode::kRule, {1}, 2);
  add(Opcode::kRule, {1, 2}, 3);
  add(Opcode::kRule, {}, 4);
  add(Opcode::kSupport, {9});  // rank outside the alphabet: support 0
  add(Opcode::kPing, {});
  return requests;
}

void expect_same_response(const Response& actual, const Exchange& exchange,
                          const char* context) {
  EXPECT_EQ(actual.status, exchange.expected.status) << context;
  EXPECT_EQ(actual.support, exchange.expected.support) << context;
  EXPECT_EQ(actual.antecedent_support, exchange.expected.antecedent_support)
      << context;
  EXPECT_EQ(actual.confidence_ppm, exchange.expected.confidence_ppm)
      << context;
  EXPECT_EQ(actual.member, exchange.expected.member) << context;
  ASSERT_EQ(actual.top.size(), exchange.expected.top.size()) << context;
  for (std::size_t i = 0; i < actual.top.size(); ++i) {
    EXPECT_EQ(actual.top[i].rank, exchange.expected.top[i].rank) << context;
    EXPECT_EQ(actual.top[i].support, exchange.expected.top[i].support)
        << context;
  }
}

TEST(ServeConcurrency, ParallelClientsMatchSequentialAnswers) {
  obs::TraceSession session;
  const core::BuiltPlt reference =
      core::build_from_database(plt::testing::paper_table1(), 2);
  std::vector<Exchange> exchanges;
  {
    TestServer server(
        {write_table1_blob(2, "conc_minsup2.plt"),
         write_table1_blob(3, "conc_minsup3.plt")},
        /*threads=*/2);

    // Sequential pass: one client records the ground-truth responses.
    {
      QueryClient client(server.port());
      std::uint32_t next_id = 1;
      for (std::uint16_t blob_id = 0; blob_id < 2; ++blob_id) {
        for (Request request : workload(blob_id)) {
          request.request_id = next_id++;
          const auto response = client.call(request);
          ASSERT_TRUE(response.has_value());
          exchanges.push_back({request, *response});
        }
      }
    }

    // Independent reference: the blob's support answers must equal the
    // in-memory PLT scan for the same ranks.
    for (const Exchange& exchange : exchanges) {
      if (exchange.request.opcode != Opcode::kSupport ||
          exchange.request.blob_id != 0)
        continue;
      EXPECT_EQ(exchange.expected.support,
                core::support_of(reference.plt, exchange.request.ranks));
    }

    // Concurrent pass: 4 threads, each shuffling the full workload with its
    // own seed and checking every response against the sequential truth.
    constexpr int kThreads = 4;
    constexpr int kRounds = 3;
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        std::mt19937 rng(1234u + static_cast<unsigned>(t));
        QueryClient client(server.port());
        std::vector<std::size_t> order(exchanges.size());
        for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
        for (int round = 0; round < kRounds; ++round) {
          std::shuffle(order.begin(), order.end(), rng);
          for (const std::size_t index : order) {
            Request request = exchanges[index].request;
            // Unique id per in-flight call; correlation is by id.
            request.request_id =
                static_cast<std::uint32_t>(1000000 + t * 100000 +
                                           round * 10000 + index);
            const auto response = client.call(request);
            ASSERT_TRUE(response.has_value());
            EXPECT_EQ(response->request_id, request.request_id);
            expect_same_response(*response, exchanges[index], "concurrent");
          }
        }
      });
    }
    for (std::thread& thread : clients) thread.join();

    const StatsSnapshot stats = server.server().stats();
    std::uint64_t total = 0;
    for (const auto& per_class : stats.per_class) total += per_class.requests;
    EXPECT_EQ(total, exchanges.size() * (1 + kThreads * kRounds));
    EXPECT_EQ(stats.protocol_errors, 0u);
  }  // server stopped: all worker threads joined, safe to aggregate

  const std::shared_ptr<const obs::TraceNode> tree = session.finish();
  ASSERT_NE(tree, nullptr);
#if PLT_OBS_ENABLED
  // Merged across acceptor + 2 workers + 4 client threads, the trace must
  // stay well-formed and use only registered names.
  const obs::TraceHealth health = session.collector().health();
  EXPECT_EQ(health.unbalanced_exits, 0u);
  EXPECT_EQ(health.open_spans, 0u);
  const std::function<void(const obs::TraceNode&, bool)> check =
      [&](const obs::TraceNode& node, bool is_root) {
        if (!is_root)
          EXPECT_TRUE(obs::names::is_registered_span_name(node.name))
              << node.name;
        for (const auto& [counter, value] : node.counters)
          EXPECT_TRUE(obs::names::is_registered_counter_name(counter))
              << counter;
        EXPECT_TRUE(std::is_sorted(
            node.children.begin(), node.children.end(),
            [](const obs::TraceNode& a, const obs::TraceNode& b) {
              return a.name < b.name;
            }));
        for (const obs::TraceNode& child : node.children) check(child, false);
      };
  check(*tree, true);
  const obs::TraceNode* request_span = tree->child("serve-request");
  ASSERT_NE(request_span, nullptr);
  EXPECT_GT(request_span->count, 0u);
  EXPECT_EQ(request_span->counter("serve.requests"), request_span->count);
#endif
}

TEST(ServeConcurrency, HotSwapUnderTrafficNeverDropsOrCorrupts) {
  TestServer server({write_table1_blob(2, "swap_table1.plt")},
                    /*threads=*/2);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> answered{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&] {
      QueryClient client(server.port());
      while (!done.load(std::memory_order_acquire)) {
        // Answers must be identical across generations (same blob paths).
        ASSERT_EQ(client.support(0, std::vector<Rank>{1, 2}), 4u);
        ASSERT_EQ(client.support(0, std::vector<Rank>{2, 3}), 4u);  // {B,C}
        answered.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  std::uint32_t generation = 1;
  for (int i = 0; i < 5; ++i) {
    generation = server.server().reload();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thread : hammers) thread.join();
  EXPECT_EQ(generation, 6u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(server.server().stats().generation, 6u);
}

TEST(ServeConcurrency, BudgetExhaustionRejectsTypedNeverSilently) {
  ServerOptions options;
  options.blob_paths = {write_table1_blob(2, "budget_table1.plt")};
  options.threads = 1;
  options.memory_budget = 1;  // first queued response exhausts it
  TestServer server(std::move(options));

  QueryClient client(server.port());
  constexpr std::uint32_t kBurst = 32;
  std::vector<std::uint8_t> burst;
  for (std::uint32_t id = 1; id <= kBurst; ++id) {
    Request request;
    request.opcode = Opcode::kSupport;
    request.request_id = id;
    request.ranks = {1, 2};
    const auto frame = encode_request(request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  client.send_raw(burst);
  std::uint32_t ok = 0, overloaded = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value()) << "response " << i << " dropped";
    if (response->status == Status::kOk) {
      EXPECT_EQ(response->support, 4u);
      ++ok;
    } else {
      EXPECT_EQ(response->status, Status::kOverloaded);
      ++overloaded;
    }
  }
  // Every request in the burst got exactly one typed answer.
  EXPECT_EQ(ok + overloaded, kBurst);
  EXPECT_GE(ok, 1u);
  EXPECT_GE(overloaded, 1u);
  EXPECT_EQ(server.server().stats().overloaded, overloaded);

  // The budget frees as responses drain: a fresh request succeeds.
  EXPECT_EQ(client.support(0, std::vector<Rank>{1, 2}), 4u);
}

TEST(ServeConcurrency, BatchingGroupsSameBucketRequests) {
  TestServer server({write_table1_blob(2, "batch_table1.plt")});
  QueryClient client(server.port());
  // 16 pipelined queries over only two distinct (blob, top-rank) groups
  // arrive in one tick; the daemon must batch them.
  std::vector<std::uint8_t> burst;
  for (std::uint32_t id = 1; id <= 16; ++id) {
    Request request;
    request.opcode = Opcode::kSupport;
    request.request_id = id;
    request.ranks = id % 2 == 0 ? std::vector<Rank>{1, 2}
                                : std::vector<Rank>{3, 4};
    const auto frame = encode_request(request);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  client.send_raw(burst);
  for (int i = 0; i < 16; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->status, Status::kOk);
    EXPECT_EQ(response->support, response->request_id % 2 == 0 ? 4u : 3u);
  }
  const StatsSnapshot stats = server.server().stats();
  // At least one tick saw multiple requests of the same group.
  EXPECT_GT(stats.batched_requests, 0u);
}

}  // namespace
}  // namespace plt::serve
