// CHARM native closed-itemset mining: must equal the post-pass closure of
// a complete mining result on every workload shape.
#include <gtest/gtest.h>

#include "baselines/charm.hpp"
#include "core/closed.hpp"
#include "core/miner.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "datagen/transforms.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::baselines {
namespace {

core::FrequentItemsets closed_reference(const tdb::Database& db,
                                        Count minsup) {
  const auto mined = core::mine(db, minsup, core::Algorithm::kFpGrowth);
  return core::closed_itemsets(mined.itemsets);
}

core::FrequentItemsets charm(const tdb::Database& db, Count minsup) {
  core::FrequentItemsets out;
  mine_charm(db, minsup, core::collect_into(out));
  return out;
}

TEST(Charm, PaperExample) {
  const auto db = plt::testing::paper_table1();
  plt::testing::expect_same_itemsets(charm(db, 2), closed_reference(db, 2),
                                     "charm table1");
}

TEST(Charm, TwinsCollapse) {
  // Perfectly-correlated twins are the canonical closed-mining case: CHARM
  // must fold them via its tidset-equality property.
  datagen::QuestConfig cfg;
  cfg.transactions = 200;
  cfg.items = 15;
  cfg.seed = 3;
  auto db = datagen::generate_quest(cfg);
  db = datagen::add_twin_items(db, {{1, 16}, {2, 17}});
  plt::testing::expect_same_itemsets(charm(db, 4), closed_reference(db, 4),
                                     "charm twins");
}

class CharmSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Count>> {};

TEST_P(CharmSweep, MatchesPostPassClosure) {
  const auto [seed, minsup] = GetParam();
  Rng rng(seed);
  tdb::Database db;
  std::vector<Item> row;
  for (int t = 0; t < 150; ++t) {
    row.clear();
    for (Item i = 1; i <= 13; ++i)
      if (rng.next_bool(0.35)) row.push_back(i);
    if (row.empty()) row.push_back(1);
    db.add(row);
  }
  plt::testing::expect_same_itemsets(charm(db, minsup),
                                     closed_reference(db, minsup), "charm");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CharmSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<Count>(2, 5, 15, 40)));

TEST(Charm, DenseWorkload) {
  const auto db = datagen::generate_dense(datagen::mushroom_like(400, 9));
  plt::testing::expect_same_itemsets(charm(db, 120),
                                     closed_reference(db, 120),
                                     "charm dense");
}

TEST(Charm, OutputIsSmallerThanFullMining) {
  const auto db = datagen::generate_dense(datagen::chess_like(300, 5));
  const Count minsup = 210;  // 70%
  const auto full = core::mine(db, minsup, core::Algorithm::kFpGrowth);
  const auto closed = charm(db, minsup);
  EXPECT_LE(closed.size(), full.itemsets.size());
  EXPECT_GT(closed.size(), 0u);
}

TEST(Charm, DegenerateInputs) {
  tdb::Database empty;
  EXPECT_TRUE(charm(empty, 1).empty());
  const auto single = tdb::Database::from_rows({{3}, {3}});
  const auto mined = charm(single, 2);
  ASSERT_EQ(mined.size(), 1u);
  EXPECT_EQ(mined.find_support(Itemset{3}), 2u);
}

TEST(Charm, StatsPopulated) {
  BaselineStats stats;
  core::FrequentItemsets out;
  mine_charm(plt::testing::paper_table1(), 2, core::collect_into(out),
             &stats);
  EXPECT_GT(stats.structure_bytes, 0u);
}

}  // namespace
}  // namespace plt::baselines
