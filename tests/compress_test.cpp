// Compression & serialization tests: varint round-trips and failure modes,
// PLT codec round-trips, size accounting, and selective decode via the
// blob index.
#include <gtest/gtest.h>

#include <map>

#include "compress/blob_format.hpp"
#include "compress/codec.hpp"
#include "compress/index.hpp"
#include "compress/varint.hpp"
#include "core/builder.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace plt::compress {
namespace {

TEST(Varint, RoundTripBoundaryValues) {
  const std::uint64_t values[] = {0,     1,    127,  128,   16383, 16384,
                                  1u << 21,    0xffffffffULL,
                                  0xffffffffffffffffULL};
  for (const auto value : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, value);
    EXPECT_EQ(buf.size(), varint_size(value)) << value;
    std::size_t offset = 0;
    EXPECT_EQ(get_varint(buf, offset), value);
    EXPECT_EQ(offset, buf.size());
  }
}

TEST(Varint, RandomizedRoundTrip) {
  Rng rng(81);
  std::vector<std::uint8_t> buf;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_u64() >> (rng.next_below(64));
    values.push_back(v);
    put_varint(buf, v);
  }
  std::size_t offset = 0;
  for (const auto v : values) EXPECT_EQ(get_varint(buf, offset), v);
  EXPECT_EQ(offset, buf.size());
}

TEST(Varint, TruncatedInputThrows) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buf, offset), std::runtime_error);
}

TEST(Varint, OverlongEncodingThrows) {
  const std::vector<std::uint8_t> buf(11, 0x80);
  std::size_t offset = 0;
  EXPECT_THROW(get_varint(buf, offset), std::runtime_error);
}

core::Plt sample_plt() {
  core::Plt plt(10);
  plt.add(core::PosVec{1, 1, 1}, 5);
  plt.add(core::PosVec{2, 3}, 2);
  plt.add(core::PosVec{7}, 9);
  plt.add(core::PosVec{1, 2, 3, 4}, 1);
  return plt;
}

std::map<core::PosVec, Count> plt_contents(const core::Plt& plt) {
  std::map<core::PosVec, Count> out;
  plt.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                   const core::Partition::Entry& e) {
    out[core::PosVec(v.begin(), v.end())] = e.freq;
  });
  return out;
}

TEST(Codec, RoundTripSmall) {
  const auto plt = sample_plt();
  const auto blob = encode_plt(plt);
  EXPECT_EQ(blob.size(), encoded_size(plt));
  const auto decoded = decode_plt(blob);
  EXPECT_EQ(decoded.max_rank(), plt.max_rank());
  EXPECT_EQ(plt_contents(decoded), plt_contents(plt));
}

TEST(Codec, RoundTripRealWorkload) {
  datagen::QuestConfig cfg;
  cfg.transactions = 1500;
  cfg.items = 120;
  cfg.seed = 5;
  const auto db = datagen::generate_quest(cfg);
  const auto built = core::build_from_database(db, 3);
  const auto blob = encode_plt(built.plt);
  const auto decoded = decode_plt(blob);
  EXPECT_EQ(plt_contents(decoded), plt_contents(built.plt));
  // The varint encoding must beat the in-memory footprint comfortably.
  EXPECT_LT(blob.size(), built.plt.memory_usage());
}

TEST(Codec, BlockAndScalarSubformatsRoundTrip) {
  datagen::QuestConfig cfg;
  cfg.transactions = 800;
  cfg.items = 80;
  cfg.seed = 11;
  const auto db = datagen::generate_quest(cfg);
  const auto built = core::build_from_database(db, 3);

  EncodeOptions block;
  block.block_frames = true;
  EncodeOptions scalar;
  scalar.block_frames = false;

  const auto block_blob = encode_plt(built.plt, block);
  const auto scalar_blob = encode_plt(built.plt, scalar);
  EXPECT_EQ(block_blob.size(), encoded_size(built.plt, block));
  EXPECT_EQ(scalar_blob.size(), encoded_size(built.plt, scalar));
  EXPECT_NE(block_blob, scalar_blob);  // distinct subformats on the wire

  // Both subformats decode to the same PLT.
  EXPECT_EQ(plt_contents(decode_plt(block_blob)), plt_contents(built.plt));
  EXPECT_EQ(plt_contents(decode_plt(scalar_blob)), plt_contents(built.plt));
}

TEST(Codec, ScalarFrameBlobIndexStillWorks) {
  EncodeOptions scalar;
  scalar.block_frames = false;
  const auto plt = sample_plt();
  const auto blob = encode_plt(plt, scalar);
  const auto index = build_index(blob);
  for (const auto& range : index.partitions) EXPECT_FALSE(range.block_coded);
  std::map<core::PosVec, Count> seen;
  for (Rank sum = 1; sum <= index.max_rank; ++sum)
    decode_bucket(blob, index, sum, [&](std::span<const Pos> v, Count freq) {
      seen[core::PosVec(v.begin(), v.end())] = freq;
    });
  EXPECT_EQ(seen, plt_contents(plt));
}

TEST(Codec, BlockFlagRejectedOnV1) {
  // A v1 blob may not carry the v2-only block-coded frame flag.
  std::vector<std::uint8_t> blob{'P', 'L', 'T', '1'};
  put_varint(blob, 4);  // max_rank
  put_varint(blob, 1);  // one partition
  put_varint(blob, 1u | kFrameBlockCoded);  // flagged length: invalid on v1
  put_varint(blob, 1);  // one entry
  put_varint(blob, 1);  // position
  put_varint(blob, 1);  // freq
  EXPECT_THROW(decode_plt(blob), std::runtime_error);
}

TEST(Codec, BadMagicThrows) {
  auto blob = encode_plt(sample_plt());
  blob[0] = 'X';
  EXPECT_THROW(decode_plt(blob), std::runtime_error);
}

TEST(Codec, TruncatedBlobThrows) {
  auto blob = encode_plt(sample_plt());
  blob.resize(blob.size() / 2);
  EXPECT_THROW(decode_plt(blob), std::runtime_error);
}

TEST(Codec, CorruptPositionThrows) {
  // Hand-build a blob with a zero position value.
  std::vector<std::uint8_t> blob{'P', 'L', 'T', '1'};
  put_varint(blob, 4);  // max_rank
  put_varint(blob, 1);  // one partition
  put_varint(blob, 1);  // length 1
  put_varint(blob, 1);  // one entry
  put_varint(blob, 0);  // invalid position 0
  put_varint(blob, 1);  // freq
  EXPECT_THROW(decode_plt(blob), std::runtime_error);
}

TEST(Codec, WideFrequencySurvivesBothSubformats) {
  // Block frames split the 64-bit freq into lo/hi u32 words; scalar frames
  // emit one varint. Both paths must round-trip counts past 2^32 exactly
  // (the -Wconversion audit's intentional-truncation sites in codec.cpp).
  core::Plt plt(4);
  const Count wide = (Count{1} << 32) + 3;
  const Count wider = (Count{5} << 40) + 9;
  plt.add(std::vector<Pos>{1, 2}, wide);
  plt.add(std::vector<Pos>{3}, wider);
  for (const bool block : {true, false}) {
    EncodeOptions options;
    options.block_frames = block;
    const auto blob = encode_plt(plt, options);
    EXPECT_EQ(blob.size(), encoded_size(plt, options));
    const auto decoded = decode_plt(blob);
    EXPECT_EQ(decoded.freq_of(std::vector<Pos>{1, 2}), wide)
        << "block=" << block;
    EXPECT_EQ(decoded.freq_of(std::vector<Pos>{3}), wider)
        << "block=" << block;
  }
}

TEST(Codec, OversizedPositionVarintThrows) {
  // A position varint just past 32 bits would truncate to the in-range
  // value 2 if the decoder narrowed blindly; the guard must reject the
  // entry instead (silent-truncation regression for the static_cast<Pos>).
  std::vector<std::uint8_t> blob{'P', 'L', 'T', '1'};
  put_varint(blob, 4);                 // max_rank
  put_varint(blob, 1);                 // one partition
  put_varint(blob, 1);                 // length 1
  put_varint(blob, 1);                 // one entry
  put_varint(blob, (1ull << 32) + 2);  // position overflows Pos
  put_varint(blob, 1);                 // freq
  EXPECT_THROW(decode_plt(blob), std::runtime_error);
}

TEST(Codec, RawDatabaseBytes) {
  const auto db = tdb::Database::from_rows({{1, 2, 3}, {4}});
  EXPECT_EQ(raw_database_bytes(db), 4u * sizeof(Item) +
                                        2u * sizeof(std::uint64_t));
}

TEST(Index, PartitionRangesAndSelectiveDecode) {
  const auto plt = sample_plt();
  const auto blob = encode_plt(plt);
  const auto index = build_index(blob);
  EXPECT_EQ(index.max_rank, 10u);
  EXPECT_EQ(index.partitions.size(), 4u);  // lengths 1,2,3,4

  std::map<core::PosVec, Count> got;
  const auto visited = decode_partition(
      blob, index, 3, [&](std::span<const Pos> v, Count freq) {
        got[core::PosVec(v.begin(), v.end())] = freq;
      });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(got.at(core::PosVec{1, 1, 1}), 5u);
  EXPECT_EQ(decode_partition(blob, index, 7,
                             [](std::span<const Pos>, Count) {}),
            0u);
}

TEST(Index, BucketDecodeBySum) {
  core::Plt plt(6);
  plt.add(core::PosVec{1, 2}, 4);   // sum 3
  plt.add(core::PosVec{3}, 7);      // sum 3
  plt.add(core::PosVec{1, 1, 3}, 1);  // sum 5
  const auto blob = encode_plt(plt);
  const auto index = build_index(blob);

  Count mass = 0;
  const auto visited =
      decode_bucket(blob, index, 3, [&](std::span<const Pos>, Count freq) {
        mass += freq;
      });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(mass, 11u);
  EXPECT_EQ(decode_bucket(blob, index, 6,
                          [](std::span<const Pos>, Count) {}),
            0u);
  EXPECT_EQ(decode_bucket(blob, index, 99,
                          [](std::span<const Pos>, Count) {}),
            0u);
}

TEST(Index, BadBlobThrows) {
  std::vector<std::uint8_t> junk{'N', 'O', 'P', 'E', 0, 0};
  EXPECT_THROW(build_index(junk), std::runtime_error);
}

TEST(Index, MemoryUsagePositive) {
  const auto blob = encode_plt(sample_plt());
  EXPECT_GT(build_index(blob).memory_usage(), 0u);
}

}  // namespace
}  // namespace plt::compress
