// Query-layer tests: top-k mining and constrained (must-contain) mining,
// validated against filters over full mining results.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/queries.hpp"
#include "datagen/quest.hpp"
#include "test_support.hpp"

namespace plt::core {
namespace {

TEST(TopK, PaperExampleTop3) {
  const auto top = mine_top_k(plt::testing::paper_table1(), 3);
  // Supports: B=5, C=5, then four itemsets tied at 4 (A, D, AB, BC).
  // k=3 keeps B, C and the whole tie group at support 4.
  ASSERT_GE(top.size(), 3u);
  Count min_kept = static_cast<Count>(-1);
  for (std::size_t i = 0; i < top.size(); ++i)
    min_kept = std::min(min_kept, top.support(i));
  EXPECT_EQ(min_kept, 4u);
  EXPECT_EQ(top.find_support(Itemset{2}), 5u);
  EXPECT_EQ(top.find_support(Itemset{3}), 5u);
  EXPECT_EQ(top.size(), 6u);  // 2 at sup 5 + 4 tied at sup 4
}

TEST(TopK, SupportsAreTheKLargest) {
  datagen::QuestConfig cfg;
  cfg.transactions = 400;
  cfg.items = 40;
  cfg.seed = 9;
  const auto db = datagen::generate_quest(cfg);
  const std::size_t k = 25;
  const auto top = mine_top_k(db, k);
  ASSERT_GE(top.size(), k);

  // Against the full result at minsup 1... too big; minsup 2 suffices as
  // long as the k-th support is >= 2 (check it).
  const auto full = mine(db, 2, Algorithm::kPltConditional).itemsets;
  std::vector<Count> all_supports;
  for (std::size_t i = 0; i < full.size(); ++i)
    all_supports.push_back(full.support(i));
  std::sort(all_supports.begin(), all_supports.end(), std::greater<>());
  ASSERT_GE(all_supports[k - 1], 2u);

  std::vector<Count> top_supports;
  for (std::size_t i = 0; i < top.size(); ++i)
    top_supports.push_back(top.support(i));
  std::sort(top_supports.begin(), top_supports.end(), std::greater<>());
  for (std::size_t i = 0; i < k; ++i)
    EXPECT_EQ(top_supports[i], all_supports[i]) << i;
}

TEST(TopK, MinLengthFilter) {
  TopKOptions options;
  options.min_length = 2;
  const auto top = mine_top_k(plt::testing::paper_table1(), 2, options);
  for (std::size_t i = 0; i < top.size(); ++i)
    EXPECT_GE(top.itemset(i).size(), 2u);
  // Best pairs: AB=4, BC=4.
  EXPECT_EQ(top.find_support(Itemset{1, 2}), 4u);
  EXPECT_EQ(top.find_support(Itemset{2, 3}), 4u);
}

TEST(TopK, DegenerateInputs) {
  EXPECT_TRUE(mine_top_k(plt::testing::paper_table1(), 0).empty());
  tdb::Database empty;
  EXPECT_TRUE(mine_top_k(empty, 5).empty());
  // k larger than everything mineable.
  const auto all = mine_top_k(plt::testing::paper_table1(), 10000);
  const auto full =
      mine(plt::testing::paper_table1(), 1, Algorithm::kPltConditional);
  EXPECT_EQ(all.size(), full.itemsets.size());
}

TEST(Containing, PaperExampleConstraintD) {
  // All frequent itemsets containing D (item 4) at minsup 2:
  // D, AD, BD, CD, ABD, BCD.
  const auto result =
      mine_containing(plt::testing::paper_table1(), 2, Itemset{4});
  ASSERT_TRUE(result.constraint_support.has_value());
  EXPECT_EQ(*result.constraint_support, 4u);
  EXPECT_EQ(result.itemsets.size(), 6u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{4}), 4u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{1, 2, 4}), 2u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{2, 3, 4}), 2u);
  EXPECT_EQ(result.itemsets.find_support(Itemset{1, 3, 4}), 0u);  // ACD inf.
}

TEST(Containing, MatchesFilteredFullMining) {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 25;
  cfg.seed = 4;
  const auto db = datagen::generate_quest(cfg);
  const Count minsup = 5;
  const auto full = mine(db, minsup, Algorithm::kPltConditional).itemsets;

  for (const Item anchor : {1u, 3u, 7u}) {
    const auto constrained = mine_containing(db, minsup, Itemset{anchor});
    FrequentItemsets filtered;
    for (std::size_t i = 0; i < full.size(); ++i) {
      const auto z = full.itemset(i);
      if (std::binary_search(z.begin(), z.end(), anchor))
        filtered.add(z, full.support(i));
    }
    if (!constrained.constraint_support) {
      EXPECT_TRUE(filtered.empty()) << anchor;
      continue;
    }
    plt::testing::expect_same_itemsets(constrained.itemsets, filtered,
                                       "constraint filter");
  }
}

TEST(Containing, MultiItemConstraint) {
  const auto result =
      mine_containing(plt::testing::paper_table1(), 2, Itemset{2, 4});
  ASSERT_TRUE(result.constraint_support.has_value());
  EXPECT_EQ(*result.constraint_support, 3u);  // BD in TIDs 3,4,5
  // Containing both B and D: BD, ABD, BCD.
  EXPECT_EQ(result.itemsets.size(), 3u);
}

TEST(Containing, InfrequentConstraint) {
  const auto result =
      mine_containing(plt::testing::paper_table1(), 2, Itemset{5});  // E
  EXPECT_FALSE(result.constraint_support.has_value());
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(Containing, DuplicateItemsInConstraintAreDeduplicated) {
  const auto result =
      mine_containing(plt::testing::paper_table1(), 2, Itemset{4, 4});
  ASSERT_TRUE(result.constraint_support.has_value());
  EXPECT_EQ(result.itemsets.size(), 6u);
}

}  // namespace
}  // namespace plt::core
