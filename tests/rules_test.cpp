// Association-rule generation tests: metric math, completeness against a
// brute-force rule enumerator, confidence pruning, and option handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/miner.hpp"
#include "rules/generator.hpp"
#include "test_support.hpp"

namespace plt::rules {
namespace {

TEST(Metrics, HandComputedValues) {
  // |D|=10, sup(X∪Y)=4, sup(X)=5, sup(Y)=6.
  const Metrics m = compute_metrics(4, 5, 6, 10);
  EXPECT_DOUBLE_EQ(m.support, 0.4);
  EXPECT_DOUBLE_EQ(m.confidence, 0.8);
  EXPECT_DOUBLE_EQ(m.lift, 0.8 / 0.6);
  EXPECT_NEAR(m.leverage, 0.4 - 0.5 * 0.6, 1e-12);
  EXPECT_NEAR(m.conviction, (1.0 - 0.6) / (1.0 - 0.8), 1e-12);
}

TEST(Metrics, PerfectConfidenceGivesInfiniteConviction) {
  const Metrics m = compute_metrics(5, 5, 7, 10);
  EXPECT_DOUBLE_EQ(m.confidence, 1.0);
  EXPECT_TRUE(std::isinf(m.conviction));
}

TEST(Metrics, IndependentItemsHaveLiftOne) {
  // X and Y independent: sup(XY)/n = sup(X)/n * sup(Y)/n.
  const Metrics m = compute_metrics(6, 12, 50, 100);
  EXPECT_NEAR(m.lift, 1.0, 1e-12);
  EXPECT_NEAR(m.leverage, 0.0, 1e-12);
}

// Brute-force rule enumeration on mined itemsets for comparison.
std::set<std::string> enumerate_rules_brute(
    const core::FrequentItemsets& frequent, Count transactions,
    double min_confidence) {
  std::set<std::string> out;
  auto support_of = [&](const Itemset& s) {
    return frequent.find_support(s);
  };
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    if (z.size() < 2) continue;
    const auto bits = static_cast<std::uint32_t>(z.size());
    for (std::uint32_t mask = 1; mask + 1 < (1u << bits); ++mask) {
      Itemset x, y;
      for (std::uint32_t b = 0; b < bits; ++b)
        ((mask >> b) & 1 ? x : y).push_back(z[b]);
      const double conf = static_cast<double>(frequent.support(i)) /
                          static_cast<double>(support_of(x));
      if (conf + 1e-12 < min_confidence) continue;
      Rule rule;
      rule.antecedent = x;
      rule.consequent = y;
      rule.union_support = frequent.support(i);
      rule.metrics = compute_metrics(frequent.support(i), support_of(x),
                                     support_of(y), transactions);
      out.insert(to_string(rule));
    }
  }
  return out;
}

TEST(Generator, MatchesBruteForceEnumeration) {
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  for (const double min_conf : {0.0, 0.5, 0.7, 0.9, 1.0}) {
    RuleOptions options;
    options.min_confidence = min_conf;
    const auto rules = generate_rules(mined.itemsets, db.size(), options);
    std::set<std::string> got;
    for (const auto& rule : rules) got.insert(to_string(rule));
    EXPECT_EQ(got,
              enumerate_rules_brute(mined.itemsets, db.size(), min_conf))
        << "min_conf " << min_conf;
  }
}

TEST(Generator, AllRulesMeetConfidenceThreshold) {
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kFpGrowth);
  RuleOptions options;
  options.min_confidence = 0.75;
  for (const auto& rule : generate_rules(mined.itemsets, db.size(), options))
    EXPECT_GE(rule.metrics.confidence, 0.75 - 1e-9) << to_string(rule);
}

TEST(Generator, AntecedentConsequentDisjointAndNonEmpty) {
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  for (const auto& rule : generate_rules(mined.itemsets, db.size(), {})) {
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    Itemset overlap;
    std::set_intersection(rule.antecedent.begin(), rule.antecedent.end(),
                          rule.consequent.begin(), rule.consequent.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty()) << to_string(rule);
  }
}

TEST(Generator, PaperStyleHighConfidenceRule) {
  // "95% of customers who buy X buy Y": B appears in every transaction
  // containing A (4 of 4) -> rule {A}=>{B} at confidence 1.0.
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  RuleOptions options;
  options.min_confidence = 0.99;
  const auto rules = generate_rules(mined.itemsets, db.size(), options);
  const bool found = std::any_of(rules.begin(), rules.end(),
                                 [](const Rule& r) {
                                   return r.antecedent == Itemset{1} &&
                                          r.consequent == Itemset{2};
                                 });
  EXPECT_TRUE(found);
}

TEST(Generator, MaxRulesCapRespected) {
  const auto db = plt::testing::paper_table1();
  const auto mined = core::mine(db, 2, core::Algorithm::kPltConditional);
  RuleOptions options;
  options.min_confidence = 0.0;
  options.max_rules = 3;
  EXPECT_EQ(generate_rules(mined.itemsets, db.size(), options).size(), 3u);
}

TEST(Generator, NoRulesFromSingletonsOnly) {
  core::FrequentItemsets frequent;
  frequent.add(Itemset{1}, 5);
  frequent.add(Itemset{2}, 4);
  EXPECT_TRUE(generate_rules(frequent, 10, {}).empty());
}

TEST(Generator, RuleRendering) {
  Rule rule;
  rule.antecedent = {1, 2};
  rule.consequent = {3};
  rule.metrics = compute_metrics(3, 4, 5, 10);
  const auto text = to_string(rule);
  EXPECT_NE(text.find("{1,2} => {3}"), std::string::npos);
  EXPECT_NE(text.find("conf=0.750"), std::string::npos);
}

}  // namespace
}  // namespace plt::rules
