// Shard-parallel mining across processes (S26): the coordinator must be
// provably a no-op relative to a single process. The differential suites
// fork real plt-shard workers (PLT_SHARD_BIN) over 1/2/4 shards and demand
// the merged emission stream byte-identical to one mine_from_blob walk —
// including after a failpoint kills every first-attempt worker mid-run and
// the relaunches resume from the rank-granular checkpoint logs, and after
// a hung worker is SIGKILLed on its MiningControl deadline. The wire
// formats (PLTM manifest, PLTS summary) get the usual adversarial
// treatment: corruption, truncation and structurally impossible contents
// must throw, never mislead a worker.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "datagen/dense.hpp"
#include "datagen/quest.hpp"
#include "shard/coordinator.hpp"
#include "shard/worker.hpp"
#include "test_support.hpp"

extern "C" char** environ;

namespace plt::shard {
namespace {

namespace fs = std::filesystem;

// The same fork/exec spawn the default launcher performs, reused by the
// custom-launcher tests that need to control the environment per attempt.
int spawn_with_env(const std::vector<std::string>& argv,
                   const std::vector<std::string>& extra_env) {
  std::vector<char*> argv_ptrs;
  for (const std::string& arg : argv)
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  argv_ptrs.push_back(nullptr);
  std::vector<char*> env_ptrs;
  for (char** e = environ; *e != nullptr; ++e) env_ptrs.push_back(*e);
  for (const std::string& entry : extra_env)
    env_ptrs.push_back(const_cast<char*>(entry.c_str()));
  env_ptrs.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execvpe(argv_ptrs[0], argv_ptrs.data(), env_ptrs.data());
    ::_exit(127);
  }
  return static_cast<int>(pid);
}

// A worker that never finishes: only SIGKILL (deadline or cancellation)
// can reap it.
int spawn_hanging() {
  const pid_t pid = ::fork();
  if (pid == 0)
    for (;;) ::pause();
  return static_cast<int>(pid);
}

// One emission as the sink saw it; order-sensitive comparison, so equality
// really is "same bytes in the same order".
using Emissions = std::vector<std::pair<Itemset, Count>>;

core::ItemsetSink collect_emissions(Emissions& out) {
  return [&out](std::span<const Item> items, Count support) {
    out.emplace_back(Itemset(items.begin(), items.end()), support);
  };
}

// The single-process reference: what mine_from_blob emits over the exact
// blob the coordinator wrote for this job.
Emissions single_process_reference(const std::string& dir) {
  const Manifest manifest =
      decode_manifest(compress::read_blob_file(manifest_path(dir)));
  // No frequent items: the job has zero shards and the single-process
  // reference is the empty sequence.
  if (manifest.max_rank == 0) return {};
  const auto blob = compress::read_blob_file(blob_path(dir));
  Emissions out;
  compress::mine_from_blob(blob, manifest.item_of, manifest.min_support,
                           collect_emissions(out));
  return out;
}

tdb::Database quest_db() {
  datagen::QuestConfig cfg;
  cfg.transactions = 300;
  cfg.items = 40;
  cfg.seed = 3;
  return datagen::generate_quest(cfg);
}

tdb::Database dense_db() {
  datagen::DenseConfig cfg;
  cfg.transactions = 200;
  cfg.items = 20;
  cfg.density = 0.3;
  cfg.seed = 5;
  return datagen::generate_dense(cfg);
}

class ShardTest : public ::testing::Test {
 protected:
  std::string job_dir(const char* name) {
    const std::string dir =
        (fs::path(::testing::TempDir()) / "shard" / name).string();
    fs::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  void TearDown() override {
    for (const std::string& dir : dirs_) fs::remove_all(dir);
  }

  ShardOptions options(const std::string& dir, std::size_t workers) {
    ShardOptions opts;
    opts.dir = dir;
    opts.workers = workers;
    opts.worker_binary = PLT_SHARD_BIN;
    return opts;
  }

  std::vector<std::string> dirs_;
};

// ---- shard splitting ----------------------------------------------------

TEST(ShardSplit, WindowsTileTheRankRange) {
  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    const auto specs = split_shards({}, 20, shards);
    ASSERT_EQ(specs.size(), shards);
    Rank expected_hi = 20;
    for (std::size_t k = 0; k < specs.size(); ++k) {
      EXPECT_EQ(specs[k].shard_id, k);
      EXPECT_EQ(specs[k].rank_hi, expected_hi);
      EXPECT_GE(specs[k].rank_hi, specs[k].rank_lo);
      EXPECT_GE(specs[k].rank_lo, 1u);
      expected_hi = specs[k].rank_lo - 1;
    }
    EXPECT_EQ(expected_hi, 0u);
  }
}

TEST(ShardSplit, MoreShardsThanRanksClampsToOnePerRank) {
  const auto specs = split_shards({}, 3, 10);
  ASSERT_EQ(specs.size(), 3u);
  for (const ShardSpec& spec : specs)
    EXPECT_EQ(spec.rank_lo, spec.rank_hi);
}

TEST(ShardSplit, BalancesByPartitionWeight) {
  // All the weight sits on the top two ranks: a 2-way split must give the
  // first shard a much narrower window than the uniform split would.
  std::vector<tdb::PartitionStats> stats(100);
  for (Rank j = 1; j <= 100; ++j) stats[j - 1].rank = j;
  stats[99].prefix_items = 5000;
  stats[98].prefix_items = 5000;
  const auto specs = split_shards(stats, 100, 2);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_LE(specs[0].rank_hi - specs[0].rank_lo, 5u);
}

TEST(ShardSplit, RejectsImpossibleRequests) {
  EXPECT_THROW((void)split_shards({}, 10, 0), std::invalid_argument);
  EXPECT_THROW((void)split_shards({}, 0, 2), std::invalid_argument);
}

// ---- wire formats -------------------------------------------------------

TEST(ShardWire, ManifestRoundTrips) {
  Manifest manifest;
  manifest.blob_crc = 0xDEADBEEF;
  manifest.min_support = 3;
  manifest.max_rank = 5;
  manifest.item_of = {10, 20, 30, 40, 50};
  manifest.partition_stats = tdb::compute_all_partition_stats(
      core::build_from_database(testing::paper_table1(), 2).view.db, 4);
  manifest.shards = split_shards({}, 5, 2);
  manifest.plan = "adaptive";

  const auto decoded = decode_manifest(encode_manifest(manifest));
  EXPECT_EQ(decoded.blob_crc, manifest.blob_crc);
  EXPECT_EQ(decoded.min_support, manifest.min_support);
  EXPECT_EQ(decoded.max_rank, manifest.max_rank);
  EXPECT_EQ(decoded.item_of, manifest.item_of);
  EXPECT_EQ(decoded.plan, manifest.plan);
  ASSERT_EQ(decoded.shards.size(), manifest.shards.size());
  for (std::size_t k = 0; k < decoded.shards.size(); ++k) {
    EXPECT_EQ(decoded.shards[k].rank_lo, manifest.shards[k].rank_lo);
    EXPECT_EQ(decoded.shards[k].rank_hi, manifest.shards[k].rank_hi);
  }
  ASSERT_EQ(decoded.partition_stats.size(), manifest.partition_stats.size());
  for (std::size_t i = 0; i < decoded.partition_stats.size(); ++i) {
    EXPECT_EQ(decoded.partition_stats[i].rank,
              manifest.partition_stats[i].rank);
    EXPECT_DOUBLE_EQ(decoded.partition_stats[i].density,
                     manifest.partition_stats[i].density);
    EXPECT_DOUBLE_EQ(decoded.partition_stats[i].support_gini,
                     manifest.partition_stats[i].support_gini);
  }
}

TEST(ShardWire, ManifestRejectsCorruptionAndGarbage) {
  Manifest manifest;
  manifest.max_rank = 4;
  manifest.min_support = 2;
  manifest.item_of = {1, 2, 3, 4};
  manifest.shards = split_shards({}, 4, 2);
  auto bytes = encode_manifest(manifest);

  EXPECT_NO_THROW((void)decode_manifest(bytes));
  auto flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x20;
  EXPECT_THROW((void)decode_manifest(flipped), std::runtime_error);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW((void)decode_manifest(truncated), std::runtime_error);

  const std::vector<std::uint8_t> garbage = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
  EXPECT_THROW((void)decode_manifest(garbage), std::runtime_error);
}

TEST(ShardWire, ManifestRejectsWindowsThatDoNotTile) {
  // Structural validation is independent of the CRC: well-checksummed
  // nonsense (a gap above rank 1, an overlap) must still throw.
  Manifest gap;
  gap.max_rank = 6;
  gap.item_of = {1, 2, 3, 4, 5, 6};
  gap.shards = {{0, 4, 6}, {1, 2, 3}};  // rank 1 uncovered
  EXPECT_THROW((void)decode_manifest(encode_manifest(gap)),
               std::runtime_error);

  Manifest overlap;
  overlap.max_rank = 6;
  overlap.item_of = {1, 2, 3, 4, 5, 6};
  overlap.shards = {{0, 1, 6}, {1, 1, 6}};
  EXPECT_THROW((void)decode_manifest(encode_manifest(overlap)),
               std::runtime_error);
}

TEST(ShardWire, SummaryRoundTripsAndRejectsCorruption) {
  ShardSummary summary;
  summary.shard_id = 2;
  summary.rank_lo = 5;
  summary.rank_hi = 9;
  summary.itemsets = 1234;
  summary.bytes_decoded = 56789;
  summary.checkpoint_records = 5;
  summary.resumed_ranks = 2;
  summary.warmed_ranks = 11;
  summary.wall_ns = 31415926;
  summary.trace_json = "{\"name\":\"trace\"}";

  const auto bytes = encode_summary(summary);
  const auto decoded = decode_summary(bytes);
  EXPECT_EQ(decoded.shard_id, summary.shard_id);
  EXPECT_EQ(decoded.rank_lo, summary.rank_lo);
  EXPECT_EQ(decoded.rank_hi, summary.rank_hi);
  EXPECT_EQ(decoded.itemsets, summary.itemsets);
  EXPECT_EQ(decoded.bytes_decoded, summary.bytes_decoded);
  EXPECT_EQ(decoded.checkpoint_records, summary.checkpoint_records);
  EXPECT_EQ(decoded.resumed_ranks, summary.resumed_ranks);
  EXPECT_EQ(decoded.warmed_ranks, summary.warmed_ranks);
  EXPECT_EQ(decoded.wall_ns, summary.wall_ns);
  EXPECT_EQ(decoded.trace_json, summary.trace_json);

  auto flipped = bytes;
  flipped[6] ^= 0x01;
  EXPECT_THROW((void)decode_summary(flipped), std::runtime_error);
}

// ---- differential: sharded == single-process ----------------------------

TEST_F(ShardTest, Table1ByteIdenticalAtEverySupportAndWorkerCount) {
  const auto db = testing::paper_table1();
  for (Count minsup = 1; minsup <= 6; ++minsup) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const std::string dir = job_dir(
          ("t1_s" + std::to_string(minsup) + "_w" + std::to_string(workers))
              .c_str());
      Emissions sharded;
      const auto status = mine_sharded(db, minsup,
                                       collect_emissions(sharded),
                                       options(dir, workers));
      ASSERT_EQ(status, core::MineStatus::kCompleted);
      EXPECT_EQ(sharded, single_process_reference(dir))
          << "minsup " << minsup << ", " << workers << " workers";
    }
  }
}

TEST_F(ShardTest, Table1AgreesWithInMemoryMiner) {
  const auto db = testing::paper_table1();
  for (Count minsup = 1; minsup <= 6; ++minsup) {
    const std::string dir =
        job_dir(("t1_mine_" + std::to_string(minsup)).c_str());
    core::FrequentItemsets sharded;
    ASSERT_EQ(mine_sharded(db, minsup, core::collect_into(sharded),
                           options(dir, 3)),
              core::MineStatus::kCompleted);
    testing::expect_same_itemsets(
        sharded,
        core::mine(db, minsup, core::Algorithm::kPltConditional).itemsets,
        "sharded vs core::mine");
  }
}

TEST_F(ShardTest, QuestSweepGeneratorByteIdentical) {
  const auto db = quest_db();
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const std::string dir =
        job_dir(("quest_w" + std::to_string(workers)).c_str());
    Emissions sharded;
    ShardReport report;
    ASSERT_EQ(mine_sharded(db, 3, collect_emissions(sharded),
                           options(dir, workers), &report),
              core::MineStatus::kCompleted);
    EXPECT_EQ(sharded, single_process_reference(dir));
    EXPECT_EQ(report.shards, workers);
    EXPECT_EQ(report.attempts, workers);
    EXPECT_EQ(report.relaunches, 0u);
    EXPECT_EQ(report.itemsets, sharded.size());
    EXPECT_EQ(report.shard_wall.count(), workers);
    ASSERT_EQ(report.summaries.size(), workers);
    for (const ShardSummary& summary : report.summaries)
      EXPECT_EQ(summary.resumed_ranks, 0u);
  }
}

TEST_F(ShardTest, DenseSweepGeneratorByteIdentical) {
  const auto db = dense_db();
  for (const std::size_t workers : {2u, 4u}) {
    const std::string dir =
        job_dir(("dense_w" + std::to_string(workers)).c_str());
    Emissions sharded;
    ASSERT_EQ(mine_sharded(db, 20, collect_emissions(sharded),
                           options(dir, workers)),
              core::MineStatus::kCompleted);
    EXPECT_EQ(sharded, single_process_reference(dir));
  }
}

TEST_F(ShardTest, AdaptivePlanShardsStayByteIdentical) {
  const auto db = quest_db();
  const std::string dir = job_dir("quest_adaptive");
  ShardOptions opts = options(dir, 3);
  opts.plan = "adaptive";
  Emissions sharded;
  ASSERT_EQ(mine_sharded(db, 3, collect_emissions(sharded), opts),
            core::MineStatus::kCompleted);
  EXPECT_EQ(sharded, single_process_reference(dir));
}

// ---- failure model ------------------------------------------------------

TEST_F(ShardTest, FailpointKilledWorkersResumeFromCheckpoints) {
  // Every shard's first attempt dies mid-window on an injected fault (the
  // worker process parses PLT_FAILPOINTS at first use); the relaunches run
  // clean, resume from the rank-granular logs, and the merged output must
  // still be byte-identical.
  const auto db = quest_db();
  const std::string dir = job_dir("quest_failpoint");
  ShardOptions opts = options(dir, 2);
  opts.extra_env_first_attempt = {"PLT_FAILPOINTS=ooc.rank=oneshot:5"};
  Emissions sharded;
  ShardReport report;
  ASSERT_EQ(mine_sharded(db, 3, collect_emissions(sharded), opts, &report),
            core::MineStatus::kCompleted);
  EXPECT_EQ(sharded, single_process_reference(dir));
  EXPECT_EQ(report.relaunches, 2u);
  EXPECT_EQ(report.attempts, 4u);
  // The relaunched workers really did resume: ranks replayed from the log,
  // not re-mined.
  std::uint64_t resumed = 0;
  for (const ShardSummary& summary : report.summaries)
    resumed += summary.resumed_ranks;
  EXPECT_GT(resumed, 0u);
}

TEST_F(ShardTest, RepeatedlyDyingShardExhaustsAttemptsAndFails) {
  const auto db = quest_db();
  const std::string dir = job_dir("quest_always_dies");
  ShardOptions opts = options(dir, 2);
  opts.max_launch_attempts = 2;
  // "always" keeps killing relaunches too — the job must give up, not spin.
  opts.launcher = [&](const std::vector<std::string>& argv,
                      const std::vector<std::string>&) {
    return spawn_with_env(argv, {"PLT_FAILPOINTS=ooc.rank=always"});
  };
  Emissions sharded;
  EXPECT_THROW((void)mine_sharded(db, 3, collect_emissions(sharded), opts),
               std::runtime_error);
}

TEST_F(ShardTest, HungWorkerIsKilledOnDeadlineAndRelaunched) {
  // The first launch hangs forever; the per-attempt MiningControl deadline
  // trips, the coordinator SIGKILLs it, and the relaunch completes.
  const auto db = testing::paper_table1();
  const std::string dir = job_dir("t1_hang");
  ShardOptions opts = options(dir, 2);
  opts.attempt_timeout = std::chrono::milliseconds(300);
  std::atomic<int> launches{0};
  opts.launcher = [&](const std::vector<std::string>& argv,
                      const std::vector<std::string>& env) {
    if (launches.fetch_add(1) == 0) return spawn_hanging();
    return spawn_with_env(argv, env);
  };
  Emissions sharded;
  ShardReport report;
  ASSERT_EQ(mine_sharded(db, 2, collect_emissions(sharded), opts, &report),
            core::MineStatus::kCompleted);
  EXPECT_EQ(sharded, single_process_reference(dir));
  EXPECT_GE(report.relaunches, 1u);
}

TEST_F(ShardTest, CallerCancellationKillsWorkersAndReturnsStatus) {
  const auto db = quest_db();
  const std::string dir = job_dir("quest_cancel");
  core::MiningControl control;
  control.request_cancel();
  ShardOptions opts = options(dir, 2);
  opts.control = &control;
  // Workers would hang forever; only the cancellation path can finish.
  opts.launcher = [&](const std::vector<std::string>&,
                      const std::vector<std::string>&) {
    return spawn_hanging();
  };
  Emissions sharded;
  EXPECT_EQ(mine_sharded(db, 3, collect_emissions(sharded), opts),
            core::MineStatus::kCancelled);
  EXPECT_TRUE(sharded.empty());
}

TEST_F(ShardTest, MergeRefusesMissingOrIncompleteLogs) {
  const auto db = quest_db();
  const std::string dir = job_dir("quest_merge_guard");
  Emissions sharded;
  ASSERT_EQ(mine_sharded(db, 3, collect_emissions(sharded),
                         options(dir, 2)),
            core::MineStatus::kCompleted);

  // Truncate shard 1's log: the torn record is dropped on read, the window
  // is incomplete, and the merge must refuse rather than emit a subset.
  const std::string log = checkpoint_path(dir, 1);
  fs::resize_file(log, fs::file_size(log) - 3);
  Emissions merged;
  EXPECT_THROW((void)merge_job(dir, collect_emissions(merged)),
               std::runtime_error);

  fs::remove(log);
  EXPECT_THROW((void)merge_job(dir, collect_emissions(merged)),
               std::runtime_error);
}

TEST_F(ShardTest, WorkerModeRejectsBadJobs) {
  // Library-level worker entry: bad directory and out-of-range shard ids
  // are ordinary failures (non-zero), not crashes.
  EXPECT_NE(run_worker("/nonexistent/shard/job", 0), 0);

  const auto db = testing::paper_table1();
  const std::string dir = job_dir("t1_badshard");
  ShardOptions opts = options(dir, 2);
  (void)prepare_job(db, 2, opts);
  EXPECT_NE(run_worker(dir, 99), 0);
}

TEST_F(ShardTest, PrepareValidatesOptions) {
  const auto db = testing::paper_table1();
  ShardOptions no_dir;
  EXPECT_THROW((void)prepare_job(db, 2, no_dir), std::invalid_argument);

  ShardOptions bad_plan = options(job_dir("t1_badplan"), 2);
  bad_plan.plan = "psychic";
  EXPECT_THROW((void)prepare_job(db, 2, bad_plan), std::invalid_argument);

  ShardOptions opts = options(job_dir("t1_run_nobin"), 2);
  const Manifest manifest = prepare_job(db, 2, opts);
  ShardOptions no_bin = opts;
  no_bin.worker_binary.clear();
  EXPECT_THROW((void)run_workers(manifest, no_bin), std::invalid_argument);
}

}  // namespace
}  // namespace plt::shard
