// Reproduces the paper's worked example step by step, printing every
// intermediate structure the paper draws: the Table 1 database, the §4.2
// rank assignment, the Figure 3 matrices structure, the Figure 4 database
// after top-down propagation, and the Figure 5 conditional database of D —
// then the final frequent itemsets from both mining approaches.
#include <iostream>

#include "core/builder.hpp"
#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "core/topdown.hpp"
#include "core/tree_view.hpp"
#include "tdb/io.hpp"

int main() {
  using namespace plt;
  constexpr Item A = 1, B = 2, C = 3, D = 4, E = 5, F = 6;
  const char* names = "?ABCDEF";

  const auto db = tdb::Database::from_transactions({
      {A, B, C}, {A, B, C}, {A, B, C, D}, {A, B, D, E}, {B, C, D},
      {C, D, F},
  });
  std::cout << "== Table 1: transactional database ==\n";
  for (std::size_t t = 0; t < db.size(); ++t) {
    std::cout << "  TID " << (t + 1) << ": ";
    for (const Item item : db[t]) std::cout << names[item];
    std::cout << '\n';
  }

  constexpr Count kMinSup = 2;
  const auto view = core::build_ranked_view(db, kMinSup);
  std::cout << "\n== Section 4.2: frequent items and ranks (minsup=2) ==\n";
  for (Rank r = 1; r <= view.alphabet(); ++r)
    std::cout << "  Rank(" << names[view.item_of(r)] << ") = " << r
              << "  (support " << view.support_of(r) << ")\n";
  std::cout << "  E and F are infrequent and filtered out.\n";

  std::cout << "\n== Figure 1: the lexicographic tree of {A,B,C,D} ==\n"
            << core::TreeView::full_lexicographic(4).to_string();

  const auto built = core::build_from_database(db, kMinSup);
  std::cout << "\n== Figure 3(a): the matrices (partition) structure ==\n"
            << built.plt.to_string();

  std::cout << "\n== Figure 3(b): the same data as a physical tree ==\n"
            << core::TreeView::from_plt(built.plt).to_string();

  std::cout << "\n== Figure 4: database after the top-down approach ==\n";
  const auto table =
      core::topdown_expand(view, core::TopDownVariant::kCanonical);
  std::cout << table.to_string();

  std::cout << "\n== Figure 5(a): D's conditional database ==\n";
  const auto cond = core::conditional_database(built.plt, /*j=*/4);
  for (const auto& [v, freq] : cond)
    std::cout << "  " << core::to_string(v) << " freq=" << freq << '\n';
  Count support_d = 0;
  for (const auto ref : built.plt.bucket(4))
    support_d += built.plt.entry(ref).freq;
  std::cout << "  support(D) = bucket mass = " << support_d << '\n';

  std::cout << "\n== Frequent itemsets at support 2 ==\n";
  const auto conditional =
      core::mine(db, kMinSup, core::Algorithm::kPltConditional);
  const auto topdown =
      core::mine(db, kMinSup, core::Algorithm::kPltTopDownSweep);
  std::cout << conditional.itemsets.to_string();
  std::cout << "conditional and top-down agree: "
            << core::FrequentItemsets::equal(conditional.itemsets,
                                             topdown.itemsets)
            << "  (13 itemsets; ACD and ABCD fall below the threshold)\n";
  return 0;
}
