// Market-basket analysis — the paper's §1 motivating scenario: mine a
// supermarket-style synthetic dataset, generate association rules, and print
// the highest-confidence rules ("95% of customers who buy X buy Y").
//
//   ./market_basket [--transactions N] [--minsup-frac F] [--minconf C]
#include <algorithm>
#include <iostream>

#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "harness/experiment.hpp"
#include "rules/generator.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);

  datagen::QuestConfig cfg;
  cfg.transactions =
      static_cast<std::size_t>(args.get_int("transactions", 20000));
  cfg.items = 500;
  cfg.avg_transaction_len = 9.0;
  cfg.avg_pattern_len = 4.0;
  cfg.seed = 2024;
  const auto db = datagen::generate_quest(cfg);
  std::cout << "== synthetic retail baskets ==\n"
            << tdb::to_string(tdb::compute_stats(db));

  const double minsup_frac = args.get_double("minsup-frac", 0.01);
  const Count minsup = harness::absolute_support(db, minsup_frac);
  std::cout << "\nmining at minsup " << minsup << " ("
            << minsup_frac * 100 << "% of baskets)\n";

  Timer timer;
  const auto result = core::mine(db, minsup, core::Algorithm::kPltConditional);
  std::cout << result.itemsets.size() << " frequent itemsets in "
            << format_duration(timer.seconds()) << " (max length "
            << result.itemsets.max_length() << ")\n";

  const auto levels = result.itemsets.level_counts();
  for (std::size_t k = 1; k < levels.size(); ++k)
    if (levels[k]) std::cout << "  " << levels[k] << " of size " << k << '\n';

  rules::RuleOptions options;
  options.min_confidence = args.get_double("minconf", 0.7);
  auto found = rules::generate_rules(result.itemsets, db.size(), options);
  std::cout << "\n" << found.size() << " rules at confidence >= "
            << options.min_confidence << "; strongest by lift:\n";
  std::sort(found.begin(), found.end(),
            [](const rules::Rule& a, const rules::Rule& b) {
              return a.metrics.lift > b.metrics.lift;
            });
  const std::size_t show = std::min<std::size_t>(found.size(), 15);
  for (std::size_t i = 0; i < show; ++i)
    std::cout << "  " << rules::to_string(found[i]) << '\n';

  return 0;
}
