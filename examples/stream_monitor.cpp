// Stream monitoring: a sliding window over live click-stream sessions,
// reporting the currently-hot page combinations as the traffic mix drifts —
// the "continuously growing database" setting of the paper's §1, served by
// the incremental PLT (one vector increment per arrival, one decrement per
// eviction).
//
//   ./stream_monitor [--sessions N] [--window W] [--minsup-frac F]
#include <iostream>

#include "core/stream.hpp"
#include "datagen/clickstream.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  const auto total =
      static_cast<std::size_t>(args.get_int("sessions", 50000));
  const auto window_size =
      static_cast<std::size_t>(args.get_int("window", 8000));
  const double minsup_frac = args.get_double("minsup-frac", 0.01);

  // Two traffic phases: the link graph is re-seeded halfway through, so the
  // popular page combinations change underneath the window.
  datagen::ClickstreamConfig phase;
  phase.sessions = total / 2;
  phase.pages = 300;
  phase.seed = 31;
  const auto phase1 = datagen::generate_clickstream(phase);
  phase.seed = 77;
  const auto phase2 = datagen::generate_clickstream(phase);

  core::SlidingWindowMiner window(window_size, 300);
  const auto minsup = std::max<Count>(
      2, static_cast<Count>(minsup_frac * static_cast<double>(window_size)));

  std::cout << "monitoring " << total << " sessions, window " << window_size
            << ", minsup " << minsup << " (" << minsup_frac * 100
            << "% of window)\n\n";

  Timer total_timer;
  std::size_t pushed = 0;
  const auto report = [&](const char* label) {
    const auto mined = window.mine(minsup);
    // Show the three most frequent multi-page sets.
    std::size_t best[3] = {0, 0, 0};
    Count best_support[3] = {0, 0, 0};
    for (std::size_t i = 0; i < mined.size(); ++i) {
      if (mined.itemset(i).size() < 2) continue;
      const Count s = mined.support(i);
      for (int slot = 0; slot < 3; ++slot) {
        if (s > best_support[slot]) {
          for (int k = 2; k > slot; --k) {
            best[k] = best[k - 1];
            best_support[k] = best_support[k - 1];
          }
          best[slot] = i;
          best_support[slot] = s;
          break;
        }
      }
    }
    std::cout << label << " @" << pushed << ": " << mined.size()
              << " frequent sets; hottest pairs+:";
    for (int slot = 0; slot < 3; ++slot) {
      if (best_support[slot] == 0) break;
      std::cout << " {";
      const auto items = mined.itemset(best[slot]);
      for (std::size_t j = 0; j < items.size(); ++j)
        std::cout << (j ? "," : "") << items[j];
      std::cout << "}x" << best_support[slot];
    }
    std::cout << '\n';
  };

  const auto feed = [&](const tdb::Database& source, const char* label) {
    for (std::size_t t = 0; t < source.size(); ++t) {
      window.push(source[t]);
      ++pushed;
      if (pushed % (total / 8) == 0) report(label);
    }
  };
  feed(phase1, "phase-1");
  feed(phase2, "phase-2");

  std::cout << "\nprocessed " << pushed << " sessions in "
            << format_duration(total_timer.seconds()) << " ("
            << static_cast<std::uint64_t>(
                   static_cast<double>(pushed) / total_timer.seconds())
            << " sessions/s incl. periodic mining), window memory "
            << format_bytes(window.memory_usage()) << '\n';
  return 0;
}
