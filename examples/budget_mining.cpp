// Execution-controlled mining: run the same workload under a wall-clock
// deadline, a memory budget, and explicit cancellation, and show how a
// budget-exceeded run degrades to the out-of-core blob path the
// degradation hint suggests.
//
//   ./budget_mining [--transactions N] [--minsup-frac F]
//                   [--deadline-ms MS] [--budget-bytes B]
#include <chrono>
#include <iostream>
#include <thread>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  using namespace std::chrono;
  const Args args(argc, argv);

  datagen::QuestConfig cfg;
  cfg.transactions =
      static_cast<std::size_t>(args.get_int("transactions", 4000));
  cfg.items = 120;
  cfg.seed = 7;
  const auto db = datagen::generate_quest(cfg);
  const auto minsup = static_cast<Count>(
      static_cast<double>(db.size()) * args.get_double("minsup-frac", 0.01));

  // 1. A deadline: the mine stops cooperatively when the clock runs out and
  //    returns whatever it had already emitted (a valid prefix).
  {
    const auto control = core::MiningControl::with_deadline(
        milliseconds(args.get_int("deadline-ms", 5)));
    core::MineOptions options;
    options.control = &control;
    const auto result =
        core::mine(db, minsup, core::Algorithm::kPltConditional, options);
    std::cout << "deadline run:   status=" << core::to_string(result.status)
              << ", itemsets=" << result.itemsets.size()
              << ", control checks=" << result.resilience.control_checks
              << "\n";
  }

  // 2. Cancellation from another thread: the handle is shared atomic state,
  //    so any thread may pull the plug mid-mine.
  {
    core::MiningControl control;
    std::thread canceller([&control] {
      std::this_thread::sleep_for(milliseconds(1));
      control.request_cancel();
    });
    core::MineOptions options;
    options.control = &control;
    const auto result =
        core::mine(db, minsup, core::Algorithm::kPltConditional, options);
    canceller.join();
    std::cout << "cancelled run:  status=" << core::to_string(result.status)
              << ", itemsets=" << result.itemsets.size() << "\n";
  }

  // 3. A memory budget: when the working set would exceed it, the mine
  //    stops with kBudgetExceeded and a hint pointing at the out-of-core
  //    path — which we then follow.
  {
    core::MiningControl control;
    control.set_memory_budget(
        static_cast<std::size_t>(args.get_int("budget-bytes", 4096)));
    core::MineOptions options;
    options.control = &control;
    const auto result =
        core::mine(db, minsup, core::Algorithm::kPltConditional, options);
    std::cout << "budgeted run:   status=" << core::to_string(result.status)
              << "\n";
    if (result.status == core::MineStatus::kBudgetExceeded) {
      std::cout << "  hint: " << result.degradation_hint << "\n";
      const auto built = core::build_from_database(db, minsup);
      const auto blob = compress::encode_plt(built.plt);
      std::vector<Item> item_of(built.view.alphabet());
      for (Rank r = 1; r <= built.view.alphabet(); ++r)
        item_of[r - 1] = built.view.item_of(r);
      core::FrequentItemsets mined;
      compress::OocStats stats;
      compress::mine_from_blob(blob, item_of, minsup,
                               core::collect_into(mined), &stats);
      std::cout << "  out-of-core fallback: " << mined.size()
                << " itemsets, peak overlay "
                << stats.peak_overlay_bytes << " bytes (blob "
                << blob.size() << " bytes)\n";
    }
  }

  // 4. Unlimited control for comparison: completes, and the resilience
  //    counters show what the checks cost (almost nothing).
  {
    core::MiningControl control;
    control.set_memory_budget(std::size_t{1} << 40);
    core::MineOptions options;
    options.control = &control;
    const auto result =
        core::mine(db, minsup, core::Algorithm::kPltConditional, options);
    std::cout << "unlimited run:  status=" << core::to_string(result.status)
              << ", itemsets=" << result.itemsets.size()
              << ", control checks=" << result.resilience.control_checks
              << "\n";
  }
  return 0;
}
