// Warehouse refresh: the nightly-batch scenario for incremental result
// maintenance. A large historical database has been mined once; each night
// a fresh batch of transactions arrives and the frequent-itemset report is
// refreshed with FUP — rescanning history only for the handful of itemsets
// the new batch promotes — and cross-checked against a full re-mine.
//
//   ./warehouse_refresh [--history N] [--batch N] [--nights K]
#include <iostream>

#include "core/fup.hpp"
#include "core/miner.hpp"
#include "datagen/quest.hpp"
#include "util/args.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  const auto history_size =
      static_cast<std::size_t>(args.get_int("history", 30000));
  const auto batch_size =
      static_cast<std::size_t>(args.get_int("batch", 1500));
  const auto nights = static_cast<std::size_t>(args.get_int("nights", 5));

  datagen::QuestConfig cfg;
  cfg.transactions = history_size;
  cfg.items = 400;
  cfg.seed = 100;
  tdb::Database history = datagen::generate_quest(cfg);

  const double fraction = 0.005;  // constant relative support
  Count minsup = static_cast<Count>(fraction *
                                    static_cast<double>(history.size()));
  std::cout << "initial mine over " << history.size()
            << " historical transactions (minsup " << minsup << ")\n";
  Timer initial_timer;
  auto frequent =
      core::mine(history, minsup, core::Algorithm::kPltConditional).itemsets;
  std::cout << "  " << frequent.size() << " itemsets in "
            << format_duration(initial_timer.seconds()) << "\n\n";

  for (std::size_t night = 1; night <= nights; ++night) {
    cfg.transactions = batch_size;
    cfg.seed = 100 + night;
    const auto batch = datagen::generate_quest(cfg);
    const Count new_minsup = static_cast<Count>(
        fraction * static_cast<double>(history.size() + batch.size()));

    Timer fup_timer;
    auto refreshed =
        core::fup_update(history, frequent, minsup, batch, new_minsup);
    const double fup_seconds = fup_timer.seconds();

    for (std::size_t t = 0; t < batch.size(); ++t) history.add(batch[t]);

    Timer remine_timer;
    auto remined =
        core::mine(history, new_minsup, core::Algorithm::kPltConditional)
            .itemsets;
    const double remine_seconds = remine_timer.seconds();

    const bool identical =
        core::FrequentItemsets::equal(refreshed.itemsets, remined);
    std::cout << "night " << night << ": +" << batch.size()
              << " transactions, minsup " << minsup << " -> " << new_minsup
              << "\n  FUP refresh: " << format_duration(fup_seconds)
              << " (rescanned " << refreshed.rescanned << " of "
              << refreshed.winner_candidates + refreshed.loser_candidates
              << " candidates over " << refreshed.old_db_passes
              << " history passes)\n  full re-mine: "
              << format_duration(remine_seconds) << "  identical="
              << (identical ? "yes" : "NO") << ", "
              << refreshed.itemsets.size() << " itemsets\n";

    frequent = std::move(refreshed.itemsets);
    minsup = new_minsup;
  }
  return 0;
}
