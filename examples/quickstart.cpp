// Quickstart: build a PLT over a small database, mine frequent itemsets with
// the conditional approach, query supports through positional subset
// checking, and serialize/reload the structure.
//
//   ./quickstart [--minsup N] [--file data.dat]
//
// Without --file it runs on the paper's Table 1 database.
#include <iostream>

#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "core/miner.hpp"
#include "core/subset_check.hpp"
#include "tdb/io.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);
  const auto minsup = static_cast<Count>(args.get_int("minsup", 2));

  // 1. Load (or inline) a transactional database.
  tdb::Database db;
  if (args.has("file")) {
    db = tdb::read_fimi_file(args.get("file", ""));
  } else {
    db = tdb::Database::from_rows({
        {1, 2, 3}, {1, 2, 3}, {1, 2, 3, 4}, {1, 2, 4, 5}, {2, 3, 4},
        {3, 4, 6},
    });
  }
  std::cout << "== dataset ==\n" << tdb::to_string(tdb::compute_stats(db));

  // 2. Build the PLT (Algorithm 1: rank frequent items, encode transactions
  //    as position vectors, partition by length).
  const auto built = core::build_from_database(db, minsup);
  std::cout << "\n== PLT structure (Figure 3 style) ==\n"
            << built.plt.to_string();

  // 3. Mine all frequent itemsets with the conditional approach
  //    (Algorithm 3) through the unified facade.
  const auto result = core::mine(db, minsup, core::Algorithm::kPltConditional);
  std::cout << "\n== frequent itemsets (minsup=" << minsup << ") ==\n"
            << result.itemsets.to_string();

  // 4. Ad-hoc support queries via positional subset checking (Lemma 4.1.1).
  const auto view = core::build_ranked_view(db, minsup);
  if (view.alphabet() >= 2) {
    const std::vector<Rank> query{1, 2};
    std::cout << "support of ranks {1,2} via subset scan: "
              << core::support_of(built.plt, query) << "\n";
  }

  // 5. Serialize, reload, verify.
  const auto blob = compress::encode_plt(built.plt);
  const auto reloaded = compress::decode_plt(blob);
  std::cout << "\nserialized PLT: " << blob.size() << " bytes ("
            << built.plt.num_vectors() << " vectors, reload ok="
            << (reloaded.num_vectors() == built.plt.num_vectors()) << ")\n";
  return 0;
}
