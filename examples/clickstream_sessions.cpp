// Web-session analysis — the paper's other §1 domain ("web page access
// habits"): mine frequently co-visited page sets from Markov click-stream
// sessions, compare the PLT conditional approach against FP-growth on this
// sparse workload, and mine one page's conditional world in isolation via
// the parallel partition decomposition.
//
//   ./clickstream_sessions [--sessions N] [--minsup-frac F] [--threads T]
#include <iostream>

#include "core/miner.hpp"
#include "datagen/clickstream.hpp"
#include "harness/experiment.hpp"
#include "parallel/partition_miner.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);

  datagen::ClickstreamConfig cfg;
  cfg.sessions = static_cast<std::size_t>(args.get_int("sessions", 30000));
  cfg.pages = 400;
  cfg.seed = 11;
  const auto db = datagen::generate_clickstream(cfg);
  std::cout << "== web sessions over a " << cfg.pages
            << "-page link graph ==\n"
            << tdb::to_string(tdb::compute_stats(db));

  const Count minsup =
      harness::absolute_support(db, args.get_double("minsup-frac", 0.005));
  std::cout << "\nmining co-visited page sets at minsup " << minsup << "\n\n";

  for (const auto algorithm : {core::Algorithm::kPltConditional,
                               core::Algorithm::kFpGrowth,
                               core::Algorithm::kEclat}) {
    const auto result = core::mine(db, minsup, algorithm);
    std::cout << "  " << core::algorithm_name(algorithm) << ": "
              << result.itemsets.size() << " itemsets, build "
              << format_duration(result.build_seconds) << ", mine "
              << format_duration(result.mine_seconds) << ", structure "
              << format_bytes(result.structure_bytes) << '\n';
  }

  // Partitioned mining: each page's conditional subproblem is independent
  // (the paper's §6 partition criteria) — run them on a thread pool.
  parallel::ParallelOptions options;
  options.threads = static_cast<std::size_t>(args.get_int("threads", 4));
  Timer timer;
  const auto partitioned = parallel::mine_parallel(db, minsup, options);
  std::cout << "\n  partitioned (" << options.threads << " threads): "
            << partitioned.itemsets.size() << " itemsets in "
            << format_duration(timer.seconds()) << '\n';

  auto sequential = core::mine(db, minsup, core::Algorithm::kPltConditional);
  std::cout << "  identical to sequential: "
            << core::FrequentItemsets::equal(partitioned.itemsets,
                                             sequential.itemsets)
            << '\n';
  return 0;
}
