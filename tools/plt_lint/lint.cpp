// Implementation of the plt_lint rule passes. Everything here is pure
// string processing over the classified source (no AST, no filesystem):
// lint_file(path, content, config) -> findings. See lint.hpp for the rule
// contract each pass enforces.
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

namespace plt::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when lines[line][pos..pos+word) is `word` with identifier
/// boundaries on both sides.
bool word_at(const std::string& line, std::size_t pos,
             const std::string& word) {
  if (line.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(line[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < line.size() && is_ident_char(line[end])) return false;
  return true;
}

/// All word-boundary occurrences of `word` on a code line, skipping
/// string-literal extents.
std::vector<std::size_t> find_words(const SourceText& text, std::size_t line,
                                    const std::string& word) {
  std::vector<std::size_t> hits;
  const std::string& s = text.lines[line];
  for (std::size_t pos = s.find(word); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    if (text.in_string[line][pos]) continue;
    if (word_at(s, pos, word)) hits.push_back(pos);
  }
  return hits;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return s.substr(b, e - b);
}

/// starts_with for a path prefix ("src/kernels/").
bool under(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool rule_enabled(const LintConfig& config, const char* rule) {
  return std::find(config.rules.begin(), config.rules.end(), rule) !=
         config.rules.end();
}

void add_finding(std::vector<Finding>& out, const SourceText& text,
                 const Suppressions& suppressions, const std::string& file,
                 std::size_t line_index, const char* rule,
                 std::string message) {
  const std::size_t line = line_index + 1;
  if (suppressions.allows(rule, line)) return;
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  f.snippet = trimmed(text.raw[line_index]);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Flattened character stream: rules that reason about scopes (function
// bodies, parameter lists) need to match parens/braces across physical
// lines. Chars keeps (line, col) for every retained code character.
// ---------------------------------------------------------------------------

struct Chars {
  std::string code;                ///< code chars, '\n' between lines
  std::vector<std::size_t> line;   ///< source line index per char
  std::vector<std::size_t> col;    ///< source column per char
  std::vector<char> in_string;     ///< inside string/char literal
};

Chars flatten(const SourceText& text) {
  Chars chars;
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& s = text.lines[l];
    for (std::size_t c = 0; c < s.size(); ++c) {
      chars.code.push_back(s[c]);
      chars.line.push_back(l);
      chars.col.push_back(c);
      chars.in_string.push_back(text.in_string[l][c]);
    }
    chars.code.push_back('\n');
    chars.line.push_back(l);
    chars.col.push_back(s.size());
    chars.in_string.push_back(0);
  }
  return chars;
}

bool stream_word_at(const Chars& chars, std::size_t pos,
                    const std::string& word) {
  if (chars.in_string[pos]) return false;
  if (chars.code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(chars.code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < chars.code.size() && is_ident_char(chars.code[end]))
    return false;
  return true;
}

/// Index of the char that closes the bracket opened at `open` ('(', '{'
/// or '['), or npos when unbalanced. Skips string-literal chars.
std::size_t matching_close(const Chars& chars, std::size_t open) {
  const char open_char = chars.code[open];
  const char close_char =
      open_char == '(' ? ')' : (open_char == '[' ? ']' : '}');
  int depth = 0;
  for (std::size_t i = open; i < chars.code.size(); ++i) {
    if (chars.in_string[i]) continue;
    if (chars.code[i] == open_char) ++depth;
    if (chars.code[i] == close_char && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Next non-whitespace code char index at/after `pos` (npos at EOF).
std::size_t skip_space(const Chars& chars, std::size_t pos) {
  while (pos < chars.code.size() &&
         std::isspace(static_cast<unsigned char>(chars.code[pos])) != 0)
    ++pos;
  return pos < chars.code.size() ? pos : std::string::npos;
}

/// Word-boundary search for `word` in the flattened stream, starting at
/// `from`, outside string literals.
std::size_t find_stream_word(const Chars& chars, const std::string& word,
                             std::size_t from) {
  for (std::size_t pos = chars.code.find(word, from);
       pos != std::string::npos; pos = chars.code.find(word, pos + 1))
    if (stream_word_at(chars, pos, word)) return pos;
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Per-function flow walker (DESIGN.md S28).
//
// The flow-sensitive rules (taint-bounds, syscall-check, typed-status)
// share this layer: function bodies are discovered over the flattened
// stream (identifier + parameter list + braced body, the same shape
// assert-untrusted-index matches), and position in the stream stands in
// for control flow — "checked before used" means "the check appears
// earlier in the body". That over-approximates sanitization (a check on
// any path counts) but never reorders taint, check and use, which is the
// property the rules need. Deliberately token-level: no AST, the same
// zero-dependency tradeoff as the rest of the linter.
// ---------------------------------------------------------------------------

/// Last non-whitespace code char strictly before `pos` (npos at BOF).
std::size_t prev_nonspace(const Chars& chars, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(chars.code[pos])) == 0)
      return pos;
  }
  return std::string::npos;
}

/// Keywords (and flow-control words) that can precede a '(' without being
/// a function name, and that never name a data value.
bool is_cpp_keyword(const std::string& name) {
  static const char* const words[] = {
      "alignas",  "alignof",   "auto",           "bool",
      "break",    "case",      "catch",          "char",
      "class",    "const",     "constexpr",      "const_cast",
      "continue", "decltype",  "default",        "delete",
      "do",       "double",    "dynamic_cast",   "else",
      "enum",     "explicit",  "extern",         "false",
      "final",    "float",     "for",            "friend",
      "goto",     "if",        "inline",         "int",
      "long",     "mutable",   "namespace",      "new",
      "noexcept", "nullptr",   "operator",       "override",
      "private",  "protected", "public",         "reinterpret_cast",
      "return",   "short",     "signed",         "sizeof",
      "static",   "static_assert",               "static_cast",
      "struct",   "switch",    "template",       "this",
      "throw",    "true",      "try",            "typedef",
      "typename", "union",     "unsigned",       "using",
      "virtual",  "void",      "volatile",       "while",
  };
  for (const char* w : words)
    if (name == w) return true;
  return false;
}

/// Given the ')' closing a parameter list, the '{' opening the attached
/// body (skipping specifier words like const/noexcept/override), or npos
/// when what follows is not a braced body (a call, a declaration, ...).
std::size_t find_body_open(const Chars& chars, std::size_t params_close) {
  for (std::size_t j = params_close + 1; j < chars.code.size(); ++j) {
    if (chars.in_string[j]) continue;
    const char c = chars.code[j];
    if (c == '{') return j;
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    if (is_ident_char(c)) continue;  // const / noexcept / override
    return std::string::npos;        // ';' ',' ')' '=' ... — not a body
  }
  return std::string::npos;
}

/// Position of the '(' opening a call's argument list after an identifier
/// ending at `ident_end`, looking through an explicit template argument
/// list (`std::min<std::size_t>(...)`); npos when no call follows.
std::size_t call_open(const Chars& chars, std::size_t ident_end) {
  std::size_t pos = skip_space(chars, ident_end);
  if (pos == std::string::npos) return std::string::npos;
  if (chars.code[pos] == '<') {
    int depth = 0;
    for (; pos < chars.code.size(); ++pos) {
      if (chars.in_string[pos]) continue;
      if (chars.code[pos] == '<') ++depth;
      if (chars.code[pos] == '>' && --depth == 0) break;
    }
    if (pos >= chars.code.size()) return std::string::npos;
    pos = skip_space(chars, pos + 1);
    if (pos == std::string::npos) return std::string::npos;
  }
  return chars.code[pos] == '(' ? pos : std::string::npos;
}

/// One function definition's extent in the stream.
struct FlowFunction {
  std::string name;
  std::size_t body_open = 0;   ///< index of the '{'
  std::size_t body_close = 0;  ///< index of the matching '}'
};

/// Every function definition in the stream. Lambdas and constructors with
/// initializer lists don't match the shape and simply fall outside
/// per-function analysis; nested matches (macro-then-brace) re-scan a
/// sub-range, which callers dedup by (line, subject).
std::vector<FlowFunction> find_flow_functions(const Chars& chars) {
  std::vector<FlowFunction> fns;
  const std::string& code = chars.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (chars.in_string[i] || !is_ident_char(code[i])) continue;
    if (i > 0 && is_ident_char(code[i - 1])) continue;  // mid-identifier
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    i = end - 1;
    if (is_cpp_keyword(name)) continue;
    const std::size_t open = skip_space(chars, end);
    if (open == std::string::npos || code[open] != '(') continue;
    const std::size_t params_close = matching_close(chars, open);
    if (params_close == std::string::npos) continue;
    const std::size_t body_open = find_body_open(chars, params_close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;
    FlowFunction fn;
    fn.name = name;
    fn.body_open = body_open;
    fn.body_close = body_close;
    fns.push_back(std::move(fn));
  }
  return fns;
}

/// A bracketed argument/condition extent in the stream: [begin, end).
struct Extent {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool contains(std::size_t pos) const { return pos >= begin && pos < end; }
};

bool in_any(const std::vector<Extent>& extents, std::size_t pos) {
  for (const Extent& e : extents)
    if (e.contains(pos)) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Rule: kernel-purity
// ---------------------------------------------------------------------------

/// Tokens a kernel implementation file must not contain. The word list is
/// deliberately literal: kernels are leaf loops over raw pointers, so any
/// of these names appearing at all is a contract break worth a look (and an
/// explicit allow() when intentional, as in the dispatcher).
const char* const kKernelBanned[] = {
    "new",    "delete", "malloc",  "calloc", "realloc", "free",
    "throw",  "printf", "fprintf", "cout",   "cerr",    "fopen",
    "fwrite", "fread",  "vector",  "string", "getenv",  "abort",
};

void check_kernel_purity(const SourceText& text,
                         const Suppressions& suppressions,
                         const std::string& file,
                         std::vector<Finding>& out) {
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;  // preprocessor
    for (const char* banned : kKernelBanned) {
      if (find_words(text, l, banned).empty()) continue;
      add_finding(out, text, suppressions, file, l, "kernel-purity",
                  std::string("kernel code must not use '") + banned +
                      "' (kernels never allocate, throw, or do IO)");
      break;  // one finding per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: control-coverage
// ---------------------------------------------------------------------------

/// Finds `MiningControl` parameter bindings: `MiningControl* name` /
/// `MiningControl& name` (const or not) inside a parameter list whose
/// function has a body, then requires the name (or a control-forwarding
/// call) to appear between the binding and the body's closing brace.
void check_control_coverage(const Chars& chars, const SourceText& text,
                            const Suppressions& suppressions,
                            const std::string& file,
                            std::vector<Finding>& out) {
  std::vector<std::size_t> reported_bodies;
  for (std::size_t pos = find_stream_word(chars, "MiningControl", 0);
       pos != std::string::npos;
       pos = find_stream_word(chars, "MiningControl", pos + 1)) {
    // Skip declarations of the type itself and qualified uses
    // (MiningControl::..., class MiningControl, friend ...).
    std::size_t after = skip_space(chars, pos + 13);
    if (after == std::string::npos) continue;
    if (chars.code.compare(after, 2, "::") == 0) continue;
    {
      // Look back for class/struct/friend/enum introducing the name.
      std::size_t back = pos;
      while (back > 0 && std::isspace(static_cast<unsigned char>(
                             chars.code[back - 1])) != 0)
        --back;
      std::size_t word_end = back;
      while (back > 0 && is_ident_char(chars.code[back - 1])) --back;
      const std::string prev = chars.code.substr(back, word_end - back);
      if (prev == "class" || prev == "struct" || prev == "friend" ||
          prev == "enum")
        continue;
    }
    // Require a pointer/reference declarator then an identifier:
    // `const MiningControl* control` (const already consumed by the word
    // scan landing on MiningControl).
    if (chars.code[after] != '*' && chars.code[after] != '&') continue;
    std::size_t name_begin = skip_space(chars, after + 1);
    if (name_begin == std::string::npos) continue;
    if (chars.code[name_begin] == 'c' &&
        stream_word_at(chars, name_begin, "const"))
      name_begin = skip_space(chars, name_begin + 5);
    if (name_begin == std::string::npos ||
        !is_ident_char(chars.code[name_begin]))
      continue;
    std::size_t name_end = name_begin;
    while (name_end < chars.code.size() &&
           is_ident_char(chars.code[name_end]))
      ++name_end;
    const std::string name =
        chars.code.substr(name_begin, name_end - name_begin);

    // A parameter binding sits inside a '(...)' group; find the close of
    // the group we are in by scanning forward at depth 0.
    int depth = 0;
    std::size_t params_close = std::string::npos;
    for (std::size_t i = name_end; i < chars.code.size(); ++i) {
      if (chars.in_string[i]) continue;
      const char c = chars.code[i];
      if (c == '(') ++depth;
      if (c == ')') {
        if (depth == 0) {
          params_close = i;
          break;
        }
        --depth;
      }
      if (c == ';' || c == '{') break;  // not a parameter after all
    }
    if (params_close == std::string::npos) continue;

    // Definition (body) vs declaration: after the ')' skip specifiers
    // (const, noexcept, override, trailing commas of an initializer list)
    // until '{' or ';'. An initializer list (': member(...)') still ends at
    // the body '{'.
    std::size_t body_open = std::string::npos;
    int paren_depth = 0;
    for (std::size_t i = params_close + 1; i < chars.code.size(); ++i) {
      if (chars.in_string[i]) continue;
      const char c = chars.code[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) continue;
      if (c == '{') {
        body_open = i;
        break;
      }
      if (c == ';' || c == '=') break;  // declaration / default argument
    }
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;
    if (std::find(reported_bodies.begin(), reported_bodies.end(),
                  body_open) != reported_bodies.end())
      continue;

    // Search range: from past the parameter name through the body close —
    // constructor initializer lists (`: control_(c)`) count as uses.
    bool used = false;
    for (std::size_t i = name_end; i <= body_close; ++i)
      if (stream_word_at(chars, i, name)) {
        used = true;
        break;
      }
    if (!used) {
      reported_bodies.push_back(body_open);
      add_finding(out, text, suppressions, file, chars.line[pos],
                  "control-coverage",
                  "MiningControl parameter '" + name +
                      "' is bound but never consulted or forwarded "
                      "(cancellation would be silently lost)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: assert-untrusted-index
// ---------------------------------------------------------------------------

/// True when the identifier names a decode/read/parse-style function over
/// untrusted bytes. "thread"/"spread"/"already" style words that merely
/// contain "read" are excluded by requiring the stem at a word start.
bool is_untrusted_fn_name(const std::string& name) {
  const char* const stems[] = {"decode", "parse", "read", "get_varint"};
  for (const char* stem : stems) {
    const std::size_t at = name.find(stem);
    if (at == std::string::npos) continue;
    // stem must start the identifier or follow '_' (read_blob, do_decode).
    if (at == 0 || name[at - 1] == '_') return true;
  }
  return false;
}

void check_assert_untrusted_index(const Chars& chars, const SourceText& text,
                                  const Suppressions& suppressions,
                                  const std::string& file,
                                  std::vector<Finding>& out) {
  const std::string& code = chars.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (chars.in_string[i] || !is_ident_char(code[i])) continue;
    if (i > 0 && is_ident_char(code[i - 1])) continue;  // mid-identifier
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    const std::size_t name_line = chars.line[i];
    i = end - 1;
    if (!is_untrusted_fn_name(name)) continue;

    // Function definition: identifier, '(' ... ')', then '{' (possibly
    // through specifiers). Calls end at ';' or ',' first.
    const std::size_t open = skip_space(chars, end);
    if (open == std::string::npos || code[open] != '(') continue;
    const std::size_t params_close = matching_close(chars, open);
    if (params_close == std::string::npos) continue;
    const std::size_t body_open = find_body_open(chars, params_close);
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;

    // Scan the body: does it subscript, and does it guard?
    bool subscripts = false;
    bool guarded = false;
    for (std::size_t j = body_open; j <= body_close; ++j) {
      if (chars.in_string[j]) continue;
      if (code[j] == '[') {
        // subscript = '[' whose previous non-space char ends an expression
        // (identifier, ')', ']'); excludes lambda captures & array decls.
        std::size_t back = j;
        while (back > body_open &&
               std::isspace(static_cast<unsigned char>(code[back - 1])) != 0)
          --back;
        if (back > body_open) {
          const char prev = code[back - 1];
          if (is_ident_char(prev) || prev == ')' || prev == ']') {
            // `buffer[1 << 16]` declarations: identifier directly after a
            // type word is still caught here; rely on guards/allow() for
            // those rare cases — but skip `operator[]`.
            if (!(back >= 8 + body_open &&
                  code.compare(back - 8, 8, "operator") == 0))
              subscripts = true;
          }
        }
      }
      if (stream_word_at(chars, j, "PLT_ASSERT") ||
          stream_word_at(chars, j, "throw") ||
          stream_word_at(chars, j, "catch") ||
          stream_word_at(chars, j, "fail") ||  // blob_format's thrower
          stream_word_at(chars, j, "at"))
        guarded = true;
    }
    if (subscripts && !guarded)
      add_finding(out, text, suppressions, file, name_line,
                  "assert-untrusted-index",
                  "'" + name +
                      "' subscripts decoded data without a PLT_ASSERT or "
                      "bounds throw (untrusted-input contract)");
  }
}

// ---------------------------------------------------------------------------
// Rule: span-registry
// ---------------------------------------------------------------------------

/// Extracts the (skip+1)-th string literal inside the call whose '(' sits
/// at (line, open). Stops at the call's matching ')', so a missing literal
/// never picks one up from unrelated code further down.
bool first_string_literal(const SourceText& text, std::size_t line,
                          std::size_t open, std::string& literal,
                          std::size_t skip_literals = 0) {
  std::size_t found = 0;
  int depth = 0;
  for (std::size_t l = line; l < text.lines.size(); ++l) {
    const std::string& s = text.lines[l];
    for (std::size_t c = (l == line ? open : 0); c < s.size(); ++c) {
      if (!text.in_string[l][c]) {
        if (s[c] == '(') ++depth;
        if (s[c] == ')' && --depth == 0) return false;  // call ended
        continue;
      }
      // Opening quote: an in-string '"' whose predecessor is outside.
      if (s[c] == '"' && (c == 0 || !text.in_string[l][c - 1])) {
        std::string value;
        std::size_t j = c + 1;
        while (j < s.size() &&
               !(s[j] == '"' &&
                 (j + 1 >= s.size() || !text.in_string[l][j + 1])))
          value.push_back(s[j++]);
        if (found == skip_literals) {
          literal = value;
          return true;
        }
        ++found;
        c = j;
      }
    }
  }
  return false;
}

void check_span_registry(const SourceText& text,
                         const Suppressions& suppressions,
                         const std::string& file, const LintConfig& config,
                         std::vector<Finding>& out) {
  struct Site {
    const char* token;
    bool counter;     ///< checks kCounters instead of kSpans
    std::size_t arg;  ///< which string literal is the name
  };
  const Site sites[] = {
      {"PLT_SPAN", false, 0},
      {"PLT_TRACE_COUNT", true, 0},
  };
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;  // macro definitions
    for (const Site& site : sites) {
      for (const std::size_t pos : find_words(text, l, site.token)) {
        const std::size_t open = line.find('(', pos);
        if (open == std::string::npos) continue;
        std::string name;
        if (!first_string_literal(text, l, open, name)) {
          add_finding(out, text, suppressions, file, l, "span-registry",
                      std::string(site.token) +
                          " name must be a string literal "
                          "(registry check is impossible otherwise)");
          continue;
        }
        const auto& registry =
            site.counter ? config.registry_counters : config.registry_spans;
        if (std::find(registry.begin(), registry.end(), name) ==
            registry.end())
          add_finding(out, text, suppressions, file, l, "span-registry",
                      "'" + name + "' is not registered in " +
                          "src/obs/span_names.hpp (" +
                          (site.counter ? "kCounters" : "kSpans") + ")");
      }
    }
    // obs::count_kernel("calls-name", "bytes-name", n): both literals are
    // counter names.
    for (const std::size_t pos : find_words(text, l, "count_kernel")) {
      const std::size_t open = line.find('(', pos);
      if (open == std::string::npos) continue;
      for (std::size_t arg = 0; arg < 2; ++arg) {
        std::string name;
        if (!first_string_literal(text, l, open, name, arg)) break;
        if (std::find(config.registry_counters.begin(),
                      config.registry_counters.end(),
                      name) == config.registry_counters.end())
          add_finding(out, text, suppressions, file, l, "span-registry",
                      "'" + name + "' is not registered in "
                                   "src/obs/span_names.hpp (kCounters)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-banned-apis
// ---------------------------------------------------------------------------

void check_no_banned_apis(const SourceText& text,
                          const Suppressions& suppressions,
                          const std::string& file,
                          std::vector<Finding>& out) {
  const char* const banned_words[] = {"rand", "srand", "strtok", "gets"};
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;
    for (const char* word : banned_words) {
      if (find_words(text, l, word).empty()) continue;
      add_finding(out, text, suppressions, file, l, "no-banned-apis",
                  std::string("'") + word +
                      "' is banned (non-deterministic / unsafe C API; use "
                      "util/ facilities)");
    }
    if (line.find("std::regex") != std::string::npos &&
        !text.in_string[l][line.find("std::regex")])
      add_finding(out, text, suppressions, file, l, "no-banned-apis",
                  "std::regex is banned (catastrophic worst cases; write a "
                  "scanner)");
    // Raw new: `new Type`, `new Type[...]`. Placement new and
    // make_unique/make_shared do not match the word.
    for (const std::size_t pos : find_words(text, l, "new")) {
      std::size_t after = pos + 3;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0)
        ++after;
      if (after < line.size() &&
          (is_ident_char(line[after]) || line[after] == '('))
        add_finding(out, text, suppressions, file, l, "no-banned-apis",
                    "raw 'new' is banned (use std::make_unique / "
                    "containers)");
    }
    for (const std::size_t pos : find_words(text, l, "delete")) {
      // `= delete` declarations are fine; `delete p` is not.
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(line[before - 1])) != 0)
        --before;
      if (before > 0 && line[before - 1] == '=') continue;
      std::size_t after = pos + 6;
      if (after < line.size() && line[after] == '[') after += 2;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0)
        ++after;
      if (after < line.size() && (is_ident_char(line[after])))
        add_finding(out, text, suppressions, file, l, "no-banned-apis",
                    "raw 'delete' is banned (let unique_ptr own it)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: taint-bounds
// ---------------------------------------------------------------------------
//
// Flow-sensitive upgrade of assert-untrusted-index. Inside each function,
// a value produced by a decode/parse/read/get_varint-style call — or
// filled in as an out-parameter of one, the Reader-accessor idiom — is
// tainted. Using a tainted value as a subscript or as a length argument
// (resize/reserve/subspan/substr/assign/memcpy/...) before any bounds
// check (PLT_ASSERT, a branch condition, std::min/max/clamp, a direct
// comparison, .at()) is a finding. Order is stream order per the walker's
// contract above.

/// Does `name`, called with `prev` as the char before it, produce
/// untrusted data?
bool is_taint_source(const std::string& name, char prev) {
  if (is_untrusted_fn_name(name)) return true;
  // Reader-style accessors fill their out-parameter from the wire:
  // `reader.u16(count)` taints count.
  if (prev == '.' &&
      (name == "u8" || name == "u16" || name == "u32" || name == "u64"))
    return true;
  return false;
}

/// Words whose parenthesised extent counts as inspecting a value.
bool is_check_word(const std::string& name) {
  return name == "if" || name == "while" || name == "for" ||
         name == "PLT_ASSERT" || name == "assert" || name == "min" ||
         name == "max" || name == "clamp" || name == "at";
}

/// Calls whose arguments are lengths/counts — a tainted value here sizes
/// a buffer or a copy, which is as dangerous as a raw subscript.
bool is_length_sink(const std::string& name) {
  return name == "resize" || name == "reserve" || name == "subspan" ||
         name == "substr" || name == "assign" || name == "memcpy" ||
         name == "memmove" || name == "memset" || name == "advance";
}

void check_taint_bounds(const Chars& chars, const SourceText& text,
                        const Suppressions& suppressions,
                        const std::string& file, std::vector<Finding>& out) {
  const std::string& code = chars.code;
  std::set<std::pair<std::size_t, std::string>> reported;
  for (const FlowFunction& fn : find_flow_functions(chars)) {
    // Pass A: collect the bracket extents that give identifiers meaning —
    // taint-source argument lists, check extents, index/length extents —
    // plus assignment targets of taint-source calls.
    std::vector<Extent> source_args;
    std::vector<Extent> check_args;
    std::vector<Extent> index_args;
    struct Event {
      std::size_t pos;
      int kind;  ///< 0 taint, 1 sanitize, 2 use — tie-break order at a pos
      std::string name;
    };
    std::vector<Event> events;
    for (std::size_t i = fn.body_open; i <= fn.body_close; ++i) {
      if (chars.in_string[i]) continue;
      const char c = code[i];
      if (c == '[') {
        // Subscript: '[' whose previous non-space char ends an expression
        // (identifier, ')', ']'); excludes lambda captures & attributes.
        const std::size_t back = prev_nonspace(chars, i);
        if (back == std::string::npos || back < fn.body_open) continue;
        const char prev = code[back];
        if (!(is_ident_char(prev) || prev == ')' || prev == ']')) continue;
        const std::size_t close = matching_close(chars, i);
        if (close == std::string::npos || close > fn.body_close) continue;
        index_args.push_back({i + 1, close});
        continue;
      }
      if (!is_ident_char(c)) continue;
      if (i > 0 && is_ident_char(code[i - 1])) continue;
      std::size_t end = i;
      while (end < code.size() && is_ident_char(code[end])) ++end;
      const std::string name = code.substr(i, end - i);
      const std::size_t name_pos = i;
      i = end - 1;
      const std::size_t open = call_open(chars, end);
      if (open == std::string::npos) continue;
      const std::size_t close = matching_close(chars, open);
      if (close == std::string::npos || close > fn.body_close) continue;
      const std::size_t bp = prev_nonspace(chars, name_pos);
      const char prev = bp == std::string::npos ? '\0' : code[bp];
      if (is_check_word(name)) {
        check_args.push_back({open + 1, close});
      } else if (is_length_sink(name)) {
        // For the mem* trio only the final argument is the length; the
        // pointer arguments are not sizes and must not count as uses.
        std::size_t begin = open + 1;
        if (name == "memcpy" || name == "memmove" || name == "memset") {
          int depth = 0;
          for (std::size_t j = open; j < close; ++j) {
            if (chars.in_string[j]) continue;
            const char cj = code[j];
            if (cj == '(' || cj == '[' || cj == '{') ++depth;
            if (cj == ')' || cj == ']' || cj == '}') --depth;
            if (cj == ',' && depth == 1) begin = j + 1;
          }
        }
        index_args.push_back({begin, close});
      } else if (is_taint_source(name, prev)) {
        source_args.push_back({open + 1, close});
        // `len = decode_u32(p)` / `n = reader.u32(...)`: the assignment
        // target is tainted too. Walk back over the object expression
        // (reader. / obj->field:: chains) to the head, then look for '='.
        std::size_t head = name_pos;
        while (true) {
          const std::size_t q = prev_nonspace(chars, head);
          if (q == std::string::npos || q < fn.body_open) break;
          std::size_t sep;
          if (code[q] == '.') {
            sep = q;
          } else if (q > fn.body_open && code[q] == '>' &&
                     code[q - 1] == '-') {
            sep = q - 1;
          } else if (q > fn.body_open && code[q] == ':' &&
                     code[q - 1] == ':') {
            sep = q - 1;
          } else {
            break;
          }
          const std::size_t r = prev_nonspace(chars, sep);
          if (r == std::string::npos || !is_ident_char(code[r])) break;
          std::size_t s = r;
          while (s > fn.body_open && is_ident_char(code[s - 1])) --s;
          head = s;
        }
        const std::size_t eq = prev_nonspace(chars, head);
        if (eq != std::string::npos && eq >= fn.body_open &&
            code[eq] == '=' &&
            (eq == 0 || (code[eq - 1] != '=' && code[eq - 1] != '!' &&
                         code[eq - 1] != '<' && code[eq - 1] != '>'))) {
          const std::size_t t = prev_nonspace(chars, eq);
          if (t != std::string::npos && is_ident_char(code[t])) {
            std::size_t s = t;
            while (s > fn.body_open && is_ident_char(code[s - 1])) --s;
            events.push_back({name_pos, 0, code.substr(s, t + 1 - s)});
          }
        }
      }
    }

    // Pass B: classify each standalone value identifier by the extents it
    // sits in. Source-call arguments win over check extents (the check
    // there is on the call's return, not the value's bounds).
    for (std::size_t i = fn.body_open; i <= fn.body_close; ++i) {
      if (chars.in_string[i] || !is_ident_char(code[i])) continue;
      if (i > 0 && is_ident_char(code[i - 1])) continue;
      std::size_t end = i;
      while (end < code.size() && is_ident_char(code[end])) ++end;
      const std::string name = code.substr(i, end - i);
      const std::size_t pos = i;
      i = end - 1;
      if (std::isdigit(static_cast<unsigned char>(code[pos])) != 0) continue;
      if (is_cpp_keyword(name) || is_check_word(name)) continue;
      // Member accesses / qualified names track a different value; names
      // followed by a call or an access are functions or objects, not the
      // scalar the rule reasons about.
      const std::size_t bp = prev_nonspace(chars, pos);
      if (bp != std::string::npos) {
        const char pc = code[bp];
        if (pc == '.' || (pc == '>' && bp > 0 && code[bp - 1] == '-') ||
            (pc == ':' && bp > 0 && code[bp - 1] == ':'))
          continue;
      }
      const std::size_t np = skip_space(chars, end);
      if (np != std::string::npos) {
        const char nc = code[np];
        if (nc == '(' || nc == '.' ||
            (nc == '-' && np + 1 < code.size() && code[np + 1] == '>') ||
            (nc == ':' && np + 1 < code.size() && code[np + 1] == ':'))
          continue;
      }
      if (in_any(source_args, pos)) {
        events.push_back({pos, 0, name});
        continue;
      }
      if (in_any(check_args, pos)) {
        events.push_back({pos, 1, name});
        continue;
      }
      // A direct comparison (or modulo wrap) outside a branch also counts
      // as inspecting the value: `ok = len <= cap;`, `idx % size`.
      bool compared = false;
      if (bp != std::string::npos) {
        const char pc = code[bp];
        if (pc == '<' || pc == '>' || pc == '%') compared = true;
        if (pc == '=' && bp > 0 &&
            (code[bp - 1] == '=' || code[bp - 1] == '!' ||
             code[bp - 1] == '<' || code[bp - 1] == '>'))
          compared = true;
      }
      if (np != std::string::npos) {
        const char nc = code[np];
        if (nc == '<' || nc == '>' || nc == '%') compared = true;
        if ((nc == '=' || nc == '!') && np + 1 < code.size() &&
            code[np + 1] == '=')
          compared = true;
      }
      if (compared) {
        events.push_back({pos, 1, name});
        continue;
      }
      if (in_any(index_args, pos)) events.push_back({pos, 2, name});
    }

    // Replay in stream order: taint -> (sanitize | use).
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                if (a.pos != b.pos) return a.pos < b.pos;
                return a.kind < b.kind;
              });
    std::map<std::string, int> state;  // 1 tainted, 2 sanitized
    for (const Event& e : events) {
      if (e.kind == 0) {
        state[e.name] = 1;  // a fresh taint needs a fresh check
        continue;
      }
      const auto it = state.find(e.name);
      if (it == state.end() || it->second != 1) continue;
      if (e.kind == 1) {
        it->second = 2;
        continue;
      }
      const std::size_t line = chars.line[e.pos];
      if (reported.insert({line, e.name}).second)
        add_finding(out, text, suppressions, file, line, "taint-bounds",
                    "'" + e.name +
                        "' comes from decoded/wire data and is used as an "
                        "index or length before any bounds check "
                        "(PLT_ASSERT, branch, or std::min/clamp)");
      it->second = 2;  // one report per value per function
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: syscall-check
// ---------------------------------------------------------------------------
//
// Raw syscalls (globally qualified, the repo's spelling: `::write`) must
// have their return value consumed — assigned, compared, branched on,
// passed along, or returned. A call in statement position, or a bare
// `(void)` discard, is a finding unless an allow() pragma records the
// reviewed decision (e.g. exec-never-returns, best-effort setsockopt).

const char* const kCheckedSyscalls[] = {
    "fork",   "execvpe",       "waitpid",    "kill",   "mmap",
    "munmap", "epoll_ctl",     "epoll_create1",        "epoll_wait",
    "poll",   "read",          "write",      "recv",   "send",
    "accept", "accept4",       "eventfd",    "socket", "bind",
    "listen", "connect",       "setsockopt", "getsockname",
};

void check_syscall_check(const Chars& chars, const SourceText& text,
                         const Suppressions& suppressions,
                         const std::string& file, std::vector<Finding>& out) {
  const std::string& code = chars.code;
  for (const char* sys : kCheckedSyscalls) {
    const std::string word(sys);
    for (std::size_t pos = find_stream_word(chars, word, 0);
         pos != std::string::npos;
         pos = find_stream_word(chars, word, pos + 1)) {
      // Global qualification only: keeps methods (reader.read(...)) and
      // namespace-qualified wrappers (io::read) out of scope.
      if (pos < 2 || code[pos - 1] != ':' || code[pos - 2] != ':') continue;
      if (pos >= 3 && is_ident_char(code[pos - 3])) continue;
      const std::size_t open = skip_space(chars, pos + word.size());
      if (open == std::string::npos || code[open] != '(') continue;
      const std::size_t close = matching_close(chars, open);
      // Consumed downstream: `::waitpid(...) < 0`, `... != 0`.
      if (close != std::string::npos) {
        const std::size_t after = skip_space(chars, close + 1);
        if (after != std::string::npos) {
          const char ac = code[after];
          if (ac == '<' || ac == '>' ||
              ((ac == '=' || ac == '!') && after + 1 < code.size() &&
               code[after + 1] == '='))
            continue;
        }
      }
      // Consumed upstream: assignment/init, inside a condition or larger
      // expression, or returned.
      const std::size_t bp = prev_nonspace(chars, pos - 2);
      bool discarded = false;
      bool consumed = false;
      if (bp != std::string::npos) {
        const char pc = code[bp];
        if (pc == '=' || pc == '(' || pc == ',' || pc == '!' || pc == '<' ||
            pc == '>' || pc == '+' || pc == '-' || pc == '*' || pc == '/' ||
            pc == '%' || pc == '?' || pc == ':' || pc == '&' || pc == '|' ||
            pc == '^') {
          consumed = true;
        } else if (pc == ')') {
          // `(void)::write(...)` — an explicit discard still needs the
          // pragma; anything else ending in ')' is `if (...) ::write(...)`
          // statement position.
          const std::size_t q = prev_nonspace(chars, bp);
          if (q != std::string::npos && q >= 3 &&
              code.compare(q - 3, 4, "void") == 0) {
            const std::size_t r = prev_nonspace(chars, q - 3);
            if (r != std::string::npos && code[r] == '(') discarded = true;
          }
        } else if (is_ident_char(pc)) {
          std::size_t s = bp;
          while (s > 0 && is_ident_char(code[s - 1])) --s;
          const std::string before = code.substr(s, bp + 1 - s);
          if (before == "return" || before == "co_return") consumed = true;
        }
      }
      if (consumed) continue;
      add_finding(
          out, text, suppressions, file, chars.line[pos], "syscall-check",
          discarded
              ? "'::" + word +
                    "' return value is (void)-discarded; check it or keep "
                    "the cast under a plt-lint: allow(syscall-check) pragma"
              : "'::" + word +
                    "' return value is ignored (check it, or (void)-discard "
                    "under a plt-lint: allow(syscall-check) pragma)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: typed-status
// ---------------------------------------------------------------------------
//
// Error paths reachable from a registered failpoint (InjectedFault and
// friends propagate by throw) must stay typed: every catch handler in
// scope has to produce a typed outcome — rethrow, return a value,
// construct a Status/MineStatus/error response — or at minimum log the
// event. A handler that swallows the exception silently (empty body, bare
// `return;`, state flip only) is a finding.

void check_typed_status(const Chars& chars, const SourceText& text,
                        const Suppressions& suppressions,
                        const std::string& file, std::vector<Finding>& out) {
  const std::string& code = chars.code;
  for (std::size_t pos = find_stream_word(chars, "catch", 0);
       pos != std::string::npos;
       pos = find_stream_word(chars, "catch", pos + 1)) {
    const std::size_t open = skip_space(chars, pos + 5);
    if (open == std::string::npos || code[open] != '(') continue;
    const std::size_t params_close = matching_close(chars, open);
    if (params_close == std::string::npos) continue;
    const std::size_t body_open = skip_space(chars, params_close + 1);
    if (body_open == std::string::npos || code[body_open] != '{') continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;

    bool produces = false;
    for (std::size_t j = body_open; j <= body_close && !produces; ++j) {
      if (chars.in_string[j]) continue;
      if (stream_word_at(chars, j, "throw") ||
          stream_word_at(chars, j, "Status") ||
          stream_word_at(chars, j, "MineStatus") ||
          stream_word_at(chars, j, "make_error") ||
          stream_word_at(chars, j, "deadline_response") ||
          stream_word_at(chars, j, "log_warn") ||
          stream_word_at(chars, j, "log_error") ||
          stream_word_at(chars, j, "fail") ||
          stream_word_at(chars, j, "abort") ||
          stream_word_at(chars, j, "_exit"))
        produces = true;
      if (stream_word_at(chars, j, "return")) {
        // Bare `return;` silently drops the error; only a returned value
        // converts it into a typed outcome.
        const std::size_t v = skip_space(chars, j + 6);
        if (v != std::string::npos && code[v] != ';') produces = true;
      }
    }
    if (!produces)
      add_finding(out, text, suppressions, file, chars.line[pos],
                  "typed-status",
                  "catch handler swallows the error without producing a "
                  "typed Status/response, rethrow, or diagnostic (failpoint "
                  "error paths must stay typed)");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      "kernel-purity",     "control-coverage", "assert-untrusted-index",
      "span-registry",     "no-banned-apis",   "taint-bounds",
      "syscall-check",     "typed-status",
  };
  return rules;
}

bool is_rule(const std::string& name) {
  const auto& rules = all_rules();
  return std::find(rules.begin(), rules.end(), name) != rules.end();
}

SourceText classify(const std::string& content) {
  SourceText text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  ///< raw-string delimiter, sans parens
  std::string code_line, raw_line;
  std::vector<char> string_line;

  const auto flush = [&] {
    text.lines.push_back(code_line);
    text.raw.push_back(raw_line);
    text.in_string.push_back(string_line);
    code_line.clear();
    raw_line.clear();
    string_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    raw_line.push_back(c);
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
          string_line.push_back(0);
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
          string_line.push_back(0);
          break;
        }
        if (c == 'R' && next == '"' &&
            (code_line.empty() || !is_ident_char(code_line.back()))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < content.size() && content[j] != '(')
            raw_delim.push_back(content[j++]);
          state = State::kRawString;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        if (c == '"') {
          state = State::kString;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        if (c == '\'' &&
            !(code_line.size() >= 1 &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) !=
                  0)) {
          // skip digit separators (1'000'000)
          state = State::kChar;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        code_line.push_back(c);
        string_line.push_back(0);
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        string_line.push_back(0);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          // consume the '/' too
          code_line.push_back(' ');
          string_line.push_back(0);
          raw_line.push_back(next);
          code_line.push_back(' ');
          string_line.push_back(0);
          ++i;
          state = State::kCode;
          break;
        }
        code_line.push_back(' ');
        string_line.push_back(0);
        break;
      case State::kString:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(next);
          string_line.push_back(1);
          ++i;
          break;
        }
        if (c == '"') state = State::kCode;
        break;
      case State::kChar:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(next);
          string_line.push_back(1);
          ++i;
          break;
        }
        if (c == '\'') state = State::kCode;
        break;
      case State::kRawString:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == ')' &&
            content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < content.size() &&
            content[i + 1 + raw_delim.size()] == '"') {
          // copy the delimiter + closing quote through
          for (std::size_t j = 0; j <= raw_delim.size(); ++j) {
            ++i;
            raw_line.push_back(content[i]);
            code_line.push_back(content[i]);
            string_line.push_back(1);
          }
          state = State::kCode;
        }
        break;
    }
  }
  if (!raw_line.empty() || content.empty() ||
      (!content.empty() && content.back() != '\n'))
    flush();
  return text;
}

bool Suppressions::allows(const std::string& rule, std::size_t line) const {
  if (std::find(file_rules.begin(), file_rules.end(), rule) !=
      file_rules.end())
    return true;
  if (line < allowed.size()) {
    const auto& rules = allowed[line];
    if (std::find(rules.begin(), rules.end(), rule) != rules.end())
      return true;
  }
  return false;
}

Suppressions parse_suppressions(const SourceText& text) {
  Suppressions sup;
  // allowed is indexed by 1-based line; slot 0 unused. +2 so "this line
  // and the next" can always spill.
  sup.allowed.resize(text.raw.size() + 2);
  const std::string tag = "plt-lint:";
  for (std::size_t l = 0; l < text.raw.size(); ++l) {
    const std::string& raw = text.raw[l];
    const std::size_t at = raw.find(tag);
    if (at == std::string::npos) continue;
    std::size_t pos = at + tag.size();
    while (pos < raw.size()) {
      while (pos < raw.size() &&
             !std::isalpha(static_cast<unsigned char>(raw[pos])))
        ++pos;
      std::size_t end = pos;
      while (end < raw.size() &&
             (is_ident_char(raw[end]) || raw[end] == '-'))
        ++end;
      const std::string word = raw.substr(pos, end - pos);
      if (word != "allow" && word != "allow-file") break;
      const std::size_t open = raw.find('(', end);
      const std::size_t close =
          open == std::string::npos ? std::string::npos
                                    : raw.find(')', open);
      if (close == std::string::npos) break;
      // comma-separated rule list inside the parens
      std::string rules_text = raw.substr(open + 1, close - open - 1);
      std::size_t start = 0;
      while (start <= rules_text.size()) {
        std::size_t comma = rules_text.find(',', start);
        if (comma == std::string::npos) comma = rules_text.size();
        const std::string rule =
            trimmed(rules_text.substr(start, comma - start));
        if (!rule.empty()) {
          if (word == "allow-file") {
            sup.file_rules.push_back(rule);
          } else {
            sup.allowed[l + 1].push_back(rule);
            sup.allowed[l + 2].push_back(rule);
          }
        }
        start = comma + 1;
      }
      pos = close + 1;
    }
  }
  return sup;
}

void parse_registry(const std::string& registry_content,
                    std::vector<std::string>& spans,
                    std::vector<std::string>& counters) {
  spans.clear();
  counters.clear();
  const SourceText text = classify(registry_content);
  std::vector<std::string>* current = nullptr;
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (line.find("kSpans") != std::string::npos) current = &spans;
    if (line.find("kCounters") != std::string::npos) current = &counters;
    if (current == nullptr) continue;
    // Collect every string literal on the line.
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (line[c] != '"' || !text.in_string[l][c]) continue;
      std::string value;
      ++c;
      while (c < line.size() && line[c] != '"') value.push_back(line[c++]);
      current->push_back(value);
    }
    if (line.find("};") != std::string::npos) current = nullptr;
  }
}

std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& content,
                               const LintConfig& config) {
  std::vector<Finding> out;
  const SourceText text = classify(content);
  const Suppressions suppressions = parse_suppressions(text);

  // Scope decisions (documented in DESIGN.md S24, S28): purity only inside
  // the kernel layer; the untrusted-input rules in the layers that decode
  // bytes they did not produce (codecs, the on-disk DB readers, the shard
  // exchange, the serve daemon's wire path); the I/O rules where raw
  // syscalls and failpoint-reachable error paths live; registry + banned
  // APIs across all of src/.
  const bool in_src = under(rel_path, "src/");
  const bool in_kernels = under(rel_path, "src/kernels/");
  const bool untrusted_scope =
      under(rel_path, "src/compress/") || under(rel_path, "src/tdb/") ||
      under(rel_path, "src/shard/") || under(rel_path, "src/serve/");
  const bool io_scope =
      under(rel_path, "src/serve/") || under(rel_path, "src/shard/");
  const bool registry_file = rel_path == "src/obs/span_names.hpp" ||
                             under(rel_path, "src/obs/trace.");

  if (rule_enabled(config, "kernel-purity") && in_kernels)
    check_kernel_purity(text, suppressions, rel_path, out);

  const bool needs_stream =
      (rule_enabled(config, "control-coverage") && in_src) ||
      ((rule_enabled(config, "assert-untrusted-index") ||
        rule_enabled(config, "taint-bounds")) &&
       untrusted_scope) ||
      ((rule_enabled(config, "syscall-check") ||
        rule_enabled(config, "typed-status")) &&
       io_scope);
  if (needs_stream) {
    const Chars chars = flatten(text);
    if (rule_enabled(config, "control-coverage") && in_src)
      check_control_coverage(chars, text, suppressions, rel_path, out);
    if (rule_enabled(config, "assert-untrusted-index") && untrusted_scope)
      check_assert_untrusted_index(chars, text, suppressions, rel_path, out);
    if (rule_enabled(config, "taint-bounds") && untrusted_scope)
      check_taint_bounds(chars, text, suppressions, rel_path, out);
    if (rule_enabled(config, "syscall-check") && io_scope)
      check_syscall_check(chars, text, suppressions, rel_path, out);
    if (rule_enabled(config, "typed-status") && io_scope)
      check_typed_status(chars, text, suppressions, rel_path, out);
  }
  if (rule_enabled(config, "span-registry") && in_src && !registry_file)
    check_span_registry(text, suppressions, rel_path, config, out);
  if (rule_enabled(config, "no-banned-apis") && in_src)
    check_no_banned_apis(text, suppressions, rel_path, out);
  return out;
}

std::string to_json(std::vector<Finding> findings,
                    const std::vector<std::string>& rules,
                    std::size_t files_scanned) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[(c >> 4) & 0xf];
            out += hex[c & 0xf];
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string json = "{\"version\":1,\"files_scanned\":" +
                     std::to_string(files_scanned) + ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) json += ',';
    json += '"' + escape(rules[i]) + '"';
  }
  json += "],\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) json += ',';
    json += "{\"file\":\"" + escape(f.file) + "\",\"line\":" +
            std::to_string(f.line) + ",\"rule\":\"" + escape(f.rule) +
            "\",\"message\":\"" + escape(f.message) + "\",\"snippet\":\"" +
            escape(f.snippet) + "\"}";
  }
  json += "]}";
  return json;
}

}  // namespace plt::lint
