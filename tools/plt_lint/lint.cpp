// Implementation of the plt_lint rule passes. Everything here is pure
// string processing over the classified source (no AST, no filesystem):
// lint_file(path, content, config) -> findings. See lint.hpp for the rule
// contract each pass enforces.
#include "lint.hpp"

#include <algorithm>
#include <cctype>

namespace plt::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when lines[line][pos..pos+word) is `word` with identifier
/// boundaries on both sides.
bool word_at(const std::string& line, std::size_t pos,
             const std::string& word) {
  if (line.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(line[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < line.size() && is_ident_char(line[end])) return false;
  return true;
}

/// All word-boundary occurrences of `word` on a code line, skipping
/// string-literal extents.
std::vector<std::size_t> find_words(const SourceText& text, std::size_t line,
                                    const std::string& word) {
  std::vector<std::size_t> hits;
  const std::string& s = text.lines[line];
  for (std::size_t pos = s.find(word); pos != std::string::npos;
       pos = s.find(word, pos + 1)) {
    if (text.in_string[line][pos]) continue;
    if (word_at(s, pos, word)) hits.push_back(pos);
  }
  return hits;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return s.substr(b, e - b);
}

/// starts_with for a path prefix ("src/kernels/").
bool under(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool rule_enabled(const LintConfig& config, const char* rule) {
  return std::find(config.rules.begin(), config.rules.end(), rule) !=
         config.rules.end();
}

void add_finding(std::vector<Finding>& out, const SourceText& text,
                 const Suppressions& suppressions, const std::string& file,
                 std::size_t line_index, const char* rule,
                 std::string message) {
  const std::size_t line = line_index + 1;
  if (suppressions.allows(rule, line)) return;
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.message = std::move(message);
  f.snippet = trimmed(text.raw[line_index]);
  out.push_back(std::move(f));
}

// ---------------------------------------------------------------------------
// Flattened character stream: rules that reason about scopes (function
// bodies, parameter lists) need to match parens/braces across physical
// lines. Chars keeps (line, col) for every retained code character.
// ---------------------------------------------------------------------------

struct Chars {
  std::string code;                ///< code chars, '\n' between lines
  std::vector<std::size_t> line;   ///< source line index per char
  std::vector<std::size_t> col;    ///< source column per char
  std::vector<char> in_string;     ///< inside string/char literal
};

Chars flatten(const SourceText& text) {
  Chars chars;
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& s = text.lines[l];
    for (std::size_t c = 0; c < s.size(); ++c) {
      chars.code.push_back(s[c]);
      chars.line.push_back(l);
      chars.col.push_back(c);
      chars.in_string.push_back(text.in_string[l][c]);
    }
    chars.code.push_back('\n');
    chars.line.push_back(l);
    chars.col.push_back(s.size());
    chars.in_string.push_back(0);
  }
  return chars;
}

bool stream_word_at(const Chars& chars, std::size_t pos,
                    const std::string& word) {
  if (chars.in_string[pos]) return false;
  if (chars.code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(chars.code[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < chars.code.size() && is_ident_char(chars.code[end]))
    return false;
  return true;
}

/// Index of the char that closes the bracket opened at `open` ('(' or '{'),
/// or npos when unbalanced. Skips string-literal chars.
std::size_t matching_close(const Chars& chars, std::size_t open) {
  const char open_char = chars.code[open];
  const char close_char = open_char == '(' ? ')' : '}';
  int depth = 0;
  for (std::size_t i = open; i < chars.code.size(); ++i) {
    if (chars.in_string[i]) continue;
    if (chars.code[i] == open_char) ++depth;
    if (chars.code[i] == close_char && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Next non-whitespace code char index at/after `pos` (npos at EOF).
std::size_t skip_space(const Chars& chars, std::size_t pos) {
  while (pos < chars.code.size() &&
         std::isspace(static_cast<unsigned char>(chars.code[pos])) != 0)
    ++pos;
  return pos < chars.code.size() ? pos : std::string::npos;
}

/// Word-boundary search for `word` in the flattened stream, starting at
/// `from`, outside string literals.
std::size_t find_stream_word(const Chars& chars, const std::string& word,
                             std::size_t from) {
  for (std::size_t pos = chars.code.find(word, from);
       pos != std::string::npos; pos = chars.code.find(word, pos + 1))
    if (stream_word_at(chars, pos, word)) return pos;
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule: kernel-purity
// ---------------------------------------------------------------------------

/// Tokens a kernel implementation file must not contain. The word list is
/// deliberately literal: kernels are leaf loops over raw pointers, so any
/// of these names appearing at all is a contract break worth a look (and an
/// explicit allow() when intentional, as in the dispatcher).
const char* const kKernelBanned[] = {
    "new",    "delete", "malloc",  "calloc", "realloc", "free",
    "throw",  "printf", "fprintf", "cout",   "cerr",    "fopen",
    "fwrite", "fread",  "vector",  "string", "getenv",  "abort",
};

void check_kernel_purity(const SourceText& text,
                         const Suppressions& suppressions,
                         const std::string& file,
                         std::vector<Finding>& out) {
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;  // preprocessor
    for (const char* banned : kKernelBanned) {
      if (find_words(text, l, banned).empty()) continue;
      add_finding(out, text, suppressions, file, l, "kernel-purity",
                  std::string("kernel code must not use '") + banned +
                      "' (kernels never allocate, throw, or do IO)");
      break;  // one finding per line is enough
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: control-coverage
// ---------------------------------------------------------------------------

/// Finds `MiningControl` parameter bindings: `MiningControl* name` /
/// `MiningControl& name` (const or not) inside a parameter list whose
/// function has a body, then requires the name (or a control-forwarding
/// call) to appear between the binding and the body's closing brace.
void check_control_coverage(const Chars& chars, const SourceText& text,
                            const Suppressions& suppressions,
                            const std::string& file,
                            std::vector<Finding>& out) {
  std::vector<std::size_t> reported_bodies;
  for (std::size_t pos = find_stream_word(chars, "MiningControl", 0);
       pos != std::string::npos;
       pos = find_stream_word(chars, "MiningControl", pos + 1)) {
    // Skip declarations of the type itself and qualified uses
    // (MiningControl::..., class MiningControl, friend ...).
    std::size_t after = skip_space(chars, pos + 13);
    if (after == std::string::npos) continue;
    if (chars.code.compare(after, 2, "::") == 0) continue;
    {
      // Look back for class/struct/friend/enum introducing the name.
      std::size_t back = pos;
      while (back > 0 && std::isspace(static_cast<unsigned char>(
                             chars.code[back - 1])) != 0)
        --back;
      std::size_t word_end = back;
      while (back > 0 && is_ident_char(chars.code[back - 1])) --back;
      const std::string prev = chars.code.substr(back, word_end - back);
      if (prev == "class" || prev == "struct" || prev == "friend" ||
          prev == "enum")
        continue;
    }
    // Require a pointer/reference declarator then an identifier:
    // `const MiningControl* control` (const already consumed by the word
    // scan landing on MiningControl).
    if (chars.code[after] != '*' && chars.code[after] != '&') continue;
    std::size_t name_begin = skip_space(chars, after + 1);
    if (name_begin == std::string::npos) continue;
    if (chars.code[name_begin] == 'c' &&
        stream_word_at(chars, name_begin, "const"))
      name_begin = skip_space(chars, name_begin + 5);
    if (name_begin == std::string::npos ||
        !is_ident_char(chars.code[name_begin]))
      continue;
    std::size_t name_end = name_begin;
    while (name_end < chars.code.size() &&
           is_ident_char(chars.code[name_end]))
      ++name_end;
    const std::string name =
        chars.code.substr(name_begin, name_end - name_begin);

    // A parameter binding sits inside a '(...)' group; find the close of
    // the group we are in by scanning forward at depth 0.
    int depth = 0;
    std::size_t params_close = std::string::npos;
    for (std::size_t i = name_end; i < chars.code.size(); ++i) {
      if (chars.in_string[i]) continue;
      const char c = chars.code[i];
      if (c == '(') ++depth;
      if (c == ')') {
        if (depth == 0) {
          params_close = i;
          break;
        }
        --depth;
      }
      if (c == ';' || c == '{') break;  // not a parameter after all
    }
    if (params_close == std::string::npos) continue;

    // Definition (body) vs declaration: after the ')' skip specifiers
    // (const, noexcept, override, trailing commas of an initializer list)
    // until '{' or ';'. An initializer list (': member(...)') still ends at
    // the body '{'.
    std::size_t body_open = std::string::npos;
    int paren_depth = 0;
    for (std::size_t i = params_close + 1; i < chars.code.size(); ++i) {
      if (chars.in_string[i]) continue;
      const char c = chars.code[i];
      if (c == '(') ++paren_depth;
      if (c == ')') --paren_depth;
      if (paren_depth > 0) continue;
      if (c == '{') {
        body_open = i;
        break;
      }
      if (c == ';' || c == '=') break;  // declaration / default argument
    }
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;
    if (std::find(reported_bodies.begin(), reported_bodies.end(),
                  body_open) != reported_bodies.end())
      continue;

    // Search range: from past the parameter name through the body close —
    // constructor initializer lists (`: control_(c)`) count as uses.
    bool used = false;
    for (std::size_t i = name_end; i <= body_close; ++i)
      if (stream_word_at(chars, i, name)) {
        used = true;
        break;
      }
    if (!used) {
      reported_bodies.push_back(body_open);
      add_finding(out, text, suppressions, file, chars.line[pos],
                  "control-coverage",
                  "MiningControl parameter '" + name +
                      "' is bound but never consulted or forwarded "
                      "(cancellation would be silently lost)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: assert-untrusted-index
// ---------------------------------------------------------------------------

/// True when the identifier names a decode/read/parse-style function over
/// untrusted bytes. "thread"/"spread"/"already" style words that merely
/// contain "read" are excluded by requiring the stem at a word start.
bool is_untrusted_fn_name(const std::string& name) {
  const char* const stems[] = {"decode", "parse", "read", "get_varint"};
  for (const char* stem : stems) {
    const std::size_t at = name.find(stem);
    if (at == std::string::npos) continue;
    // stem must start the identifier or follow '_' (read_blob, do_decode).
    if (at == 0 || name[at - 1] == '_') return true;
  }
  return false;
}

void check_assert_untrusted_index(const Chars& chars, const SourceText& text,
                                  const Suppressions& suppressions,
                                  const std::string& file,
                                  std::vector<Finding>& out) {
  const std::string& code = chars.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (chars.in_string[i] || !is_ident_char(code[i])) continue;
    if (i > 0 && is_ident_char(code[i - 1])) continue;  // mid-identifier
    std::size_t end = i;
    while (end < code.size() && is_ident_char(code[end])) ++end;
    const std::string name = code.substr(i, end - i);
    const std::size_t name_line = chars.line[i];
    i = end - 1;
    if (!is_untrusted_fn_name(name)) continue;

    // Function definition: identifier, '(' ... ')', then '{' (possibly
    // through specifiers). Calls end at ';' or ',' first.
    const std::size_t open = skip_space(chars, end);
    if (open == std::string::npos || code[open] != '(') continue;
    const std::size_t params_close = matching_close(chars, open);
    if (params_close == std::string::npos) continue;
    std::size_t body_open = std::string::npos;
    for (std::size_t j = params_close + 1; j < code.size(); ++j) {
      if (chars.in_string[j]) continue;
      const char c = code[j];
      if (c == '{') {
        body_open = j;
        break;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
      if (is_ident_char(c)) continue;  // const / noexcept / override
      break;                           // ';' ',' ')' '=' ... — not a body
    }
    if (body_open == std::string::npos) continue;
    const std::size_t body_close = matching_close(chars, body_open);
    if (body_close == std::string::npos) continue;

    // Scan the body: does it subscript, and does it guard?
    bool subscripts = false;
    bool guarded = false;
    for (std::size_t j = body_open; j <= body_close; ++j) {
      if (chars.in_string[j]) continue;
      if (code[j] == '[') {
        // subscript = '[' whose previous non-space char ends an expression
        // (identifier, ')', ']'); excludes lambda captures & array decls.
        std::size_t back = j;
        while (back > body_open &&
               std::isspace(static_cast<unsigned char>(code[back - 1])) != 0)
          --back;
        if (back > body_open) {
          const char prev = code[back - 1];
          if (is_ident_char(prev) || prev == ')' || prev == ']') {
            // `buffer[1 << 16]` declarations: identifier directly after a
            // type word is still caught here; rely on guards/allow() for
            // those rare cases — but skip `operator[]`.
            if (!(back >= 8 + body_open &&
                  code.compare(back - 8, 8, "operator") == 0))
              subscripts = true;
          }
        }
      }
      if (stream_word_at(chars, j, "PLT_ASSERT") ||
          stream_word_at(chars, j, "throw") ||
          stream_word_at(chars, j, "catch") ||
          stream_word_at(chars, j, "fail") ||  // blob_format's thrower
          stream_word_at(chars, j, "at"))
        guarded = true;
    }
    if (subscripts && !guarded)
      add_finding(out, text, suppressions, file, name_line,
                  "assert-untrusted-index",
                  "'" + name +
                      "' subscripts decoded data without a PLT_ASSERT or "
                      "bounds throw (untrusted-input contract)");
  }
}

// ---------------------------------------------------------------------------
// Rule: span-registry
// ---------------------------------------------------------------------------

/// Extracts the (skip+1)-th string literal inside the call whose '(' sits
/// at (line, open). Stops at the call's matching ')', so a missing literal
/// never picks one up from unrelated code further down.
bool first_string_literal(const SourceText& text, std::size_t line,
                          std::size_t open, std::string& literal,
                          std::size_t skip_literals = 0) {
  std::size_t found = 0;
  int depth = 0;
  for (std::size_t l = line; l < text.lines.size(); ++l) {
    const std::string& s = text.lines[l];
    for (std::size_t c = (l == line ? open : 0); c < s.size(); ++c) {
      if (!text.in_string[l][c]) {
        if (s[c] == '(') ++depth;
        if (s[c] == ')' && --depth == 0) return false;  // call ended
        continue;
      }
      // Opening quote: an in-string '"' whose predecessor is outside.
      if (s[c] == '"' && (c == 0 || !text.in_string[l][c - 1])) {
        std::string value;
        std::size_t j = c + 1;
        while (j < s.size() &&
               !(s[j] == '"' &&
                 (j + 1 >= s.size() || !text.in_string[l][j + 1])))
          value.push_back(s[j++]);
        if (found == skip_literals) {
          literal = value;
          return true;
        }
        ++found;
        c = j;
      }
    }
  }
  return false;
}

void check_span_registry(const SourceText& text,
                         const Suppressions& suppressions,
                         const std::string& file, const LintConfig& config,
                         std::vector<Finding>& out) {
  struct Site {
    const char* token;
    bool counter;     ///< checks kCounters instead of kSpans
    std::size_t arg;  ///< which string literal is the name
  };
  const Site sites[] = {
      {"PLT_SPAN", false, 0},
      {"PLT_TRACE_COUNT", true, 0},
  };
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;  // macro definitions
    for (const Site& site : sites) {
      for (const std::size_t pos : find_words(text, l, site.token)) {
        const std::size_t open = line.find('(', pos);
        if (open == std::string::npos) continue;
        std::string name;
        if (!first_string_literal(text, l, open, name)) {
          add_finding(out, text, suppressions, file, l, "span-registry",
                      std::string(site.token) +
                          " name must be a string literal "
                          "(registry check is impossible otherwise)");
          continue;
        }
        const auto& registry =
            site.counter ? config.registry_counters : config.registry_spans;
        if (std::find(registry.begin(), registry.end(), name) ==
            registry.end())
          add_finding(out, text, suppressions, file, l, "span-registry",
                      "'" + name + "' is not registered in " +
                          "src/obs/span_names.hpp (" +
                          (site.counter ? "kCounters" : "kSpans") + ")");
      }
    }
    // obs::count_kernel("calls-name", "bytes-name", n): both literals are
    // counter names.
    for (const std::size_t pos : find_words(text, l, "count_kernel")) {
      const std::size_t open = line.find('(', pos);
      if (open == std::string::npos) continue;
      for (std::size_t arg = 0; arg < 2; ++arg) {
        std::string name;
        if (!first_string_literal(text, l, open, name, arg)) break;
        if (std::find(config.registry_counters.begin(),
                      config.registry_counters.end(),
                      name) == config.registry_counters.end())
          add_finding(out, text, suppressions, file, l, "span-registry",
                      "'" + name + "' is not registered in "
                                   "src/obs/span_names.hpp (kCounters)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-banned-apis
// ---------------------------------------------------------------------------

void check_no_banned_apis(const SourceText& text,
                          const Suppressions& suppressions,
                          const std::string& file,
                          std::vector<Finding>& out) {
  const char* const banned_words[] = {"rand", "srand", "strtok", "gets"};
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (!line.empty() && line[0] == '#') continue;
    for (const char* word : banned_words) {
      if (find_words(text, l, word).empty()) continue;
      add_finding(out, text, suppressions, file, l, "no-banned-apis",
                  std::string("'") + word +
                      "' is banned (non-deterministic / unsafe C API; use "
                      "util/ facilities)");
    }
    if (line.find("std::regex") != std::string::npos &&
        !text.in_string[l][line.find("std::regex")])
      add_finding(out, text, suppressions, file, l, "no-banned-apis",
                  "std::regex is banned (catastrophic worst cases; write a "
                  "scanner)");
    // Raw new: `new Type`, `new Type[...]`. Placement new and
    // make_unique/make_shared do not match the word.
    for (const std::size_t pos : find_words(text, l, "new")) {
      std::size_t after = pos + 3;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0)
        ++after;
      if (after < line.size() &&
          (is_ident_char(line[after]) || line[after] == '('))
        add_finding(out, text, suppressions, file, l, "no-banned-apis",
                    "raw 'new' is banned (use std::make_unique / "
                    "containers)");
    }
    for (const std::size_t pos : find_words(text, l, "delete")) {
      // `= delete` declarations are fine; `delete p` is not.
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(line[before - 1])) != 0)
        --before;
      if (before > 0 && line[before - 1] == '=') continue;
      std::size_t after = pos + 6;
      if (after < line.size() && line[after] == '[') after += 2;
      while (after < line.size() &&
             std::isspace(static_cast<unsigned char>(line[after])) != 0)
        ++after;
      if (after < line.size() && (is_ident_char(line[after])))
        add_finding(out, text, suppressions, file, l, "no-banned-apis",
                    "raw 'delete' is banned (let unique_ptr own it)");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<std::string>& all_rules() {
  static const std::vector<std::string> rules = {
      "kernel-purity",     "control-coverage", "assert-untrusted-index",
      "span-registry",     "no-banned-apis",
  };
  return rules;
}

bool is_rule(const std::string& name) {
  const auto& rules = all_rules();
  return std::find(rules.begin(), rules.end(), name) != rules.end();
}

SourceText classify(const std::string& content) {
  SourceText text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_delim;  ///< raw-string delimiter, sans parens
  std::string code_line, raw_line;
  std::vector<char> string_line;

  const auto flush = [&] {
    text.lines.push_back(code_line);
    text.raw.push_back(raw_line);
    text.in_string.push_back(string_line);
    code_line.clear();
    raw_line.clear();
    string_line.clear();
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    raw_line.push_back(c);
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line.push_back(' ');
          string_line.push_back(0);
          break;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line.push_back(' ');
          string_line.push_back(0);
          break;
        }
        if (c == 'R' && next == '"' &&
            (code_line.empty() || !is_ident_char(code_line.back()))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < content.size() && content[j] != '(')
            raw_delim.push_back(content[j++]);
          state = State::kRawString;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        if (c == '"') {
          state = State::kString;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        if (c == '\'' &&
            !(code_line.size() >= 1 &&
              std::isdigit(static_cast<unsigned char>(code_line.back())) !=
                  0)) {
          // skip digit separators (1'000'000)
          state = State::kChar;
          code_line.push_back(c);
          string_line.push_back(1);
          break;
        }
        code_line.push_back(c);
        string_line.push_back(0);
        break;
      case State::kLineComment:
        code_line.push_back(' ');
        string_line.push_back(0);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          // consume the '/' too
          code_line.push_back(' ');
          string_line.push_back(0);
          raw_line.push_back(next);
          code_line.push_back(' ');
          string_line.push_back(0);
          ++i;
          state = State::kCode;
          break;
        }
        code_line.push_back(' ');
        string_line.push_back(0);
        break;
      case State::kString:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(next);
          string_line.push_back(1);
          ++i;
          break;
        }
        if (c == '"') state = State::kCode;
        break;
      case State::kChar:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == '\\' && next != '\0') {
          raw_line.push_back(next);
          code_line.push_back(next);
          string_line.push_back(1);
          ++i;
          break;
        }
        if (c == '\'') state = State::kCode;
        break;
      case State::kRawString:
        code_line.push_back(c);
        string_line.push_back(1);
        if (c == ')' &&
            content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < content.size() &&
            content[i + 1 + raw_delim.size()] == '"') {
          // copy the delimiter + closing quote through
          for (std::size_t j = 0; j <= raw_delim.size(); ++j) {
            ++i;
            raw_line.push_back(content[i]);
            code_line.push_back(content[i]);
            string_line.push_back(1);
          }
          state = State::kCode;
        }
        break;
    }
  }
  if (!raw_line.empty() || content.empty() ||
      (!content.empty() && content.back() != '\n'))
    flush();
  return text;
}

bool Suppressions::allows(const std::string& rule, std::size_t line) const {
  if (std::find(file_rules.begin(), file_rules.end(), rule) !=
      file_rules.end())
    return true;
  if (line < allowed.size()) {
    const auto& rules = allowed[line];
    if (std::find(rules.begin(), rules.end(), rule) != rules.end())
      return true;
  }
  return false;
}

Suppressions parse_suppressions(const SourceText& text) {
  Suppressions sup;
  // allowed is indexed by 1-based line; slot 0 unused. +2 so "this line
  // and the next" can always spill.
  sup.allowed.resize(text.raw.size() + 2);
  const std::string tag = "plt-lint:";
  for (std::size_t l = 0; l < text.raw.size(); ++l) {
    const std::string& raw = text.raw[l];
    const std::size_t at = raw.find(tag);
    if (at == std::string::npos) continue;
    std::size_t pos = at + tag.size();
    while (pos < raw.size()) {
      while (pos < raw.size() &&
             !std::isalpha(static_cast<unsigned char>(raw[pos])))
        ++pos;
      std::size_t end = pos;
      while (end < raw.size() &&
             (is_ident_char(raw[end]) || raw[end] == '-'))
        ++end;
      const std::string word = raw.substr(pos, end - pos);
      if (word != "allow" && word != "allow-file") break;
      const std::size_t open = raw.find('(', end);
      const std::size_t close =
          open == std::string::npos ? std::string::npos
                                    : raw.find(')', open);
      if (close == std::string::npos) break;
      // comma-separated rule list inside the parens
      std::string rules_text = raw.substr(open + 1, close - open - 1);
      std::size_t start = 0;
      while (start <= rules_text.size()) {
        std::size_t comma = rules_text.find(',', start);
        if (comma == std::string::npos) comma = rules_text.size();
        const std::string rule =
            trimmed(rules_text.substr(start, comma - start));
        if (!rule.empty()) {
          if (word == "allow-file") {
            sup.file_rules.push_back(rule);
          } else {
            sup.allowed[l + 1].push_back(rule);
            sup.allowed[l + 2].push_back(rule);
          }
        }
        start = comma + 1;
      }
      pos = close + 1;
    }
  }
  return sup;
}

void parse_registry(const std::string& registry_content,
                    std::vector<std::string>& spans,
                    std::vector<std::string>& counters) {
  spans.clear();
  counters.clear();
  const SourceText text = classify(registry_content);
  std::vector<std::string>* current = nullptr;
  for (std::size_t l = 0; l < text.lines.size(); ++l) {
    const std::string& line = text.lines[l];
    if (line.find("kSpans") != std::string::npos) current = &spans;
    if (line.find("kCounters") != std::string::npos) current = &counters;
    if (current == nullptr) continue;
    // Collect every string literal on the line.
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (line[c] != '"' || !text.in_string[l][c]) continue;
      std::string value;
      ++c;
      while (c < line.size() && line[c] != '"') value.push_back(line[c++]);
      current->push_back(value);
    }
    if (line.find("};") != std::string::npos) current = nullptr;
  }
}

std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& content,
                               const LintConfig& config) {
  std::vector<Finding> out;
  const SourceText text = classify(content);
  const Suppressions suppressions = parse_suppressions(text);

  // Scope decisions (documented in DESIGN.md S24): purity only inside the
  // kernel layer; control/index contracts in the layers that own them;
  // registry + banned APIs across all of src/.
  const bool in_src = under(rel_path, "src/");
  const bool in_kernels = under(rel_path, "src/kernels/");
  const bool registry_file = rel_path == "src/obs/span_names.hpp" ||
                             under(rel_path, "src/obs/trace.");

  if (rule_enabled(config, "kernel-purity") && in_kernels)
    check_kernel_purity(text, suppressions, rel_path, out);

  const bool needs_stream =
      (rule_enabled(config, "control-coverage") && in_src) ||
      (rule_enabled(config, "assert-untrusted-index") &&
       (under(rel_path, "src/compress/") || under(rel_path, "src/tdb/") ||
        under(rel_path, "src/shard/")));
  if (needs_stream) {
    const Chars chars = flatten(text);
    if (rule_enabled(config, "control-coverage") && in_src)
      check_control_coverage(chars, text, suppressions, rel_path, out);
    if (rule_enabled(config, "assert-untrusted-index") &&
        (under(rel_path, "src/compress/") || under(rel_path, "src/tdb/") ||
        under(rel_path, "src/shard/")))
      check_assert_untrusted_index(chars, text, suppressions, rel_path, out);
  }
  if (rule_enabled(config, "span-registry") && in_src && !registry_file)
    check_span_registry(text, suppressions, rel_path, config, out);
  if (rule_enabled(config, "no-banned-apis") && in_src)
    check_no_banned_apis(text, suppressions, rel_path, out);
  return out;
}

std::string to_json(std::vector<Finding> findings,
                    const std::vector<std::string>& rules,
                    std::size_t files_scanned) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  const auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            out += "\\u00";
            out += hex[(c >> 4) & 0xf];
            out += hex[c & 0xf];
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::string json = "{\"version\":1,\"files_scanned\":" +
                     std::to_string(files_scanned) + ",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) json += ',';
    json += '"' + escape(rules[i]) + '"';
  }
  json += "],\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) json += ',';
    json += "{\"file\":\"" + escape(f.file) + "\",\"line\":" +
            std::to_string(f.line) + ",\"rule\":\"" + escape(f.rule) +
            "\",\"message\":\"" + escape(f.message) + "\",\"snippet\":\"" +
            escape(f.snippet) + "\"}";
  }
  json += "]}";
  return json;
}

}  // namespace plt::lint
