// plt_lint driver: file discovery + report formatting around the rule
// library in lint.cpp.
//
//   plt_lint [--root DIR] [PATH...]            lint dirs/files under DIR
//   plt_lint --compile-commands FILE           lint the TUs of a build
//   plt_lint --json                            machine-readable report
//   plt_lint --rules a,b                       run a subset of the rules
//
// Paths are interpreted relative to --root (default "."), which must be
// the repo root so the per-rule path scoping (src/kernels/, src/compress/,
// ...) lines up. With no PATH and no compile database, lints root/src.
// Exit status: 0 clean, 1 findings, 2 usage or IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "lint.hpp"
#include "util/args.hpp"

namespace {

namespace fs = std::filesystem;
using namespace plt;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--compile-commands FILE] [--json]\n"
            << "  [--rules r1,r2,...] [PATH...]\n"
            << "rules:";
  for (const std::string& rule : lint::all_rules())
    std::cerr << ' ' << rule;
  std::cerr << '\n';
  return 2;
}

bool read_file(const fs::path& path, std::string& content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  content = buffer.str();
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Path of `p` relative to `root`, '/'-separated; empty when p is outside.
std::string rel_to_root(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel =
      fs::relative(fs::weakly_canonical(p, ec), root, ec);
  if (ec || rel.empty()) return {};
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};
  return s;
}

/// Pulls every "file" value out of a compile_commands.json without a JSON
/// library: scan for the key token, then read the quoted value.
std::vector<std::string> compile_db_files(const std::string& json) {
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  for (std::size_t at = json.find(key); at != std::string::npos;
       at = json.find(key, at + key.size())) {
    std::size_t pos = at + key.size();
    while (pos < json.size() &&
           (json[pos] == ' ' || json[pos] == ':' || json[pos] == '\t' ||
            json[pos] == '\n'))
      ++pos;
    if (pos >= json.size() || json[pos] != '"') continue;
    std::string value;
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
      if (json[pos] == '\\' && pos + 1 < json.size()) ++pos;
      value.push_back(json[pos]);
    }
    files.push_back(value);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const fs::path root = fs::weakly_canonical(args.get("root", "."));

  lint::LintConfig config;
  if (args.has("rules")) {
    config.rules.clear();
    std::istringstream in(args.get("rules", ""));
    for (std::string rule; std::getline(in, rule, ',');) {
      if (rule.empty()) continue;
      if (!lint::is_rule(rule)) {
        std::cerr << "error: unknown rule '" << rule << "'\n";
        return usage(argv[0]);
      }
      config.rules.push_back(rule);
    }
    if (config.rules.empty()) return usage(argv[0]);
  }

  // The span/counter registry is part of the tree being linted.
  {
    const fs::path registry = root / "src" / "obs" / "span_names.hpp";
    std::string content;
    if (read_file(registry, content)) {
      lint::parse_registry(content, config.registry_spans,
                           config.registry_counters);
    } else if (std::find(config.rules.begin(), config.rules.end(),
                         "span-registry") != config.rules.end()) {
      std::cerr << "error: cannot read registry " << registry.string()
                << " (required by span-registry; check --root)\n";
      return 2;
    }
  }

  // -- discover files --
  std::vector<std::string> rel_files;
  if (args.has("compile-commands")) {
    std::string json;
    if (!read_file(args.get("compile-commands", ""), json)) {
      std::cerr << "error: cannot read "
                << args.get("compile-commands", "") << '\n';
      return 2;
    }
    for (const std::string& file : compile_db_files(json)) {
      const std::string rel = rel_to_root(file, root);
      if (!rel.empty()) rel_files.push_back(rel);
    }
  }
  std::vector<std::string> inputs = args.positional();
  // `plt-lint --json src`: Args reads bare-flag + positional as a
  // key/value pair, so hand a non-boolean --json "value" back to the
  // path list.
  const bool json_output = args.has("json");
  if (const std::string v = args.get("json", "true");
      json_output && v != "true" && v != "1" && v != "yes")
    inputs.push_back(v);
  if (inputs.empty() && !args.has("compile-commands"))
    inputs.push_back("src");
  for (const std::string& input : inputs) {
    const fs::path path =
        fs::path(input).is_absolute() ? fs::path(input) : root / input;
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          const std::string rel = rel_to_root(entry.path(), root);
          if (!rel.empty()) rel_files.push_back(rel);
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      const std::string rel = rel_to_root(path, root);
      rel_files.push_back(rel.empty() ? input : rel);
    } else {
      std::cerr << "error: no such file or directory: " << input << '\n';
      return 2;
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  // -- lint --
  std::vector<lint::Finding> findings;
  std::size_t scanned = 0;
  for (const std::string& rel : rel_files) {
    std::string content;
    if (!read_file(root / rel, content)) {
      std::cerr << "error: cannot read " << (root / rel).string() << '\n';
      return 2;
    }
    ++scanned;
    auto file_findings = lint::lint_file(rel, content, config);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  const bool clean = findings.empty();
  if (json_output) {
    std::cout << lint::to_json(std::move(findings), config.rules, scanned)
              << '\n';
  } else {
    std::sort(findings.begin(), findings.end(),
              [](const lint::Finding& a, const lint::Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    for (const lint::Finding& f : findings)
      std::cerr << f.file << ':' << f.line << ": [" << f.rule << "] "
                << f.message << "\n    " << f.snippet << '\n';
    std::cerr << scanned << " files, " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << '\n';
  }
  return clean ? 0 : 1;
}
