// plt_lint — project contract linter (S24). Token-level passes over the
// repo's own sources that machine-check the contracts PRs 1-4 stated in
// prose:
//
//   kernel-purity          src/kernels/ implementation code never
//                          allocates, throws, or does IO (kernels.hpp
//                          contract rule #3).
//   control-coverage       a function that binds a MiningControl must
//                          consult it (should_stop/set_control) or forward
//                          it — accepting a control and ignoring it is how
//                          projection loops silently lose cancellation.
//   assert-untrusted-index decode/read/parse functions over blob/varint
//                          data that subscript anything must carry a
//                          PLT_ASSERT or throw a bounds error.
//   span-registry          every PLT_SPAN / PLT_TRACE_COUNT /
//                          obs::count_kernel name is a string literal
//                          registered in src/obs/span_names.hpp (S23
//                          determinism rule #1).
//   no-banned-apis         no rand/srand, raw new/delete, std::regex,
//                          strtok, gets anywhere in the library.
//
// Three flow-sensitive rules (S28) run on a per-function statement/branch
// walker over the same classified stream, with stream order standing in
// for control flow:
//
//   taint-bounds           a value produced by a decode/parse/read call
//                          (or a Reader out-parameter) must pass a bounds
//                          check — PLT_ASSERT, branch, std::min/clamp,
//                          comparison — before it is used as a subscript
//                          or a length (resize/memcpy/subspan/...).
//   syscall-check          raw `::syscall(...)` returns in src/serve/ +
//                          src/shard/ (fork/waitpid/mmap/epoll_ctl/read/
//                          write/accept/...) must be consumed; statement
//                          position or (void)-discard needs an allow().
//   typed-status           catch handlers on failpoint-reachable error
//                          paths in src/serve/ + src/shard/ must produce
//                          a typed Status/MineStatus/error response,
//                          rethrow, return a value, or log — never a bare
//                          return or a silent drop.
//
// The passes work on a character-classified view of each file (comments
// stripped, string literals tracked), not an AST: robust to any C++ the
// repo writes, zero build dependencies, and fast enough to run on every
// commit. Findings are suppressable per site:
//
//   // plt-lint: allow(rule)        this line and the next
//   // plt-lint: allow-file(rule)   the whole file (top-of-file pragmas)
//
// The library half (this header + lint.cpp) is UI-free so the golden
// fixture tests link it directly; main.cpp adds file discovery
// (compile_commands.json or directory walks) and the JSON report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace plt::lint {

/// One rule violation at one site.
struct Finding {
  std::string file;     ///< path as given (normalized, '/'-separated)
  std::size_t line = 0; ///< 1-based
  std::string rule;
  std::string message;
  std::string snippet;  ///< the offending source line, trimmed
};

/// All rule names, in report order.
const std::vector<std::string>& all_rules();
bool is_rule(const std::string& name);

struct LintConfig {
  /// Rules to run (default: all eight).
  std::vector<std::string> rules = all_rules();
  /// Registered span / counter names (from src/obs/span_names.hpp).
  std::vector<std::string> registry_spans;
  std::vector<std::string> registry_counters;
};

/// Character-classified source: comments blanked, string/char literal
/// extents tracked so word scans never match inside either. Exposed for
/// the unit tests.
struct SourceText {
  std::vector<std::string> lines;          ///< code with comments blanked
  std::vector<std::string> raw;            ///< original lines
  /// is_string[l][c] == true when lines[l][c] sits inside a string or
  /// character literal (quotes included).
  std::vector<std::vector<char>> in_string;

  std::size_t line_count() const { return lines.size(); }
};

/// Splits and classifies a whole file.
SourceText classify(const std::string& content);

/// Parsed suppressions of one file.
struct Suppressions {
  std::vector<std::string> file_rules;  ///< allow-file(...) pragmas
  /// allowed[line] (1-based) = rules allowed on that line.
  std::vector<std::vector<std::string>> allowed;

  bool allows(const std::string& rule, std::size_t line) const;
};
Suppressions parse_suppressions(const SourceText& text);

/// Extracts the kSpans / kCounters literals from span_names.hpp content.
void parse_registry(const std::string& registry_content,
                    std::vector<std::string>& spans,
                    std::vector<std::string>& counters);

/// Lints one file. `rel_path` decides which rules apply (paths are
/// interpreted relative to the repo root, '/'-separated).
std::vector<Finding> lint_file(const std::string& rel_path,
                               const std::string& content,
                               const LintConfig& config);

/// Serializes findings as the machine-readable report
/// {"version":1,"files_scanned":N,"rules":[...],"findings":[...]}.
/// Findings are emitted in (file, line, rule) order.
std::string to_json(std::vector<Finding> findings,
                    const std::vector<std::string>& rules,
                    std::size_t files_scanned);

}  // namespace plt::lint
