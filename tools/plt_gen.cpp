// plt-gen — synthetic dataset generator CLI: writes FIMI files from any
// registered generator (or fully custom Quest parameters) plus the
// statistics block, so experiments elsewhere can consume the exact same
// workloads this repo benchmarks with.
//
//   plt-gen --dataset quest-sparse --transactions 50000 --seed 7 -o out.dat
//   plt-gen --quest --transactions 100000 --items 870 --avg-len 10 \
//           --pattern-len 4 -o t10i4.dat
//   plt-gen --dataset chess-like --stats-only
#include <iostream>

#include "datagen/quest.hpp"
#include "datagen/registry.hpp"
#include "datagen/transforms.hpp"
#include "tdb/io.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace plt;
  const Args args(argc, argv);

  tdb::Database db;
  if (args.get_bool("quest", false)) {
    datagen::QuestConfig cfg;
    cfg.transactions =
        static_cast<std::size_t>(args.get_int("transactions", 10000));
    cfg.items = static_cast<std::size_t>(args.get_int("items", 1000));
    cfg.avg_transaction_len = args.get_double("avg-len", 10.0);
    cfg.avg_pattern_len = args.get_double("pattern-len", 4.0);
    cfg.patterns = static_cast<std::size_t>(args.get_int("patterns", 300));
    cfg.correlation = args.get_double("correlation", 0.5);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    db = datagen::generate_quest(cfg);
  } else if (args.has("dataset")) {
    const std::string name = args.get("dataset", "");
    try {
      if (args.has("transactions")) {
        db = datagen::make_dataset(
            name, static_cast<std::size_t>(args.get_int("transactions", 0)),
            static_cast<std::uint64_t>(args.get_int("seed", 1)));
      } else {
        db = datagen::make_dataset(name);
      }
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
  } else {
    std::cerr << "usage: " << argv[0]
              << " (--dataset NAME | --quest [params]) [--transactions N]\n"
              << "  [--seed S] [--sample F] [--twins K] [-o FILE.dat]\n"
              << "  [--stats-only]\ndatasets: ";
    for (const auto& spec : datagen::dataset_registry())
      std::cerr << spec.name << ' ';
    std::cerr << '\n';
    return 2;
  }

  if (args.has("sample"))
    db = datagen::sample_transactions(
        db, args.get_double("sample", 1.0),
        static_cast<std::uint64_t>(args.get_int("seed", 1)) + 9999);

  if (args.has("twins")) {
    const auto k = static_cast<Item>(args.get_int("twins", 0));
    std::vector<std::pair<Item, Item>> twins;
    const Item base = db.max_item();
    for (Item i = 1; i <= k; ++i) twins.emplace_back(i, base + i);
    db = datagen::add_twin_items(db, twins);
  }

  std::cerr << tdb::to_string(tdb::compute_stats(db));
  if (args.get_bool("stats-only", false)) return 0;

  const std::string out = args.get("o", args.get("output", ""));
  if (out.empty()) {
    tdb::write_fimi(db, std::cout);
  } else {
    try {
      tdb::write_fimi_file(db, out);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
    std::cerr << "wrote " << db.size() << " transactions -> " << out << '\n';
  }
  return 0;
}
