// plt-serve — concurrent query daemon over mmap'd PLT2 blobs (DESIGN.md
// S27, EXPERIMENTS.md E22).
//
//   plt-serve BLOB... [--port N] [--threads N] [--deadline-ms D]
//             [--memory-budget-mb M] [--ready-file PATH]
//
// Positional blobs are assigned blob_id 0, 1, ... in order. --port 0 (the
// default) binds an ephemeral port; --ready-file writes "<port>\n" once
// the daemon is accepting, which is how scripts (and the CLI checks) learn
// the binding without racing the startup. SIGHUP hot-swaps the blobs from
// the same paths; SIGINT/SIGTERM drain and exit 0.
//
// Flags are strict: an unknown flag is a usage error (exit 2), never
// silently ignored — a typo'd --deadline-msec must not run undeadlined.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "serve/server.hpp"
#include "util/args.hpp"

namespace {

using namespace plt;

std::atomic<int> g_reload{0};
std::atomic<int> g_stop{0};

void on_signal(int sig) {
  if (sig == SIGHUP)
    g_reload.store(1, std::memory_order_release);
  else
    g_stop.store(1, std::memory_order_release);
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " BLOB... [--port N] [--threads N]\n"
            << "  [--deadline-ms D] [--memory-budget-mb M] [--max-frame B]\n"
            << "  [--ready-file PATH]\n"
            << "serves support/membership/top-k/rule queries over the\n"
            << "listed PLT2 blobs (blob_id = position). SIGHUP reloads.\n";
  return 2;
}

const char* const kKnownFlags[] = {"port",          "threads",
                                   "deadline-ms",   "memory-budget-mb",
                                   "max-frame",     "ready-file"};

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  for (const std::string& key : args.keys()) {
    bool known = false;
    for (const char* flag : kKnownFlags) known = known || key == flag;
    if (!known) {
      std::cerr << "error: unknown flag --" << key << '\n';
      return usage(argv[0]);
    }
  }
  if (args.positional().empty()) return usage(argv[0]);

  serve::ServerOptions options;
  options.blob_paths = args.positional();
  options.port = static_cast<std::uint16_t>(args.get_int("port", 0));
  options.threads = static_cast<unsigned>(args.get_int("threads", 1));
  options.default_deadline_ms =
      static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
  options.memory_budget =
      static_cast<std::size_t>(args.get_int("memory-budget-mb", 64)) << 20;
  options.max_frame = static_cast<std::uint32_t>(
      args.get_int("max-frame", serve::kDefaultMaxFrame));

  serve::Server server(std::move(options));
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  server.watch_reload_flag(&g_reload);

  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigaction(SIGHUP, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  std::cerr << "plt-serve: listening on 127.0.0.1:" << server.port() << " ("
            << args.positional().size() << " blob(s))\n";

  if (args.has("ready-file")) {
    // tmp + rename so a watcher never reads a half-written port number.
    const std::string path = args.get("ready-file", "");
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << server.port() << '\n';
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::cerr << "error: cannot write ready file " << path << '\n';
      server.stop();
      return 1;
    }
  }

  while (g_stop.load(std::memory_order_acquire) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.stop();
  std::cerr << "plt-serve: drained\n";
  return 0;
}
