// plt-mine — command-line frequent-itemset miner over the libplt stack.
//
// Input:      --input FILE (FIMI format)  or  --dataset NAME [--scale S]
// Threshold:  --minsup N (absolute)  or  --minsup-frac F (relative)
// Algorithm:  --algorithm plt-conditional|plt-topdown|plt-topdown-sweep|
//                         apriori|fp-growth|h-mine|eclat|declat   (or: all)
// Tasks:      --closed --maximal         condensed representations
//             --top-k K                  k most frequent itemsets
//             --contains "1 2 3"         itemsets containing these items
//             --rules --minconf C        association rules
//             --serialize OUT.plt        write the varint-encoded PLT
//             --emit-blob OUT.plt        alias of --serialize (plt-serve
//                                        quick-start wording)
//             --stats                    dataset statistics only
// Output:     --output text|csv (default text), --limit N (rows shown)
// Tracing:    --trace FILE               span-tree JSON for the whole run
//             --trace-folded FILE        flamegraph-folded stacks
#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/charm.hpp"
#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "core/closed.hpp"
#include "core/miner.hpp"
#include "core/queries.hpp"
#include "core/validate.hpp"
#include "datagen/registry.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/experiment.hpp"
#include "harness/tracing.hpp"
#include "rules/generator.hpp"
#include "tdb/io.hpp"
#include "tdb/stats.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--input FILE | --dataset NAME)\n"
      << "  [--minsup N | --minsup-frac F] [--algorithm NAME|all]\n"
      << "  [--closed] [--closed-native] [--maximal] [--top-k K]\n"
      << "  [--contains \"ITEMS\"]\n"
      << "  [--rules [--minconf C]] [--serialize FILE | --emit-blob FILE]\n"
      << "  [--stats]\n"
      << "  [--output text|csv] [--limit N] [--scale S]\n"
      << "  [--backend scalar|sse42|avx2|simd|auto] [--plan fixed|adaptive]\n"
      << "  [--validate] [--trace FILE] [--trace-folded FILE]\n"
      << "datasets: ";
  for (const auto& spec : datagen::dataset_registry())
    std::cerr << spec.name << ' ';
  std::cerr << '\n';
  return 2;
}

std::optional<core::Algorithm> parse_algorithm(const std::string& name) {
  for (const core::Algorithm algorithm : core::all_algorithms())
    if (name == core::algorithm_name(algorithm)) return algorithm;
  if (name == "brute-force") return core::Algorithm::kBruteForce;
  return std::nullopt;
}

void print_itemsets(const core::FrequentItemsets& itemsets,
                    const std::string& format, std::size_t limit) {
  core::FrequentItemsets sorted = itemsets;
  sorted.canonicalize();
  Table table({"itemset", "support"});
  const std::size_t n = limit ? std::min(limit, sorted.size())
                              : sorted.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::ostringstream items;
    for (std::size_t j = 0; j < sorted.itemset(i).size(); ++j) {
      if (j) items << ' ';
      items << sorted.itemset(i)[j];
    }
    table.add_row({items.str(), std::to_string(sorted.support(i))});
  }
  std::cout << (format == "csv" ? table.to_csv() : table.to_text());
  if (n < sorted.size())
    std::cout << "... (" << sorted.size() - n << " more; use --limit 0)\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (!harness::apply_backend_flag(args, /*announce=*/false)) return 2;
  // An unknown --plan refuses to run with the usage text, mirroring the
  // --backend contract: never silently mine under the wrong plan.
  if (!harness::apply_plan_flag(args, /*announce=*/false))
    return usage(argv[0]);
  // One session around everything the invocation does (mining, queries,
  // serialization); written on every exit path by the destructor.
  harness::TraceScope trace(args);
  // --validate wires the PLT_VALIDATE machinery for this run: every PLT the
  // mine builds or decodes gets the full structural check (DESIGN.md S24),
  // and a violation aborts with a diagnostic instead of mining garbage.
  if (args.get_bool("validate", false)) {
    core::set_validation_enabled(true);
    std::cerr << "structural validation: enabled\n";
  }
  const std::string format = args.get("output", "text");
  const auto limit = static_cast<std::size_t>(args.get_int("limit", 50));

  // -- load --
  tdb::Database db;
  try {
    if (args.has("input")) {
      db = tdb::read_fimi_file(args.get("input", ""));
    } else if (args.has("dataset")) {
      db = harness::scaled_dataset(args.get("dataset", ""),
                                   args.get_double("scale", 1.0));
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  if (db.empty()) {
    std::cerr << "error: empty database\n";
    return 1;
  }

  if (args.get_bool("stats", false)) {
    std::cout << tdb::to_string(tdb::compute_stats(db));
    return 0;
  }

  const Count minsup =
      args.has("minsup-frac")
          ? harness::absolute_support(db, args.get_double("minsup-frac", 0.01))
          : static_cast<Count>(args.get_int("minsup", 2));
  if (minsup < 1) {
    std::cerr << "error: minsup must be >= 1\n";
    return 1;
  }

  // -- query-style tasks --
  if (args.has("top-k")) {
    core::TopKOptions options;
    const auto top = core::mine_top_k(
        db, static_cast<std::size_t>(args.get_int("top-k", 10)), options);
    print_itemsets(top, format, limit);
    return 0;
  }
  if (args.get_bool("closed-native", false)) {
    // CHARM: closed itemsets mined directly, no full enumeration.
    core::FrequentItemsets closed;
    baselines::mine_charm(db, minsup, core::collect_into(closed));
    std::cerr << closed.size() << " closed itemsets (native CHARM)\n";
    print_itemsets(closed, format, limit);
    return 0;
  }
  if (args.has("contains")) {
    Itemset constraint;
    std::istringstream in(args.get("contains", ""));
    for (Item item; in >> item;) constraint.push_back(item);
    if (constraint.empty()) return usage(argv[0]);
    const auto result = core::mine_containing(db, minsup, constraint);
    if (!result.constraint_support) {
      std::cout << "constraint itemset is not frequent at minsup " << minsup
                << '\n';
      return 0;
    }
    print_itemsets(result.itemsets, format, limit);
    return 0;
  }

  // -- algorithm selection --
  const std::string algo_name = args.get("algorithm", "plt-conditional");
  if (algo_name == "all") {
    Table table({"algorithm", "build", "mine", "total", "structure",
                 "frequent"});
    std::optional<core::FrequentItemsets> reference;
    for (const core::Algorithm algorithm : core::all_algorithms()) {
      try {
        auto result = core::mine(db, minsup, algorithm);
        if (!reference) reference = result.itemsets;
        const bool agrees = core::FrequentItemsets::equal(
            *reference, result.itemsets);
        table.add_row(
            {core::algorithm_name(algorithm),
             format_duration(result.build_seconds),
             format_duration(result.mine_seconds),
             format_duration(result.build_seconds + result.mine_seconds),
             format_bytes(result.structure_bytes),
             std::to_string(result.itemsets.size()) +
                 (agrees ? "" : " (MISMATCH!)")});
      } catch (const std::exception& error) {
        table.add_row({core::algorithm_name(algorithm), "-", "-", "-", "-",
                       std::string("error: ") + error.what()});
      }
    }
    std::cout << (format == "csv" ? table.to_csv() : table.to_text());
    return 0;
  }

  const auto algorithm = parse_algorithm(algo_name);
  if (!algorithm) {
    std::cerr << "error: unknown algorithm " << algo_name << '\n';
    return usage(argv[0]);
  }

  core::MineResult result;
  try {
    result = core::mine(db, minsup, *algorithm);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  std::cerr << result.itemsets.size() << " frequent itemsets in "
            << format_duration(result.build_seconds + result.mine_seconds)
            << '\n';

  if (args.get_bool("closed", false)) {
    print_itemsets(core::closed_itemsets(result.itemsets), format, limit);
  } else if (args.get_bool("maximal", false)) {
    print_itemsets(core::maximal_itemsets(result.itemsets), format, limit);
  } else if (args.get_bool("rules", false)) {
    rules::RuleOptions options;
    options.min_confidence = args.get_double("minconf", 0.6);
    const auto found =
        rules::generate_rules(result.itemsets, db.size(), options);
    const std::size_t n = limit ? std::min(limit, found.size())
                                : found.size();
    for (std::size_t i = 0; i < n; ++i)
      std::cout << rules::to_string(found[i]) << '\n';
    if (n < found.size())
      std::cout << "... (" << found.size() - n << " more)\n";
  } else {
    print_itemsets(result.itemsets, format, limit);
  }

  if (args.has("serialize") || args.has("emit-blob")) {
    const std::string out_path = args.has("serialize")
                                     ? args.get("serialize", "")
                                     : args.get("emit-blob", "");
    const auto built = core::build_from_database(db, minsup);
    const auto blob = compress::encode_plt(built.plt);
    // Atomic write (tmp + fsync + rename): a crash mid-serialize never
    // leaves a torn blob where a previous good one stood.
    try {
      compress::write_blob_file(blob, out_path);
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
    std::cerr << "PLT serialized: " << blob.size() << " bytes -> " << out_path
              << '\n';
  }
  return 0;
}
