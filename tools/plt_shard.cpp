// plt-shard — shard-parallel frequent-itemset mining across processes.
//
// Coordinator (default mode): splits the dataset into rank-window shards
// over one shared PLT2 blob, fans out one worker process per shard,
// supervises them (dead or timed-out workers are relaunched and resume
// from their rank-granular checkpoint logs), and merges the logs into the
// single-process emission order.
//
//   plt-shard --dataset quest-sparse --minsup-frac 0.005 --workers 4 \
//             --dir /tmp/job [--plan adaptive] [--timeout-ms N]
//             [--retries N] [--launch-prefix "taskset -c 0-3"]
//
// Worker mode (what the coordinator execs; also runnable by hand or over
// ssh against a shipped job directory):
//
//   plt-shard --worker --dir /tmp/job --shard K
//
// Split-only + external launch: --emit-commands writes the job directory
// and prints one worker command line per shard instead of launching;
// --merge replays the finished logs of an existing job directory.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/miner.hpp"
#include "datagen/registry.hpp"
#include "harness/backend.hpp"
#include "harness/datasets.hpp"
#include "harness/experiment.hpp"
#include "harness/tracing.hpp"
#include "shard/coordinator.hpp"
#include "shard/worker.hpp"
#include "tdb/io.hpp"
#include "util/args.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace plt;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--input FILE | --dataset NAME) --dir DIR\n"
      << "  [--minsup N | --minsup-frac F] [--workers N] [--scale S]\n"
      << "  [--plan fixed|adaptive] [--timeout-ms N] [--retries N]\n"
      << "  [--launch-prefix \"CMD ARGS\"] [--emit-commands] [--limit N]\n"
      << "  [--trace FILE] [--trace-folded FILE]\n"
      << "or: " << argv0 << " --worker --dir DIR --shard K\n"
      << "or: " << argv0 << " --merge --dir DIR [--limit N]\n"
      << "datasets: ";
  for (const auto& spec : datagen::dataset_registry())
    std::cerr << spec.name << ' ';
  std::cerr << '\n';
  return 2;
}

// The path the coordinator re-execs for workers: this binary.
std::string self_path(const char* argv0) {
  char buffer[4096];
  const ssize_t n =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (n > 0) return std::string(buffer, static_cast<std::size_t>(n));
  return argv0;
}

void print_report(const shard::ShardReport& report, std::size_t itemsets) {
  std::cerr << itemsets << " frequent itemsets from " << report.shards
            << " shards (" << report.attempts << " launches, "
            << report.relaunches << " relaunches)\n"
            << "  split " << format_duration(report.split_seconds)
            << "  mine " << format_duration(report.mine_seconds)
            << "  merge " << format_duration(report.merge_seconds)
            << "  blob " << format_bytes(report.blob_bytes) << '\n';
  if (report.shard_wall.count() > 0)
    std::cerr << "  shard wall: p50 "
              << format_duration(
                     static_cast<double>(report.shard_wall.percentile_ns(0.5)) /
                     1e9)
              << "  max "
              << format_duration(
                     static_cast<double>(report.shard_wall.percentile_ns(1.0)) /
                     1e9)
              << '\n';
}

void print_itemsets(const core::FrequentItemsets& itemsets,
                    std::size_t limit) {
  core::FrequentItemsets sorted = itemsets;
  sorted.canonicalize();
  Table table({"itemset", "support"});
  const std::size_t n = limit ? std::min(limit, sorted.size())
                              : sorted.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::ostringstream items;
    for (std::size_t j = 0; j < sorted.itemset(i).size(); ++j) {
      if (j) items << ' ';
      items << sorted.itemset(i)[j];
    }
    table.add_row({items.str(), std::to_string(sorted.support(i))});
  }
  std::cout << table.to_text();
  if (n < sorted.size())
    std::cout << "... (" << sorted.size() - n << " more; use --limit 0)\n";
}

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  for (std::string word; in >> word;) words.push_back(word);
  return words;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::string dir = args.get("dir", "");

  // -- worker mode: one shard, then exit with the worker's status --
  if (args.get_bool("worker", false)) {
    if (dir.empty() || !args.has("shard")) return usage(argv[0]);
    return shard::run_worker(
        dir, static_cast<std::size_t>(args.get_int("shard", 0)));
  }

  if (!harness::apply_backend_flag(args, /*announce=*/false)) return 2;
  if (!harness::apply_plan_flag(args, /*announce=*/false))
    return usage(argv[0]);
  harness::TraceScope trace(args);
  const auto limit = static_cast<std::size_t>(args.get_int("limit", 20));
  if (dir.empty()) return usage(argv[0]);

  // -- merge mode: replay the logs of a finished job directory --
  if (args.get_bool("merge", false)) {
    try {
      core::FrequentItemsets itemsets;
      shard::ShardReport report;
      Timer merge_timer;
      shard::merge_job(dir, core::collect_into(itemsets), &report);
      report.merge_seconds = merge_timer.seconds();
      print_report(report, itemsets.size());
      print_itemsets(itemsets, limit);
      return 0;
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << '\n';
      return 1;
    }
  }

  // -- coordinator --
  tdb::Database db;
  try {
    if (args.has("input")) {
      db = tdb::read_fimi_file(args.get("input", ""));
    } else if (args.has("dataset")) {
      db = harness::scaled_dataset(args.get("dataset", ""),
                                   args.get_double("scale", 1.0));
    } else {
      return usage(argv[0]);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  if (db.empty()) {
    std::cerr << "error: empty database\n";
    return 1;
  }
  const Count minsup =
      args.has("minsup-frac")
          ? harness::absolute_support(db, args.get_double("minsup-frac", 0.01))
          : static_cast<Count>(args.get_int("minsup", 2));
  if (minsup < 1) {
    std::cerr << "error: minsup must be >= 1\n";
    return 1;
  }

  shard::ShardOptions options;
  options.dir = dir;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  options.worker_binary = self_path(argv[0]);
  options.plan = args.get("plan", "");
  options.launch_prefix = split_words(args.get("launch-prefix", ""));
  options.max_launch_attempts =
      static_cast<std::size_t>(args.get_int("retries", 2)) + 1;
  if (args.has("timeout-ms"))
    options.attempt_timeout =
        std::chrono::milliseconds(args.get_int("timeout-ms", 0));

  try {
    if (args.get_bool("emit-commands", false)) {
      // Split only: write the job directory, print one command per shard
      // for an external (ssh/slurm-style) launcher, merge later.
      const shard::Manifest manifest =
          shard::prepare_job(db, minsup, options);
      for (const shard::ShardSpec& spec : manifest.shards) {
        const auto command = shard::worker_command(options, spec.shard_id);
        for (std::size_t i = 0; i < command.size(); ++i)
          std::cout << (i ? " " : "") << command[i];
        std::cout << '\n';
      }
      std::cerr << manifest.shards.size() << " shards over max rank "
                << manifest.max_rank << "; merge with: " << argv[0]
                << " --merge --dir " << dir << '\n';
      return 0;
    }

    core::FrequentItemsets itemsets;
    shard::ShardReport report;
    const core::MineStatus status = shard::mine_sharded(
        db, minsup, core::collect_into(itemsets), options, &report);
    if (status != core::MineStatus::kCompleted) {
      std::cerr << "error: sharded mine stopped: " << core::to_string(status)
                << '\n';
      return 1;
    }
    print_report(report, itemsets.size());
    print_itemsets(itemsets, limit);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
