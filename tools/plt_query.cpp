// plt-query — one-shot client for a running plt-serve daemon.
//
//   plt-query --port N --op support|membership|topk|rule|ping|stats|reload
//             [--blob ID] [--ranks "1 2 3"] [--consequent R] [--k K]
//             [--deadline-ms D]
//
// Queries are in rank space (the blob stores position vectors over ranks;
// the item map belongs to the run that produced the blob). Prints the
// typed answer to stdout; any server error status or transport failure is
// a non-zero exit with the diagnostic on stderr.
#include <iostream>
#include <sstream>

#include "serve/client.hpp"
#include "util/args.hpp"

namespace {

using namespace plt;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " --port N --op OP [--blob ID]\n"
            << "  [--ranks \"1 2 3\"] [--consequent R] [--k K]\n"
            << "  [--deadline-ms D]\n"
            << "ops: support membership topk rule ping stats reload\n";
  return 2;
}

const char* const kKnownFlags[] = {"port", "op",          "blob", "ranks",
                                   "k",    "consequent",  "deadline-ms"};

std::vector<Rank> parse_ranks(const std::string& text) {
  std::vector<Rank> ranks;
  std::istringstream in(text);
  for (Rank rank; in >> rank;) ranks.push_back(rank);
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  for (const std::string& key : args.keys()) {
    bool known = false;
    for (const char* flag : kKnownFlags) known = known || key == flag;
    if (!known) {
      std::cerr << "error: unknown flag --" << key << '\n';
      return usage(argv[0]);
    }
  }
  if (!args.has("port") || !args.has("op")) return usage(argv[0]);

  const auto port = static_cast<std::uint16_t>(args.get_int("port", 0));
  const auto blob_id = static_cast<std::uint16_t>(args.get_int("blob", 0));
  const auto deadline_ms =
      static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
  const std::string op = args.get("op", "");
  const std::vector<Rank> ranks = parse_ranks(args.get("ranks", ""));

  try {
    serve::QueryClient client(port);
    if (op == "support") {
      std::cout << client.support(blob_id, ranks, deadline_ms) << '\n';
    } else if (op == "membership") {
      if (ranks.empty()) return usage(argv[0]);
      const serve::Response response = client.membership(blob_id, ranks);
      std::cout << (response.member ? "member" : "absent") << ' '
                << response.support << '\n';
    } else if (op == "topk") {
      const auto top = client.top_k(
          blob_id, static_cast<std::uint32_t>(args.get_int("k", 10)));
      for (const serve::TopEntry& entry : top)
        std::cout << entry.rank << ' ' << entry.support << '\n';
    } else if (op == "rule") {
      const auto consequent =
          static_cast<Rank>(args.get_int("consequent", 0));
      if (consequent == 0) return usage(argv[0]);
      const serve::Response response =
          client.rule(blob_id, ranks, consequent);
      std::cout << "support " << response.support << " antecedent "
                << response.antecedent_support << " confidence_ppm "
                << response.confidence_ppm << '\n';
    } else if (op == "ping") {
      if (!client.ping()) {
        std::cerr << "error: no pong\n";
        return 1;
      }
      std::cout << "pong\n";
    } else if (op == "stats") {
      std::cout << client.stats().detail << '\n';
    } else if (op == "reload") {
      std::cout << "generation " << client.reload().generation << '\n';
    } else {
      std::cerr << "error: unknown op " << op << '\n';
      return usage(argv[0]);
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
  return 0;
}
