#include "rules/metrics.hpp"

#include <limits>

namespace plt::rules {

Metrics compute_metrics(Count union_support, Count antecedent_support,
                        Count consequent_support, Count transactions) {
  PLT_ASSERT(transactions > 0, "metrics need a non-empty database");
  PLT_ASSERT(antecedent_support >= union_support &&
                 consequent_support >= union_support,
             "marginal supports cannot be below the union support");
  const auto n = static_cast<double>(transactions);
  Metrics m;
  m.support = static_cast<double>(union_support) / n;
  const double px = static_cast<double>(antecedent_support) / n;
  const double py = static_cast<double>(consequent_support) / n;
  m.confidence = antecedent_support == 0
                     ? 0.0
                     : static_cast<double>(union_support) /
                           static_cast<double>(antecedent_support);
  m.lift = py == 0.0 ? 0.0 : m.confidence / py;
  m.leverage = m.support - px * py;
  m.conviction = m.confidence >= 1.0
                     ? std::numeric_limits<double>::infinity()
                     : (1.0 - py) / (1.0 - m.confidence);
  return m;
}

}  // namespace plt::rules
