#include "rules/filter.hpp"

#include <algorithm>
#include <map>

namespace plt::rules {

double metric_value(const Rule& rule, RuleMetric metric) {
  switch (metric) {
    case RuleMetric::kSupport: return rule.metrics.support;
    case RuleMetric::kConfidence: return rule.metrics.confidence;
    case RuleMetric::kLift: return rule.metrics.lift;
    case RuleMetric::kLeverage: return rule.metrics.leverage;
  }
  return 0.0;
}

std::vector<Rule> filter_by(std::vector<Rule> rules, RuleMetric metric,
                            double threshold) {
  rules.erase(std::remove_if(rules.begin(), rules.end(),
                             [&](const Rule& rule) {
                               return metric_value(rule, metric) < threshold;
                             }),
              rules.end());
  return rules;
}

std::vector<Rule> top_k_by(std::vector<Rule> rules, RuleMetric metric,
                           std::size_t k) {
  std::sort(rules.begin(), rules.end(), [&](const Rule& a, const Rule& b) {
    const double ma = metric_value(a, metric);
    const double mb = metric_value(b, metric);
    if (ma != mb) return ma > mb;
    if (a.metrics.confidence != b.metrics.confidence)
      return a.metrics.confidence > b.metrics.confidence;
    if (a.metrics.support != b.metrics.support)
      return a.metrics.support > b.metrics.support;
    if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
    return a.consequent < b.consequent;
  });
  if (rules.size() > k) rules.resize(k);
  return rules;
}

std::vector<Rule> prune_redundant(const std::vector<Rule>& rules,
                                  double epsilon) {
  // Group by consequent; within a group, a rule is redundant if a rule
  // with a strict-subset antecedent has confidence >= its own - epsilon.
  std::map<Itemset, std::vector<const Rule*>> by_consequent;
  for (const Rule& rule : rules) by_consequent[rule.consequent].push_back(&rule);

  std::vector<Rule> kept;
  kept.reserve(rules.size());
  for (const Rule& rule : rules) {
    bool redundant = false;
    for (const Rule* other : by_consequent[rule.consequent]) {
      if (other == &rule) continue;
      if (other->antecedent.size() >= rule.antecedent.size()) continue;
      if (!std::includes(rule.antecedent.begin(), rule.antecedent.end(),
                         other->antecedent.begin(),
                         other->antecedent.end()))
        continue;
      if (other->metrics.confidence + epsilon >= rule.metrics.confidence) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(rule);
  }
  return kept;
}

}  // namespace plt::rules
