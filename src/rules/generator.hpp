// Association-rule generation — step 2 of the problem the paper defines in
// §2. Implements ap-genrules (Agrawal & Srikant [2]): for each frequent
// itemset, grow consequents level-wise; confidence is anti-monotone in the
// consequent, so failing consequents prune all of their supersets.
#pragma once

#include <string>
#include <vector>

#include "core/itemset_collector.hpp"
#include "rules/metrics.hpp"

namespace plt::rules {

struct Rule {
  Itemset antecedent;  ///< X (sorted)
  Itemset consequent;  ///< Y (sorted), disjoint from X
  Count union_support = 0;
  Metrics metrics;
};

/// "{1,2} => {3} (sup=0.10 conf=0.85 lift=2.1)"
std::string to_string(const Rule& rule);

struct RuleOptions {
  double min_confidence = 0.5;
  /// Upper bound on generated rules (0 = unlimited) — guards exponential
  /// blowups on dense data.
  std::size_t max_rules = 0;
};

/// Generates every rule X => Y with confidence >= min_confidence from the
/// mined frequent itemsets. `frequent` must be support-complete: every
/// subset of a frequent itemset must itself be present (true for the output
/// of every miner in this repo). `transactions` = |D| for the metrics.
std::vector<Rule> generate_rules(const core::FrequentItemsets& frequent,
                                 Count transactions,
                                 const RuleOptions& options = {});

}  // namespace plt::rules
