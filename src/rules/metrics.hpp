// Rule interestingness metrics (paper §2 defines support and confidence;
// lift, leverage and conviction are the standard companions used when
// ranking the generated rules in the examples).
#pragma once

#include "util/common.hpp"

namespace plt::rules {

struct Metrics {
  double support = 0.0;     ///< P(X ∪ Y)
  double confidence = 0.0;  ///< P(Y | X)
  double lift = 0.0;        ///< confidence / P(Y)
  double leverage = 0.0;    ///< P(X∪Y) − P(X)·P(Y)
  double conviction = 0.0;  ///< (1 − P(Y)) / (1 − confidence); inf capped
};

/// Computes all metrics from absolute counts.
/// `transactions` is |D|; the three counts are absolute supports.
Metrics compute_metrics(Count union_support, Count antecedent_support,
                        Count consequent_support, Count transactions);

}  // namespace plt::rules
