#include "rules/generator.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace plt::rules {

namespace {

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

using SupportMap = std::unordered_map<Itemset, Count, ItemsetHash>;

Itemset set_minus(std::span<const Item> z, const Itemset& y) {
  Itemset x;
  x.reserve(z.size() - y.size());
  std::set_difference(z.begin(), z.end(), y.begin(), y.end(),
                      std::back_inserter(x));
  return x;
}

// Apriori-style join of same-length consequents sharing all but the last
// element.
std::vector<Itemset> join_consequents(const std::vector<Itemset>& level) {
  std::vector<Itemset> next;
  for (std::size_t a = 0; a < level.size(); ++a) {
    for (std::size_t b = a + 1; b < level.size(); ++b) {
      if (!std::equal(level[a].begin(), level[a].end() - 1,
                      level[b].begin()))
        break;
      Itemset joined = level[a];
      joined.push_back(level[b].back());
      next.push_back(std::move(joined));
    }
  }
  return next;
}

}  // namespace

std::string to_string(const Rule& rule) {
  auto render = [](const Itemset& s) {
    std::ostringstream out;
    out << '{';
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i) out << ',';
      out << s[i];
    }
    out << '}';
    return out.str();
  };
  std::ostringstream out;
  out << render(rule.antecedent) << " => " << render(rule.consequent);
  char buf[96];
  std::snprintf(buf, sizeof buf, " (sup=%.3f conf=%.3f lift=%.2f)",
                rule.metrics.support, rule.metrics.confidence,
                rule.metrics.lift);
  out << buf;
  return out.str();
}

std::vector<Rule> generate_rules(const core::FrequentItemsets& frequent,
                                 Count transactions,
                                 const RuleOptions& options) {
  // Support lookup for every frequent itemset.
  SupportMap supports;
  supports.reserve(frequent.size() * 2);
  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto items = frequent.itemset(i);
    supports.emplace(Itemset(items.begin(), items.end()),
                     frequent.support(i));
  }

  std::vector<Rule> rules;
  const auto support_of = [&](const Itemset& s) -> Count {
    const auto it = supports.find(s);
    PLT_ASSERT(it != supports.end(),
               "rule generation requires support-complete itemsets");
    return it->second;
  };

  for (std::size_t i = 0; i < frequent.size(); ++i) {
    const auto z = frequent.itemset(i);
    if (z.size() < 2) continue;
    const Count z_support = frequent.support(i);

    // Level 1 consequents: each single item of Z.
    std::vector<Itemset> level;
    for (const Item item : z) level.push_back({item});

    while (!level.empty()) {
      std::vector<Itemset> survivors;
      for (Itemset& y : level) {
        if (y.size() >= z.size()) continue;  // antecedent must be non-empty
        Itemset x = set_minus(z, y);
        const Count x_support = support_of(x);
        const double confidence = static_cast<double>(z_support) /
                                  static_cast<double>(x_support);
        if (confidence + 1e-12 < options.min_confidence) continue;
        Rule rule;
        rule.antecedent = std::move(x);
        rule.consequent = y;
        rule.union_support = z_support;
        rule.metrics = compute_metrics(z_support, x_support, support_of(y),
                                       transactions);
        rules.push_back(std::move(rule));
        if (options.max_rules > 0 && rules.size() >= options.max_rules)
          return rules;
        survivors.push_back(std::move(y));
      }
      if (survivors.empty()) break;
      level = join_consequents(survivors);
    }
  }
  return rules;
}

}  // namespace plt::rules
