// Rule post-processing: metric thresholds, top-k selection, and redundancy
// pruning. A rule X => Y is redundant when a simpler rule X' => Y with
// X' ⊂ X reaches at least the same confidence — the simpler rule carries
// strictly more information per premise (Aggarwal & Yu's "simple rules").
#pragma once

#include "rules/generator.hpp"

namespace plt::rules {

enum class RuleMetric { kSupport, kConfidence, kLift, kLeverage };

/// Value of one metric for ordering/filtering.
double metric_value(const Rule& rule, RuleMetric metric);

/// Rules whose chosen metric is >= threshold, order preserved.
std::vector<Rule> filter_by(std::vector<Rule> rules, RuleMetric metric,
                            double threshold);

/// The k best rules by the chosen metric, descending (ties broken by
/// confidence then support for determinism).
std::vector<Rule> top_k_by(std::vector<Rule> rules, RuleMetric metric,
                           std::size_t k);

/// Removes redundant rules: X => Y is dropped when some kept rule X' => Y
/// has X' ⊂ X and confidence >= conf(X => Y) - epsilon.
std::vector<Rule> prune_redundant(const std::vector<Rule>& rules,
                                  double epsilon = 1e-9);

}  // namespace plt::rules
