// Out-of-core-style mining straight from a serialized PLT blob — the
// payoff of the paper's indexing claim (§1/§6): with the sum-bucket index,
// the conditional approach never needs the whole structure decoded. The
// base vectors stream out of the blob bucket by bucket (highest rank
// first); only the re-inserted prefixes and the per-item conditional PLTs
// live in memory, which is exactly the working set of one partition task.
//
// The rank walk doubles as a recovery boundary: with a checkpoint path
// configured, every completed rank appends one record (see checkpoint.hpp)
// and a crashed run resumes from the first unrecorded rank, replaying the
// recorded emissions so the combined output is byte-identical to an
// uninterrupted mine (tests enforce it).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "compress/index.hpp"
#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "core/planner.hpp"
#include "obs/trace.hpp"
#include "tdb/stats.hpp"

namespace plt::compress {

struct OocStats {
  std::size_t bytes_decoded = 0;     ///< blob bytes visited
  std::size_t peak_overlay_bytes = 0; ///< in-memory prefix overlay footprint
  std::uint64_t checkpoint_records = 0;  ///< rank records written this run
  std::uint64_t resumed_ranks = 0;   ///< ranks replayed from a checkpoint
  /// Ranks streamed without emitting (window warm-up above rank_hi plus the
  /// re-streamed prefix of a resumed run).
  std::uint64_t warmed_ranks = 0;
  core::ResilienceStats resilience;  ///< control/failpoint/CRC activity
  /// Aggregated span tree of this run when tracing was enabled and no outer
  /// session owned the walk (same contract as MineResult::trace); null
  /// otherwise. A resumed run's tree carries the "ooc-resume" span.
  std::shared_ptr<const obs::TraceNode> trace;
};

struct OocOptions {
  /// Cooperative cancellation / deadline / memory budget, checked once per
  /// rank. Null = unlimited.
  const core::MiningControl* control = nullptr;
  /// Path of the crash-recovery log; empty disables checkpointing. The log
  /// is bound to (blob CRC, min_support), so a stale file from different
  /// inputs is ignored, not replayed.
  std::string checkpoint_path;
  /// With a checkpoint path set: replay a matching existing log instead of
  /// restarting from scratch. false always restarts (the log is rewritten).
  bool resume = true;
  /// Execution plan ("", "fixed", "adaptive" — see core::select_plan).
  /// Adaptive routes each streamed rank's conditional subtrees through the
  /// planner; emissions stay byte-identical in content and order, so
  /// checkpoints written under one plan replay under the other. Unknown
  /// names throw std::invalid_argument.
  std::string plan;
  /// Cost-model thresholds used when the adaptive plan is active.
  core::PlanConfig plan_config;
  /// Rank window to mine, inclusive (0 = unbounded end: the full range
  /// [1, max_rank]). This is the shard-worker unit: rank partitions are
  /// independent by construction (Def 4.1.3), so a worker that streams the
  /// ranks above rank_hi *without emitting* (the same warm pass a resume
  /// performs — the overlay is a pure function of (blob, ranks processed))
  /// and then mines rank_hi..rank_lo emits exactly the window's slice of
  /// the full-range emission sequence. The checkpoint binding folds a
  /// proper sub-window into the blob CRC (see window_binding_crc), so logs
  /// from different windows never cross-replay. Throws
  /// std::invalid_argument when the window is empty or exceeds max_rank.
  Rank rank_lo = 0;
  Rank rank_hi = 0;
  /// Per-partition stats of the ranked view the blob was built from (entry
  /// j-1 describes partition j, as compute_all_partition_stats returns).
  /// Optional; consulted only under the adaptive plan, by a rank-level
  /// planner that owns these *view* stats — the projection engine itself
  /// stays shape-only, because its depth-0 subtrees live inside one rank's
  /// conditional database and must not be mistaken for view partitions.
  /// The win is the O(1) single-path witness: when every partition at or
  /// above a streamed rank is all full paths, that rank's whole subtree
  /// expands without building a conditional PLT.
  std::vector<tdb::PartitionStats> partition_stats;
};

/// Mines every frequent itemset of the PLT serialized in `blob` at
/// `min_support`. `item_of[r-1]` maps rank r to the original item id
/// reported through the sink (pass 1..max_rank for identity). Results are
/// identical to in-memory conditional mining of the decoded PLT (tests
/// enforce it). Returns kCompleted for an exhaustive mine, or the tripped
/// control's status after a clean early unwind (already-emitted itemsets
/// stay valid). Throws std::runtime_error on malformed blobs or item maps
/// that do not cover every rank.
core::MineStatus mine_from_blob(std::span<const std::uint8_t> blob,
                                const std::vector<Item>& item_of,
                                Count min_support,
                                const core::ItemsetSink& sink,
                                OocStats* stats = nullptr,
                                const OocOptions& options = {});

}  // namespace plt::compress
