// Out-of-core-style mining straight from a serialized PLT blob — the
// payoff of the paper's indexing claim (§1/§6): with the sum-bucket index,
// the conditional approach never needs the whole structure decoded. The
// base vectors stream out of the blob bucket by bucket (highest rank
// first); only the re-inserted prefixes and the per-item conditional PLTs
// live in memory, which is exactly the working set of one partition task.
#pragma once

#include <span>

#include "compress/index.hpp"
#include "core/itemset_collector.hpp"

namespace plt::compress {

struct OocStats {
  std::size_t bytes_decoded = 0;     ///< blob bytes visited
  std::size_t peak_overlay_bytes = 0; ///< in-memory prefix overlay footprint
};

/// Mines every frequent itemset of the PLT serialized in `blob` at
/// `min_support`. `item_of[r-1]` maps rank r to the original item id
/// reported through the sink (pass 1..max_rank for identity). Results are
/// identical to in-memory conditional mining of the decoded PLT (tests
/// enforce it). Throws std::runtime_error on malformed blobs.
void mine_from_blob(std::span<const std::uint8_t> blob,
                    const std::vector<Item>& item_of, Count min_support,
                    const core::ItemsetSink& sink,
                    OocStats* stats = nullptr);

}  // namespace plt::compress
