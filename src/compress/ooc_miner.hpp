// Out-of-core-style mining straight from a serialized PLT blob — the
// payoff of the paper's indexing claim (§1/§6): with the sum-bucket index,
// the conditional approach never needs the whole structure decoded. The
// base vectors stream out of the blob bucket by bucket (highest rank
// first); only the re-inserted prefixes and the per-item conditional PLTs
// live in memory, which is exactly the working set of one partition task.
//
// The rank walk doubles as a recovery boundary: with a checkpoint path
// configured, every completed rank appends one record (see checkpoint.hpp)
// and a crashed run resumes from the first unrecorded rank, replaying the
// recorded emissions so the combined output is byte-identical to an
// uninterrupted mine (tests enforce it).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "compress/index.hpp"
#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "core/planner.hpp"
#include "obs/trace.hpp"

namespace plt::compress {

struct OocStats {
  std::size_t bytes_decoded = 0;     ///< blob bytes visited
  std::size_t peak_overlay_bytes = 0; ///< in-memory prefix overlay footprint
  std::uint64_t checkpoint_records = 0;  ///< rank records written this run
  std::uint64_t resumed_ranks = 0;   ///< ranks replayed from a checkpoint
  core::ResilienceStats resilience;  ///< control/failpoint/CRC activity
  /// Aggregated span tree of this run when tracing was enabled and no outer
  /// session owned the walk (same contract as MineResult::trace); null
  /// otherwise. A resumed run's tree carries the "ooc-resume" span.
  std::shared_ptr<const obs::TraceNode> trace;
};

struct OocOptions {
  /// Cooperative cancellation / deadline / memory budget, checked once per
  /// rank. Null = unlimited.
  const core::MiningControl* control = nullptr;
  /// Path of the crash-recovery log; empty disables checkpointing. The log
  /// is bound to (blob CRC, min_support), so a stale file from different
  /// inputs is ignored, not replayed.
  std::string checkpoint_path;
  /// With a checkpoint path set: replay a matching existing log instead of
  /// restarting from scratch. false always restarts (the log is rewritten).
  bool resume = true;
  /// Execution plan ("", "fixed", "adaptive" — see core::select_plan).
  /// Adaptive routes each streamed rank's conditional subtrees through the
  /// planner; emissions stay byte-identical in content and order, so
  /// checkpoints written under one plan replay under the other. Unknown
  /// names throw std::invalid_argument.
  std::string plan;
  /// Cost-model thresholds used when the adaptive plan is active.
  core::PlanConfig plan_config;
};

/// Mines every frequent itemset of the PLT serialized in `blob` at
/// `min_support`. `item_of[r-1]` maps rank r to the original item id
/// reported through the sink (pass 1..max_rank for identity). Results are
/// identical to in-memory conditional mining of the decoded PLT (tests
/// enforce it). Returns kCompleted for an exhaustive mine, or the tripped
/// control's status after a clean early unwind (already-emitted itemsets
/// stay valid). Throws std::runtime_error on malformed blobs or item maps
/// that do not cover every rank.
core::MineStatus mine_from_blob(std::span<const std::uint8_t> blob,
                                const std::vector<Item>& item_of,
                                Count min_support,
                                const core::ItemsetSink& sink,
                                OocStats* stats = nullptr,
                                const OocOptions& options = {});

}  // namespace plt::compress
