// Partition/bucket index over a serialized PLT: byte ranges per partition
// and per vector-sum bucket, enabling selective decode — the "indexing
// techniques" of §1/§6 and the enabler of partitioned (out-of-core or
// parallel) mining: a worker can decode exactly the bucket for item j.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "core/plt.hpp"

namespace plt::compress {

struct BlobIndex {
  struct PartitionRange {
    std::uint32_t length = 0;
    bool block_coded = false;  ///< group-varint entry layout
    std::uint64_t begin = 0;   ///< byte offset of the entry stream
    std::uint64_t end = 0;
    std::uint64_t entries = 0;
  };
  Rank max_rank = 0;
  std::vector<PartitionRange> partitions;
  /// entry_offsets[s-1]: byte offsets (into the blob) of entries whose
  /// vector sum is s, across all partitions, paired with their *coded*
  /// length — the vector length with kFrameBlockCoded OR'd in for block
  /// frames, ready to hand to decode_blob_entry.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> buckets;

  std::size_t memory_usage() const;
};

/// Scans an encoded PLT once and builds the index.
/// Throws std::runtime_error on malformed input.
BlobIndex build_index(std::span<const std::uint8_t> blob);

/// Decodes only the vectors of partition `length` through the callback
/// (positions, freq). Returns the number of entries visited.
std::size_t decode_partition(
    std::span<const std::uint8_t> blob, const BlobIndex& index,
    std::uint32_t length,
    const std::function<void(std::span<const Pos>, Count)>& fn);

/// Decodes only the vectors whose sum equals `sum`. Returns entries visited.
std::size_t decode_bucket(
    std::span<const std::uint8_t> blob, const BlobIndex& index, Rank sum,
    const std::function<void(std::span<const Pos>, Count)>& fn);

}  // namespace plt::compress
