#include "compress/blob_format.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "compress/varint.hpp"
#include "util/crc32c.hpp"

namespace plt::compress {

namespace {

[[noreturn]] void fail(const char* who, const std::string& what) {
  throw std::runtime_error(std::string(who) + ": " + what);
}

}  // namespace

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xff));
}

std::uint32_t read_u32le(std::span<const std::uint8_t> bytes,
                         std::size_t offset, const char* who) {
  if (offset + 4 > bytes.size()) fail(who, "truncated checksum");
  return static_cast<std::uint32_t>(bytes[offset]) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

BlobHeader read_blob_header(std::span<const std::uint8_t> blob,
                            const char* who) {
  if (blob.size() < 4) fail(who, "bad magic");
  BlobHeader header;
  if (std::memcmp(blob.data(), kMagicV1, 4) == 0)
    header.version = 1;
  else if (std::memcmp(blob.data(), kMagicV2, 4) == 0)
    header.version = 2;
  else
    fail(who, "bad magic");

  std::size_t offset = 4;
  const std::uint64_t raw_max_rank = get_varint(blob, offset);
  // Format limit: alphabets beyond 2^26 are rejected — a corrupted header
  // must not trigger a multi-gigabyte bucket allocation.
  if (raw_max_rank == 0 || raw_max_rank > (1u << 26))
    fail(who, "max_rank out of range");
  header.max_rank = static_cast<Rank>(raw_max_rank);
  header.partitions = get_varint(blob, offset);

  if (header.version == 2) {
    const std::uint32_t stored = read_u32le(blob, offset, who);
    const std::uint32_t actual = crc32c(blob.subspan(4, offset - 4));
    note_crc32c_verification();
    if (stored != actual) fail(who, "header checksum mismatch");
    offset += 4;
  }
  // Each partition frame costs at least two varint bytes, so a count beyond
  // the blob size is certainly corrupt — reject before any loop trusts it.
  if (header.partitions > blob.size())
    fail(who, "partition count exceeds blob size");
  header.body_offset = offset;
  return header;
}

PartitionFrame read_partition_frame(std::span<const std::uint8_t> blob,
                                    std::size_t& offset,
                                    const BlobHeader& header,
                                    const char* who) {
  PartitionFrame frame;
  const std::size_t frame_begin = offset;
  const std::uint64_t raw_length = get_varint(blob, offset);
  if (raw_length == 0 || raw_length > header.max_rank)
    fail(who, "invalid partition length");
  frame.length = static_cast<std::uint32_t>(raw_length);
  frame.entries = get_varint(blob, offset);

  if (header.version == 1) {
    // No payload extent and no checksum: a minimum-footprint bound (each
    // entry needs at least length+1 bytes) is the only defense against an
    // absurd entry count driving a huge reserve.
    if (frame.entries > (blob.size() - offset) / (frame.length + 1))
      fail(who, "entry count exceeds blob size");
    frame.payload_begin = offset;
    frame.payload_end = 0;
    return frame;
  }

  const std::uint64_t payload_len = get_varint(blob, offset);
  if (payload_len > blob.size() - offset)
    fail(who, "partition payload runs past the blob");
  // Every entry needs at least length position bytes plus one freq byte.
  if (frame.entries > payload_len / (frame.length + 1))
    fail(who, "entry count exceeds payload size");
  frame.payload_begin = offset;
  frame.payload_end = offset + payload_len;

  const std::uint32_t stored = read_u32le(blob, frame.payload_end, who);
  const std::uint32_t actual =
      crc32c(blob.subspan(frame_begin, frame.payload_end - frame_begin));
  note_crc32c_verification();
  if (stored != actual) fail(who, "partition checksum mismatch");
  return frame;
}

}  // namespace plt::compress
