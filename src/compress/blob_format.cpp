#include "compress/blob_format.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "compress/varint.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "util/crc32c.hpp"

namespace plt::compress {

namespace {

[[noreturn]] void fail(const char* who, const std::string& what) {
  throw std::runtime_error(std::string(who) + ": " + what);
}

}  // namespace

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xff));
}

std::uint32_t read_u32le(std::span<const std::uint8_t> bytes,
                         std::size_t offset, const char* who) {
  if (offset + 4 > bytes.size()) fail(who, "truncated checksum");
  return static_cast<std::uint32_t>(bytes[offset]) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

BlobHeader read_blob_header(std::span<const std::uint8_t> blob,
                            const char* who) {
  if (blob.size() < 4) fail(who, "bad magic");
  BlobHeader header;
  if (std::memcmp(blob.data(), kMagicV1, 4) == 0)
    header.version = 1;
  else if (std::memcmp(blob.data(), kMagicV2, 4) == 0)
    header.version = 2;
  else
    fail(who, "bad magic");

  std::size_t offset = 4;
  const std::uint64_t raw_max_rank = get_varint(blob, offset);
  // Format limit: alphabets beyond 2^26 are rejected — a corrupted header
  // must not trigger a multi-gigabyte bucket allocation.
  if (raw_max_rank == 0 || raw_max_rank > (1u << 26))
    fail(who, "max_rank out of range");
  header.max_rank = static_cast<Rank>(raw_max_rank);
  header.partitions = get_varint(blob, offset);

  if (header.version == 2) {
    const std::uint32_t stored = read_u32le(blob, offset, who);
    PLT_ASSERT(offset <= blob.size(), "varint cursor stays in the blob");
    const std::uint32_t actual = crc32c(blob.subspan(4, offset - 4));
    note_crc32c_verification();
    if (stored != actual) fail(who, "header checksum mismatch");
    offset += 4;
  }
  // Each partition frame costs at least two varint bytes, so a count beyond
  // the blob size is certainly corrupt — reject before any loop trusts it.
  if (header.partitions > blob.size())
    fail(who, "partition count exceeds blob size");
  header.body_offset = offset;
  return header;
}

PartitionFrame read_partition_frame(std::span<const std::uint8_t> blob,
                                    std::size_t& offset,
                                    const BlobHeader& header,
                                    const char* who) {
  PartitionFrame frame;
  const std::size_t frame_begin = offset;
  const std::uint64_t raw_length = get_varint(blob, offset);
  frame.block_coded = (raw_length & kFrameBlockCoded) != 0;
  const std::uint64_t length =
      raw_length & ~static_cast<std::uint64_t>(kFrameBlockCoded);
  if (length == 0 || length > header.max_rank)
    fail(who, "invalid partition length");
  if (frame.block_coded && header.version == 1)
    fail(who, "block-coded frame in a PLT1 blob");
  frame.length = static_cast<std::uint32_t>(length);
  frame.entries = get_varint(blob, offset);

  if (header.version == 1) {
    // No payload extent and no checksum: a minimum-footprint bound (each
    // entry needs at least length+1 bytes) is the only defense against an
    // absurd entry count driving a huge reserve.
    if (frame.entries > (blob.size() - offset) / (frame.length + 1))
      fail(who, "entry count exceeds blob size");
    frame.payload_begin = offset;
    frame.payload_end = 0;
    return frame;
  }

  const std::uint64_t payload_len = get_varint(blob, offset);
  if (payload_len > blob.size() - offset)
    fail(who, "partition payload runs past the blob");
  // Minimum entry footprint: scalar frames need at least length position
  // bytes plus one freq byte; block frames need one byte per value
  // (length + 2 of them) plus the group control bytes.
  const std::uint64_t min_entry_bytes =
      frame.block_coded
          ? (frame.length + 2ull) + (frame.length + 5ull) / 4
          : frame.length + 1ull;
  if (frame.entries > payload_len / min_entry_bytes)
    fail(who, "entry count exceeds payload size");
  frame.payload_begin = offset;
  frame.payload_end = offset + payload_len;

  const std::uint32_t stored = read_u32le(blob, frame.payload_end, who);
  const std::uint32_t actual =
      crc32c(blob.subspan(frame_begin, frame.payload_end - frame_begin));
  note_crc32c_verification();
  if (stored != actual) fail(who, "partition checksum mismatch");
  return frame;
}

void decode_blob_entry(std::span<const std::uint8_t> blob,
                       std::size_t& offset, std::uint32_t coded_length,
                       core::PosVec& v, Count& freq) {
  const std::uint32_t length = coded_length & ~kFrameBlockCoded;
  if ((coded_length & kFrameBlockCoded) == 0) {
    v.clear();
    for (std::uint32_t i = 0; i < length; ++i) {
      const std::uint64_t pos = get_varint(blob, offset);
      if (pos > 0xffffffffull)
        throw std::runtime_error(
            "decode_blob_entry: position overflows 32 bits");
      v.push_back(static_cast<Pos>(pos));
    }
    freq = get_varint(blob, offset);
    return;
  }
  // One group-varint block of length positions plus the freq split lo/hi.
  v.resize(length + 2);
  const std::size_t consumed = kernels::active().decode_varint_block(
      blob.data() + offset, blob.size() - offset, v.data(), length + 2);
  if (consumed == kernels::kDecodeError)
    throw std::runtime_error("decode_blob_entry: truncated block entry");
  obs::count_kernel("kernel.decode_varint_block.calls",
                    "kernel.decode_varint_block.bytes", consumed);
  // length sizes v (the decode's *output* count, fixed by the resize
  // above); it is not produced by the call. plt-lint: allow(taint-bounds)
  freq = static_cast<Count>(v[length]) |
         (static_cast<Count>(v[length + 1]) << 32);
  v.resize(length);
  offset += consumed;
}

}  // namespace plt::compress
