// LEB128 variable-length integers. Position values are rank *gaps*, so they
// are small by construction — the property that makes the PLT "applicable to
// compression techniques" (paper §1/§6). One byte covers gaps up to 127.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.hpp"

namespace plt::compress {

/// Appends the LEB128 encoding of `value` to `out`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decodes one varint at `offset`, advancing it. Throws std::runtime_error
/// on truncated or over-long (> 10 byte) input.
std::uint64_t get_varint(std::span<const std::uint8_t> in,
                         std::size_t& offset);

/// Encoded size in bytes of a value.
std::size_t varint_size(std::uint64_t value);

}  // namespace plt::compress
