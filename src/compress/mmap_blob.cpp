#include "compress/mmap_blob.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/failpoint.hpp"

namespace plt::compress {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("mmap blob '" + path + "': " + what + " (" +
                           std::strerror(errno) + ")");
}

}  // namespace

MappedBlob::~MappedBlob() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MappedBlob::MappedBlob(MappedBlob&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedBlob& MappedBlob::operator=(MappedBlob&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedBlob MappedBlob::open(const std::string& path) {
  PLT_FAILPOINT("compress.mmap_blob");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "open failed");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail(path, "fstat failed");
  }
  MappedBlob blob;
  blob.size_ = static_cast<std::size_t>(st.st_size);
  if (blob.size_ == 0) {
    ::close(fd);
    return blob;  // empty span; header parsing rejects it downstream
  }
  void* addr = ::mmap(nullptr, blob.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    blob.size_ = 0;
    fail(path, "mmap failed");
  }
  blob.addr_ = addr;
  return blob;
}

}  // namespace plt::compress
