// Zero-copy blob access: a read-only memory mapping of a PLT2 blob file.
// The serving path (src/serve) keeps one MappedBlob per loaded blob and
// hands spans of it straight to BlobIndex / decode_bucket — the kernel's
// page cache is the only copy of the data, shared across every worker
// thread and every server process mapping the same file.
//
// read_blob_file() (codec.hpp) stays the right call for one-shot decode
// paths; the mapping wins when the blob is large, long-lived, or queried
// sparsely (sum-bucket random access touches only the pages it needs).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace plt::compress {

class MappedBlob {
 public:
  MappedBlob() = default;
  ~MappedBlob();
  MappedBlob(MappedBlob&& other) noexcept;
  MappedBlob& operator=(MappedBlob&& other) noexcept;
  MappedBlob(const MappedBlob&) = delete;
  MappedBlob& operator=(const MappedBlob&) = delete;

  /// Maps `path` read-only (PROT_READ, MAP_PRIVATE). Throws
  /// std::runtime_error when the file cannot be opened, stat'd or mapped.
  /// An empty file maps to an empty span (no mapping is created).
  static MappedBlob open(const std::string& path);

  /// The mapped bytes; valid until destruction/move-out.
  std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }

  std::size_t size() const { return size_; }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace plt::compress
