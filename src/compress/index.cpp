#include "compress/index.hpp"

#include <stdexcept>

#include "compress/blob_format.hpp"
#include "compress/varint.hpp"
#include "util/common.hpp"

namespace plt::compress {

std::size_t BlobIndex::memory_usage() const {
  std::size_t bytes = sizeof(BlobIndex) +
                      partitions.capacity() * sizeof(PartitionRange);
  for (const auto& b : buckets)
    bytes += b.capacity() * sizeof(std::pair<std::uint32_t, std::uint64_t>);
  return bytes;
}

BlobIndex build_index(std::span<const std::uint8_t> blob) {
  const BlobHeader header = read_blob_header(blob, "build_index");
  BlobIndex index;
  index.max_rank = header.max_rank;
  index.buckets.resize(index.max_rank);

  std::size_t offset = header.body_offset;
  core::PosVec v;
  for (std::uint64_t p = 0; p < header.partitions; ++p) {
    // The frame reader verifies the v2 CRC (and bounds-checks the declared
    // lengths on both versions) before any entry byte is interpreted.
    const PartitionFrame frame =
        read_partition_frame(blob, offset, header, "build_index");
    BlobIndex::PartitionRange range;
    range.length = frame.length;
    range.block_coded = frame.block_coded;
    range.entries = frame.entries;
    range.begin = offset;
    const std::uint32_t coded_length =
        frame.length | (frame.block_coded ? kFrameBlockCoded : 0u);
    for (std::uint64_t e = 0; e < frame.entries; ++e) {
      const std::uint64_t entry_offset = offset;
      Count freq = 0;
      decode_blob_entry(blob, offset, coded_length, v, freq);
      const Rank sum = core::vector_sum(v);
      if (sum == 0 || sum > index.max_rank)
        throw std::runtime_error("build_index: vector sum out of range");
      index.buckets[sum - 1].emplace_back(coded_length, entry_offset);
    }
    range.end = offset;
    if (header.version == 2) {
      if (offset != frame.payload_end)
        throw std::runtime_error(
            "build_index: partition payload length mismatch");
      offset = frame.payload_end + 4;  // skip the verified CRC
    }
    index.partitions.push_back(range);
  }
  return index;
}

std::size_t decode_partition(
    std::span<const std::uint8_t> blob, const BlobIndex& index,
    std::uint32_t length,
    const std::function<void(std::span<const Pos>, Count)>& fn) {
  core::PosVec v;
  for (const auto& range : index.partitions) {
    if (range.length != length) continue;
    const std::uint32_t coded_length =
        range.length | (range.block_coded ? kFrameBlockCoded : 0u);
    std::size_t offset = range.begin;
    for (std::uint64_t e = 0; e < range.entries; ++e) {
      Count freq = 0;
      decode_blob_entry(blob, offset, coded_length, v, freq);
      fn(v, freq);
    }
    return range.entries;
  }
  return 0;
}

std::size_t decode_bucket(
    std::span<const std::uint8_t> blob, const BlobIndex& index, Rank sum,
    const std::function<void(std::span<const Pos>, Count)>& fn) {
  if (sum == 0 || sum > index.max_rank) return 0;
  // max_rank comes off disk while buckets is built locally; the subscript
  // below is only safe when build_index kept them in lockstep.
  PLT_ASSERT(index.buckets.size() == index.max_rank,
             "BlobIndex bucket count must match its max_rank");
  core::PosVec v;
  const auto& bucket = index.buckets[sum - 1];
  for (const auto& [coded_length, entry_offset] : bucket) {
    std::size_t offset = entry_offset;
    Count freq = 0;
    decode_blob_entry(blob, offset, coded_length, v, freq);
    fn(v, freq);
  }
  return bucket.size();
}

}  // namespace plt::compress
