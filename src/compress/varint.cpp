#include "compress/varint.hpp"

#include <stdexcept>

namespace plt::compress {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in,
                         std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  for (int bytes = 0; bytes < 10; ++bytes) {
    if (offset >= in.size())
      throw std::runtime_error("varint: truncated input");
    const std::uint8_t b = in[offset++];
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return value;
    shift += 7;
  }
  throw std::runtime_error("varint: over-long encoding");
}

std::size_t varint_size(std::uint64_t value) {
  std::size_t bytes = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++bytes;
  }
  return bytes;
}

}  // namespace plt::compress
