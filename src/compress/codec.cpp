#include "compress/codec.hpp"

#include <cstdio>
#include <stdexcept>

#include "compress/blob_format.hpp"
#include "compress/varint.hpp"
#include "core/validate.hpp"
#include "kernels/kernels.hpp"
#include "obs/trace.hpp"
#include "tdb/database.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace plt::compress {

namespace {

/// One entry's u32 value sequence in the block subformat: the positions
/// followed by the 64-bit freq split into lo/hi words.
void block_entry_values(std::span<const Pos> v, Count freq,
                        std::vector<std::uint32_t>& vals) {
  vals.assign(v.begin(), v.end());
  vals.push_back(static_cast<std::uint32_t>(freq & 0xffffffffull));
  vals.push_back(static_cast<std::uint32_t>(freq >> 32));
}

}  // namespace

std::vector<std::uint8_t> encode_plt(const core::Plt& plt,
                                     const EncodeOptions& options) {
  PLT_SPAN("codec-encode");
  PLT_FAILPOINT("codec.encode");
  std::vector<std::uint8_t> out;
  out.reserve(64);
  for (const char c : kMagicV2) out.push_back(static_cast<std::uint8_t>(c));
  put_varint(out, plt.max_rank());

  std::uint32_t partitions = 0;
  for (std::uint32_t k = 1; k <= plt.max_len(); ++k)
    if (plt.partition(k) && !plt.partition(k)->empty()) ++partitions;
  put_varint(out, partitions);
  append_u32le(out, crc32c(std::span<const std::uint8_t>(out).subspan(4)));

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> vals;
  std::vector<std::uint8_t> scratch;
  for (std::uint32_t k = 1; k <= plt.max_len(); ++k) {
    const core::Partition* p = plt.partition(k);
    if (!p || p->empty()) continue;
    payload.clear();
    p->for_each([&](core::Partition::EntryId, std::span<const Pos> v,
                    const core::Partition::Entry& e) {
      if (options.block_frames) {
        // The group-varint encoding is canonical, so every kernel backend
        // emits identical payload bytes (and identical CRCs).
        block_entry_values(v, e.freq, vals);
        scratch.resize(kernels::encoded_block_bound(vals.size()));
        const std::size_t n = kernels::active().encode_varint_block(
            vals.data(), vals.size(), scratch.data());
        obs::count_kernel("kernel.encode_varint_block.calls",
                          "kernel.encode_varint_block.bytes", n);
        payload.insert(payload.end(), scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(n));
      } else {
        for (const Pos pos : v) put_varint(payload, pos);
        put_varint(payload, e.freq);
      }
    });
    const std::size_t frame_begin = out.size();
    put_varint(out, options.block_frames ? (k | kFrameBlockCoded) : k);
    put_varint(out, p->size());
    put_varint(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    append_u32le(out, crc32c(std::span<const std::uint8_t>(out)
                                 .subspan(frame_begin)));
  }
  return out;
}

core::Plt decode_plt(std::span<const std::uint8_t> bytes) {
  PLT_SPAN("codec-decode");
  PLT_FAILPOINT("codec.decode");
  const BlobHeader header = read_blob_header(bytes, "decode_plt");
  core::Plt plt(header.max_rank);

  std::size_t offset = header.body_offset;
  core::PosVec v;
  for (std::uint64_t p = 0; p < header.partitions; ++p) {
    const PartitionFrame frame =
        read_partition_frame(bytes, offset, header, "decode_plt");
    const std::uint32_t coded_length =
        frame.length | (frame.block_coded ? kFrameBlockCoded : 0u);
    for (std::uint64_t e = 0; e < frame.entries; ++e) {
      Count freq = 0;
      decode_blob_entry(bytes, offset, coded_length, v, freq);
      for (const Pos pos : v)
        if (pos == 0 || pos > header.max_rank)
          throw std::runtime_error("decode_plt: invalid position value");
      if (!core::is_valid(v, header.max_rank))
        throw std::runtime_error("decode_plt: vector sum out of range");
      plt.add(v, freq);
    }
    if (header.version == 2) {
      if (offset != frame.payload_end)
        throw std::runtime_error(
            "decode_plt: partition payload length mismatch");
      offset = frame.payload_end + 4;  // CRC verified by the frame reader
    }
  }
  // Untrusted-input path: under PLT_VALIDATE the decoded structure gets the
  // full whole-tree check on top of the per-entry range checks above.
  core::maybe_validate(plt, "decode_plt");
  return plt;
}

std::size_t encoded_size(const core::Plt& plt,
                         const EncodeOptions& options) {
  std::size_t bytes = 4 + varint_size(plt.max_rank()) + 4;  // header + CRC
  std::uint32_t partitions = 0;
  std::vector<std::uint32_t> vals;
  for (std::uint32_t k = 1; k <= plt.max_len(); ++k) {
    const core::Partition* p = plt.partition(k);
    if (!p || p->empty()) continue;
    ++partitions;
    std::size_t payload = 0;
    p->for_each([&](core::Partition::EntryId, std::span<const Pos> v,
                    const core::Partition::Entry& e) {
      if (options.block_frames) {
        block_entry_values(v, e.freq, vals);
        payload += kernels::encoded_block_size(vals.data(), vals.size());
      } else {
        for (const Pos pos : v) payload += varint_size(pos);
        payload += varint_size(e.freq);
      }
    });
    const std::uint64_t frame_tag =
        options.block_frames ? (k | kFrameBlockCoded) : k;
    bytes += varint_size(frame_tag) + varint_size(p->size()) +
             varint_size(payload) + payload + 4;  // frame + CRC
  }
  bytes += varint_size(partitions);
  return bytes;
}

std::size_t raw_database_bytes(const tdb::Database& db) {
  return db.total_items() * sizeof(Item) + db.size() * sizeof(std::uint64_t);
}

void write_blob_file(std::span<const std::uint8_t> bytes,
                     const std::string& path) {
  // Temp file + fsync + rename: a crash (or injected fault) at any point
  // leaves either the old file or the complete new one, never a torn blob.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("write_blob_file: cannot open " + tmp);
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  const bool synced = fsync(fileno(f)) == 0;
#else
  const bool synced = true;
#endif
  std::fclose(f);
  if (written != bytes.size() || !flushed || !synced) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_blob_file: short write to " + tmp);
  }
  // A fault here models a crash after the data hit disk but before the
  // rename: the destination is untouched and the temp file is left behind.
  PLT_FAILPOINT("blob.write_file");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_blob_file: cannot rename into " + path);
  }
}

std::vector<std::uint8_t> read_blob_file(const std::string& path) {
  PLT_FAILPOINT("blob.read_file");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("read_blob_file: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), f);
    bytes.insert(bytes.end(), buffer, buffer + got);
    if (got < sizeof(buffer)) break;
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed)
    throw std::runtime_error("read_blob_file: read error on " + path);
  return bytes;
}

}  // namespace plt::compress
