#include "compress/codec.hpp"

#include <cstring>
#include <stdexcept>

#include "compress/varint.hpp"
#include "tdb/database.hpp"

namespace plt::compress {

namespace {
constexpr char kMagic[4] = {'P', 'L', 'T', '1'};
}

std::vector<std::uint8_t> encode_plt(const core::Plt& plt) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_varint(out, plt.max_rank());

  std::uint32_t partitions = 0;
  for (std::uint32_t k = 1; k <= plt.max_len(); ++k)
    if (plt.partition(k) && !plt.partition(k)->empty()) ++partitions;
  put_varint(out, partitions);

  for (std::uint32_t k = 1; k <= plt.max_len(); ++k) {
    const core::Partition* p = plt.partition(k);
    if (!p || p->empty()) continue;
    put_varint(out, k);
    put_varint(out, p->size());
    p->for_each([&](core::Partition::EntryId, std::span<const Pos> v,
                    const core::Partition::Entry& e) {
      for (const Pos pos : v) put_varint(out, pos);
      put_varint(out, e.freq);
    });
  }
  return out;
}

core::Plt decode_plt(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0)
    throw std::runtime_error("decode_plt: bad magic");
  std::size_t offset = 4;
  const std::uint64_t raw_max_rank = get_varint(bytes, offset);
  // Format limit: alphabets beyond 2^26 are rejected — a corrupted header
  // must not trigger a multi-gigabyte bucket allocation.
  if (raw_max_rank == 0 || raw_max_rank > (1u << 26))
    throw std::runtime_error("decode_plt: max_rank out of range");
  const auto max_rank = static_cast<Rank>(raw_max_rank);
  core::Plt plt(max_rank);

  const std::uint64_t partitions = get_varint(bytes, offset);
  core::PosVec v;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    const std::uint64_t length = get_varint(bytes, offset);
    const std::uint64_t entries = get_varint(bytes, offset);
    if (length == 0 || length > max_rank)
      throw std::runtime_error("decode_plt: invalid partition length");
    for (std::uint64_t e = 0; e < entries; ++e) {
      v.clear();
      for (std::uint64_t i = 0; i < length; ++i) {
        const std::uint64_t pos = get_varint(bytes, offset);
        if (pos == 0 || pos > max_rank)
          throw std::runtime_error("decode_plt: invalid position value");
        v.push_back(static_cast<Pos>(pos));
      }
      const std::uint64_t freq = get_varint(bytes, offset);
      if (!core::is_valid(v, max_rank))
        throw std::runtime_error("decode_plt: vector sum out of range");
      plt.add(v, freq);
    }
  }
  return plt;
}

std::size_t encoded_size(const core::Plt& plt) {
  std::size_t bytes = 4 + varint_size(plt.max_rank());
  std::uint32_t partitions = 0;
  for (std::uint32_t k = 1; k <= plt.max_len(); ++k) {
    const core::Partition* p = plt.partition(k);
    if (!p || p->empty()) continue;
    ++partitions;
    bytes += varint_size(k) + varint_size(p->size());
    p->for_each([&](core::Partition::EntryId, std::span<const Pos> v,
                    const core::Partition::Entry& e) {
      for (const Pos pos : v) bytes += varint_size(pos);
      bytes += varint_size(e.freq);
    });
  }
  bytes += varint_size(partitions);
  return bytes;
}

std::size_t raw_database_bytes(const tdb::Database& db) {
  return db.total_items() * sizeof(Item) + db.size() * sizeof(std::uint64_t);
}

}  // namespace plt::compress
