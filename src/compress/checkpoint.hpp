// Rank-granular checkpoint log for out-of-core mining. The OOC miner walks
// ranks max_rank..1; after a rank completes (its bucket streamed, its
// conditional subtree fully mined), one record with every itemset that rank
// emitted is appended and flushed. A crash therefore loses at most the
// in-flight rank: on resume the log replays the recorded emissions verbatim
// and mining continues from the first unrecorded rank, producing output
// byte-identical to an uninterrupted run.
//
// Layout ("PLTK"):
//   "PLTK" | u32le blob_crc | varint min_support | varint max_rank |
//   u32le CRC32C(header bytes after magic)
//   record: varint rank | varint itemset_count |
//           per itemset: varint item_count, item varints, varint support |
//           u32le CRC32C(record bytes)
// The header binds the log to one (blob, min_support) pair via the CRC32C
// of the whole blob, so a stale log can never replay into the wrong mine.
// A torn or corrupted trailing record fails its CRC and is dropped; its
// rank is simply re-mined.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace plt::compress {

/// One completed rank: every itemset it emitted, in emission order.
struct CheckpointRecord {
  Rank rank = 0;
  std::vector<std::pair<Itemset, Count>> itemsets;
};

/// Everything recovered from a log: records in written (descending-rank)
/// order.
struct CheckpointLog {
  std::vector<CheckpointRecord> records;
};

/// Reads the log at `path` if it exists and its header matches the given
/// (blob_crc, min_support, max_rank) binding. Invalid or torn trailing
/// records are silently dropped. Returns false when the file is missing,
/// unreadable, or bound to different inputs; `out` is cleared either way.
bool read_checkpoint(const std::string& path, std::uint32_t blob_crc,
                     Count min_support, Rank max_rank, CheckpointLog& out);

/// Binding CRC for a rank-window mine over a shared blob (the shard-worker
/// unit): the full window keeps the raw blob CRC, so every existing
/// full-range log stays valid, while a proper sub-window folds
/// [rank_lo, rank_hi] into the CRC stream — a log written for one window
/// can never replay into another window of the same blob.
std::uint32_t window_binding_crc(std::uint32_t blob_crc, Rank rank_lo,
                                 Rank rank_hi, Rank max_rank);

/// Appends rank records, flushing each one so it survives a process crash.
class CheckpointWriter {
 public:
  /// Rewrites `path` from scratch: header, then every record of `replay`
  /// (the validated prefix of a previous run, if any), then stays open for
  /// append(). Rewriting on resume guarantees no torn bytes linger between
  /// the replayed prefix and new records. Throws std::runtime_error on I/O
  /// failure.
  CheckpointWriter(const std::string& path, std::uint32_t blob_crc,
                   Count min_support, Rank max_rank,
                   const CheckpointLog* replay = nullptr);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one completed-rank record and flushes it. Throws
  /// std::runtime_error when the stream reports a write failure.
  void append(const CheckpointRecord& record);

  /// Records written through this writer (replayed ones included).
  std::uint64_t records_written() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t records_ = 0;
};

}  // namespace plt::compress
