#include "compress/checkpoint.hpp"

#include <cstring>
#include <stdexcept>

#include "compress/blob_format.hpp"
#include "compress/varint.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace plt::compress {

namespace {

constexpr char kCheckpointMagic[4] = {'P', 'L', 'T', 'K'};

std::vector<std::uint8_t> encode_record(const CheckpointRecord& record) {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, record.rank);
  put_varint(bytes, record.itemsets.size());
  for (const auto& [items, support] : record.itemsets) {
    put_varint(bytes, items.size());
    for (const Item item : items) put_varint(bytes, item);
    put_varint(bytes, support);
  }
  append_u32le(bytes, crc32c(bytes));
  return bytes;
}

// Parses one record at `offset`; returns false (offset untouched) when the
// bytes are torn or fail their CRC — the caller stops there.
bool parse_record(std::span<const std::uint8_t> bytes, std::size_t& offset,
                  Rank max_rank, CheckpointRecord& record) {
  std::size_t cursor = offset;
  try {
    const std::uint64_t rank = get_varint(bytes, cursor);
    if (rank == 0 || rank > max_rank) return false;
    record.rank = static_cast<Rank>(rank);
    const std::uint64_t count = get_varint(bytes, cursor);
    // Each itemset costs at least two bytes (size + support varints).
    if (count > (bytes.size() - cursor) / 2) return false;
    record.itemsets.clear();
    record.itemsets.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t size = get_varint(bytes, cursor);
      if (size > bytes.size() - cursor) return false;
      Itemset items;
      items.reserve(size);
      for (std::uint64_t j = 0; j < size; ++j)
        items.push_back(static_cast<Item>(get_varint(bytes, cursor)));
      const Count support = get_varint(bytes, cursor);
      record.itemsets.emplace_back(std::move(items), support);
    }
    const std::uint32_t stored = read_u32le(bytes, cursor, "checkpoint");
    PLT_ASSERT(offset <= cursor && cursor <= bytes.size(),
               "varint cursor stays between record start and buffer end");
    const std::uint32_t actual =
        crc32c(bytes.subspan(offset, cursor - offset));
    note_crc32c_verification();
    if (stored != actual) return false;
    offset = cursor + 4;
    return true;
  } catch (const std::runtime_error&) {
    return false;  // truncated varint / checksum slot: torn tail
  }
}

}  // namespace

std::uint32_t window_binding_crc(std::uint32_t blob_crc, Rank rank_lo,
                                 Rank rank_hi, Rank max_rank) {
  if (rank_lo <= 1 && rank_hi >= max_rank) return blob_crc;
  std::vector<std::uint8_t> window;
  put_varint(window, rank_lo);
  put_varint(window, rank_hi);
  return crc32c(window, blob_crc);
}

bool read_checkpoint(const std::string& path, std::uint32_t blob_crc,
                     Count min_support, Rank max_rank, CheckpointLog& out) {
  out.records.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buffer, 1, sizeof(buffer), f);
    bytes.insert(bytes.end(), buffer, buffer + got);
    if (got < sizeof(buffer)) break;
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return false;

  // Header: magic + binding + CRC.
  if (bytes.size() < 4 ||
      std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0)
    return false;
  std::size_t offset = 4;
  try {
    const std::uint32_t stored_blob_crc = read_u32le(bytes, offset,
                                                     "checkpoint");
    offset += 4;
    const std::uint64_t stored_minsup = get_varint(bytes, offset);
    const std::uint64_t stored_max_rank = get_varint(bytes, offset);
    const std::uint32_t header_crc = read_u32le(bytes, offset, "checkpoint");
    PLT_ASSERT(offset <= bytes.size(), "varint cursor stays in the buffer");
    const std::uint32_t actual =
        crc32c(std::span<const std::uint8_t>(bytes).subspan(4, offset - 4));
    note_crc32c_verification();
    if (header_crc != actual) return false;
    offset += 4;
    if (stored_blob_crc != blob_crc || stored_minsup != min_support ||
        stored_max_rank != max_rank)
      return false;  // log belongs to a different (blob, min_support)
  } catch (const std::runtime_error&) {
    return false;
  }

  // Records must descend contiguously from max_rank: the miner writes rank
  // j only after j+1..max_rank, so any gap means the log is unusable
  // beyond it.
  Rank expected = max_rank;
  while (offset < bytes.size()) {
    CheckpointRecord record;
    if (!parse_record(bytes, offset, max_rank, record)) break;
    if (record.rank != expected) break;
    --expected;
    out.records.push_back(std::move(record));
  }
  return true;
}

CheckpointWriter::CheckpointWriter(const std::string& path,
                                   std::uint32_t blob_crc, Count min_support,
                                   Rank max_rank,
                                   const CheckpointLog* replay)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr)
    throw std::runtime_error("checkpoint: cannot open " + path);
  std::vector<std::uint8_t> header;
  for (const char c : kCheckpointMagic)
    header.push_back(static_cast<std::uint8_t>(c));
  append_u32le(header, blob_crc);
  put_varint(header, min_support);
  put_varint(header, max_rank);
  append_u32le(header,
               crc32c(std::span<const std::uint8_t>(header).subspan(4)));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size())
    throw std::runtime_error("checkpoint: header write failed on " + path);
  if (replay != nullptr)
    for (const CheckpointRecord& record : replay->records) append(record);
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(const CheckpointRecord& record) {
  PLT_FAILPOINT("ooc.checkpoint_write");
  const std::vector<std::uint8_t> bytes = encode_record(record);
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0)
    throw std::runtime_error("checkpoint: record write failed on " + path_);
  ++records_;
}

}  // namespace plt::compress
