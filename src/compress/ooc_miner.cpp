#include "compress/ooc_miner.hpp"

#include <algorithm>
#include <unordered_map>

#include "compress/varint.hpp"
#include "core/conditional.hpp"
#include "core/projection_pool.hpp"

namespace plt::compress {

namespace {

// Streams the entries of one sum bucket out of the blob, reporting bytes
// visited.
template <typename Fn>  // Fn(span<const Pos>, Count)
std::size_t stream_bucket(std::span<const std::uint8_t> blob,
                          const BlobIndex& index, Rank sum, Fn&& fn) {
  std::size_t bytes = 0;
  core::PosVec v;
  for (const auto& [length, entry_offset] : index.buckets[sum - 1]) {
    std::size_t offset = entry_offset;
    v.clear();
    for (std::uint32_t i = 0; i < length; ++i)
      v.push_back(static_cast<Pos>(get_varint(blob, offset)));
    const Count freq = get_varint(blob, offset);
    bytes += offset - entry_offset;
    fn(std::span<const Pos>(v), freq);
  }
  return bytes;
}

struct VecHash {
  std::size_t operator()(const core::PosVec& v) const {
    return static_cast<std::size_t>(core::Partition::hash(v));
  }
};

// Per-sum overlay of re-inserted prefixes. Unlike a monolithic PLT, each
// bucket is dropped as soon as its rank has been processed, so the resident
// working set at rank j is only the prefixes still waiting for ranks < j.
class Overlay {
 public:
  explicit Overlay(Rank max_rank) : buckets_(max_rank) {}

  void add(const core::PosVec& v, Count freq, Rank sum) {
    auto [it, inserted] = buckets_[sum - 1].try_emplace(v, freq);
    if (inserted) {
      live_bytes_ += v.size() * sizeof(Pos) + kEntryOverhead;
    } else {
      it->second += freq;
    }
  }

  const std::unordered_map<core::PosVec, Count, VecHash>& bucket(
      Rank sum) const {
    return buckets_[sum - 1];
  }

  void drop(Rank sum) {
    for (const auto& [v, freq] : buckets_[sum - 1])
      live_bytes_ -= v.size() * sizeof(Pos) + kEntryOverhead;
    buckets_[sum - 1] = {};
  }

  std::size_t live_bytes() const { return live_bytes_; }

 private:
  // Approximate per-entry map overhead (node + bucket slot + vector header).
  static constexpr std::size_t kEntryOverhead =
      sizeof(void*) * 4 + sizeof(core::PosVec) + sizeof(Count);

  std::vector<std::unordered_map<core::PosVec, Count, VecHash>> buckets_;
  std::size_t live_bytes_ = 0;
};

}  // namespace

void mine_from_blob(std::span<const std::uint8_t> blob,
                    const std::vector<Item>& item_of, Count min_support,
                    const core::ItemsetSink& sink, OocStats* stats) {
  const BlobIndex index = build_index(blob);
  PLT_ASSERT(item_of.size() >= index.max_rank,
             "item_of must cover every rank in the blob");

  Overlay overlay(index.max_rank);
  std::vector<std::pair<core::PosVec, Count>> cond;
  core::PosVec scratch;
  Itemset suffix;
  core::ConditionalOptions options;
  // One engine for the whole blob: every rank's conditional PLT recycles
  // the same pooled frames.
  core::ProjectionEngine engine;

  for (Rank j = index.max_rank; j >= 1; --j) {
    Count support = 0;
    cond.clear();

    const auto consume = [&](std::span<const Pos> v, Count freq) {
      support += freq;
      if (v.size() > 1 && freq > 0) {
        scratch.assign(v.begin(), v.end() - 1);
        cond.emplace_back(scratch, freq);
        overlay.add(scratch, freq, j - v.back());
      }
    };
    const std::size_t bytes = stream_bucket(blob, index, j, consume);
    if (stats) stats->bytes_decoded += bytes;
    for (const auto& [v, freq] : overlay.bucket(j)) consume(v, freq);
    if (stats)
      stats->peak_overlay_bytes =
          std::max(stats->peak_overlay_bytes, overlay.live_bytes());
    overlay.drop(j);  // rank j's prefixes will never be visited again

    if (support < min_support) continue;

    suffix.push_back(item_of[j - 1]);
    {
      Itemset emitted = suffix;
      std::sort(emitted.begin(), emitted.end());
      sink(emitted, support);
    }
    if (!cond.empty()) {
      core::ConditionalProjection child = core::make_conditional_plt(
          cond, j, min_support, options.filter_conditional_items);
      if (!child.empty()) {
        std::vector<Item> child_item_of(child.to_parent.size());
        for (std::size_t c = 0; c < child.to_parent.size(); ++c)
          child_item_of[c] = item_of[child.to_parent[c] - 1];
        engine.mine(child.plt, child_item_of, suffix, min_support, sink,
                    options);
      }
    }
    suffix.pop_back();
  }
}

}  // namespace plt::compress
