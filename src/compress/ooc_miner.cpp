#include "compress/ooc_miner.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "compress/blob_format.hpp"
#include "compress/checkpoint.hpp"
#include "core/conditional.hpp"
#include "core/projection_pool.hpp"
#include "core/validate.hpp"
#include "obs/trace.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"

namespace plt::compress {

namespace {

// Streams the entries of one sum bucket out of the blob, reporting bytes
// visited.
template <typename Fn>  // Fn(span<const Pos>, Count)
std::size_t stream_bucket(std::span<const std::uint8_t> blob,
                          const BlobIndex& index, Rank sum, Fn&& fn) {
  std::size_t bytes = 0;
  core::PosVec v;
  for (const auto& [coded_length, entry_offset] : index.buckets[sum - 1]) {
    // The coded length carries the frame's kFrameBlockCoded flag, so block
    // entries take the SIMD group-varint decode and scalar frames the
    // classic varint loop — both at the same random-access offsets.
    std::size_t offset = entry_offset;
    Count freq = 0;
    decode_blob_entry(blob, offset, coded_length, v, freq);
    bytes += offset - entry_offset;
    fn(std::span<const Pos>(v), freq);
  }
  return bytes;
}

struct VecHash {
  std::size_t operator()(const core::PosVec& v) const {
    return static_cast<std::size_t>(core::Partition::hash(v));
  }
};

// Per-sum overlay of re-inserted prefixes. Unlike a monolithic PLT, each
// bucket is dropped as soon as its rank has been processed, so the resident
// working set at rank j is only the prefixes still waiting for ranks < j.
class Overlay {
 public:
  explicit Overlay(Rank max_rank) : buckets_(max_rank) {}

  void add(const core::PosVec& v, Count freq, Rank sum) {
    auto [it, inserted] = buckets_[sum - 1].try_emplace(v, freq);
    if (inserted) {
      live_bytes_ += v.size() * sizeof(Pos) + kEntryOverhead;
    } else {
      it->second += freq;
    }
  }

  const std::unordered_map<core::PosVec, Count, VecHash>& bucket(
      Rank sum) const {
    return buckets_[sum - 1];
  }

  void drop(Rank sum) {
    for (const auto& [v, freq] : buckets_[sum - 1])
      live_bytes_ -= v.size() * sizeof(Pos) + kEntryOverhead;
    buckets_[sum - 1] = {};
  }

  std::size_t live_bytes() const { return live_bytes_; }

 private:
  // Approximate per-entry map overhead (node + bucket slot + vector header).
  static constexpr std::size_t kEntryOverhead =
      sizeof(void*) * 4 + sizeof(core::PosVec) + sizeof(Count);

  std::vector<std::unordered_map<core::PosVec, Count, VecHash>> buckets_;
  std::size_t live_bytes_ = 0;
};

core::MineStatus mine_from_blob_impl(std::span<const std::uint8_t> blob,
                                     const std::vector<Item>& item_of,
                                     Count min_support,
                                     const core::ItemsetSink& sink,
                                     OocStats* stats,
                                     const OocOptions& options) {
  if (!core::select_plan(options.plan))
    throw std::invalid_argument("mine_from_blob: unknown plan \"" +
                                options.plan +
                                "\" (expected fixed or adaptive)");
  const core::MiningControl* control = options.control;
  const std::uint64_t checks0 = control != nullptr ? control->checks() : 0;
  const std::uint64_t failpoint0 = FailpointRegistry::instance().total_hits();
  const std::uint64_t crc0 = crc32c_verifications();
  const auto finish = [&](core::MineStatus status) {
    if (stats != nullptr) {
      stats->resilience.failpoint_hits =
          FailpointRegistry::instance().total_hits() - failpoint0;
      stats->resilience.crc_verifications = crc32c_verifications() - crc0;
      stats->resilience.checkpoint_records = stats->checkpoint_records;
      if (control != nullptr)
        stats->resilience.control_checks = control->checks() - checks0;
    }
    return status;
  };

  const BlobIndex index = build_index(blob);
  // Untrusted input path: an undersized item map must be a recoverable
  // error, not an assertion, because the blob's max_rank comes off disk.
  if (item_of.size() < index.max_rank)
    throw std::runtime_error(
        "mine_from_blob: item_of covers " +
        std::to_string(item_of.size()) + " ranks but the blob declares " +
        std::to_string(index.max_rank));

  // The rank window this call owns: the full range unless the caller (a
  // shard worker) asked for a slice.
  const Rank lo = options.rank_lo == 0 ? 1 : options.rank_lo;
  const Rank hi = options.rank_hi == 0 ? index.max_rank : options.rank_hi;
  if (lo > hi || hi > index.max_rank)
    throw std::invalid_argument(
        "mine_from_blob: invalid rank window [" + std::to_string(lo) + ", " +
        std::to_string(hi) + "] over max_rank " +
        std::to_string(index.max_rank));
  const auto window_size = static_cast<std::size_t>(hi - lo + 1);

  // Checkpointing: the log is bound to this exact (blob, window,
  // min_support) via the window-folded blob CRC; a matching log's completed
  // ranks are replayed, a mismatched or disabled one starts fresh. The
  // log's own rank field is the window top, so contiguity is checked from
  // rank_hi downward.
  CheckpointLog log;
  std::unique_ptr<CheckpointWriter> writer;
  if (!options.checkpoint_path.empty()) {
    const std::uint32_t binding =
        window_binding_crc(crc32c(blob), lo, hi, index.max_rank);
    const bool have_log =
        options.resume &&
        read_checkpoint(options.checkpoint_path, binding, min_support, hi,
                        log);
    if (!have_log || log.records.size() > window_size) log.records.clear();
    writer = std::make_unique<CheckpointWriter>(
        options.checkpoint_path, binding, min_support, hi,
        log.records.empty() ? nullptr : &log);
    if (stats != nullptr)
      stats->checkpoint_records = writer->records_written();
  }
  const auto completed = static_cast<Rank>(log.records.size());

  // Replay the recorded emissions verbatim — same order, same supports.
  for (const CheckpointRecord& record : log.records)
    for (const auto& [items, support] : record.itemsets)
      sink(items, support);
  if (stats != nullptr) stats->resumed_ranks = completed;

  Overlay overlay(index.max_rank);
  std::vector<std::pair<core::PosVec, Count>> cond;
  core::PosVec scratch;

  // First rank left to mine; lo - 1 when the whole window is durable.
  const Rank first_mine = hi - completed;

  // Rebuild the overlay state the ranks above first_mine leave behind by
  // re-running their streaming pass without emitting: the overlay is a pure
  // function of (blob, ranks processed), so the walk below sees
  // byte-identical conditional databases whether those ranks were mined by
  // this process (resume), by another shard (window), or not at all.
  const auto warm_pass = [&](Rank from, Rank down_to) {
    for (Rank j = from; j >= down_to; --j) {
      const auto warm = [&](std::span<const Pos> v, Count freq) {
        if (v.size() > 1 && freq > 0) {
          scratch.assign(v.begin(), v.end() - 1);
          overlay.add(scratch, freq, j - v.back());
        }
      };
      const std::size_t bytes = stream_bucket(blob, index, j, warm);
      if (stats != nullptr) stats->bytes_decoded += bytes;
      PLT_TRACE_COUNT("bytes-decoded", bytes);
      for (const auto& [v, freq] : overlay.bucket(j)) warm(v, freq);
      overlay.drop(j);
      if (stats != nullptr) ++stats->warmed_ranks;
    }
  };
  if (first_mine >= lo && first_mine < index.max_rank) {
    if (completed > 0) {
      PLT_SPAN("ooc-resume");
      PLT_TRACE_COUNT("resumed-ranks", completed);
      PLT_TRACE_COUNT("warmed-ranks", index.max_rank - first_mine);
      warm_pass(index.max_rank, first_mine + 1);
    } else {
      PLT_SPAN("ooc-warm");
      PLT_TRACE_COUNT("warmed-ranks", index.max_rank - first_mine);
      warm_pass(index.max_rank, first_mine + 1);
    }
  }

  Itemset suffix;
  core::ConditionalOptions cond_options;
  // One engine for the whole blob: every rank's conditional PLT recycles
  // the same pooled frames.
  core::ProjectionEngine engine;
  // Shape-only planning: the streamed subtrees are inside one rank's CD,
  // so there are no view-partition stats to hand over. Emission order is
  // strategy-invariant, so checkpoint records stay exact across plans.
  std::optional<core::Planner> planner;
  if (core::active_plan() == core::PlanMode::kAdaptive) {
    planner.emplace(options.plan_config);
    engine.set_planner(&*planner);
  }
  // Rank-level planning is a separate planner that owns the caller's view
  // partition stats (the engine above must stay shape-only — its depth-0
  // is inside CD_j, not a view partition). Only the O(1) resolved witness
  // is used: partitions at or above rank j all full paths proves that every
  // vector the walk can feed into CD_j — original members and prefixes
  // reinserted from higher ranks alike — is the full path over ranks
  // 1..j-1, so CD_j is exactly single-path without scanning it.
  std::optional<core::Planner> rank_planner;
  if (core::active_plan() == core::PlanMode::kAdaptive &&
      !options.partition_stats.empty()) {
    rank_planner.emplace(options.plan_config);
    rank_planner->set_partition_stats(options.partition_stats);
  }

  CheckpointRecord record;
  // All emissions of the current rank flow through this wrapper so the
  // checkpoint record holds exactly what the sink saw, in order.
  const core::ItemsetSink rank_sink = [&](std::span<const Item> items,
                                          Count support) {
    sink(items, support);
    if (writer != nullptr)
      record.itemsets.emplace_back(Itemset(items.begin(), items.end()),
                                   support);
  };

  for (Rank j = first_mine; j >= lo && j >= 1; --j) {
    if (control != nullptr &&
        control->should_stop(overlay.live_bytes() + engine.memory_usage()))
      return finish(control->status());
    PLT_FAILPOINT("ooc.rank");
    PLT_TRACE_COUNT("ranks", 1);
    record.rank = j;
    record.itemsets.clear();

    Count support = 0;
    cond.clear();
    const auto consume = [&](std::span<const Pos> v, Count freq) {
      support += freq;
      if (v.size() > 1 && freq > 0) {
        scratch.assign(v.begin(), v.end() - 1);
        cond.emplace_back(scratch, freq);
        overlay.add(scratch, freq, j - v.back());
      }
    };
    const std::size_t bytes = stream_bucket(blob, index, j, consume);
    if (stats != nullptr) stats->bytes_decoded += bytes;
    PLT_TRACE_COUNT("bytes-decoded", bytes);
    for (const auto& [v, freq] : overlay.bucket(j)) consume(v, freq);
    if (stats != nullptr)
      stats->peak_overlay_bytes =
          std::max(stats->peak_overlay_bytes, overlay.live_bytes());
    overlay.drop(j);  // rank j's prefixes will never be visited again

    if (support >= min_support) {
      suffix.push_back(item_of[j - 1]);
      {
        Itemset emitted = suffix;
        std::sort(emitted.begin(), emitted.end());
        rank_sink(emitted, support);
      }
      bool resolved_single_path = false;
      if (!cond.empty() && rank_planner &&
          rank_planner->wants_single_path_probe(j, &resolved_single_path) &&
          resolved_single_path) {
        // Witnessed single-path subtree: every conditional vector is the
        // full path over ranks 1..j-1, so every subset shares one support
        // (the path's total frequency) and the whole subtree expands
        // without building a conditional PLT. The expansion order is the
        // pooled walk's own order, so emissions — and therefore checkpoint
        // records — stay byte-identical to the fixed plan.
        Count total = 0;
        for (const auto& [v, freq] : cond) total += freq;
        if (total >= min_support) {
          PLT_TRACE_COUNT("plan.rank.single-path", 1);
          const std::vector<Item> path_items(item_of.begin(),
                                             item_of.begin() + (j - 1));
          engine.set_control(control, overlay.live_bytes());
          engine.expand_single_path(path_items, static_cast<Rank>(j - 1),
                                    total, suffix, rank_sink);
          if (engine.interrupted()) return finish(control->status());
        }
      } else if (!cond.empty()) {
        core::ConditionalProjection child = core::make_conditional_plt(
            cond, j, min_support, cond_options.filter_conditional_items);
        // Under PLT_VALIDATE each conditional projection — including the
        // ones built right after a checkpoint resume rebuilt the overlay —
        // is structurally checked before mining it.
        core::maybe_validate(child.plt, "mine_from_blob: conditional PLT");
        if (!child.empty()) {
          std::vector<Item> child_item_of(child.to_parent.size());
          for (std::size_t c = 0; c < child.to_parent.size(); ++c)
            child_item_of[c] = item_of[child.to_parent[c] - 1];
          engine.set_control(control, overlay.live_bytes());
          engine.mine(child.plt, child_item_of, suffix, min_support,
                      rank_sink, cond_options);
          if (engine.interrupted()) return finish(control->status());
        }
      }
      suffix.pop_back();
    }

    // The rank is complete (streamed, mined, overlay advanced): one record,
    // flushed, makes it durable. A crash before this line re-mines rank j.
    if (writer != nullptr) {
      PLT_SPAN("checkpoint");
      writer->append(record);
      if (stats != nullptr) stats->checkpoint_records = writer->records_written();
    }
  }
  return finish(control != nullptr ? control->status()
                                   : core::MineStatus::kCompleted);
}

}  // namespace

core::MineStatus mine_from_blob(std::span<const std::uint8_t> blob,
                                const std::vector<Item>& item_of,
                                Count min_support,
                                const core::ItemsetSink& sink,
                                OocStats* stats, const OocOptions& options) {
  obs::AutoSession trace_session;
  core::MineStatus status;
  {
    PLT_SPAN("ooc-mine");
    status = mine_from_blob_impl(blob, item_of, min_support, sink, stats,
                                 options);
  }
  if (auto trace = trace_session.finish(); stats != nullptr)
    stats->trace = std::move(trace);
  return status;
}

}  // namespace plt::compress
