// PLT serialization: a compact on-disk/wire format built on varints.
//
// The current container is PLT2 (see blob_format.hpp for the exact layout):
// a CRC32C over the header varints plus one per partition frame, so any
// single-byte corruption, truncation or torn write is rejected before the
// data is trusted. Legacy PLT1 blobs (no checksums) still decode.
//
// Because positions are gaps, the encoding *is* the compression: a k-itemset
// costs ~k bytes plus its count. round-trips exactly (tests enforce it);
// Experiment E1 reports the resulting sizes against FP-tree and raw layouts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/plt.hpp"
#include "tdb/database.hpp"

namespace plt::compress {

struct EncodeOptions {
  /// Write partition frames in the group-varint block subformat (frame
  /// flag kFrameBlockCoded, SIMD-decodable): the default. Turn off to emit
  /// classic scalar-varint PLT2 frames; decode_plt reads both, and legacy
  /// blobs are unaffected either way.
  bool block_frames = true;
};

/// Serializes a PLT to bytes (PLT2: checksummed header + partition frames).
std::vector<std::uint8_t> encode_plt(const core::Plt& plt,
                                     const EncodeOptions& options = {});

/// Reconstructs a PLT from a PLT2 or legacy PLT1 blob. Throws
/// std::runtime_error on malformed input (bad magic, truncation, checksum
/// mismatch, invalid vectors).
core::Plt decode_plt(std::span<const std::uint8_t> bytes);

/// Writes a blob to disk atomically: the bytes land in `path + ".tmp"`, are
/// flushed and fsync'd, then renamed over `path` — a crash mid-write leaves
/// the previous file (or nothing), never a torn blob. Throws
/// std::runtime_error on any I/O failure.
void write_blob_file(std::span<const std::uint8_t> bytes,
                     const std::string& path);

/// Reads a whole blob file; throws std::runtime_error if unreadable.
std::vector<std::uint8_t> read_blob_file(const std::string& path);

/// Serialized size without materializing the buffer (for the same options).
std::size_t encoded_size(const core::Plt& plt,
                         const EncodeOptions& options = {});

/// Raw horizontal-layout cost of the same information in a plain database
/// encoding (4 bytes per item occurrence + 8 per transaction) — the E1
/// baseline for compression ratios.
std::size_t raw_database_bytes(const tdb::Database& db);

}  // namespace plt::compress
