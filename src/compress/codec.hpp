// PLT serialization: a compact on-disk/wire format built on varints.
//
// Layout:
//   magic "PLT1" | varint max_rank | varint partition_count
//   per partition: varint length | varint entry_count |
//                  entries: length * varint positions, varint freq
//
// Because positions are gaps, the encoding *is* the compression: a k-itemset
// costs ~k bytes plus its count. round-trips exactly (tests enforce it);
// Experiment E1 reports the resulting sizes against FP-tree and raw layouts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/plt.hpp"
#include "tdb/database.hpp"

namespace plt::compress {

/// Serializes a PLT to bytes.
std::vector<std::uint8_t> encode_plt(const core::Plt& plt);

/// Reconstructs a PLT. Throws std::runtime_error on malformed input
/// (bad magic, truncation, invalid vectors).
core::Plt decode_plt(std::span<const std::uint8_t> bytes);

/// Serialized size without materializing the buffer.
std::size_t encoded_size(const core::Plt& plt);

/// Raw horizontal-layout cost of the same information in a plain database
/// encoding (4 bytes per item occurrence + 8 per transaction) — the E1
/// baseline for compression ratios.
std::size_t raw_database_bytes(const tdb::Database& db);

}  // namespace plt::compress
