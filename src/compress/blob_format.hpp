// Shared parsing for the serialized-PLT container formats.
//
// PLT1 (legacy, still decoded):
//   "PLT1" | varint max_rank | varint partition_count
//   per partition: varint length | varint entry_count | entries
//
// PLT2 (current, written by encode_plt): every section carries a CRC32C so
// single-byte corruption, truncation and torn writes are detected before
// any value is trusted:
//   "PLT2" | varint max_rank | varint partition_count |
//   u32le CRC32C(header varints)
//   per partition: varint length | varint entry_count | varint payload_len |
//                  payload | u32le CRC32C(framing varints + payload)
// `payload` is the entry stream (length positions + freq, all varints).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/plt.hpp"

namespace plt::compress {

inline constexpr char kMagicV1[4] = {'P', 'L', 'T', '1'};
inline constexpr char kMagicV2[4] = {'P', 'L', 'T', '2'};

/// Appends `value` little-endian (the fixed-width CRC slot).
void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t value);

/// Reads a little-endian u32 at `offset`; throws std::runtime_error when it
/// would run past the end of `bytes`.
std::uint32_t read_u32le(std::span<const std::uint8_t> bytes,
                         std::size_t offset, const char* who);

struct BlobHeader {
  int version = 2;  ///< 1 or 2
  Rank max_rank = 0;
  std::uint64_t partitions = 0;
  std::size_t body_offset = 0;  ///< first partition frame
};

/// Parses and validates a blob header: magic, max_rank range limit and (v2)
/// the header CRC, so a corrupted header can never drive a huge allocation.
/// `who` prefixes error messages. Throws std::runtime_error.
BlobHeader read_blob_header(std::span<const std::uint8_t> blob,
                            const char* who);

struct PartitionFrame {
  std::uint32_t length = 0;
  std::uint64_t entries = 0;
  std::size_t payload_begin = 0;
  /// One past the entry stream. 0 for v1 frames (extent only known after
  /// decoding); v2 callers must land exactly here and then skip the 4 CRC
  /// bytes.
  std::size_t payload_end = 0;
};

/// Parses the partition frame at `offset`, advancing it to the payload
/// start. For v2 the frame CRC is verified and the declared payload length
/// is bounds-checked against both the blob size and the minimum entry
/// footprint (each entry costs at least length+1 bytes) before anything is
/// decoded. Throws std::runtime_error.
PartitionFrame read_partition_frame(std::span<const std::uint8_t> blob,
                                    std::size_t& offset,
                                    const BlobHeader& header,
                                    const char* who);

}  // namespace plt::compress
