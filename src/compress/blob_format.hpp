// Shared parsing for the serialized-PLT container formats.
//
// PLT1 (legacy, still decoded):
//   "PLT1" | varint max_rank | varint partition_count
//   per partition: varint length | varint entry_count | entries
//
// PLT2 (current, written by encode_plt): every section carries a CRC32C so
// single-byte corruption, truncation and torn writes are detected before
// any value is trusted:
//   "PLT2" | varint max_rank | varint partition_count |
//   u32le CRC32C(header varints)
//   per partition: varint length | varint entry_count | varint payload_len |
//                  payload | u32le CRC32C(framing varints + payload)
// `payload` is the entry stream (length positions + freq, all varints).
//
// PLT2 block-coded frames (written by encode_plt when
// EncodeOptions::block_frames is set, the default): the frame-length varint
// carries kFrameBlockCoded OR'd in — max_rank is capped at 2^26, so bit 27
// is never set by a scalar frame and old decoders' length check rejects the
// new frames cleanly instead of misreading them. Each entry's payload is
// one group-varint block of length+2 u32 values (the positions, then freq
// split lo/hi): groups of four values share a control byte (2 bits each =
// byte length - 1) followed by the little-endian value bytes. Entries stay
// independently decodable at their byte offsets, so the BlobIndex's
// random-access buckets work unchanged on both subformats.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/plt.hpp"

namespace plt::compress {

inline constexpr char kMagicV1[4] = {'P', 'L', 'T', '1'};
inline constexpr char kMagicV2[4] = {'P', 'L', 'T', '2'};

/// Flag OR'd into a PLT2 frame-length varint (and into the coded lengths a
/// BlobIndex stores): the frame's entries use the group-varint block
/// layout. Safe because partition lengths are bounded by max_rank <= 2^26.
inline constexpr std::uint32_t kFrameBlockCoded = 1u << 27;

/// Appends `value` little-endian (the fixed-width CRC slot).
void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t value);

/// Reads a little-endian u32 at `offset`; throws std::runtime_error when it
/// would run past the end of `bytes`.
std::uint32_t read_u32le(std::span<const std::uint8_t> bytes,
                         std::size_t offset, const char* who);

struct BlobHeader {
  int version = 2;  ///< 1 or 2
  Rank max_rank = 0;
  std::uint64_t partitions = 0;
  std::size_t body_offset = 0;  ///< first partition frame
};

/// Parses and validates a blob header: magic, max_rank range limit and (v2)
/// the header CRC, so a corrupted header can never drive a huge allocation.
/// `who` prefixes error messages. Throws std::runtime_error.
BlobHeader read_blob_header(std::span<const std::uint8_t> blob,
                            const char* who);

struct PartitionFrame {
  std::uint32_t length = 0;
  bool block_coded = false;  ///< group-varint entry layout (PLT2 only)
  std::uint64_t entries = 0;
  std::size_t payload_begin = 0;
  /// One past the entry stream. 0 for v1 frames (extent only known after
  /// decoding); v2 callers must land exactly here and then skip the 4 CRC
  /// bytes.
  std::size_t payload_end = 0;
};

/// Parses the partition frame at `offset`, advancing it to the payload
/// start. For v2 the frame CRC is verified and the declared payload length
/// is bounds-checked against both the blob size and the minimum entry
/// footprint (each entry costs at least length+1 bytes) before anything is
/// decoded. Throws std::runtime_error.
PartitionFrame read_partition_frame(std::span<const std::uint8_t> blob,
                                    std::size_t& offset,
                                    const BlobHeader& header,
                                    const char* who);

/// Decodes one entry at `offset` (advanced past it). `coded_length` is the
/// vector length, with kFrameBlockCoded OR'd in when the entry uses the
/// group-varint block layout — exactly the form read_partition_frame
/// parsed and BlobIndex buckets store. Throws std::runtime_error on
/// truncated input. The kernel dispatch makes the block path SIMD on
/// supporting hosts; every backend decodes identical bytes to identical
/// values.
void decode_blob_entry(std::span<const std::uint8_t> blob,
                       std::size_t& offset, std::uint32_t coded_length,
                       core::PosVec& v, Count& freq);

}  // namespace plt::compress
