#include "baselines/partition_alg.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "baselines/counting.hpp"
#include "core/miner.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {
struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};
}  // namespace

void mine_partition(const tdb::Database& db, Count min_support,
                    const ItemsetSink& sink, BaselineStats* stats,
                    const PartitionOptions& options,
                    const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(options.partitions >= 1, "need at least one partition");
  Timer mine_timer;
  const std::size_t n = db.size();
  if (n == 0) {
    if (stats) stats->mine_seconds = mine_timer.seconds();
    return;
  }
  const std::size_t chunks = std::min(options.partitions, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  const double relative =
      static_cast<double>(min_support) / static_cast<double>(n);

  // Phase 1: mine each chunk at the equivalent relative threshold; union
  // the local frequents into the global candidate set.
  std::unordered_set<Itemset, ItemsetHash> candidate_set;
  std::size_t peak_bytes = 0;
  core::MineOptions chunk_options;
  chunk_options.control = control;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    tdb::Database chunk;
    for (std::size_t t = begin; t < end; ++t) chunk.add(db[t]);
    const auto local_minsup = std::max<Count>(
        1, static_cast<Count>(
               std::ceil(relative * static_cast<double>(chunk.size()))));
    const auto local = core::mine(chunk, local_minsup,
                                  core::Algorithm::kPltConditional,
                                  chunk_options);
    peak_bytes = std::max(peak_bytes, local.structure_bytes);
    if (local.status != core::MineStatus::kCompleted) break;
    for (std::size_t i = 0; i < local.itemsets.size(); ++i) {
      const auto z = local.itemsets.itemset(i);
      candidate_set.insert(Itemset(z.begin(), z.end()));
    }
  }
  // Stopped runs skip the exact pass: locally-frequent candidates carry
  // estimated counts only, so emitting them would report wrong supports.
  if (control != nullptr && control->should_stop(peak_bytes)) {
    if (stats) {
      stats->mine_seconds = mine_timer.seconds();
      stats->structure_bytes = peak_bytes;
    }
    return;
  }

  // Phase 2: one exact counting pass over the whole database.
  std::vector<Itemset> candidates(candidate_set.begin(),
                                  candidate_set.end());
  const auto counts = count_supports(db, candidates);
  for (std::size_t c = 0; c < candidates.size(); ++c)
    if (counts[c] >= min_support) sink(candidates[c], counts[c]);

  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes = peak_bytes;
  }
}

}  // namespace plt::baselines
