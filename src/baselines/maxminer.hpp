// MaxMiner/GenMax-style native MAXIMAL itemset mining (Bayardo, SIGMOD'98
// lineage; complements the paper's references [13]/[19] on condensed
// mining): set-enumeration search with superset lookahead — if the head
// plus its whole candidate tail is frequent, the entire subtree collapses
// to that one maximal set. Supports come from tidset intersections.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

/// Emits every MAXIMAL frequent itemset of `db` at `min_support`.
/// Results equal core::maximal_itemsets(full mining) — tests enforce it.
void mine_maxminer(const tdb::Database& db, Count min_support,
                   const ItemsetSink& sink, BaselineStats* stats = nullptr);

}  // namespace plt::baselines
