// Shared bits for the baseline miners (Apriori, FP-growth, Eclat/dEclat,
// brute force). Every baseline reports itemsets in original item ids through
// the same ItemsetSink the PLT miners use, so results are interchangeable.
#pragma once

#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "tdb/database.hpp"

namespace plt::baselines {

using core::ItemsetSink;
using core::MiningControl;

/// Timing/size accounting filled in by each baseline when requested.
struct BaselineStats {
  double build_seconds = 0.0;
  double mine_seconds = 0.0;
  std::size_t structure_bytes = 0;
};

}  // namespace plt::baselines
