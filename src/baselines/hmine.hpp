// H-Mine-style miner (Pei et al., ICDM'01 — the paper's §3 fix for
// FP-growth's sparse-data weakness, reference [8]-adjacent): pattern growth
// by *pseudo-projection*. Transactions are stored once in a flat
// hyper-structure; a projected database is just a list of (row, offset)
// cursors into it, so no conditional structures are materialized — the
// property that makes H-Mine memory-light on sparse data.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

void mine_hmine(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats = nullptr,
                const MiningControl* control = nullptr);

}  // namespace plt::baselines
