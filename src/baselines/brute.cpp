#include "baselines/brute.hpp"

#include <algorithm>

namespace plt::baselines {

namespace {

Count count_support(const tdb::Database& db, const Itemset& itemset) {
  Count support = 0;
  for (std::size_t t = 0; t < db.size(); ++t) {
    const auto row = db[t];
    if (std::includes(row.begin(), row.end(), itemset.begin(),
                      itemset.end()))
      support += 1;
  }
  return support;
}

void extend(const tdb::Database& db, Count min_support,
            const std::vector<Item>& alphabet, std::size_t next,
            Itemset& current, const ItemsetSink& sink) {
  for (std::size_t i = next; i < alphabet.size(); ++i) {
    current.push_back(alphabet[i]);
    const Count support = count_support(db, current);
    // Anti-monotone: no superset of an infrequent set can be frequent, so
    // pruning here keeps the oracle complete.
    if (support >= min_support) {
      sink(current, support);
      extend(db, min_support, alphabet, i + 1, current, sink);
    }
    current.pop_back();
  }
}

}  // namespace

void mine_brute_force(const tdb::Database& db, Count min_support,
                      const ItemsetSink& sink) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  const auto supports = db.item_supports();
  std::vector<Item> alphabet;
  for (Item i = 0; i < supports.size(); ++i)
    if (supports[i] >= min_support) alphabet.push_back(i);
  Itemset current;
  extend(db, min_support, alphabet, 0, current, sink);
}

}  // namespace plt::baselines
