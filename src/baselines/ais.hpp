// AIS (Agrawal, Imielinski & Swami, SIGMOD'93 — the paper's reference [1],
// the *first* association-mining algorithm and the first entry in §3's
// candidate-generation list): candidates are generated on the fly during
// the scan — every frequent (k-1)-itemset found in a transaction is
// extended with the transaction's higher items — with no join and no
// anti-monotone prune. Kept faithful to show why Apriori's prune mattered.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

void mine_ais(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats = nullptr,
              const MiningControl* control = nullptr);

}  // namespace plt::baselines
