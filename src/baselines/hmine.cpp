#include "baselines/hmine.hpp"

#include <algorithm>

#include "tdb/remap.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

// A projected database: cursors into the remapped transaction store. The
// suffix row[offset..] holds the items greater than the current prefix's
// last item, restricted to rows that contain the prefix.
struct Cursor {
  std::uint32_t row;
  std::uint32_t offset;
};

struct Ctx {
  const tdb::Database& mapped;
  const tdb::Remap& remap;
  Count min_support;
  const ItemsetSink& sink;
  std::size_t alphabet;
  std::vector<Item> prefix;  // remapped ids, ascending
  Itemset scratch;
  std::size_t peak_cursors = 0;
  const MiningControl* control = nullptr;
  bool stopped = false;

  void emit(Count support) {
    scratch.clear();
    for (const Item id : prefix) scratch.push_back(remap.unmap(id));
    std::sort(scratch.begin(), scratch.end());
    sink(scratch, support);
  }
};

void mine_projection(Ctx& ctx, const std::vector<Cursor>& cursors) {
  ctx.peak_cursors = std::max(ctx.peak_cursors, cursors.size());

  // Count local supports of every extension item in the suffixes. One
  // counter array per recursion level: the recursive calls below must not
  // clobber this level's counts.
  std::vector<Count> local_count(ctx.alphabet + 1, 0);
  for (const Cursor c : cursors) {
    const auto row = ctx.mapped[c.row];
    for (std::size_t i = c.offset; i < row.size(); ++i)
      local_count[row[i]] += 1;
  }

  std::vector<Cursor> child;
  for (Item ext = 1; ext < local_count.size(); ++ext) {
    if (ctx.stopped) return;
    if (ctx.control != nullptr &&
        ctx.control->should_stop(ctx.peak_cursors * sizeof(Cursor))) {
      ctx.stopped = true;
      return;
    }
    const Count support = local_count[ext];
    if (support < ctx.min_support) continue;
    ctx.prefix.push_back(ext);
    ctx.emit(support);

    // Pseudo-project: advance each cursor past `ext` where present.
    child.clear();
    child.reserve(support);
    for (const Cursor c : cursors) {
      const auto row = ctx.mapped[c.row];
      // Rows are sorted; binary-search the suffix for ext.
      const auto begin = row.begin() + c.offset;
      const auto it = std::lower_bound(begin, row.end(), ext);
      if (it != row.end() && *it == ext) {
        const auto next =
            static_cast<std::uint32_t>(it - row.begin() + 1);
        if (next < row.size()) child.push_back({c.row, next});
      }
    }
    if (!child.empty()) mine_projection(ctx, child);
    ctx.prefix.pop_back();
    if (ctx.stopped) return;
  }
}

}  // namespace

void mine_hmine(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats,
                const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = mapped.memory_usage();
  }
  if (remap.alphabet_size() == 0) {
    if (stats) stats->mine_seconds = 0.0;
    return;
  }

  Timer mine_timer;
  Ctx ctx{mapped,  remap, min_support, sink, remap.alphabet_size(), {}, {},
          0,       control, false};
  std::vector<Cursor> top;
  top.reserve(mapped.size());
  for (std::uint32_t t = 0; t < mapped.size(); ++t) top.push_back({t, 0});
  mine_projection(ctx, top);
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += ctx.peak_cursors * sizeof(Cursor);
  }
}

}  // namespace plt::baselines
