#include "baselines/eclat.hpp"

#include <algorithm>

#include "tdb/remap.hpp"
#include "tdb/vertical.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

struct Ctx {
  const tdb::Remap& remap;
  Count min_support;
  const ItemsetSink& sink;
  Itemset scratch;
  std::size_t peak_bytes = 0;
  const MiningControl* control = nullptr;
  bool stopped = false;

  bool check_stop() {
    if (stopped) return true;
    if (control != nullptr && control->should_stop(peak_bytes))
      stopped = true;
    return stopped;
  }

  void emit(const std::vector<Item>& suffix, Count support) {
    scratch.clear();
    for (const Item id : suffix) scratch.push_back(remap.unmap(id));
    std::sort(scratch.begin(), scratch.end());
    sink(scratch, support);
  }
};

struct Member {
  Item item;
  std::vector<Tid> tids;  // tidset (Eclat) or diffset (dEclat)
  Count support;
};

std::size_t class_bytes(const std::vector<Member>& eq_class) {
  std::size_t bytes = 0;
  for (const auto& m : eq_class) bytes += m.tids.capacity() * sizeof(Tid);
  return bytes;
}

// Classic Eclat: children intersect tidsets pairwise.
void eclat_rec(std::vector<Item>& prefix, const std::vector<Member>& members,
               Ctx& ctx) {
  ctx.peak_bytes = std::max(ctx.peak_bytes, class_bytes(members));
  for (std::size_t a = 0; a < members.size(); ++a) {
    if (ctx.check_stop()) return;
    prefix.push_back(members[a].item);
    ctx.emit(prefix, members[a].support);
    std::vector<Member> child;
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      std::vector<Tid> tids = tdb::intersect(members[a].tids,
                                             members[b].tids);
      const Count support = tids.size();
      if (support >= ctx.min_support)
        child.push_back(Member{members[b].item, std::move(tids), support});
    }
    if (!child.empty()) eclat_rec(prefix, child, ctx);
    prefix.pop_back();
    if (ctx.stopped) return;
  }
}

// dEclat: at depth >= 1 members carry diffsets d(PX) = t(P) \ t(X);
// d(PXY) = d(PY) \ d(PX), support(PXY) = support(PX) - |d(PXY)|.
void declat_rec(std::vector<Item>& prefix, const std::vector<Member>& members,
                Ctx& ctx) {
  ctx.peak_bytes = std::max(ctx.peak_bytes, class_bytes(members));
  for (std::size_t a = 0; a < members.size(); ++a) {
    if (ctx.check_stop()) return;
    prefix.push_back(members[a].item);
    ctx.emit(prefix, members[a].support);
    std::vector<Member> child;
    for (std::size_t b = a + 1; b < members.size(); ++b) {
      std::vector<Tid> diff = tdb::difference(members[b].tids,
                                              members[a].tids);
      const Count support = members[a].support - diff.size();
      if (support >= ctx.min_support)
        child.push_back(Member{members[b].item, std::move(diff), support});
    }
    if (!child.empty()) declat_rec(prefix, child, ctx);
    prefix.pop_back();
    if (ctx.stopped) return;
  }
}

void mine_vertical(const tdb::Database& db, Count min_support,
                   const ItemsetSink& sink, BaselineStats* stats,
                   bool diffsets, const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  const tdb::VerticalView vertical(mapped);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = vertical.memory_usage();
  }

  Timer mine_timer;
  Ctx ctx{remap, min_support, sink, {}, 0, control, false};
  std::vector<Item> prefix;

  if (diffsets) {
    // Top level still uses tidsets; the first projection switches to diffs:
    // d(XY) = t(X) \ t(Y), support = |t(X)| - |d(XY)|.
    for (Item a = 1; a <= static_cast<Item>(remap.alphabet_size()); ++a) {
      if (ctx.check_stop()) break;
      const auto ta = vertical.tidset(a);
      prefix.push_back(a);
      ctx.emit(prefix, ta.size());
      std::vector<Member> child;
      for (Item b = a + 1; b <= static_cast<Item>(remap.alphabet_size());
           ++b) {
        std::vector<Tid> diff = tdb::difference(ta, vertical.tidset(b));
        const Count support = ta.size() - diff.size();
        if (support >= min_support)
          child.push_back(Member{b, std::move(diff), support});
      }
      if (!child.empty()) declat_rec(prefix, child, ctx);
      prefix.pop_back();
    }
  } else {
    std::vector<Member> top;
    for (Item a = 1; a <= static_cast<Item>(remap.alphabet_size()); ++a) {
      const auto ta = vertical.tidset(a);
      top.push_back(
          Member{a, std::vector<Tid>(ta.begin(), ta.end()), ta.size()});
    }
    if (!top.empty()) eclat_rec(prefix, top, ctx);
  }

  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += ctx.peak_bytes;
  }
}

}  // namespace

void mine_eclat(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats,
                const MiningControl* control) {
  mine_vertical(db, min_support, sink, stats, /*diffsets=*/false, control);
}

void mine_declat(const tdb::Database& db, Count min_support,
                 const ItemsetSink& sink, BaselineStats* stats,
                 const MiningControl* control) {
  mine_vertical(db, min_support, sink, stats, /*diffsets=*/true, control);
}

}  // namespace plt::baselines
