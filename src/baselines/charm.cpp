#include "baselines/charm.hpp"

#include <algorithm>
#include <unordered_map>

#include "tdb/remap.hpp"
#include "tdb/vertical.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

struct Node {
  Itemset items;           // remapped ids, sorted
  std::vector<Tid> tids;   // sorted tidset
};

// Registry of emitted closed sets for the subsumption check, bucketed by
// support (a subsuming superset always has the same support).
class ClosedRegistry {
 public:
  // True if some registered itemset with the same support contains `items`.
  bool subsumed(const Itemset& items, Count support) const {
    const auto it = by_support_.find(support);
    if (it == by_support_.end()) return false;
    for (const auto& z : it->second) {
      if (z.size() <= items.size()) continue;
      if (std::includes(z.begin(), z.end(), items.begin(), items.end()))
        return true;
    }
    return false;
  }

  void add(Itemset items, Count support) {
    by_support_[support].push_back(std::move(items));
  }

 private:
  std::unordered_map<Count, std::vector<Itemset>> by_support_;
};

struct Ctx {
  const tdb::Remap& remap;
  Count min_support;
  const ItemsetSink& sink;
  ClosedRegistry registry;
  Itemset scratch;
  std::size_t peak_bytes = 0;

  void emit(const Itemset& items, Count support) {
    scratch.clear();
    for (const Item id : items) scratch.push_back(remap.unmap(id));
    std::sort(scratch.begin(), scratch.end());
    sink(scratch, support);
  }
};

Itemset merge_items(const Itemset& a, const Itemset& b) {
  Itemset out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void charm_extend(Ctx& ctx, std::vector<Node>& klass) {
  // Process in increasing tidset size (the CHARM heuristic: small tidsets
  // first maximizes merge opportunities).
  std::sort(klass.begin(), klass.end(), [](const Node& a, const Node& b) {
    if (a.tids.size() != b.tids.size())
      return a.tids.size() < b.tids.size();
    return a.items < b.items;
  });

  std::size_t class_bytes = 0;
  for (const Node& n : klass) class_bytes += n.tids.capacity() * sizeof(Tid);
  ctx.peak_bytes = std::max(ctx.peak_bytes, class_bytes);

  std::vector<bool> absorbed(klass.size(), false);
  for (std::size_t i = 0; i < klass.size(); ++i) {
    if (absorbed[i]) continue;
    Itemset closure = klass[i].items;

    // Pass 1 (properties 1 & 2): any j whose tidset contains t_i joins the
    // closure; equal tidsets are absorbed entirely.
    for (std::size_t j = i + 1; j < klass.size(); ++j) {
      if (absorbed[j]) continue;
      const auto shared = tdb::intersect(klass[i].tids, klass[j].tids);
      if (shared.size() != klass[i].tids.size()) continue;  // t_i ⊄ t_j
      closure = merge_items(closure, klass[j].items);
      if (shared.size() == klass[j].tids.size()) absorbed[j] = true;
    }

    // Pass 2 (properties 3 & 4): true sub-intersections become children.
    std::vector<Node> children;
    for (std::size_t j = i + 1; j < klass.size(); ++j) {
      if (absorbed[j]) continue;
      auto shared = tdb::intersect(klass[i].tids, klass[j].tids);
      if (shared.size() == klass[i].tids.size()) continue;  // handled above
      if (shared.size() < ctx.min_support) continue;
      children.push_back(
          Node{merge_items(closure, klass[j].items), std::move(shared)});
    }
    if (!children.empty()) charm_extend(ctx, children);

    // Emit the closure unless a superset with the same support exists.
    const Count support = klass[i].tids.size();
    if (!ctx.registry.subsumed(closure, support)) {
      ctx.registry.add(closure, support);
      ctx.emit(closure, support);
    }
  }
}

}  // namespace

void mine_charm(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  const tdb::VerticalView vertical(mapped);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = vertical.memory_usage();
  }

  Timer mine_timer;
  Ctx ctx{remap, min_support, sink, {}, {}, 0};
  std::vector<Node> top;
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
    const auto tids = vertical.tidset(r);
    top.push_back(Node{{r}, std::vector<Tid>(tids.begin(), tids.end())});
  }
  if (!top.empty()) charm_extend(ctx, top);
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += ctx.peak_bytes;
  }
}

}  // namespace plt::baselines
