// The Partition algorithm (Savasere, Omiecinski & Navathe, VLDB'95 — cited
// in the paper's §3 survey): split the database into memory-sized chunks,
// mine each chunk locally (any in-memory miner; we use PLT conditional),
// union the local results into a global candidate set, and count the
// candidates exactly in one final scan. Exactly two passes over the data —
// correct because a globally frequent itemset is locally frequent in at
// least one chunk.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

struct PartitionOptions {
  std::size_t partitions = 4;
};

void mine_partition(const tdb::Database& db, Count min_support,
                    const ItemsetSink& sink, BaselineStats* stats = nullptr,
                    const PartitionOptions& options = {},
                    const MiningControl* control = nullptr);

}  // namespace plt::baselines
