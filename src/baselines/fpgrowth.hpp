// FP-growth (Han, Pei & Yin, SIGMOD'00 — the paper's reference [3]):
// frequency-descending prefix tree with header-table node links, mined by
// recursive conditional-tree projection with the single-path shortcut.
// This is the pattern-growth baseline the PLT conditional approach is the
// paper's alternative to.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

void mine_fpgrowth(const tdb::Database& db, Count min_support,
                   const ItemsetSink& sink, BaselineStats* stats = nullptr,
                   const MiningControl* control = nullptr);

/// Size in bytes of the initial FP-tree built for `db` at `min_support`
/// (node storage + header table). Used by the structure-size experiment E1.
std::size_t fptree_size_bytes(const tdb::Database& db, Count min_support,
                              std::size_t* node_count = nullptr);

}  // namespace plt::baselines
