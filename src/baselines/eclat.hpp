// Eclat (Zaki, TKDE'00 — the paper's reference [12]) and dEclat
// (Zaki & Gouda, KDD'03 — reference [16]): vertical mining by depth-first
// equivalence-class search over tidsets; dEclat carries diffsets below the
// first level, computing support as parent support minus diffset size.
// These are the vertical-layout baselines of the paper's §3 taxonomy.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

void mine_eclat(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats = nullptr,
                const MiningControl* control = nullptr);

void mine_declat(const tdb::Database& db, Count min_support,
                 const ItemsetSink& sink, BaselineStats* stats = nullptr,
                 const MiningControl* control = nullptr);

}  // namespace plt::baselines
