// Shared subset-counting utilities for the candidate-generation miners:
// a multi-length prefix trie that counts the exact support of a fixed
// candidate set in one pass over the database.
#pragma once

#include <span>
#include <vector>

#include "tdb/database.hpp"
#include "util/common.hpp"

namespace plt::baselines {

class CountingTrie {
 public:
  /// Builds the trie over sorted candidate itemsets (any mix of lengths).
  explicit CountingTrie(const std::vector<Itemset>& candidates);

  /// Adds 1 to the count of every candidate contained in the sorted `row`.
  void count(std::span<const Item> row);

  /// Count of the i-th candidate (input order).
  Count support(std::size_t candidate) const { return counts_[candidate]; }

  std::size_t memory_usage() const;

 private:
  struct Edge {
    Item item;
    std::uint32_t node;
  };
  struct Node {
    std::vector<Edge> edges;  // sorted by item
    std::uint32_t candidate = 0xffffffffu;
  };

  std::uint32_t child(std::uint32_t node, Item item);
  void walk(std::uint32_t node, std::span<const Item> row);

  std::vector<Node> nodes_;
  std::vector<Count> counts_;
};

/// Convenience: exact supports of `candidates` over `db` in one pass.
std::vector<Count> count_supports(const tdb::Database& db,
                                  const std::vector<Itemset>& candidates);

/// Exact supports via tidlist intersection on a vertical view: each
/// candidate's support is the size of the running intersection of its
/// items' tidsets (kernel-backed intersect_count, galloping + SIMD). Same
/// results as count_supports — the differential tests pin the two — but
/// scales with tidset sizes instead of database rows, which wins when
/// candidates are few and long.
std::vector<Count> count_supports_vertical(
    const tdb::Database& db, const std::vector<Itemset>& candidates);

}  // namespace plt::baselines
