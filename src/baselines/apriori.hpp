// Apriori (Agrawal & Srikant, VLDB'94 — the paper's reference [2]):
// level-wise candidate generation with the anti-monotone prune, counting via
// a candidate prefix trie walked once per transaction per pass. This is the
// canonical candidate-generation baseline the paper's §3 describes.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

void mine_apriori(const tdb::Database& db, Count min_support,
                  const ItemsetSink& sink, BaselineStats* stats = nullptr,
                  const MiningControl* control = nullptr);

/// AprioriTid (same paper, [2]): after the first pass, counting never
/// touches the raw database again — each transaction is replaced by the set
/// of candidates it contains, and pass k intersects generator pairs inside
/// those sets. Wins when the encoded sets shrink quickly.
void mine_apriori_tid(const tdb::Database& db, Count min_support,
                      const ItemsetSink& sink,
                      BaselineStats* stats = nullptr,
                      const MiningControl* control = nullptr);

/// DHP (Park, Chen & Yu, SIGMOD'95 — the paper's reference [5]): Apriori
/// with a hash filter — while counting pass k, every (k+1)-subset of each
/// transaction is hashed into a bucket-counter table, and pass-(k+1)
/// candidates whose bucket cannot reach min_support are pruned before
/// counting.
void mine_dhp(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats = nullptr,
              std::size_t hash_buckets = 1 << 16,
              const MiningControl* control = nullptr);

}  // namespace plt::baselines
