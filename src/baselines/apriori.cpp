#include "baselines/apriori.hpp"

#include <algorithm>
#include <unordered_map>

#include "tdb/remap.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

// Itemsets of one level, stored flat; items are remapped ids (1..n) kept
// sorted within each itemset.
struct Level {
  std::size_t k = 0;                 // itemset length
  std::vector<Item> items;           // k * count entries
  std::vector<Count> counts;

  std::size_t size() const { return counts.size(); }
  bool empty() const { return counts.empty(); }
  std::span<const Item> itemset(std::size_t i) const {
    return {items.data() + i * k, k};
  }
  void add(std::span<const Item> itemset_items) {
    items.insert(items.end(), itemset_items.begin(), itemset_items.end());
    counts.push_back(0);
  }
  std::size_t memory_usage() const {
    return items.capacity() * sizeof(Item) +
           counts.capacity() * sizeof(Count);
  }
};

bool lexicographic_less(std::span<const Item> a, std::span<const Item> b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

// True iff every (k-1)-subset of `candidate` appears in the sorted previous
// frequent level — the anti-monotone prune.
bool all_subsets_frequent(const Level& prev, std::span<const Item> candidate,
                          std::vector<Item>& scratch) {
  const std::size_t k = candidate.size();
  scratch.resize(k - 1);
  for (std::size_t drop = 0; drop < k; ++drop) {
    // The two subsets dropping the last two elements are the join parents —
    // frequent by construction — so skip them.
    if (drop + 2 >= k) continue;
    std::size_t w = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (i != drop) scratch[w++] = candidate[i];
    // Binary search the previous level (it is kept in lexicographic order).
    std::size_t lo = 0, hi = prev.size();
    bool found = false;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const auto mid_items = prev.itemset(mid);
      if (std::equal(mid_items.begin(), mid_items.end(), scratch.begin())) {
        found = true;
        break;
      }
      if (lexicographic_less(mid_items, scratch))
        lo = mid + 1;
      else
        hi = mid;
    }
    if (!found) return false;
  }
  return true;
}

// Candidate join: pairs of frequent (k-1)-itemsets sharing their first k-2
// items produce a k-candidate; prune by subset check.
Level generate_candidates(const Level& prev, std::vector<Item>& scratch) {
  Level next;
  next.k = prev.k + 1;
  std::vector<Item> candidate(next.k);
  for (std::size_t a = 0; a < prev.size(); ++a) {
    const auto ia = prev.itemset(a);
    for (std::size_t b = a + 1; b < prev.size(); ++b) {
      const auto ib = prev.itemset(b);
      if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) break;
      std::copy(ia.begin(), ia.end(), candidate.begin());
      candidate[next.k - 1] = ib.back();
      if (all_subsets_frequent(prev, candidate, scratch))
        next.add(candidate);
    }
  }
  return next;
}

// Prefix trie over the candidates of one level, for subset counting.
class CandidateTrie {
 public:
  explicit CandidateTrie(const Level& level) {
    k_ = level.k;
    nodes_.push_back(Node{});  // root
    for (std::size_t c = 0; c < level.size(); ++c) {
      std::uint32_t node = 0;
      const auto items = level.itemset(c);
      for (std::size_t d = 0; d < k_; ++d) node = child(node, items[d]);
      nodes_[node].candidate = static_cast<std::uint32_t>(c);
    }
  }

  // Adds 1 to the count of every candidate contained in `row`.
  void count(std::span<const Item> row, Level& level) const {
    walk(0, row, 0, level);
  }

  std::size_t memory_usage() const {
    std::size_t bytes = nodes_.size() * sizeof(Node);
    for (const auto& n : nodes_)
      bytes += n.edges.capacity() * sizeof(Edge);
    return bytes;
  }

 private:
  struct Edge {
    Item item;
    std::uint32_t node;
  };
  struct Node {
    std::vector<Edge> edges;  // sorted by item
    std::uint32_t candidate = 0xffffffffu;
  };

  std::uint32_t child(std::uint32_t node, Item item) {
    auto& edges = nodes_[node].edges;
    const auto it = std::lower_bound(
        edges.begin(), edges.end(), item,
        [](const Edge& e, Item i) { return e.item < i; });
    if (it != edges.end() && it->item == item) return it->node;
    nodes_.push_back(Node{});
    const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
    // `edges` may have been invalidated by the push_back via nodes_ growth,
    // so re-take the reference.
    auto& fresh = nodes_[node].edges;
    const auto pos = std::lower_bound(
        fresh.begin(), fresh.end(), item,
        [](const Edge& e, Item i) { return e.item < i; });
    fresh.insert(pos, Edge{item, id});
    return id;
  }

  void walk(std::uint32_t node, std::span<const Item> row, std::size_t depth,
            Level& level) const {
    const Node& n = nodes_[node];
    if (n.candidate != 0xffffffffu) {
      level.counts[n.candidate] += 1;
      return;  // leaves have no edges at a fixed depth k
    }
    if (depth >= k_) return;
    // Merge-walk the sorted row against the sorted edges.
    std::size_t r = 0, e = 0;
    while (r < row.size() && e < n.edges.size()) {
      if (row[r] < n.edges[e].item) {
        ++r;
      } else if (row[r] > n.edges[e].item) {
        ++e;
      } else {
        walk(n.edges[e].node, row.subspan(r + 1), depth + 1, level);
        ++r;
        ++e;
      }
    }
  }

  std::size_t k_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace

void mine_apriori(const tdb::Database& db, Count min_support,
                  const ItemsetSink& sink, BaselineStats* stats,
                  const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = mapped.memory_usage();
  }

  Timer mine_timer;
  // L1.
  Level current;
  current.k = 1;
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
    const Item id = r;
    current.add(std::span<const Item>(&id, 1));
    current.counts.back() = remap.support[r - 1];
  }
  std::vector<Item> scratch;
  Itemset original;
  std::size_t peak_bytes = 0;
  while (!current.empty()) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    // Report this level.
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (current.counts[i] < min_support) continue;
      const auto items = current.itemset(i);
      original.clear();
      for (const Item id : items) original.push_back(remap.unmap(id));
      std::sort(original.begin(), original.end());
      sink(original, current.counts[i]);
    }
    // Keep only the frequent itemsets (lexicographic order is preserved).
    Level survivors;
    survivors.k = current.k;
    for (std::size_t i = 0; i < current.size(); ++i) {
      if (current.counts[i] < min_support) continue;
      survivors.add(current.itemset(i));
      survivors.counts.back() = current.counts[i];
    }
    if (survivors.size() < 2) break;

    Level next = generate_candidates(survivors, scratch);
    if (next.empty()) break;
    CandidateTrie trie(next);
    peak_bytes = std::max(peak_bytes, next.memory_usage() +
                                          trie.memory_usage());
    for (std::size_t t = 0; t < mapped.size(); ++t)
      trie.count(mapped[t], next);
    current = std::move(next);
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += peak_bytes;
  }
}

namespace {

// Join with generator tracking for AprioriTid: candidate k-itemsets plus
// the indices of their two (k-1)-generators within the previous level.
struct TidCandidates {
  Level level;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> generators;
};

TidCandidates generate_candidates_tid(const Level& prev,
                                      std::vector<Item>& scratch) {
  TidCandidates out;
  out.level.k = prev.k + 1;
  std::vector<Item> candidate(out.level.k);
  for (std::size_t a = 0; a < prev.size(); ++a) {
    const auto ia = prev.itemset(a);
    for (std::size_t b = a + 1; b < prev.size(); ++b) {
      const auto ib = prev.itemset(b);
      if (!std::equal(ia.begin(), ia.end() - 1, ib.begin())) break;
      std::copy(ia.begin(), ia.end(), candidate.begin());
      candidate[out.level.k - 1] = ib.back();
      if (all_subsets_frequent(prev, candidate, scratch)) {
        out.level.add(candidate);
        out.generators.emplace_back(static_cast<std::uint32_t>(a),
                                    static_cast<std::uint32_t>(b));
      }
    }
  }
  return out;
}

void report_level(const Level& level, const tdb::Remap& remap,
                  Count min_support, const ItemsetSink& sink,
                  Itemset& scratch) {
  for (std::size_t i = 0; i < level.size(); ++i) {
    if (level.counts[i] < min_support) continue;
    scratch.clear();
    for (const Item id : level.itemset(i)) scratch.push_back(remap.unmap(id));
    std::sort(scratch.begin(), scratch.end());
    sink(scratch, level.counts[i]);
  }
}

Level keep_frequent(const Level& level, Count min_support) {
  Level survivors;
  survivors.k = level.k;
  for (std::size_t i = 0; i < level.size(); ++i) {
    if (level.counts[i] < min_support) continue;
    survivors.add(level.itemset(i));
    survivors.counts.back() = level.counts[i];
  }
  return survivors;
}

}  // namespace

void mine_apriori_tid(const tdb::Database& db, Count min_support,
                      const ItemsetSink& sink, BaselineStats* stats,
                      const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = mapped.memory_usage();
  }

  Timer mine_timer;
  Itemset original;

  // L1 and the initial encoded database: each transaction becomes the
  // sorted list of L1 indices (frequent item id - 1) it contains.
  Level current;
  current.k = 1;
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
    current.add(std::span<const Item>(&r, 1));
    current.counts.back() = remap.support[r - 1];
  }
  report_level(current, remap, min_support, sink, original);
  Level frequent_prev = keep_frequent(current, min_support);

  std::vector<std::vector<std::uint32_t>> encoded(mapped.size());
  for (std::size_t t = 0; t < mapped.size(); ++t) {
    encoded[t].reserve(mapped[t].size());
    for (const Item item : mapped[t])
      encoded[t].push_back(item - 1);  // L1 index
  }

  std::vector<Item> scratch;
  std::size_t peak_bytes = 0;
  while (frequent_prev.size() >= 2) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    TidCandidates candidates = generate_candidates_tid(frequent_prev,
                                                       scratch);
    if (candidates.level.empty()) break;

    // Generator-pair lookup: (a,b) -> candidate index.
    std::unordered_map<std::uint64_t, std::uint32_t> by_generators;
    by_generators.reserve(candidates.generators.size() * 2);
    for (std::uint32_t c = 0; c < candidates.generators.size(); ++c) {
      const auto [a, b] = candidates.generators[c];
      by_generators.emplace((static_cast<std::uint64_t>(a) << 32) | b, c);
    }

    // Pass k: intersect generator pairs inside each encoded transaction;
    // the raw database is never touched again (the AprioriTid idea).
    std::vector<std::vector<std::uint32_t>> next_encoded(encoded.size());
    for (std::size_t t = 0; t < encoded.size(); ++t) {
      const auto& list = encoded[t];
      auto& next = next_encoded[t];
      for (std::size_t i = 0; i < list.size(); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          const auto it = by_generators.find(
              (static_cast<std::uint64_t>(list[i]) << 32) | list[j]);
          if (it == by_generators.end()) continue;
          candidates.level.counts[it->second] += 1;
          next.push_back(it->second);
        }
      }
      std::sort(next.begin(), next.end());
    }

    std::size_t encoded_bytes = 0;
    for (const auto& list : next_encoded)
      encoded_bytes += list.capacity() * sizeof(std::uint32_t);
    peak_bytes = std::max(peak_bytes,
                          encoded_bytes + candidates.level.memory_usage());

    report_level(candidates.level, remap, min_support, sink, original);
    const Level survivors = keep_frequent(candidates.level, min_support);

    // Re-index encoded lists from candidate ids to survivor ranks.
    std::vector<std::uint32_t> survivor_rank(candidates.level.size(),
                                             0xffffffffu);
    std::uint32_t rank = 0;
    for (std::uint32_t c = 0; c < candidates.level.size(); ++c)
      if (candidates.level.counts[c] >= min_support) survivor_rank[c] = rank++;
    for (auto& list : next_encoded) {
      std::size_t w = 0;
      for (const std::uint32_t c : list)
        if (survivor_rank[c] != 0xffffffffu) list[w++] = survivor_rank[c];
      list.resize(w);
    }

    encoded = std::move(next_encoded);
    frequent_prev = survivors;
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += peak_bytes;
  }
}

void mine_dhp(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats,
              std::size_t hash_buckets, const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(hash_buckets >= 2, "need at least two hash buckets");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);

  // Pass 1 extra work (the DHP filter): hash every item pair of every
  // transaction into a bucket counter.
  std::vector<Count> buckets(hash_buckets, 0);
  const auto bucket_of = [&](Item a, Item b) {
    std::uint64_t h = (static_cast<std::uint64_t>(a) << 32) | b;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % hash_buckets);
  };
  for (std::size_t t = 0; t < mapped.size(); ++t) {
    const auto row = mapped[t];
    for (std::size_t i = 0; i < row.size(); ++i)
      for (std::size_t j = i + 1; j < row.size(); ++j)
        buckets[bucket_of(row[i], row[j])] += 1;
  }
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes =
        mapped.memory_usage() + buckets.capacity() * sizeof(Count);
  }

  Timer mine_timer;
  Itemset original;
  Level current;
  current.k = 1;
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
    current.add(std::span<const Item>(&r, 1));
    current.counts.back() = remap.support[r - 1];
  }
  std::vector<Item> scratch;
  std::size_t peak_bytes = 0;
  std::size_t pruned_by_hash = 0;
  while (!current.empty()) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    report_level(current, remap, min_support, sink, original);
    Level survivors = keep_frequent(current, min_support);
    if (survivors.size() < 2) break;

    Level next = generate_candidates(survivors, scratch);
    if (next.k == 2 && !next.empty()) {
      // The DHP cut: a pair whose bucket total is below min_support cannot
      // be frequent (the bucket over-counts it).
      Level filtered;
      filtered.k = 2;
      for (std::size_t c = 0; c < next.size(); ++c) {
        const auto pair = next.itemset(c);
        if (buckets[bucket_of(pair[0], pair[1])] >= min_support)
          filtered.add(pair);
        else
          ++pruned_by_hash;
      }
      next = std::move(filtered);
    }
    if (next.empty()) break;
    CandidateTrie trie(next);
    peak_bytes =
        std::max(peak_bytes, next.memory_usage() + trie.memory_usage());
    for (std::size_t t = 0; t < mapped.size(); ++t)
      trie.count(mapped[t], next);
    current = std::move(next);
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += peak_bytes;
  }
  (void)pruned_by_hash;
}

}  // namespace plt::baselines
