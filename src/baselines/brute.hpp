// Brute-force oracle: depth-first enumeration with per-candidate database
// scans. Exponential but obviously correct — the ground truth for every
// agreement test. Never benchmarked.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

/// Emits every frequent itemset of `db` at absolute support `min_support`.
void mine_brute_force(const tdb::Database& db, Count min_support,
                      const ItemsetSink& sink);

}  // namespace plt::baselines
