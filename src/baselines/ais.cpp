#include "baselines/ais.hpp"

#include <algorithm>
#include <unordered_map>

#include "baselines/counting.hpp"
#include "tdb/remap.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

void mine_ais(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats,
              const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = mapped.memory_usage();
  }

  Timer mine_timer;
  Itemset original;
  const auto emit = [&](const Itemset& mapped_items, Count support) {
    original.clear();
    for (const Item id : mapped_items) original.push_back(remap.unmap(id));
    std::sort(original.begin(), original.end());
    sink(original, support);
  };

  // L1 from the remap pass.
  std::vector<Itemset> frontier;
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
    emit({r}, remap.support[r - 1]);
    frontier.push_back({r});
  }

  std::size_t peak_bytes = 0;
  while (!frontier.empty()) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    // One scan: every frontier itemset contained in a transaction spawns
    // counted extensions by the transaction's items beyond its maximum —
    // the AIS on-the-fly generation (no join, no subset prune).
    std::unordered_map<Itemset, Count, ItemsetHash> candidates;
    Itemset extended;
    for (std::size_t t = 0; t < mapped.size(); ++t) {
      const auto row = mapped[t];
      for (const Itemset& f : frontier) {
        if (f.size() >= row.size()) continue;
        if (!std::includes(row.begin(), row.end(), f.begin(), f.end()))
          continue;
        const auto beyond = std::upper_bound(row.begin(), row.end(),
                                             f.back());
        for (auto it = beyond; it != row.end(); ++it) {
          extended = f;
          extended.push_back(*it);
          candidates[extended] += 1;
        }
      }
    }
    peak_bytes = std::max(
        peak_bytes, candidates.size() * (sizeof(Itemset) + sizeof(Count) +
                                         (frontier.empty()
                                              ? 0
                                              : frontier.front().size() + 1) *
                                             sizeof(Item)));

    std::vector<Itemset> next_frontier;
    for (const auto& [items, count] : candidates) {
      if (count < min_support) continue;
      emit(items, count);
      next_frontier.push_back(items);
    }
    std::sort(next_frontier.begin(), next_frontier.end());
    frontier = std::move(next_frontier);
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += peak_bytes;
  }
}

}  // namespace plt::baselines
