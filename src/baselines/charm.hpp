// CHARM (Zaki & Hsiao, SDM'02 — the closed-itemset branch of the vertical
// family the paper's §3 taxonomy cites via Zaki [12]/[16]): explores the
// itemset-tidset search tree, merging nodes whose tidsets are equal or
// nested (the four CHARM properties) so closed itemsets are produced
// directly, without materializing the full frequent collection first.
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

/// Emits every CLOSED frequent itemset of `db` at `min_support`.
/// Results equal core::closed_itemsets(full mining) — tests enforce it.
void mine_charm(const tdb::Database& db, Count min_support,
                const ItemsetSink& sink, BaselineStats* stats = nullptr);

}  // namespace plt::baselines
