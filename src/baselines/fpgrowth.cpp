#include "baselines/fpgrowth.hpp"

#include <algorithm>
#include <unordered_map>

#include "tdb/remap.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

// Item ids here are remapped with kByFreqDescending, so ascending id order
// *is* descending frequency order — transactions insert as-is.
class FpTree {
 public:
  struct Node {
    Item item = 0;
    Count count = 0;
    std::uint32_t parent = 0;
    std::uint32_t next = 0;  // header chain (0 = end; node 0 is the root)
  };

  explicit FpTree(std::size_t alphabet)
      : header_head_(alphabet + 1, 0), header_count_(alphabet + 1, 0) {
    nodes_.push_back(Node{});  // root
  }

  void insert(std::span<const Item> items, Count count) {
    std::uint32_t node = 0;
    for (const Item item : items) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(node) << 32) | item;
      const auto it = children_.find(key);
      if (it != children_.end()) {
        node = it->second;
        nodes_[node].count += count;
      } else {
        nodes_.push_back(Node{item, count, node, header_head_[item]});
        const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
        header_head_[item] = id;
        children_.emplace(key, id);
        node = id;
      }
      header_count_[item] += count;
    }
  }

  std::size_t alphabet() const { return header_head_.size() - 1; }
  Count item_count(Item item) const { return header_count_[item]; }
  std::uint32_t header(Item item) const { return header_head_[item]; }
  const Node& node(std::uint32_t id) const { return nodes_[id]; }
  std::size_t node_count() const { return nodes_.size() - 1; }

  /// True when the tree is one downward path (each node has <= 1 child).
  bool single_path(std::vector<std::pair<Item, Count>>& path) const {
    path.clear();
    // In a single path every non-root node's parent is the previous node,
    // i.e. node ids form the chain 1..n in insertion order.
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
      if (nodes_[id].parent != id - 1) return false;
      path.emplace_back(nodes_[id].item, nodes_[id].count);
    }
    return true;
  }

  std::size_t memory_usage() const {
    return nodes_.capacity() * sizeof(Node) +
           header_head_.capacity() * sizeof(std::uint32_t) +
           header_count_.capacity() * sizeof(Count) +
           children_.size() *
               (sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                2 * sizeof(void*));  // approximate bucket overhead
  }

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> header_head_;
  std::vector<Count> header_count_;
  std::unordered_map<std::uint64_t, std::uint32_t> children_;
};

struct MineCtx {
  const tdb::Remap& remap;
  Count min_support;
  const ItemsetSink& sink;
  std::vector<Item> suffix;  // remapped ids, grown towards the root
  Itemset scratch;
  std::size_t peak_bytes = 0;
  const MiningControl* control = nullptr;
  bool stopped = false;

  void emit(Count support) {
    scratch.clear();
    for (const Item id : suffix) scratch.push_back(remap.unmap(id));
    std::sort(scratch.begin(), scratch.end());
    sink(scratch, support);
  }
};

// Emits every non-empty combination of `path` items appended to the suffix.
// `path` is root-to-leaf, so counts are non-increasing: the support of a
// combination is the count of its deepest member.
void emit_path_combinations(MineCtx& ctx,
                            const std::vector<std::pair<Item, Count>>& path,
                            std::size_t from, Count support) {
  for (std::size_t i = from; i < path.size(); ++i) {
    ctx.suffix.push_back(path[i].first);
    ctx.emit(path[i].second);
    emit_path_combinations(ctx, path, i + 1, path[i].second);
    ctx.suffix.pop_back();
  }
  (void)support;
}

void mine_tree(const FpTree& tree, MineCtx& ctx) {
  std::vector<std::pair<Item, Count>> path;
  if (tree.single_path(path)) {
    emit_path_combinations(ctx, path, 0, 0);
    return;
  }

  // Process header items least-frequent first (highest id first).
  std::vector<Item> reversed_path;
  std::vector<std::pair<std::vector<Item>, Count>> pattern_base;
  for (Item item = static_cast<Item>(tree.alphabet()); item >= 1; --item) {
    if (ctx.stopped) return;
    if (ctx.control != nullptr && ctx.control->should_stop(ctx.peak_bytes)) {
      ctx.stopped = true;
      return;
    }
    const Count support = tree.item_count(item);
    if (support < ctx.min_support) continue;
    ctx.suffix.push_back(item);
    ctx.emit(support);

    // Conditional pattern base: root-ward paths above each node of `item`.
    pattern_base.clear();
    std::vector<Count> cond_count(tree.alphabet() + 1, 0);
    for (std::uint32_t id = tree.header(item); id != 0;
         id = tree.node(id).next) {
      const Count count = tree.node(id).count;
      reversed_path.clear();
      for (std::uint32_t up = tree.node(id).parent; up != 0;
           up = tree.node(up).parent)
        reversed_path.push_back(tree.node(up).item);
      if (reversed_path.empty()) continue;
      std::reverse(reversed_path.begin(), reversed_path.end());
      for (const Item path_item : reversed_path)
        cond_count[path_item] += count;
      pattern_base.emplace_back(reversed_path, count);
    }

    // Build the conditional tree over locally-frequent items only.
    bool any = false;
    for (Item i = 1; i <= static_cast<Item>(tree.alphabet()); ++i)
      any = any || cond_count[i] >= ctx.min_support;
    if (any) {
      FpTree cond_tree(tree.alphabet());
      std::vector<Item> filtered;
      for (const auto& [items, count] : pattern_base) {
        filtered.clear();
        for (const Item i : items)
          if (cond_count[i] >= ctx.min_support) filtered.push_back(i);
        if (!filtered.empty()) cond_tree.insert(filtered, count);
      }
      ctx.peak_bytes = std::max(ctx.peak_bytes, cond_tree.memory_usage());
      if (cond_tree.node_count() > 0) mine_tree(cond_tree, ctx);
    }
    ctx.suffix.pop_back();
    if (ctx.stopped) return;
  }
}

FpTree build_initial_tree(const tdb::Database& mapped,
                          std::size_t alphabet) {
  FpTree tree(alphabet);
  for (std::size_t t = 0; t < mapped.size(); ++t) tree.insert(mapped[t], 1);
  return tree;
}

}  // namespace

void mine_fpgrowth(const tdb::Database& db, Count min_support,
                   const ItemsetSink& sink, BaselineStats* stats,
                   const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap =
      tdb::build_remap(db, min_support, tdb::ItemOrder::kByFreqDescending);
  const auto mapped = tdb::apply_remap(db, remap);
  FpTree tree = build_initial_tree(mapped, remap.alphabet_size());
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = tree.memory_usage();
  }

  Timer mine_timer;
  MineCtx ctx{remap, min_support, sink, {}, {}, 0, control, false};
  if (remap.alphabet_size() > 0) mine_tree(tree, ctx);
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += ctx.peak_bytes;
  }
}

std::size_t fptree_size_bytes(const tdb::Database& db, Count min_support,
                              std::size_t* node_count) {
  const auto remap =
      tdb::build_remap(db, min_support, tdb::ItemOrder::kByFreqDescending);
  const auto mapped = tdb::apply_remap(db, remap);
  const FpTree tree = build_initial_tree(mapped, remap.alphabet_size());
  if (node_count) *node_count = tree.node_count();
  return tree.memory_usage();
}

}  // namespace plt::baselines
