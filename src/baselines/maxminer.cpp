#include "baselines/maxminer.hpp"

#include <algorithm>

#include "tdb/remap.hpp"
#include "tdb/vertical.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

struct TailEntry {
  Item item;
  std::vector<Tid> tids;  // t(head ∪ {item})
};

struct Ctx {
  Count min_support;
  std::vector<std::pair<Itemset, Count>> candidates;  // maximal candidates
  std::size_t peak_bytes = 0;
};

void search(Ctx& ctx, Itemset& head, const std::vector<Tid>& head_tids,
            std::vector<TailEntry> tail) {
  std::size_t tail_bytes = 0;
  for (const auto& e : tail) tail_bytes += e.tids.capacity() * sizeof(Tid);
  ctx.peak_bytes = std::max(ctx.peak_bytes, tail_bytes);

  if (tail.empty()) {
    if (!head.empty())
      ctx.candidates.emplace_back(head, head_tids.size());
    return;
  }

  // Lookahead: if head ∪ tail is frequent, it is the only possible maximal
  // set below this node — emit it and prune the subtree.
  {
    std::vector<Tid> all = tail.front().tids;
    bool alive = all.size() >= ctx.min_support;
    for (std::size_t i = 1; i < tail.size() && alive; ++i) {
      all = tdb::intersect(all, tail[i].tids);
      alive = all.size() >= ctx.min_support;
    }
    if (alive) {
      Itemset full = head;
      for (const auto& e : tail) full.push_back(e.item);
      std::sort(full.begin(), full.end());
      ctx.candidates.emplace_back(std::move(full), all.size());
      return;
    }
  }

  // MaxMiner heuristic: expand the lowest-support tail item first so the
  // lookahead fires early in the remaining subtrees.
  std::sort(tail.begin(), tail.end(), [](const TailEntry& a,
                                         const TailEntry& b) {
    if (a.tids.size() != b.tids.size()) return a.tids.size() < b.tids.size();
    return a.item < b.item;
  });

  bool any_child = false;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    head.push_back(tail[i].item);
    std::vector<TailEntry> child_tail;
    for (std::size_t j = i + 1; j < tail.size(); ++j) {
      auto shared = tdb::intersect(tail[i].tids, tail[j].tids);
      if (shared.size() >= ctx.min_support)
        child_tail.push_back(TailEntry{tail[j].item, std::move(shared)});
    }
    if (child_tail.empty()) {
      // A leaf: head ∪ {item} has no frequent extension among the
      // remaining tail — candidate maximal.
      Itemset leaf = head;
      std::sort(leaf.begin(), leaf.end());
      ctx.candidates.emplace_back(std::move(leaf), tail[i].tids.size());
    } else {
      search(ctx, head, tail[i].tids, std::move(child_tail));
    }
    any_child = true;
    head.pop_back();
  }
  (void)any_child;
}

}  // namespace

void mine_maxminer(const tdb::Database& db, Count min_support,
                   const ItemsetSink& sink, BaselineStats* stats) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  const tdb::VerticalView vertical(mapped);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = vertical.memory_usage();
  }

  Timer mine_timer;
  Ctx ctx{min_support, {}, 0};
  {
    std::vector<TailEntry> top;
    for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r) {
      const auto tids = vertical.tidset(r);
      top.push_back(TailEntry{r, std::vector<Tid>(tids.begin(), tids.end())});
    }
    Itemset head;
    if (!top.empty()) search(ctx, head, {}, std::move(top));
  }

  // Final subsumption sweep: the enumeration can produce candidates that a
  // sibling's lookahead strictly contains.
  std::sort(ctx.candidates.begin(), ctx.candidates.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
  std::vector<std::pair<Itemset, Count>> maximal;
  Itemset original;
  for (auto& [items, support] : ctx.candidates) {
    bool subsumed = false;
    for (const auto& [kept, kept_support] : maximal) {
      if (kept.size() <= items.size()) continue;
      if (std::includes(kept.begin(), kept.end(), items.begin(),
                        items.end())) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    // Equal-content duplicates from different branches.
    bool duplicate = false;
    for (const auto& [kept, kept_support] : maximal)
      if (kept == items) {
        duplicate = true;
        break;
      }
    if (duplicate) continue;
    maximal.emplace_back(std::move(items), support);
  }
  for (const auto& [items, support] : maximal) {
    original.clear();
    for (const Item id : items) original.push_back(remap.unmap(id));
    std::sort(original.begin(), original.end());
    sink(original, support);
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += ctx.peak_bytes;
  }
}

}  // namespace plt::baselines
