// DIC — Dynamic Itemset Counting (Brin, Motwani, Ullman & Tsur,
// SIGMOD'97 — the paper's reference [7]... cited in §3's candidate-
// generation family): candidates start counting mid-pass, at block
// boundaries, as soon as all of their subsets look frequent, so the
// database is cycled through fewer times than Apriori's level count.
//
// Itemset states follow the paper's metaphor:
//   dashed circle — being counted, not yet frequent-looking
//   dashed box    — being counted, already frequent-looking
//   solid  circle — fully counted, infrequent
//   solid  box    — fully counted, frequent (the output)
#pragma once

#include "baselines/common.hpp"

namespace plt::baselines {

struct DicOptions {
  /// Block size M: candidate states are reconsidered every M transactions.
  std::size_t block_size = 1000;
};

void mine_dic(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats = nullptr,
              const DicOptions& options = {},
              const MiningControl* control = nullptr);

}  // namespace plt::baselines
