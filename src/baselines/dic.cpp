#include "baselines/dic.hpp"

#include <algorithm>
#include <unordered_map>

#include "baselines/counting.hpp"
#include "tdb/remap.hpp"
#include "util/timer.hpp"

namespace plt::baselines {

namespace {

struct ItemsetHash {
  std::size_t operator()(const Itemset& s) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const Item i : s) {
      h ^= i;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

struct Tracked {
  Itemset items;        // remapped ids, sorted
  Count count = 0;
  std::size_t seen = 0; // transactions counted so far
  bool box = false;     // frequent-looking
  bool complete = false;
};

}  // namespace

void mine_dic(const tdb::Database& db, Count min_support,
              const ItemsetSink& sink, BaselineStats* stats,
              const DicOptions& options, const MiningControl* control) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(options.block_size >= 1, "block size must be >= 1");
  Timer build_timer;
  const auto remap = tdb::build_remap(db, min_support);
  const auto mapped = tdb::apply_remap(db, remap);
  if (stats) {
    stats->build_seconds = build_timer.seconds();
    stats->structure_bytes = mapped.memory_usage();
  }
  Timer mine_timer;
  const std::size_t n = mapped.size();
  if (n == 0 || remap.alphabet_size() == 0) {
    if (stats) stats->mine_seconds = mine_timer.seconds();
    return;
  }

  std::vector<Tracked> tracked;
  std::unordered_map<Itemset, std::size_t, ItemsetHash> index;
  const auto track = [&](Itemset items) {
    const auto [it, inserted] =
        index.emplace(std::move(items), tracked.size());
    if (!inserted) return;
    Tracked t;
    t.items = it->first;
    tracked.push_back(std::move(t));
  };

  // Every frequent 1-item starts as a dashed circle.
  for (Item r = 1; r <= static_cast<Item>(remap.alphabet_size()); ++r)
    track(Itemset{r});

  // Generates the supersets of a newly-boxed itemset whose immediate
  // subsets are all boxes (the DIC growth rule).
  Itemset probe;
  const auto is_box = [&](const Itemset& s) {
    const auto it = index.find(s);
    return it != index.end() && tracked[it->second].box;
  };
  const auto grow_from = [&](std::size_t id) {
    const Itemset base = tracked[id].items;  // copy: tracked may reallocate
    // A superset C = base ∪ {ext} is generated the moment its LAST
    // immediate subset becomes a box — which may be `base` for any
    // extension position, so all extensions are considered, and the
    // all-subsets-boxed test arbitrates.
    for (Item ext = 1; ext <= static_cast<Item>(remap.alphabet_size());
         ++ext) {
      if (std::binary_search(base.begin(), base.end(), ext)) continue;
      if (!is_box(Itemset{ext})) continue;
      Itemset candidate = base;
      candidate.insert(
          std::lower_bound(candidate.begin(), candidate.end(), ext), ext);
      bool all_box = true;
      for (std::size_t drop = 0; drop < candidate.size() && all_box;
           ++drop) {
        probe.clear();
        for (std::size_t j = 0; j < candidate.size(); ++j)
          if (j != drop) probe.push_back(candidate[j]);
        all_box = is_box(probe);
      }
      if (all_box) track(std::move(candidate));
    }
  };

  Itemset original;
  const auto finish = [&](Tracked& t) {
    t.complete = true;
    if (t.count < min_support) return;
    original.clear();
    for (const Item id : t.items) original.push_back(remap.unmap(id));
    std::sort(original.begin(), original.end());
    sink(original, t.count);
  };

  std::size_t position = 0;  // current block start
  std::size_t peak_bytes = 0;
  // Cycle blocks until every tracked itemset has seen the whole database.
  for (;;) {
    if (control != nullptr && control->should_stop(peak_bytes)) break;
    std::vector<std::size_t> dashed;
    for (std::size_t id = 0; id < tracked.size(); ++id)
      if (!tracked[id].complete) dashed.push_back(id);
    if (dashed.empty()) break;

    const std::size_t block_end = std::min(n, position + options.block_size);
    std::vector<Itemset> candidates;
    candidates.reserve(dashed.size());
    for (const std::size_t id : dashed)
      candidates.push_back(tracked[id].items);
    CountingTrie trie(candidates);
    for (std::size_t t = position; t < block_end; ++t) trie.count(mapped[t]);
    peak_bytes = std::max(peak_bytes, trie.memory_usage());

    const std::size_t block_len = block_end - position;
    for (std::size_t d = 0; d < dashed.size(); ++d) {
      const std::size_t id = dashed[d];
      tracked[id].count += trie.support(d);
      tracked[id].seen += block_len;
      // Circle -> box as soon as the running count reaches the threshold;
      // boxing triggers superset generation (they start counting at the
      // next block boundary). grow_from may reallocate `tracked`, so the
      // element is re-indexed, never held by reference across it.
      if (!tracked[id].box && tracked[id].count >= min_support) {
        tracked[id].box = true;
        grow_from(id);
      }
      if (tracked[id].seen >= n) finish(tracked[id]);
    }
    position = block_end == n ? 0 : block_end;
  }
  if (stats) {
    stats->mine_seconds = mine_timer.seconds();
    stats->structure_bytes += peak_bytes;
  }
}

}  // namespace plt::baselines
