#include "baselines/counting.hpp"

#include <algorithm>

#include "tdb/vertical.hpp"

namespace plt::baselines {

CountingTrie::CountingTrie(const std::vector<Itemset>& candidates)
    : counts_(candidates.size(), 0) {
  nodes_.push_back(Node{});
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::uint32_t node = 0;
    for (const Item item : candidates[c]) node = child(node, item);
    nodes_[node].candidate = static_cast<std::uint32_t>(c);
  }
}

std::uint32_t CountingTrie::child(std::uint32_t node, Item item) {
  const auto it = std::lower_bound(
      nodes_[node].edges.begin(), nodes_[node].edges.end(), item,
      [](const Edge& e, Item i) { return e.item < i; });
  if (it != nodes_[node].edges.end() && it->item == item) return it->node;
  nodes_.push_back(Node{});
  const auto id = static_cast<std::uint32_t>(nodes_.size() - 1);
  auto& fresh = nodes_[node].edges;  // re-take: nodes_ may have reallocated
  fresh.insert(std::lower_bound(fresh.begin(), fresh.end(), item,
                                [](const Edge& e, Item i) {
                                  return e.item < i;
                                }),
               Edge{item, id});
  return id;
}

void CountingTrie::count(std::span<const Item> row) { walk(0, row); }

void CountingTrie::walk(std::uint32_t node, std::span<const Item> row) {
  const Node& n = nodes_[node];
  if (n.candidate != 0xffffffffu) counts_[n.candidate] += 1;
  std::size_t r = 0, e = 0;
  while (r < row.size() && e < n.edges.size()) {
    if (row[r] < n.edges[e].item) {
      ++r;
    } else if (row[r] > n.edges[e].item) {
      ++e;
    } else {
      walk(n.edges[e].node, row.subspan(r + 1));
      ++r;
      ++e;
    }
  }
}

std::size_t CountingTrie::memory_usage() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node) +
                      counts_.capacity() * sizeof(Count);
  for (const auto& n : nodes_) bytes += n.edges.capacity() * sizeof(Edge);
  return bytes;
}

std::vector<Count> count_supports(const tdb::Database& db,
                                  const std::vector<Itemset>& candidates) {
  CountingTrie trie(candidates);
  for (std::size_t t = 0; t < db.size(); ++t) trie.count(db[t]);
  std::vector<Count> out(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c)
    out[c] = trie.support(c);
  return out;
}

std::vector<Count> count_supports_vertical(
    const tdb::Database& db, const std::vector<Itemset>& candidates) {
  std::vector<Count> out(candidates.size(), 0);
  if (db.empty()) return out;
  const tdb::VerticalView vertical(db);
  std::vector<Tid> acc;
  std::vector<Tid> next;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const Itemset& cand = candidates[c];
    if (cand.empty()) {
      out[c] = db.size();
      continue;
    }
    const auto first = vertical.tidset(cand[0]);
    if (cand.size() == 1) {
      out[c] = first.size();
      continue;
    }
    acc.assign(first.begin(), first.end());
    for (std::size_t i = 1; i + 1 < cand.size() && !acc.empty(); ++i) {
      next = tdb::intersect(acc, vertical.tidset(cand[i]));
      acc.swap(next);
    }
    // Last item: count only — no need to materialize the final tidset.
    out[c] = acc.empty() ? 0
                         : tdb::intersect_count(
                               acc, vertical.tidset(cand.back()));
  }
  return out;
}

}  // namespace plt::baselines
