// 128-bit (SSSE3/SSE4.1-width) implementations of the group-varint codec
// and the sorted intersection, shared by the SSE4.2 and AVX2 backends: the
// shuffle-table tricks these kernels rely on are 16-byte operations, so
// both backends use the same code (compiled per-TU under that backend's
// flags) and trivially agree with each other.
//
// Only included from backend TUs compiled with at least -msse4.2.
#pragma once

#include <immintrin.h>

#include "kernels/gv_tables.hpp"
#include "kernels/scalar_impl.hpp"

namespace plt::kernels::detail {

inline std::size_t simd128_encode_varint_block(const std::uint32_t* values,
                                               std::size_t n,
                                               std::uint8_t* out) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i t1 = _mm_set1_epi32(static_cast<int>(0x800000ffu));
  const __m128i t2 = _mm_set1_epi32(static_cast<int>(0x8000ffffu));
  const __m128i t3 = _mm_set1_epi32(static_cast<int>(0x80ffffffu));
  std::size_t i = 0;
  std::size_t o = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(values + i));
    // Unsigned "x > threshold" via sign-bias: one mask per extra byte.
    const __m128i xb = _mm_xor_si128(x, bias);
    const __m128i m = _mm_add_epi32(
        _mm_add_epi32(_mm_cmpgt_epi32(xb, t1), _mm_cmpgt_epi32(xb, t2)),
        _mm_cmpgt_epi32(xb, t3));
    const __m128i lenm1 = _mm_sub_epi32(_mm_setzero_si128(), m);
    alignas(16) std::uint32_t l[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(l), lenm1);
    const std::uint8_t c = static_cast<std::uint8_t>(
        l[0] | (l[1] << 2) | (l[2] << 4) | (l[3] << 6));
    out[o++] = c;
    const __m128i packed = _mm_shuffle_epi8(
        x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
               kGvTables.encode_shuffle[c].data())));
    // Always store 16 bytes; the group's byte budget in
    // encoded_block_bound covers it and the next group (or nothing)
    // overwrites the padding.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + o), packed);
    o += kGvTables.data_len[c];
  }
  if (i < n) {
    // Partial final group: identical to the scalar encoder's group body.
    const std::size_t control = o++;
    std::uint8_t c = 0;
    for (std::size_t j = 0; i + j < n; ++j) {
      std::uint32_t x = values[i + j];
      const unsigned len = gv_byte_len(x);
      c = static_cast<std::uint8_t>(c | ((len - 1u) << (2 * j)));
      for (unsigned b = 0; b < len; ++b) {
        out[o++] = static_cast<std::uint8_t>(x);
        x >>= 8;
      }
    }
    out[control] = c;
  }
  return o;
}

inline std::size_t simd128_decode_varint_block(const std::uint8_t* in,
                                               std::size_t in_len,
                                               std::uint32_t* out,
                                               std::size_t n) {
  std::size_t consumed = 0;
  std::size_t produced = 0;
  // Fast path: full groups with enough input slack for a 16-byte load
  // (control byte + up to 16 data bytes).
  while (n - produced >= 4 && in_len - consumed >= 17) {
    const std::uint8_t c = in[consumed];
    const __m128i data = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(in + consumed + 1));
    const __m128i vals = _mm_shuffle_epi8(
        data, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  kGvTables.decode_shuffle[c].data())));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + produced), vals);
    consumed += 1u + kGvTables.data_len[c];
    produced += 4;
  }
  return scalar_decode_tail(in, in_len, out, n, consumed, produced);
}

/// Block-compare intersection (Katsogridakis/Lemire-style): compare 4x4
/// all-pairs via dword rotations, compress-store the matching a-lanes,
/// advance the block with the smaller maximum. Falls back to galloping on
/// wildly asymmetric inputs and finishes the tails with the scalar merge.
inline std::size_t simd128_intersect_impl(const std::uint32_t* a,
                                          std::size_t na,
                                          const std::uint32_t* b,
                                          std::size_t nb,
                                          std::uint32_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    const std::uint32_t* tp = a;
    a = b;
    b = tp;
    const std::size_t tn = na;
    na = nb;
    nb = tn;
  }
  if (nb / na >= kGallopRatio) return gallop_intersect(a, na, b, nb, out);

  std::size_t i = 0, j = 0, count = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + j));
    __m128i cmp = _mm_cmpeq_epi32(va, vb);
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    cmp = _mm_or_si128(
        cmp, _mm_cmpeq_epi32(
                 va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const unsigned mask = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(cmp)));
    if (out != nullptr) {
      const __m128i packed = _mm_shuffle_epi8(
          va, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  kCompressTable[mask].data())));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count), packed);
    }
    count += static_cast<unsigned>(__builtin_popcount(mask));
    // Branchless advance: which block moves is data-dependent and ~50/50,
    // so a conditional branch here mispredicts constantly.
    const std::uint32_t amax = a[i + 3];
    const std::uint32_t bmax = b[j + 3];
    i += static_cast<std::size_t>(amax <= bmax) * 4;
    j += static_cast<std::size_t>(bmax <= amax) * 4;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (out != nullptr) out[count] = a[i];
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

inline std::size_t simd128_intersect_sorted(const std::uint32_t* a,
                                            std::size_t na,
                                            const std::uint32_t* b,
                                            std::size_t nb,
                                            std::uint32_t* out) {
  return simd128_intersect_impl(a, na, b, nb, out);
}

inline std::size_t simd128_intersect_count(const std::uint32_t* a,
                                           std::size_t na,
                                           const std::uint32_t* b,
                                           std::size_t nb) {
  return simd128_intersect_impl(a, na, b, nb, nullptr);
}

}  // namespace plt::kernels::detail
