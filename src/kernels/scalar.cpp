#include "kernels/scalar_impl.hpp"

namespace plt::kernels {

namespace {

constexpr Dispatch kScalarDispatch = {
    Backend::kScalar,
    "scalar",
    detail::scalar_peel_prefixes,
    detail::scalar_hash_positions,
    detail::scalar_equals_positions,
    detail::scalar_encode_varint_block,
    detail::scalar_decode_varint_block,
    detail::scalar_intersect_sorted,
    detail::scalar_intersect_count,
    detail::scalar_sum_counts,
    detail::scalar_sum_positions,
};

}  // namespace

const Dispatch& scalar_dispatch() { return kScalarDispatch; }

std::size_t encoded_block_size(const std::uint32_t* values, std::size_t n) {
  std::size_t bytes = (n + 3) / 4;  // one control byte per group
  for (std::size_t i = 0; i < n; ++i) bytes += detail::gv_byte_len(values[i]);
  return bytes;
}

}  // namespace plt::kernels
