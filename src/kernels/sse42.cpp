// SSE4.2 backend. Absorbs the same 8 hash lanes as the scalar reference in
// two 128-bit halves, runs the 4-wide prefix sum with a broadcast carry,
// and shares the 128-bit group-varint / intersection code with AVX2 via
// simd128_impl.hpp. Compiled with -msse4.2 (see src/CMakeLists.txt); only
// referenced by dispatch.cpp under PLT_KERNELS_HAVE_SSE42.
#include <immintrin.h>

#include "kernels/backends.hpp"
#include "kernels/simd128_impl.hpp"

namespace plt::kernels {

namespace {

inline __m128i rotl13_epi32(__m128i x) {
  return _mm_or_si128(_mm_slli_epi32(x, 13), _mm_srli_epi32(x, 19));
}

std::uint64_t sse42_hash_positions(const std::uint32_t* v, std::size_t n) {
  __m128i lo = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(detail::kHashLaneSeed));
  __m128i hi = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(detail::kHashLaneSeed + 4));
  const __m128i mul = _mm_set1_epi32(static_cast<int>(detail::kHashLaneMul));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i wlo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(v + i));
    const __m128i whi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(v + i + 4));
    lo = rotl13_epi32(_mm_mullo_epi32(_mm_xor_si128(lo, wlo), mul));
    hi = rotl13_epi32(_mm_mullo_epi32(_mm_xor_si128(hi, whi), mul));
  }
  alignas(16) std::uint32_t lanes[8];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), lo);
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes + 4), hi);
  return detail::hash_finish(lanes, v, i, n);
}

void sse42_peel_prefixes(const std::uint32_t* gaps, std::uint32_t* sums,
                         std::size_t n) {
  __m128i carry = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(gaps + i));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(sums + i), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  std::uint32_t acc = static_cast<std::uint32_t>(_mm_cvtsi128_si32(carry));
  for (; i < n; ++i) {
    acc += gaps[i];
    sums[i] = acc;
  }
}

bool sse42_equals_positions(const std::uint32_t* a, const std::uint32_t* b,
                            std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i va = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(b + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi32(va, vb)) != 0xffff) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

std::uint64_t sse42_sum_counts(const std::uint64_t* counts, std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    acc = _mm_add_epi64(
        acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(counts + i)));
  alignas(16) std::uint64_t parts[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(parts), acc);
  std::uint64_t sum = parts[0] + parts[1];
  for (; i < n; ++i) sum += counts[i];
  return sum;
}

std::uint32_t sse42_sum_positions(const std::uint32_t* positions,
                                  std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm_add_epi32(
        acc,
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(positions + i)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  std::uint32_t sum = static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc));
  for (; i < n; ++i) sum += positions[i];
  return sum;
}

constexpr Dispatch kSse42Dispatch = {
    Backend::kSSE42,
    "sse42",
    sse42_peel_prefixes,
    sse42_hash_positions,
    sse42_equals_positions,
    detail::simd128_encode_varint_block,
    detail::simd128_decode_varint_block,
    detail::simd128_intersect_sorted,
    detail::simd128_intersect_count,
    sse42_sum_counts,
    sse42_sum_positions,
};

}  // namespace

const Dispatch* sse42_table() { return &kSse42Dispatch; }

}  // namespace plt::kernels
