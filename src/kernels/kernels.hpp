// Runtime-dispatched data-parallel kernels for the hot loops the profile
// actually shows: prefix peeling into flat conditional databases, position
// vector hashing/equality behind the Partition index, group-varint block
// coding inside PLT2 frames, sorted-u32 tidlist intersection, and the
// horizontal reductions behind support tallies.
//
// Architecture (see DESIGN.md "Vectorized kernel layer"):
//
//   * Every kernel exists as a scalar reference implementation (always
//     compiled, any platform) and optionally as SSE4.2/AVX2 backends
//     (x86-64, compiled only under -DPLT_SIMD=ON).
//   * A backend is one immutable `Dispatch` table of function pointers.
//     `active()` returns the process-wide table, chosen once at first use
//     from CPU features (and the PLT_KERNEL_BACKEND environment variable);
//     `set_backend()` / `select_backend()` switch it explicitly. The table
//     pointer is a single atomic, so dispatch is thread-safe and TSan-clean.
//   * Contract rule #1: every backend computes the *same function* —
//     bit-identical results for identical inputs, including the hash (the
//     hash value feeds std::unordered_map iteration orders that are
//     observable in emission order, so backends may not disagree) and
//     including wrap-around behaviour (all arithmetic is mod 2^32 / 2^64).
//     Differential tests in tests/kernels_test.cpp pin each backend to the
//     scalar reference on randomized and adversarial inputs.
//   * Contract rule #2: no alignment requirements. Callers hand spans at
//     arbitrary offsets; backends use unaligned loads.
//   * Contract rule #3: kernels never allocate and never throw. Decode
//     reports malformed input via kDecodeError; callers turn that into
//     their own error type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace plt::kernels {

enum class Backend { kScalar = 0, kSSE42 = 1, kAVX2 = 2 };

/// Returned by decode_varint_block on truncated/overlong input.
inline constexpr std::size_t kDecodeError = static_cast<std::size_t>(-1);

/// One backend: an immutable table of kernel entry points.
struct Dispatch {
  Backend backend;
  const char* name;

  /// Inclusive prefix sums: sums[i] = gaps[0] + ... + gaps[i], mod 2^32.
  /// The projection engine runs this over a whole FlatCondDb arena in one
  /// call and re-bases each record by subtracting the sum before its
  /// offset — the mod-2^32 wrap-around makes that exact regardless of the
  /// arena's running total (differential tests cover near-UINT32_MAX sums).
  void (*peel_prefixes)(const std::uint32_t* gaps, std::uint32_t* sums,
                        std::size_t n);

  /// Block-wise position-vector hash (8 independent 32-bit lanes folded
  /// into a splitmix-finalized 64-bit value). All backends produce the
  /// same value for the same input — see contract rule #1.
  std::uint64_t (*hash_positions)(const std::uint32_t* v, std::size_t n);

  /// Wide vector equality (memcmp over n u32 words).
  bool (*equals_positions)(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t n);

  /// Group-varint block coding: values are written in groups of four, one
  /// control byte (2 bits per value: encoded byte length minus one)
  /// followed by the little-endian value bytes. A final partial group
  /// holds n % 4 values; its unused control bits are zero. The encoding
  /// of a value sequence is canonical, so every backend emits identical
  /// bytes. `out` must have room for encoded_block_bound(n) bytes (the
  /// SIMD encoder stores 16-byte blocks and lets the next group overwrite
  /// the padding). Returns the encoded byte count.
  std::size_t (*encode_varint_block)(const std::uint32_t* values,
                                     std::size_t n, std::uint8_t* out);

  /// Decodes exactly n values from `in` (at most in_len bytes). Returns
  /// the number of bytes consumed, or kDecodeError when the input is
  /// truncated. `out` must have room for n values; no bytes beyond the
  /// consumed prefix are interpreted, no slots beyond n are written.
  std::size_t (*decode_varint_block)(const std::uint8_t* in,
                                     std::size_t in_len, std::uint32_t* out,
                                     std::size_t n);

  /// Sorted-u32 set intersection (inputs strictly increasing, as tidlists
  /// are). Galloping on wildly asymmetric sizes, block compares otherwise.
  /// `out` must have room for min(na, nb) + 4 values: the SIMD path
  /// compress-stores 16-byte blocks past the live prefix. Returns the
  /// intersection size; out[0..size) is the sorted intersection.
  std::size_t (*intersect_sorted)(const std::uint32_t* a, std::size_t na,
                                  const std::uint32_t* b, std::size_t nb,
                                  std::uint32_t* out);

  /// intersect_sorted without materializing the result.
  std::size_t (*intersect_count)(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb);

  /// Horizontal reduction over support tallies, mod 2^64.
  std::uint64_t (*sum_counts)(const std::uint64_t* counts, std::size_t n);

  /// Horizontal reduction over position words, mod 2^32 (vector_sum).
  std::uint32_t (*sum_positions)(const std::uint32_t* positions,
                                 std::size_t n);
};

/// The process-wide active backend. First call resolves it: the
/// PLT_KERNEL_BACKEND environment variable if set ("scalar", "simd",
/// "sse42", "avx2", "auto"), otherwise the best CPU-supported backend.
const Dispatch& active();

/// The scalar reference table (always available; differential anchor).
const Dispatch& scalar_dispatch();

/// The table for a specific backend, or nullptr when it was compiled out
/// (-DPLT_SIMD=OFF / non-x86) or the CPU lacks the feature.
const Dispatch* dispatch_for(Backend backend);

/// Best backend this build + CPU supports (kScalar at worst).
Backend best_supported();

/// Forces a backend. Returns false (and leaves the active table unchanged)
/// when that backend is unavailable. Process-wide: concurrent mines all see
/// the switch, which is safe because backends compute identical functions.
bool set_backend(Backend backend);

/// Named selection for --backend flags and PLT_KERNEL_BACKEND:
///   ""        -> no-op (keep current/default), returns true
///   "auto"    -> best_supported()
///   "scalar"  -> scalar reference
///   "simd"    -> best_supported() (scalar when no SIMD backend compiled)
///   "sse42"   -> SSE4.2 backend, false if unavailable
///   "avx2"    -> AVX2 backend, false if unavailable
/// Unknown names return false. Selection is dispatcher API, not kernel
/// code, so the std::string is fine. plt-lint: allow(kernel-purity)
bool select_backend(const std::string& name);

const char* backend_name(Backend backend);

/// Worst-case encode_varint_block output for n values (caller's buffer
/// contract): one control byte per group of four plus four bytes per value.
constexpr std::size_t encoded_block_bound(std::size_t n) {
  return (n + 3) / 4 + 4 * n;
}

/// Exact encoded size of a value sequence (for encoded_size() accounting).
std::size_t encoded_block_size(const std::uint32_t* values, std::size_t n);

}  // namespace plt::kernels
