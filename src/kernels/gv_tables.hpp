// Compile-time shuffle tables for the group-varint codec's SIMD paths.
// One 16-byte pshufb mask per control byte: `decode` expands the packed
// little-endian value bytes into four u32 slots (0x80 lanes zero-fill);
// `encode` packs the four u32s' low bytes into the variable-length stream.
// Shared by the SSE4.2 and AVX2 backends so both decode identically.
#pragma once

#include <array>
#include <cstdint>

namespace plt::kernels::detail {

struct GvTables {
  std::array<std::array<std::uint8_t, 16>, 256> decode_shuffle;
  std::array<std::array<std::uint8_t, 16>, 256> encode_shuffle;
  std::array<std::uint8_t, 256> data_len;  ///< packed bytes per full group
};

constexpr GvTables make_gv_tables() {
  GvTables t{};
  for (unsigned c = 0; c < 256; ++c) {
    unsigned offset = 0;
    for (unsigned i = 0; i < 4; ++i) {
      const unsigned len = ((c >> (2 * i)) & 3u) + 1u;
      for (unsigned b = 0; b < 4; ++b)
        t.decode_shuffle[c][4 * i + b] = static_cast<std::uint8_t>(
            b < len ? offset + b : 0x80u);
      for (unsigned b = 0; b < len; ++b)
        t.encode_shuffle[c][offset + b] =
            static_cast<std::uint8_t>(4 * i + b);
      offset += len;
    }
    for (unsigned p = offset; p < 16; ++p)
      t.encode_shuffle[c][p] = 0x80u;  // beyond the packed bytes: zero
    t.data_len[c] = static_cast<std::uint8_t>(offset);
  }
  return t;
}

inline constexpr GvTables kGvTables = make_gv_tables();

/// pshufb mask that compress-stores the dwords selected by a 4-bit
/// movemask, in order — the intersection kernels' compaction step.
constexpr std::array<std::array<std::uint8_t, 16>, 16>
make_compress_table() {
  std::array<std::array<std::uint8_t, 16>, 16> t{};
  for (unsigned mask = 0; mask < 16; ++mask) {
    unsigned out = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      if ((mask >> lane) & 1u) {
        for (unsigned b = 0; b < 4; ++b)
          t[mask][4 * out + b] = static_cast<std::uint8_t>(4 * lane + b);
        ++out;
      }
    }
    for (unsigned p = 4 * out; p < 16; ++p)
      t[mask][p] = 0x80u;
  }
  return t;
}

inline constexpr std::array<std::array<std::uint8_t, 16>, 16>
    kCompressTable = make_compress_table();

}  // namespace plt::kernels::detail
