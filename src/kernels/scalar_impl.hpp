// Scalar reference implementations, shared as inline functions so the SIMD
// backends reuse them verbatim for tails and small inputs — the surest way
// to keep every backend bit-identical to the reference (contract rule #1 in
// kernels.hpp). These are deliberately straight-line, branch-light loops:
// they are the differential anchor AND the production path on non-x86.
#pragma once

#include <cstring>

#include "kernels/kernels.hpp"

namespace plt::kernels::detail {

// ---- hash ----------------------------------------------------------------
// 8 independent 32-bit lanes (one AVX2 register) absorb full blocks; the
// lane fold, tail words and splitmix finalizer are scalar in every backend.
inline constexpr std::uint32_t kHashLaneSeed[8] = {
    0x9e3779b9u, 0x85ebca6bu, 0xc2b2ae35u, 0x27d4eb2fu,
    0x165667b1u, 0xd3a2646cu, 0xfd7046c5u, 0xb55a4f09u};
inline constexpr std::uint32_t kHashLaneMul = 0x9e3779b1u;
inline constexpr std::uint64_t kHashFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kHashFnvPrime = 0x100000001b3ull;

inline std::uint32_t rotl32(std::uint32_t x, int r) {
  return (x << r) | (x >> (32 - r));
}

/// Folds the 8 lanes, the tail words starting at `i`, and the length into
/// the final 64-bit value. Shared by every backend after block absorption.
inline std::uint64_t hash_finish(const std::uint32_t lanes[8],
                                 const std::uint32_t* v, std::size_t i,
                                 std::size_t n) {
  std::uint64_t h = kHashFnvOffset ^ (static_cast<std::uint64_t>(n) *
                                      kHashFnvPrime);
  for (int j = 0; j < 8; ++j) {
    h ^= lanes[j];
    h *= kHashFnvPrime;
  }
  for (; i < n; ++i) {
    h ^= v[i];
    h *= kHashFnvPrime;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

inline std::uint64_t scalar_hash_positions(const std::uint32_t* v,
                                           std::size_t n) {
  std::uint32_t lanes[8];
  std::memcpy(lanes, kHashLaneSeed, sizeof(lanes));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (std::size_t j = 0; j < 8; ++j)
      lanes[j] = rotl32((lanes[j] ^ v[i + j]) * kHashLaneMul, 13);
  return hash_finish(lanes, v, i, n);
}

// ---- prefix peel ---------------------------------------------------------

inline void scalar_peel_prefixes(const std::uint32_t* gaps,
                                 std::uint32_t* sums, std::size_t n) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += gaps[i];  // mod 2^32 by design; callers re-base per record
    sums[i] = acc;
  }
}

// ---- equality ------------------------------------------------------------

inline bool scalar_equals_positions(const std::uint32_t* a,
                                    const std::uint32_t* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(std::uint32_t)) == 0;
}

// ---- group varint --------------------------------------------------------

inline unsigned gv_byte_len(std::uint32_t x) {
  return 1u + (x > 0xffu) + (x > 0xffffu) + (x > 0xffffffu);
}

inline std::size_t scalar_encode_varint_block(const std::uint32_t* values,
                                              std::size_t n,
                                              std::uint8_t* out) {
  std::size_t o = 0;
  for (std::size_t i = 0; i < n; i += 4) {
    const std::size_t k = n - i < 4 ? n - i : 4;
    const std::size_t control = o++;
    std::uint8_t c = 0;
    for (std::size_t j = 0; j < k; ++j) {
      std::uint32_t x = values[i + j];
      const unsigned len = gv_byte_len(x);
      c = static_cast<std::uint8_t>(c | ((len - 1u) << (2 * j)));
      for (unsigned b = 0; b < len; ++b) {
        out[o++] = static_cast<std::uint8_t>(x);
        x >>= 8;
      }
    }
    out[control] = c;
  }
  return o;
}

/// Decodes from (consumed, produced) onward — the shared tail used by the
/// SIMD decoders after their full-group fast path.
inline std::size_t scalar_decode_tail(const std::uint8_t* in,
                                      std::size_t in_len, std::uint32_t* out,
                                      std::size_t n, std::size_t consumed,
                                      std::size_t produced) {
  while (produced < n) {
    if (consumed >= in_len) return kDecodeError;
    const std::uint8_t c = in[consumed++];
    const std::size_t k = n - produced < 4 ? n - produced : 4;
    for (std::size_t j = 0; j < k; ++j) {
      const unsigned len = ((c >> (2 * j)) & 3u) + 1u;
      if (in_len - consumed < len) return kDecodeError;
      std::uint32_t x = 0;
      for (unsigned b = 0; b < len; ++b)
        x |= static_cast<std::uint32_t>(in[consumed + b]) << (8 * b);
      out[produced++] = x;
      consumed += len;
    }
  }
  return consumed;
}

inline std::size_t scalar_decode_varint_block(const std::uint8_t* in,
                                              std::size_t in_len,
                                              std::uint32_t* out,
                                              std::size_t n) {
  return scalar_decode_tail(in, in_len, out, n, 0, 0);
}

// ---- sorted intersection -------------------------------------------------

/// Size ratio beyond which every backend switches from merging to galloping
/// binary search over the larger list.
inline constexpr std::size_t kGallopRatio = 32;

inline std::size_t gallop_lower_bound(const std::uint32_t* data,
                                      std::size_t lo, std::size_t size,
                                      std::uint32_t key) {
  std::size_t step = 1;
  std::size_t hi = lo;
  while (hi < size && data[hi] < key) {
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  if (hi > size) hi = size;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (data[mid] < key)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// Galloping intersection: `small` iterated, `large` searched. `out` may be
/// null (count-only). Output order follows `small`, which is ascending, so
/// the result is the canonical sorted intersection either way.
inline std::size_t gallop_intersect(const std::uint32_t* small_v,
                                    std::size_t ns,
                                    const std::uint32_t* large_v,
                                    std::size_t nl, std::uint32_t* out) {
  std::size_t count = 0;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    cursor = gallop_lower_bound(large_v, cursor, nl, small_v[i]);
    if (cursor == nl) break;
    if (large_v[cursor] == small_v[i]) {
      if (out != nullptr) out[count] = small_v[i];
      ++count;
      ++cursor;
    }
  }
  return count;
}

inline std::size_t scalar_intersect_sorted(const std::uint32_t* a,
                                           std::size_t na,
                                           const std::uint32_t* b,
                                           std::size_t nb,
                                           std::uint32_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    const std::uint32_t* t = a;
    a = b;
    b = t;
    const std::size_t tn = na;
    na = nb;
    nb = tn;
  }
  if (nb / na >= kGallopRatio) return gallop_intersect(a, na, b, nb, out);
  std::size_t i = 0, j = 0, count = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (out != nullptr) out[count] = a[i];
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

inline std::size_t scalar_intersect_count(const std::uint32_t* a,
                                          std::size_t na,
                                          const std::uint32_t* b,
                                          std::size_t nb) {
  return scalar_intersect_sorted(a, na, b, nb, nullptr);
}

// ---- reductions ----------------------------------------------------------

inline std::uint64_t scalar_sum_counts(const std::uint64_t* counts,
                                       std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += counts[i];
  return acc;
}

inline std::uint32_t scalar_sum_positions(const std::uint32_t* positions,
                                          std::size_t n) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += positions[i];
  return acc;
}

}  // namespace plt::kernels::detail
