// Backend selection. The active table is one atomic pointer to an
// immutable Dispatch — readers take an acquire load, switchers a release
// store, so concurrent mines racing a set_backend() see either complete
// table (both compute identical functions, contract rule #1) and TSan sees
// only the atomic. PLT_KERNELS_HAVE_SSE42/AVX2 are private defines set by
// src/CMakeLists.txt only when -DPLT_SIMD=ON and the compiler takes the
// -msse4.2/-mavx2 flags; CPU support is still probed at runtime.
//
// This file is the dispatcher, not a kernel: name lookup and the env
// override legitimately use std::string/getenv, which the purity rule
// bans in kernel implementations. plt-lint: allow-file(kernel-purity)
#include <atomic>
#include <cstdlib>

#include "kernels/backends.hpp"
#include "kernels/kernels.hpp"

namespace plt::kernels {

namespace {

// [[maybe_unused]]: only consulted when the SIMD backends are compiled
// in; under -DPLT_SIMD=OFF resolution never asks about CPU features.
[[maybe_unused]] bool cpu_has_sse42() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

[[maybe_unused]] bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Dispatch* table_for(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &scalar_dispatch();
    case Backend::kSSE42:
#if PLT_KERNELS_HAVE_SSE42
      if (cpu_has_sse42()) return sse42_table();
#endif
      return nullptr;
    case Backend::kAVX2:
#if PLT_KERNELS_HAVE_AVX2
      if (cpu_has_avx2()) return avx2_table();
#endif
      return nullptr;
  }
  return nullptr;
}

const Dispatch* named_table(const std::string& name) {
  if (name == "scalar") return &scalar_dispatch();
  if (name == "auto" || name == "simd") return table_for(best_supported());
  if (name == "sse42") return table_for(Backend::kSSE42);
  if (name == "avx2") return table_for(Backend::kAVX2);
  return nullptr;
}

const Dispatch* resolve_default() {
  if (const char* env = std::getenv("PLT_KERNEL_BACKEND")) {
    if (const Dispatch* d = named_table(env)) return d;
    // Unknown or unavailable name in the environment: fall back to auto
    // rather than failing a process that never asked for kernels.
  }
  return table_for(best_supported());
}

std::atomic<const Dispatch*> g_active{nullptr};

const Dispatch* load_active() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d == nullptr) {
    const Dispatch* resolved = resolve_default();
    if (g_active.compare_exchange_strong(d, resolved,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
      d = resolved;  // first resolver published; losers use what they read
  }
  return d;
}

}  // namespace

const Dispatch& active() { return *load_active(); }

const Dispatch* dispatch_for(Backend backend) { return table_for(backend); }

Backend best_supported() {
  if (table_for(Backend::kAVX2) != nullptr) return Backend::kAVX2;
  if (table_for(Backend::kSSE42) != nullptr) return Backend::kSSE42;
  return Backend::kScalar;
}

bool set_backend(Backend backend) {
  const Dispatch* d = table_for(backend);
  if (d == nullptr) return false;
  g_active.store(d, std::memory_order_release);
  return true;
}

bool select_backend(const std::string& name) {
  if (name.empty()) return true;
  const Dispatch* d = named_table(name);
  if (d == nullptr) return false;
  g_active.store(d, std::memory_order_release);
  return true;
}

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSSE42:
      return "sse42";
    case Backend::kAVX2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace plt::kernels
