// AVX2 backend. The 8 hash lanes fit one ymm register exactly — this is
// why the shared hash shape is 8 lanes of u32 (see scalar_impl.hpp). The
// prefix peel runs 8-wide with intra-lane shifts, a cross-lane low-total
// broadcast, and a running carry. Intersection runs its own 8x8 block
// compare; group-varint reuses the 128-bit shuffle code (simd128_impl.hpp)
// — it is byte-shuffle bound, not width bound. Compiled with -mavx2; only
// referenced by dispatch.cpp under PLT_KERNELS_HAVE_AVX2.
#include <immintrin.h>

#include "kernels/backends.hpp"
#include "kernels/simd128_impl.hpp"

namespace plt::kernels {

namespace {

inline __m256i rotl13_epi32(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi32(x, 13), _mm256_srli_epi32(x, 19));
}

std::uint64_t avx2_hash_positions(const std::uint32_t* v, std::size_t n) {
  __m256i state = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(detail::kHashLaneSeed));
  const __m256i mul =
      _mm256_set1_epi32(static_cast<int>(detail::kHashLaneMul));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i w = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + i));
    state = rotl13_epi32(_mm256_mullo_epi32(_mm256_xor_si256(state, w), mul));
  }
  alignas(32) std::uint32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), state);
  return detail::hash_finish(lanes, v, i, n);
}

void avx2_peel_prefixes(const std::uint32_t* gaps, std::uint32_t* sums,
                        std::size_t n) {
  __m256i carry = _mm256_setzero_si256();
  const __m256i bcast7 = _mm256_set1_epi32(7);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(gaps + i));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Push the low 128-lane's total into every element of the high lane.
    __m256i low = _mm256_permute2x128_si256(x, x, 0x08);  // [0, x_low]
    low = _mm256_shuffle_epi32(low, _MM_SHUFFLE(3, 3, 3, 3));
    x = _mm256_add_epi32(x, low);
    x = _mm256_add_epi32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(sums + i), x);
    carry = _mm256_permutevar8x32_epi32(x, bcast7);
  }
  std::uint32_t acc =
      static_cast<std::uint32_t>(_mm256_extract_epi32(carry, 0));
  for (; i < n; ++i) {
    acc += gaps[i];
    sums[i] = acc;
  }
}

bool avx2_equals_positions(const std::uint32_t* a, const std::uint32_t* b,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(va, vb)) != -1) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

// 8x8 all-pairs block intersection: one ymm of each list per iteration,
// compared against all eight dword rotations of the other, so the block
// advance moves eight elements at a time — the loop-carried dependency
// (advance -> max load -> compare -> advance) costs the same per iteration
// as the 4x4 version but covers twice the elements. Matching a-lanes are
// compress-stored through the 128-bit table, one nibble of the mask per
// half. Same gallop guard and scalar tail as the 128-bit path.
std::size_t avx2_intersect_impl(const std::uint32_t* a, std::size_t na,
                                const std::uint32_t* b, std::size_t nb,
                                std::uint32_t* out) {
  if (na == 0 || nb == 0) return 0;
  if (na > nb) {
    const std::uint32_t* tp = a;
    a = b;
    b = tp;
    const std::size_t tn = na;
    na = nb;
    nb = tn;
  }
  if (nb / na >= detail::kGallopRatio)
    return detail::gallop_intersect(a, na, b, nb, out);

  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
  const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
  const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
  const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
  const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
  const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);

  std::size_t i = 0, j = 0, count = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    __m256i cmp = _mm256_cmpeq_epi32(va, vb);
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
    cmp = _mm256_or_si256(
        cmp, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot7)));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
    if (out != nullptr) {
      const unsigned lo = mask & 0xfu;
      const unsigned hi = mask >> 4;
      const __m128i packed_lo = _mm_shuffle_epi8(
          _mm256_castsi256_si128(va),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
              detail::kCompressTable[lo].data())));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count), packed_lo);
      const __m128i packed_hi = _mm_shuffle_epi8(
          _mm256_extracti128_si256(va, 1),
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(
              detail::kCompressTable[hi].data())));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(
                           out + count +
                           static_cast<unsigned>(__builtin_popcount(lo))),
                       packed_hi);
    }
    count += static_cast<unsigned>(__builtin_popcount(mask));
    const std::uint32_t amax = a[i + 7];
    const std::uint32_t bmax = b[j + 7];
    i += static_cast<std::size_t>(amax <= bmax) * 8;
    j += static_cast<std::size_t>(bmax <= amax) * 8;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      if (out != nullptr) out[count] = a[i];
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::size_t avx2_intersect_sorted(const std::uint32_t* a, std::size_t na,
                                  const std::uint32_t* b, std::size_t nb,
                                  std::uint32_t* out) {
  return avx2_intersect_impl(a, na, b, nb, out);
}

std::size_t avx2_intersect_count(const std::uint32_t* a, std::size_t na,
                                 const std::uint32_t* b, std::size_t nb) {
  return avx2_intersect_impl(a, na, b, nb, nullptr);
}

std::uint64_t avx2_sum_counts(const std::uint64_t* counts, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    acc = _mm256_add_epi64(
        acc,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(counts + i)));
  alignas(32) std::uint64_t parts[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(parts), acc);
  std::uint64_t sum = parts[0] + parts[1] + parts[2] + parts[3];
  for (; i < n; ++i) sum += counts[i];
  return sum;
}

std::uint32_t avx2_sum_positions(const std::uint32_t* positions,
                                 std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_add_epi32(
        acc,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(positions + i)));
  __m128i half = _mm_add_epi32(_mm256_castsi256_si128(acc),
                               _mm256_extracti128_si256(acc, 1));
  half = _mm_add_epi32(half, _mm_shuffle_epi32(half, _MM_SHUFFLE(1, 0, 3, 2)));
  half = _mm_add_epi32(half, _mm_shuffle_epi32(half, _MM_SHUFFLE(2, 3, 0, 1)));
  std::uint32_t sum = static_cast<std::uint32_t>(_mm_cvtsi128_si32(half));
  for (; i < n; ++i) sum += positions[i];
  return sum;
}

constexpr Dispatch kAvx2Dispatch = {
    Backend::kAVX2,
    "avx2",
    avx2_peel_prefixes,
    avx2_hash_positions,
    avx2_equals_positions,
    detail::simd128_encode_varint_block,
    detail::simd128_decode_varint_block,
    avx2_intersect_sorted,
    avx2_intersect_count,
    avx2_sum_counts,
    avx2_sum_positions,
};

}  // namespace

const Dispatch* avx2_table() { return &kAvx2Dispatch; }

}  // namespace plt::kernels
