// Internal: per-backend table accessors, defined only in the backend TUs
// that the build compiled in (src/CMakeLists.txt gates them on PLT_SIMD and
// compiler support). dispatch.cpp references each symbol only under the
// matching PLT_KERNELS_HAVE_* define.
#pragma once

#include "kernels/kernels.hpp"

namespace plt::kernels {

const Dispatch* sse42_table();
const Dispatch* avx2_table();

}  // namespace plt::kernels
