// Parallel partition mining — the paper's §6 claim that "PLT provides
// partition criteria that makes it easy to partition the mining process into
// several separate tasks; each can be accomplished separately."
//
// The partition criterion is the vector sum: the conditional database of
// rank j is derivable from transaction prefixes alone, so the per-item
// subproblems {mine everything whose highest rank is j} are fully
// independent. We materialize each CD_j in one shared pass over the ranked
// database and mine the subproblems on a thread pool, merging the results.
#pragma once

#include "core/conditional.hpp"
#include "core/miner.hpp"

namespace plt::parallel {

struct ParallelOptions {
  std::size_t threads = 2;
  core::ConditionalOptions conditional;
  tdb::ItemOrder item_order = tdb::ItemOrder::kById;
};

/// Mines all frequent itemsets of `db`; result is identical (after
/// canonicalization) to the sequential conditional miner's.
core::MineResult mine_parallel(const tdb::Database& db, Count min_support,
                               const ParallelOptions& options = {});

}  // namespace plt::parallel
