// Parallel partition mining — the paper's §6 claim that "PLT provides
// partition criteria that makes it easy to partition the mining process into
// several separate tasks; each can be accomplished separately."
//
// The partition criterion is the vector sum: the conditional database of
// rank j is derivable from transaction prefixes alone, so the per-item
// subproblems {mine everything whose highest rank is j} are fully
// independent. We materialize each CD_j in one shared pass over the ranked
// database and mine the subproblems with a crew of workers over a
// work-stealing claim queue: each worker drains its own contiguous window of
// ranks through an atomic cursor and, when empty, steals chunks from the
// fullest peer window — no mutex anywhere on the hot path. Every worker owns
// a pooled ProjectionEngine, so conditional projections recycle arenas
// across all the subproblems that worker touches. Results land in per-rank
// slots (each written by exactly one worker) and are concatenated in rank
// order afterwards, so the output is byte-identical for every thread count.
#pragma once

#include "core/conditional.hpp"
#include "core/miner.hpp"
#include "obs/histogram.hpp"

namespace plt::parallel {

struct ParallelOptions {
  std::size_t threads = 2;
  core::ConditionalOptions conditional;
  tdb::ItemOrder item_order = tdb::ItemOrder::kById;
  /// Ranks taken per steal once a worker's own window is empty. Small keeps
  /// the tail balanced; large amortizes the (cheap) claim contention.
  std::size_t steal_chunk = 4;
  /// Cooperative cancellation / deadline / budget shared by all workers;
  /// each checks it before claiming a rank. Null = unlimited.
  const core::MiningControl* control = nullptr;
  /// Execution plan ("", "fixed", "adaptive" — see core::select_plan).
  /// Adaptive gives every worker engine the same shared planner, so plans
  /// (and output — byte-identical anyway) stay thread-count-invariant.
  /// Unknown names throw std::invalid_argument.
  std::string plan;
  /// Cost-model thresholds used when the adaptive plan is active.
  core::PlanConfig plan_config;
  /// Optional per-rank mine-latency distribution (one record per rank
  /// task, whichever worker ran it). Per-worker histograms merge by bucket
  /// addition, so the merged distribution is thread-count-invariant in
  /// shape — only the durations themselves vary run to run. Null skips the
  /// clock reads entirely.
  obs::LatencyHistogram* rank_latency = nullptr;
};

/// Mines all frequent itemsets of `db`; result is identical (after
/// canonicalization) to the sequential conditional miner's, and identical
/// byte-for-byte across thread counts. MineResult::projection aggregates the
/// per-worker engine counters, including the steal count.
core::MineResult mine_parallel(const tdb::Database& db, Count min_support,
                               const ParallelOptions& options = {});

}  // namespace plt::parallel
