#include "parallel/parallel_build.hpp"

#include <exception>
#include <future>
#include <vector>

#include "core/validate.hpp"
#include "util/thread_pool.hpp"

namespace plt::parallel {

void merge_plt(core::Plt& target, const core::Plt& source) {
  PLT_ASSERT(target.max_rank() == source.max_rank(),
             "cannot merge PLTs over different alphabets");
  target.reserve_for_merge(source);
  source.for_each([&](core::Plt::Ref, std::span<const Pos> v,
                      const core::Partition::Entry& e) {
    if (e.freq > 0) target.add(v, e.freq);
  });
}

core::Plt build_plt_parallel(const tdb::Database& ranked_db, Rank max_rank,
                             const BuildOptions& options) {
  PLT_ASSERT(options.threads >= 1, "need at least one worker");
  // Under PLT_VALIDATE the finished tree — single-chunk or pairwise-merged —
  // is structurally checked before it is handed out; a merge bug surfaces
  // here instead of as wrong supports much later.
  core::ValidateOptions validate_options;
  validate_options.expect_prefix_closed = options.build.insert_prefixes;
  const std::size_t chunks =
      std::min<std::size_t>(options.threads, std::max<std::size_t>(
                                                 1, ranked_db.size()));
  if (chunks <= 1) {
    core::Plt tree = core::build_plt(ranked_db, max_rank, options.build);
    core::maybe_validate(tree, "build_plt_parallel", validate_options);
    return tree;
  }

  // Chunk boundaries over the transaction index space.
  const std::size_t per_chunk = (ranked_db.size() + chunks - 1) / chunks;
  ThreadPool pool(options.threads);
  std::vector<std::future<core::Plt>> futures;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(ranked_db.size(), begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(pool.submit([&, begin, end] {
      core::Plt local(max_rank);
      core::PosVec v;
      const core::MiningControl* control = options.control;
      for (std::size_t t = begin; t < end; ++t) {
        // Re-measuring the local PLT walks its partition headers, so the
        // budget figure is refreshed on a sparser cadence than the check.
        if (control != nullptr && (t & 1023u) == 0 &&
            control->should_stop((t & 8191u) == 0 ? local.memory_usage()
                                                  : 0))
          break;
        const auto ranks = ranked_db[t];
        if (ranks.empty()) continue;
        v.clear();
        Rank prev = 0;
        for (const Rank r : ranks) {
          v.push_back(r - prev);
          prev = r;
        }
        local.add(v, 1);
        if (options.build.insert_prefixes) {
          for (std::size_t m = v.size() - 1; m >= 1; --m)
            local.add(std::span<const Pos>(v.data(), m), 1);
        }
      }
      return local;
    }));
  }

  // Every future is drained even when one throws (e.g. an injected fault):
  // rethrowing mid-loop would destroy `locals` while queued tasks still
  // reference it. The first exception is re-raised after the drain.
  std::vector<core::Plt> locals;
  locals.reserve(futures.size());
  std::exception_ptr error;
  for (auto& f : futures) {
    try {
      locals.push_back(f.get());
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  // Pairwise tree merge: lg(chunks) rounds, the merges of each round run
  // concurrently on the pool, so high thread counts are no longer bound by
  // one serial merge into the first chunk.
  while (locals.size() > 1) {
    std::vector<std::future<void>> merges;
    for (std::size_t i = 0; i + 1 < locals.size(); i += 2) {
      merges.push_back(pool.submit(
          [&locals, i] { merge_plt(locals[i], locals[i + 1]); }));
    }
    for (auto& m : merges) {
      try {
        m.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    // Survivors are the even indices (a trailing unpaired chunk passes
    // through untouched).
    std::vector<core::Plt> next;
    next.reserve((locals.size() + 1) / 2);
    for (std::size_t i = 0; i < locals.size(); i += 2)
      next.push_back(std::move(locals[i]));
    locals = std::move(next);
  }
  core::maybe_validate(locals.front(), "build_plt_parallel: merged tree",
                       validate_options);
  return std::move(locals.front());
}

}  // namespace plt::parallel
