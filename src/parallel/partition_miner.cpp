#include "parallel/partition_miner.hpp"

#include <mutex>

#include "core/builder.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace plt::parallel {

core::MineResult mine_parallel(const tdb::Database& db, Count min_support,
                               const ParallelOptions& options) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(options.threads >= 1, "need at least one thread");
  core::MineResult result;

  Timer build_timer;
  const core::RankedView view =
      core::build_ranked_view(db, min_support, options.item_order);
  const auto max_rank = static_cast<Rank>(view.alphabet());
  if (max_rank == 0) return result;

  // One shared pass: every transaction [r1..rk] sends its prefix
  // [r1..r_{i-1}] to partition CD_{r_i}. Prefixes are position vectors
  // already, so each CD_j is collected directly as a per-rank PLT.
  std::vector<core::Plt> partitions;
  partitions.reserve(max_rank);
  for (Rank j = 1; j <= max_rank; ++j)
    partitions.emplace_back(std::max<Rank>(1, j - 1));

  core::PosVec v;
  for (std::size_t t = 0; t < view.db.size(); ++t) {
    const auto ranks = view.db[t];
    v.clear();
    Rank prev = 0;
    for (const Rank r : ranks) {
      v.push_back(r - prev);
      prev = r;
    }
    for (std::size_t i = ranks.size(); i-- > 1;) {
      // Prefix of length i goes to CD of rank ranks[i].
      partitions[ranks[i] - 1].add(std::span<const Pos>(v.data(), i), 1);
    }
  }
  result.build_seconds = build_timer.seconds();
  for (const auto& p : partitions) result.structure_bytes += p.memory_usage();

  Timer mine_timer;
  std::mutex merge_mutex;
  {
    ThreadPool pool(options.threads);
    for (Rank j = 1; j <= max_rank; ++j) {
      pool.submit([&, j] {
        core::FrequentItemsets local;
        const auto sink = core::collect_into(local);
        // The 1-itemset {j} is frequent by construction of the view.
        const Itemset single = core::ranks_to_items(
            view, std::span<const Rank>(&j, 1));
        sink(single, view.support_of(j));

        core::Plt& cd = partitions[j - 1];
        if (cd.num_vectors() > 0) {
          std::vector<Item> item_of(cd.max_rank());
          for (Rank r = 1; r <= cd.max_rank(); ++r)
            item_of[r - 1] = view.item_of(r);
          std::vector<Item> suffix = {view.item_of(j)};
          core::mine_plt_conditional(cd, item_of, suffix, min_support, sink,
                                     options.conditional);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::size_t i = 0; i < local.size(); ++i)
          result.itemsets.add(local.itemset(i), local.support(i));
      });
    }
    pool.wait_idle();
  }
  result.mine_seconds = mine_timer.seconds();
  return result;
}

}  // namespace plt::parallel
