#include "parallel/partition_miner.hpp"

#include <atomic>
#include <exception>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/builder.hpp"
#include "core/projection_pool.hpp"
#include "core/validate.hpp"
#include "obs/trace.hpp"
#include "util/crc32c.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace plt::parallel {

namespace {

// Per-worker claim window over the rank index space. Owners and thieves both
// claim through the atomic cursor, so an index is mined by exactly one
// worker. alignas keeps adjacent windows off one cache line.
//
// Concurrency contract (no mutex anywhere on this path): `next` is the only
// cross-thread-mutable field; `end` is written before the crew spawns and
// is read-only afterwards, published by the happens-before of thread
// creation. Relaxed ordering suffices because claiming an index transfers
// no data — the partitions and result slots it names are owned per-index.
struct alignas(64) ClaimWindow {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;  ///< const after crew start; no atomicity needed
};

core::MineResult mine_parallel_impl(const tdb::Database& db,
                                    Count min_support,
                                    const ParallelOptions& options,
                                    const core::Planner* planner) {
  core::MineResult result;
  const core::MiningControl* control = options.control;
  const std::uint64_t checks0 = control != nullptr ? control->checks() : 0;
  const std::uint64_t failpoint0 = FailpointRegistry::instance().total_hits();
  const std::uint64_t crc0 = crc32c_verifications();
  const auto finish = [&]() {
    result.resilience.failpoint_hits =
        FailpointRegistry::instance().total_hits() - failpoint0;
    result.resilience.crc_verifications = crc32c_verifications() - crc0;
    if (control != nullptr) {
      result.resilience.control_checks = control->checks() - checks0;
      result.status = control->status();
    }
  };

  Timer build_timer;
  const core::RankedView view =
      core::build_ranked_view(db, min_support, options.item_order);
  const auto max_rank = static_cast<Rank>(view.alphabet());
  if (max_rank == 0) {
    finish();
    return result;
  }

  // One shared pass: every transaction [r1..rk] sends its prefix
  // [r1..r_{i-1}] to partition CD_{r_i}. Prefixes are position vectors
  // already, so each CD_j is collected directly as a per-rank PLT.
  std::vector<core::Plt> partitions;
  partitions.reserve(max_rank);
  {
    PLT_SPAN("build-partitions");
    PLT_TRACE_COUNT("partitions", max_rank);
    for (Rank j = 1; j <= max_rank; ++j)
      partitions.emplace_back(std::max<Rank>(1, j - 1));

    core::PosVec v;
    for (std::size_t t = 0; t < view.db.size(); ++t) {
      const auto ranks = view.db[t];
      v.clear();
      Rank prev = 0;
      for (const Rank r : ranks) {
        v.push_back(r - prev);
        prev = r;
      }
      for (std::size_t i = ranks.size(); i-- > 1;) {
        // Prefix of length i goes to CD of rank ranks[i].
        partitions[ranks[i] - 1].add(std::span<const Pos>(v.data(), i), 1);
      }
    }
  }
  result.build_seconds = build_timer.seconds();
  // Under PLT_VALIDATE every per-rank conditional database is structurally
  // checked before any worker mines it (the merged output is only as good
  // as the CDs it came from).
  if (core::validation_enabled())
    for (Rank j = 1; j <= max_rank; ++j)
      core::validate_or_throw(partitions[j - 1],
                              "mine_parallel: partition CD");
  for (const auto& p : partitions) result.structure_bytes += p.memory_usage();

  Timer mine_timer;
  // Ranks are raw view ranks in every subproblem, so one shared translation
  // covers all of them (each CD_j only uses ranks < j).
  std::vector<Item> item_of(max_rank);
  for (Rank r = 1; r <= max_rank; ++r) item_of[r - 1] = view.item_of(r);

  // Per-rank result slots: each is written by exactly one worker, then
  // concatenated in rank order — deterministic output with no merge mutex.
  std::vector<core::FrequentItemsets> per_rank(max_rank);

  const std::size_t workers = options.threads;
  const std::size_t steal_chunk = std::max<std::size_t>(1, options.steal_chunk);
  std::vector<ClaimWindow> windows(workers);
  const std::size_t per_worker = (max_rank + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = std::min<std::size_t>(w * per_worker, max_rank);
    windows[w].next.store(begin, std::memory_order_relaxed);
    windows[w].end = std::min<std::size_t>(begin + per_worker, max_rank);
  }

  // Per-worker latency histograms (merged after the join): recording is
  // thread-local, and bucket addition makes the merged shape independent of
  // which worker claimed which rank.
  std::vector<obs::LatencyHistogram> worker_latency(
      options.rank_latency != nullptr ? options.threads : 0);

  const auto mine_rank = [&](std::size_t idx, core::ProjectionEngine& engine,
                             obs::LatencyHistogram* latency) {
    // Exactly one "mine-rank" span per rank index, whichever worker claims
    // it — the merged span count equals max_rank for every thread count.
    PLT_SPAN("mine-rank");
    PLT_FAILPOINT("parallel.mine_rank");
    std::optional<Timer> timer;
    if (latency != nullptr) timer.emplace();
    const Rank j = static_cast<Rank>(idx + 1);
    const auto sink = core::collect_into(per_rank[idx]);
    // The 1-itemset {j} is frequent by construction of the view.
    const Itemset single =
        core::ranks_to_items(view, std::span<const Rank>(&j, 1));
    sink(single, view.support_of(j));

    core::Plt& cd = partitions[idx];
    if (cd.num_vectors() > 0) {
      std::vector<Item> suffix = {view.item_of(j)};
      engine.mine(cd, item_of, suffix, min_support, sink,
                  options.conditional);
    }
    if (latency != nullptr) latency->record_seconds(timer->seconds());
  };

  // worker_stats[w] / worker_errors[w] are written only by worker w and
  // read only after the join — per-slot ownership, published by join()'s
  // happens-before, same discipline as per_rank above.
  std::vector<core::ProjectionStats> worker_stats(workers);
  // An injected fault (or any other exception) in one worker must not leak
  // out of its thread: it is captured, every worker winds down through the
  // abort flag, and the first capture is rethrown on the calling thread.
  std::vector<std::exception_ptr> worker_errors(workers);
  std::atomic<bool> abort{false};
  {
    std::vector<std::thread> crew;
    crew.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      crew.emplace_back([&, w] {
        try {
          core::ProjectionEngine engine;
          engine.set_control(control, result.structure_bytes);
          // One shared read-only planner: decisions are pure functions of
          // shape + config, so plans stay thread-count-invariant no matter
          // which worker claims a rank. No partition stats here — each
          // engine mines inside CD_j, where engine-local depth 0 is not a
          // view partition.
          engine.set_planner(planner);
          obs::LatencyHistogram* latency =
              worker_latency.empty() ? nullptr : &worker_latency[w];
          std::uint64_t steals = 0;
          const auto stop = [&] {
            return abort.load(std::memory_order_relaxed) ||
                   (control != nullptr && control->should_stop(0));
          };
          // Drain the worker's own window.
          ClaimWindow& own = windows[w];
          for (;;) {
            if (stop()) break;
            const std::size_t idx =
                own.next.fetch_add(1, std::memory_order_relaxed);
            if (idx >= own.end) break;
            mine_rank(idx, engine, latency);
          }
          // Then steal chunks from whichever peer has the most left.
          for (;;) {
            if (stop()) break;
            std::size_t victim = workers;
            std::size_t best_remaining = 0;
            for (std::size_t p = 0; p < workers; ++p) {
              if (p == w) continue;
              const std::size_t cursor =
                  windows[p].next.load(std::memory_order_relaxed);
              const std::size_t remaining =
                  cursor < windows[p].end ? windows[p].end - cursor : 0;
              if (remaining > best_remaining) {
                best_remaining = remaining;
                victim = p;
              }
            }
            if (victim == workers) break;  // everyone is drained
            ClaimWindow& vw = windows[victim];
            const std::size_t got =
                vw.next.fetch_add(steal_chunk, std::memory_order_relaxed);
            if (got >= vw.end) continue;  // lost the race; rescan
            ++steals;
            const std::size_t hi = std::min(vw.end, got + steal_chunk);
            for (std::size_t idx = got; idx < hi; ++idx) {
              if (stop()) break;
              mine_rank(idx, engine, latency);
            }
          }
          worker_stats[w] = engine.stats();
          worker_stats[w].steals = steals;
        } catch (...) {
          worker_errors[w] = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : crew) t.join();
  }
  for (const auto& error : worker_errors)
    if (error) std::rethrow_exception(error);

  // Deterministic ordered merge: rank order regardless of which worker
  // mined what.
  {
    PLT_SPAN("merge");
    for (std::size_t idx = 0; idx < per_rank.size(); ++idx) {
      const core::FrequentItemsets& local = per_rank[idx];
      for (std::size_t i = 0; i < local.size(); ++i)
        result.itemsets.add(local.itemset(i), local.support(i));
    }
  }
  // Steals are scheduling noise, not work: they stay in ProjectionStats and
  // out of the trace so the merged tree is identical at any thread count.
  for (const auto& stats : worker_stats) result.projection.merge(stats);
  if (options.rank_latency != nullptr)
    for (const auto& latency : worker_latency)
      options.rank_latency->merge(latency);
  result.mine_seconds = mine_timer.seconds();
  finish();
  return result;
}

}  // namespace

core::MineResult mine_parallel(const tdb::Database& db, Count min_support,
                               const ParallelOptions& options) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  PLT_ASSERT(options.threads >= 1, "need at least one thread");
  if (!core::select_plan(options.plan))
    throw std::invalid_argument("mine_parallel: unknown plan \"" +
                                options.plan +
                                "\" (expected fixed or adaptive)");
  std::optional<core::Planner> planner;
  if (core::active_plan() == core::PlanMode::kAdaptive)
    planner.emplace(options.plan_config);
  obs::AutoSession trace_session;
  core::MineResult result;
  {
    PLT_SPAN("mine-parallel");
    result = mine_parallel_impl(db, min_support, options,
                                planner ? &*planner : nullptr);
    PLT_TRACE_COUNT("itemsets-total", result.itemsets.size());
  }
  result.trace = trace_session.finish();
  return result;
}

}  // namespace plt::parallel
