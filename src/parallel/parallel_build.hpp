// Parallel PLT construction: the database is split into chunks, each worker
// builds a local PLT (Algorithm 1 is a pure aggregation, so chunk PLTs
// merge by frequency addition). Complements the partition miner: build-side
// parallelism for the paper's "large databases" setting.
#pragma once

#include "core/builder.hpp"
#include "core/exec_control.hpp"

namespace plt::parallel {

struct BuildOptions {
  std::size_t threads = 2;
  core::BuildOptions build;  ///< e.g. insert_prefixes
  /// Checked periodically inside every chunk task. A tripped control makes
  /// the build return early with a *partial* PLT (wrong frequencies) — the
  /// caller must test control->status() and discard the result unless it is
  /// kCompleted.
  const core::MiningControl* control = nullptr;
};

/// Builds the PLT of a ranked database (items = ranks 1..max_rank) using a
/// thread pool; result is identical to the sequential build_plt (tests
/// enforce it).
core::Plt build_plt_parallel(const tdb::Database& ranked_db, Rank max_rank,
                             const BuildOptions& options = {});

/// Merges `source` into `target` (frequency addition). Both must share the
/// same max_rank.
void merge_plt(core::Plt& target, const core::Plt& source);

}  // namespace plt::parallel
