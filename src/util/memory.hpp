// Process- and structure-level memory accounting for the benchmarks.
//
// Two complementary mechanisms:
//   * peak_rss_bytes()/current_rss_bytes() read /proc/self/status — an
//     OS-level upper bound that includes allocator slack.
//   * Each major structure (PLT, FP-tree, candidate trie, tidsets) exposes a
//     memory_usage() method computing its exact logical footprint; benches
//     report both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace plt {

/// Peak resident set size of this process in bytes (VmHWM), or 0 if
/// /proc is unavailable.
std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), or 0 if unavailable.
std::uint64_t current_rss_bytes();

/// Formats a byte count as "12.3 MiB" etc.
std::string format_bytes(std::uint64_t bytes);

/// Logical footprint of a std::vector's heap block.
template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace plt
