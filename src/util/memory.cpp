#include "util/memory.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

namespace plt {

namespace {
// Reads one "Vm*:   <kB> kB" line from /proc/self/status.
std::uint64_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t keylen = std::strlen(key);
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, key, keylen) == 0 && line[keylen] == ':') {
      std::sscanf(line + keylen + 1, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}
}  // namespace

std::uint64_t peak_rss_bytes() { return read_status_kb("VmHWM"); }
std::uint64_t current_rss_bytes() { return read_status_kb("VmRSS"); }

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof buf, "%lu B", bytes);
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KiB", b / 1024.0);
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MiB", b / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace plt
