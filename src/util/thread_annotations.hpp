#pragma once

// Clang Thread Safety Analysis wiring (DESIGN.md S28).
//
// libstdc++'s std::mutex carries no capability attributes, so analysis
// over code that locks it directly sees nothing. plt::Mutex below is a
// zero-overhead annotated wrapper (the Abseil pattern): members guarded
// by a Mutex are declared PLT_GUARDED_BY(mutex_), functions that expect
// the caller to hold it are PLT_REQUIRES(mutex_), and a clang build with
// -Wthread-safety (the clang-thread-safety CI job, with PLT_WERROR=ON)
// rejects any access path that does not provably hold the capability.
// Under gcc every macro expands to nothing and Mutex is an inline
// pass-through over std::mutex.

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define PLT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PLT_THREAD_ANNOTATION(x)
#endif

// Declares a type to be a capability ("mutex" in diagnostics).
#define PLT_CAPABILITY(x) PLT_THREAD_ANNOTATION(capability(x))
// Declares an RAII type that acquires on construction, releases on
// destruction.
#define PLT_SCOPED_CAPABILITY PLT_THREAD_ANNOTATION(scoped_lockable)
// Data members: which lock protects them.
#define PLT_GUARDED_BY(x) PLT_THREAD_ANNOTATION(guarded_by(x))
#define PLT_PT_GUARDED_BY(x) PLT_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions: locks they take, need, or must not hold on entry.
#define PLT_ACQUIRE(...) \
  PLT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PLT_RELEASE(...) \
  PLT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PLT_TRY_ACQUIRE(...) \
  PLT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PLT_REQUIRES(...) \
  PLT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PLT_EXCLUDES(...) PLT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PLT_RETURN_CAPABILITY(x) PLT_THREAD_ANNOTATION(lock_returned(x))
// Escape hatch for functions the analysis cannot follow (thread entry
// points that inherit a lock, intentionally racy diagnostics).
#define PLT_NO_THREAD_SAFETY_ANALYSIS \
  PLT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace plt {

// Annotated mutex. BasicLockable, so it composes with
// std::condition_variable_any (std::condition_variable insists on
// std::unique_lock<std::mutex>, which would bypass the capability).
class PLT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLT_ACQUIRE() { mutex_.lock(); }
  void unlock() PLT_RELEASE() { mutex_.unlock(); }
  bool try_lock() PLT_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

// RAII lock for plt::Mutex, visible to the analysis as a scoped
// capability. `wait` mirrors absl::CondVar::Wait: the capability is
// treated as held across the wait even though the condition variable
// releases and reacquires it internally (those transitions happen inside
// unannotated std:: code the analysis does not look into).
class PLT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PLT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PLT_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  template <typename Predicate>
  void wait(std::condition_variable_any& cv, Predicate predicate) {
    cv.wait(mutex_, predicate);
  }

 private:
  Mutex& mutex_;
};

}  // namespace plt
