#include "util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "util/thread_annotations.hpp"

namespace plt {

namespace {

// splitmix64-style mix: one independent deterministic stream per failpoint,
// so probability-mode fire patterns are reproducible across runs.
std::uint64_t mix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

struct FailpointRegistry::Impl {
  struct Point {
    Spec spec;
    std::uint64_t evaluations = 0;
    std::uint64_t hits = 0;
    std::uint64_t rng_state = 0;
    bool exhausted = false;  // one-shot already fired
  };

  // Fast path: evaluate() returns after one relaxed load when nothing is
  // armed, which is the permanent state of production processes.
  std::atomic<std::size_t> armed_count{0};
  std::atomic<std::uint64_t> total_hits{0};
  mutable Mutex mutex;
  std::unordered_map<std::string, Point> points PLT_GUARDED_BY(mutex);
};

// The singleton is intentionally leaked (never destroyed) so failpoints
// armed from PLT_FAILPOINTS stay valid during static destruction of the
// code under test. plt-lint: allow(no-banned-apis)
FailpointRegistry::FailpointRegistry() : impl_(new Impl) {
  if (const char* env = std::getenv("PLT_FAILPOINTS"))
    arm_from_spec(env);
}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

void FailpointRegistry::arm(std::string_view name, const Spec& spec) {
  MutexLock lock(impl_->mutex);
  Impl::Point point;
  point.spec = spec;
  point.rng_state = spec.seed ^ 0x5bf03635f0a5b5d5ULL;
  const auto [it, inserted] =
      impl_->points.insert_or_assign(std::string(name), point);
  (void)it;
  if (inserted)
    impl_->armed_count.fetch_add(1, std::memory_order_relaxed);
}

void FailpointRegistry::disarm(std::string_view name) {
  MutexLock lock(impl_->mutex);
  if (impl_->points.erase(std::string(name)) > 0)
    impl_->armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::disarm_all() {
  MutexLock lock(impl_->mutex);
  impl_->armed_count.fetch_sub(impl_->points.size(),
                               std::memory_order_relaxed);
  impl_->points.clear();
}

bool FailpointRegistry::armed(std::string_view name) const {
  MutexLock lock(impl_->mutex);
  return impl_->points.count(std::string(name)) > 0;
}

std::uint64_t FailpointRegistry::evaluations(std::string_view name) const {
  MutexLock lock(impl_->mutex);
  const auto it = impl_->points.find(std::string(name));
  return it == impl_->points.end() ? 0 : it->second.evaluations;
}

std::uint64_t FailpointRegistry::hits(std::string_view name) const {
  MutexLock lock(impl_->mutex);
  const auto it = impl_->points.find(std::string(name));
  return it == impl_->points.end() ? 0 : it->second.hits;
}

std::uint64_t FailpointRegistry::total_hits() const {
  return impl_->total_hits.load(std::memory_order_relaxed);
}

void FailpointRegistry::evaluate(std::string_view name) {
  if (impl_->armed_count.load(std::memory_order_relaxed) == 0) return;
  bool fire = false;
  {
    MutexLock lock(impl_->mutex);
    const auto it = impl_->points.find(std::string(name));
    if (it == impl_->points.end()) return;
    Impl::Point& point = it->second;
    ++point.evaluations;
    switch (point.spec.mode) {
      case Mode::kAlways:
        fire = true;
        break;
      case Mode::kProbability:
        fire = (static_cast<double>(mix(point.rng_state) >> 11) *
                0x1.0p-53) < point.spec.probability;
        break;
      case Mode::kEveryNth:
        fire = point.spec.n > 0 && point.evaluations % point.spec.n == 0;
        break;
      case Mode::kOneShot:
        fire = !point.exhausted && point.evaluations == point.spec.n;
        if (fire) point.exhausted = true;
        break;
    }
    if (fire) {
      ++point.hits;
      impl_->total_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (fire) throw InjectedFault(std::string(name));
}

void FailpointRegistry::arm_from_spec(std::string_view spec_list) {
  std::size_t start = 0;
  while (start < spec_list.size()) {
    std::size_t end = spec_list.find(';', start);
    if (end == std::string_view::npos) end = spec_list.size();
    const std::string_view entry = spec_list.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("failpoint spec missing '=': " +
                                  std::string(entry));
    const std::string_view name = entry.substr(0, eq);
    std::string mode_str(entry.substr(eq + 1));

    Spec spec;
    // Split "mode:arg:seedN" on ':'.
    std::string arg, seed_str;
    if (const auto c1 = mode_str.find(':'); c1 != std::string::npos) {
      arg = mode_str.substr(c1 + 1);
      mode_str.resize(c1);
      if (const auto c2 = arg.find(':'); c2 != std::string::npos) {
        seed_str = arg.substr(c2 + 1);
        arg.resize(c2);
      }
    }
    try {
      if (mode_str == "always") {
        spec.mode = Mode::kAlways;
      } else if (mode_str == "prob") {
        spec.mode = Mode::kProbability;
        spec.probability = std::stod(arg);
        if (!seed_str.empty()) {
          if (seed_str.rfind("seed", 0) == 0) seed_str.erase(0, 4);
          spec.seed = std::stoull(seed_str);
        }
      } else if (mode_str == "every") {
        spec.mode = Mode::kEveryNth;
        spec.n = std::stoull(arg);
      } else if (mode_str == "oneshot") {
        spec.mode = Mode::kOneShot;
        spec.n = std::stoull(arg);
      } else {
        throw std::invalid_argument("unknown failpoint mode");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("malformed failpoint spec: " +
                                  std::string(entry));
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("malformed failpoint spec: " +
                                  std::string(entry));
    }
    arm(name, spec);
  }
}

}  // namespace plt
