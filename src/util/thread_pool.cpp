#include "util/thread_pool.hpp"

#include "util/common.hpp"

namespace plt {

ThreadPool::ThreadPool(std::size_t threads) {
  PLT_ASSERT(threads >= 1, "a thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      lock.wait(cv_, [this]() PLT_REQUIRES(mutex_) {
        return stop_ || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  lock.wait(idle_cv_, [this]() PLT_REQUIRES(mutex_) {
    return queue_.empty() && active_ == 0;
  });
}

}  // namespace plt
