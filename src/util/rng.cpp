#include "util/rng.hpp"

#include <cmath>

namespace plt {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PLT_ASSERT(bound > 0, "next_below requires a positive bound");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  PLT_ASSERT(lo <= hi, "next_in requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::uint64_t Rng::next_poisson(double mean) {
  PLT_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = next_double();
    std::uint64_t n = 0;
    while (product > limit) {
      product *= next_double();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction is adequate for the
  // workload generators (mean here is a transaction/pattern length).
  const double v = next_normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double Rng::next_exponential(double mean) {
  PLT_ASSERT(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return mean + stddev * u * f;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)next_u64();
    }
  }
  s_ = {s0, s1, s2, s3};
}

}  // namespace plt
