#include "util/args.hpp"

#include <cstdlib>

#include "util/common.hpp"

namespace plt {

Args::Args(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Args::has(const std::string& key) const { return flags_.count(key) > 0; }

std::vector<std::string> Args::keys() const {
  std::vector<std::string> keys;
  keys.reserve(flags_.size());
  for (const auto& [key, value] : flags_) keys.push_back(key);
  return keys;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(),
                                                      nullptr, 10);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback
                            : std::strtod(it->second.c_str(), nullptr);
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace plt
