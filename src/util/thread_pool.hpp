// Fixed-size thread pool used by the parallel partition miner (S8).
// Tasks are type-erased std::function<void()>; submit() returns a future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/failpoint.hpp"

namespace plt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the returned future carries its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // The failpoint runs *inside* the packaged task: an injected fault is
    // captured by the task's promise and surfaces at future.get(), exactly
    // like any exception thrown by the callable itself.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn)]() mutable -> R {
          PLT_FAILPOINT("thread_pool.task");
          return fn();
        });
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace plt
