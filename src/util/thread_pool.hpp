// Fixed-size thread pool used by the parallel partition miner (S8).
// Tasks are type-erased std::function<void()>; submit() returns a future.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "util/failpoint.hpp"
#include "util/thread_annotations.hpp"

namespace plt {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; the returned future carries its result/exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // The failpoint runs *inside* the packaged task: an injected fault is
    // captured by the task's promise and surfaces at future.get(), exactly
    // like any exception thrown by the callable itself.
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn)]() mutable -> R {
          PLT_FAILPOINT("thread_pool.task");
          return fn();
        });
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle() PLT_EXCLUDES(mutex_);

 private:
  void worker_loop() PLT_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ PLT_GUARDED_BY(mutex_);
  Mutex mutex_;
  // condition_variable_any: the annotated Mutex is BasicLockable but not a
  // std::mutex, which is all std::condition_variable accepts.
  std::condition_variable_any cv_;
  std::condition_variable_any idle_cv_;
  std::size_t active_ PLT_GUARDED_BY(mutex_) = 0;
  bool stop_ PLT_GUARDED_BY(mutex_) = false;
};

}  // namespace plt
