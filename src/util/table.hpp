// Column-aligned plain-text tables and CSV emission for benchmark reports.
// Benches print the same rows/series the paper-style evaluation reports.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <type_traits>
#include <string>
#include <vector>

namespace plt {

/// Accumulates rows of string cells, then renders either an aligned text
/// table (for terminals) or CSV (for plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    add_row({to_cell(values)...});
  }

  std::size_t rows() const { return rows_.size(); }

  /// Renders with column alignment and a header underline.
  std::string to_text() const;
  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  void print(std::ostream& os) const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string to_cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with trailing-zero trimming ("3.5", "0.001", "12").
std::string format_number(double v);

}  // namespace plt
