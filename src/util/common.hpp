// Common aliases and assertion macro used across libplt.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace plt {

/// Item identifier as it appears in the input database (FIMI-style integer).
using Item = std::uint32_t;
/// 1-based rank assigned by a RankMap (Definition 4.1.1 in the paper).
using Rank = std::uint32_t;
/// A position value (gap between consecutive ranks); always >= 1.
using Pos = std::uint32_t;
/// Transaction / itemset occurrence count.
using Count = std::uint64_t;
/// Transaction identifier.
using Tid = std::uint32_t;

/// An itemset as a sorted vector of raw item ids.
using Itemset = std::vector<Item>;

}  // namespace plt

// PLT_ASSERT is active in all build types: the library is the product, and
// invariant violations must not silently corrupt mining results.
#define PLT_ASSERT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "PLT_ASSERT failed at %s:%d: %s\n  %s\n",      \
                   __FILE__, __LINE__, #cond, msg);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
