// Deterministic, seedable PRNG kit: splitmix64 for seeding, xoshiro256** as
// the workhorse generator, plus the distribution helpers the workload
// generators need. Self-contained so that datasets are reproducible across
// standard libraries (std::mt19937 distributions are not portable).
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace plt {

/// splitmix64: used to expand one 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// Poisson-distributed value with the given mean (Knuth for small means,
  /// PTRS rejection for large).
  std::uint64_t next_poisson(double mean);

  /// Exponential with the given mean.
  double next_exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double next_normal(double mean, double stddev);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// `jump()` — advance 2^128 steps; gives independent parallel streams.
  void jump();

 private:
  std::array<std::uint64_t, 4> s_;
  // Cached second normal deviate from the polar method.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace plt
