// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) — the integrity
// check behind the PLT2 blob format and the OOC checkpoint log. Software
// table implementation: blob decode already walks every byte through the
// varint decoder, so a byte-at-a-time CRC is a small constant on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace plt {

/// CRC32C of `data`, continuing from `seed` (pass the previous return value
/// to checksum a buffer in pieces; 0 starts a fresh checksum).
std::uint32_t crc32c(std::span<const std::uint8_t> data,
                     std::uint32_t seed = 0);

/// Process-wide count of CRC verifications performed (codec, blob index,
/// checkpoint reader). Monotonic; report deltas for per-run accounting.
std::uint64_t crc32c_verifications();

/// Called by every verifier after comparing a stored checksum.
void note_crc32c_verification();

}  // namespace plt
