// Minimal command-line flag parser for examples and benches.
// Supports --key=value, --key value, and bare --flag booleans.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace plt {

class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Every flag key that was passed (sorted) — lets strict tools reject
  /// unknown flags instead of silently ignoring typos.
  std::vector<std::string> keys() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace plt
