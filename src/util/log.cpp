#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace plt {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Serialises whole lines onto stderr; no data is guarded, only the
// interleaving of fprintf calls, so there is no PLT_GUARDED_BY target.
Mutex g_mutex;
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[plt %-5s] %s\n", level_name(level), msg.c_str());
}

}  // namespace plt
