#include "util/crc32c.hpp"

#include <array>
#include <atomic>

namespace plt {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

std::atomic<std::uint64_t> g_verifications{0};

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t byte : data)
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xffu];
  return ~crc;
}

std::uint64_t crc32c_verifications() {
  return g_verifications.load(std::memory_order_relaxed);
}

void note_crc32c_verification() {
  g_verifications.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace plt
