// Wall-clock timing helpers for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace plt {

/// Monotonic stopwatch. Started on construction; restart with reset().
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  std::uint64_t micros() const {
    return static_cast<std::uint64_t>(seconds() * 1e6);
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats a duration for human-readable reports, e.g. "1.23 s", "45.6 ms".
std::string format_duration(double seconds);

}  // namespace plt
