#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/common.hpp"

namespace plt {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PLT_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PLT_ASSERT(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_cell(double v) { return format_number(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size())
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << quote(cells[c]);
      if (c + 1 < cells.size()) out << ',';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_text(); }

std::string format_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace plt
