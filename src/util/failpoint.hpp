// Named, deterministically-seeded failpoints: tests arm a point by name and
// the library throws an InjectedFault when execution reaches it, so I/O
// errors, allocation failures and mid-mine crashes can be provoked on
// demand. The evaluation sites live on cold-ish boundaries (per rank, per
// record, per task) and the whole registry compiles to a no-op when
// PLT_FAILPOINTS_ENABLED is 0 (cmake -DPLT_FAILPOINTS=OFF), so release
// builds pay nothing. With failpoints compiled in but none armed, an
// evaluation is a single relaxed atomic load.
//
// Activation:
//   * API — FailpointRegistry::instance().arm("ooc.rank", {...});
//   * env — PLT_FAILPOINTS="ooc.rank=oneshot:3;tdb.read_fimi=prob:0.5:seed9"
//     parsed once at first registry use.
//
// Trigger modes: always, prob:P[:seedN] (deterministic xorshift stream),
// every:N (fires on the Nth, 2Nth, ... evaluation), oneshot:N (fires on
// exactly the Nth evaluation, then never again).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef PLT_FAILPOINTS_ENABLED
#define PLT_FAILPOINTS_ENABLED 1
#endif

namespace plt {

/// Thrown when an armed failpoint fires. Derives std::runtime_error so the
/// library's normal error handling path is exercised by injection tests.
struct InjectedFault : std::runtime_error {
  explicit InjectedFault(const std::string& name)
      : std::runtime_error("injected fault at failpoint '" + name + "'"),
        failpoint(name) {}
  std::string failpoint;
};

class FailpointRegistry {
 public:
  enum class Mode { kAlways, kProbability, kEveryNth, kOneShot };

  struct Spec {
    Mode mode = Mode::kAlways;
    double probability = 1.0;  ///< kProbability
    std::uint64_t n = 1;       ///< kEveryNth / kOneShot trigger ordinal
    std::uint64_t seed = 0;    ///< kProbability: deterministic stream seed
  };

  static FailpointRegistry& instance();

  void arm(std::string_view name, const Spec& spec);
  void disarm(std::string_view name);
  void disarm_all();
  bool armed(std::string_view name) const;

  /// Evaluations/hits of one point since it was last armed.
  std::uint64_t evaluations(std::string_view name) const;
  std::uint64_t hits(std::string_view name) const;
  /// Total fires across all points since process start (monotonic).
  std::uint64_t total_hits() const;

  /// Parses a PLT_FAILPOINTS-style spec list ("a=every:3;b=prob:0.5") and
  /// arms each entry. Throws std::invalid_argument on malformed specs.
  void arm_from_spec(std::string_view spec_list);

  /// Called by PLT_FAILPOINT(name). Throws InjectedFault when `name` is
  /// armed and its trigger condition is met.
  void evaluate(std::string_view name);

 private:
  FailpointRegistry();
  struct Impl;
  Impl* impl_;  // leaked singleton state; never destroyed
};

}  // namespace plt

#if PLT_FAILPOINTS_ENABLED
#define PLT_FAILPOINT(name) ::plt::FailpointRegistry::instance().evaluate(name)
#else
#define PLT_FAILPOINT(name) \
  do {                      \
  } while (0)
#endif
