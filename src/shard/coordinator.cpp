#include "shard/coordinator.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "compress/checkpoint.hpp"
#include "compress/codec.hpp"
#include "core/builder.hpp"
#include "core/planner.hpp"
#include "tdb/stats.hpp"
#include "util/crc32c.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

extern char** environ;

namespace plt::shard {

namespace {

// Default spawn: fork + execvpe of the assembled command line, inheriting
// the coordinator's environment plus the attempt's extra entries (the
// failpoint-injection channel — the worker parses PLT_FAILPOINTS at first
// registry use, so an armed point fires inside the child only).
int default_spawn(const std::vector<std::string>& argv,
                  const std::vector<std::string>& extra_env) {
  std::vector<char*> argv_ptrs;
  argv_ptrs.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    argv_ptrs.push_back(const_cast<char*>(arg.c_str()));
  argv_ptrs.push_back(nullptr);

  std::vector<char*> env_ptrs;
  for (char** e = environ; *e != nullptr; ++e) env_ptrs.push_back(*e);
  for (const std::string& entry : extra_env)
    env_ptrs.push_back(const_cast<char*>(entry.c_str()));
  env_ptrs.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("plt-shard: fork failed");
  if (pid == 0) {
    // execvpe only returns on failure, and the unconditional _exit below
    // is the handling. plt-lint: allow(syscall-check)
    ::execvpe(argv_ptrs[0], argv_ptrs.data(), env_ptrs.data());
    // exec failed; _exit avoids running the parent's atexit/streams state.
    ::_exit(127);
  }
  return static_cast<int>(pid);
}

// One shard's supervision state. The deadline control is per attempt: a
// fresh MiningControl with attempt_timeout latched is created at launch,
// and its should_stop() is the timeout detector in the poll loop.
//
// Concurrency contract: the coordinator is single-threaded — the slot
// table is created, polled and mutated only on the run_workers() thread,
// so there is no lock to annotate; cross-process coordination happens
// through waitpid and the checkpoint files, not shared memory.
struct WorkerSlot {
  ShardSpec spec;
  int pid = -1;
  std::size_t attempts = 0;
  bool done = false;
  core::MiningControl deadline;
};

void kill_slot(WorkerSlot& slot) {
  if (slot.pid < 0) return;
  // ESRCH means the worker already exited; the blocking waitpid below
  // still reaps it either way.
  if (::kill(slot.pid, SIGKILL) != 0 && errno != ESRCH)
    log_warn() << "plt-shard: kill(" << slot.pid
               << ") failed: " << std::strerror(errno);
  int ignored = 0;
  if (::waitpid(slot.pid, &ignored, 0) < 0)
    log_warn() << "plt-shard: waitpid(" << slot.pid
               << ") failed: " << std::strerror(errno);
  slot.pid = -1;
}

}  // namespace

Manifest prepare_job(const tdb::Database& db, Count min_support,
                     const ShardOptions& options) {
  if (options.dir.empty())
    throw std::invalid_argument("prepare_job: job directory required");
  if (options.workers == 0)
    throw std::invalid_argument("prepare_job: need at least one worker");
  if (!core::select_plan(options.plan))
    throw std::invalid_argument("prepare_job: unknown plan \"" +
                                options.plan +
                                "\" (expected fixed or adaptive)");
  std::filesystem::create_directories(options.dir);

  PLT_SPAN("shard-split");
  const core::BuiltPlt built =
      core::build_from_database(db, min_support, options.item_order);
  const auto max_rank = static_cast<Rank>(built.view.alphabet());

  const auto blob = compress::encode_plt(built.plt);
  compress::write_blob_file(blob, blob_path(options.dir));

  Manifest manifest;
  manifest.blob_crc = crc32c(blob);
  manifest.min_support = min_support;
  manifest.max_rank = max_rank;
  manifest.plan = options.plan;
  manifest.item_of.reserve(max_rank);
  for (Rank r = 1; r <= max_rank; ++r)
    manifest.item_of.push_back(built.view.item_of(r));
  if (max_rank > 0) {
    manifest.partition_stats =
        tdb::compute_all_partition_stats(built.view.db, max_rank);
    manifest.shards =
        split_shards(manifest.partition_stats, max_rank, options.workers);
  }
  compress::write_blob_file(encode_manifest(manifest),
                            manifest_path(options.dir));
  PLT_TRACE_COUNT("shard.workers", manifest.shards.size());
  return manifest;
}

std::vector<std::string> worker_command(const ShardOptions& options,
                                        std::size_t shard_id) {
  std::vector<std::string> argv = options.launch_prefix;
  argv.push_back(options.worker_binary.empty() ? "plt-shard"
                                               : options.worker_binary);
  argv.push_back("--worker");
  argv.push_back("--dir");
  argv.push_back(options.dir);
  argv.push_back("--shard");
  argv.push_back(std::to_string(shard_id));
  return argv;
}

core::MineStatus run_workers(const Manifest& manifest,
                             const ShardOptions& options,
                             ShardReport* report) {
  if (!options.launcher && options.worker_binary.empty())
    throw std::invalid_argument(
        "run_workers: worker_binary (or a custom launcher) required");

  std::vector<WorkerSlot> slots;
  slots.reserve(manifest.shards.size());
  for (const ShardSpec& spec : manifest.shards) {
    WorkerSlot slot;
    slot.spec = spec;
    slots.push_back(std::move(slot));
  }

  const auto launch = [&](WorkerSlot& slot) {
    PLT_SPAN("shard-launch");
    const auto argv = worker_command(options, slot.spec.shard_id);
    const std::vector<std::string> no_env;
    const std::vector<std::string>& env =
        slot.attempts == 0 ? options.extra_env_first_attempt : no_env;
    slot.pid = options.launcher ? options.launcher(argv, env)
                                : default_spawn(argv, env);
    ++slot.attempts;
    PLT_TRACE_COUNT("shard.attempts", 1);
    if (slot.attempts > 1) PLT_TRACE_COUNT("shard.relaunches", 1);
    if (report != nullptr) {
      ++report->attempts;
      if (slot.attempts > 1) ++report->relaunches;
    }
    slot.deadline = core::MiningControl();
    if (options.attempt_timeout.count() > 0)
      slot.deadline.set_deadline_after(options.attempt_timeout);
  };

  // A dead attempt (non-zero exit or SIGKILLed on timeout) either
  // relaunches — the new worker resumes from the shard's checkpoint log —
  // or, with the attempt budget spent, fails the whole job.
  const auto relaunch_or_fail = [&](WorkerSlot& slot) {
    if (slot.attempts >= options.max_launch_attempts) {
      for (WorkerSlot& other : slots) kill_slot(other);
      throw std::runtime_error(
          "run_workers: shard " + std::to_string(slot.spec.shard_id) +
          " failed after " + std::to_string(slot.attempts) + " attempts");
    }
    launch(slot);
  };

  PLT_SPAN("shard-wait");
  for (WorkerSlot& slot : slots) launch(slot);

  std::size_t remaining = slots.size();
  while (remaining > 0) {
    if (options.control != nullptr && options.control->should_stop(0)) {
      for (WorkerSlot& slot : slots) kill_slot(slot);
      return options.control->status();
    }
    bool progressed = false;
    for (WorkerSlot& slot : slots) {
      if (slot.done || slot.pid < 0) continue;
      int wait_status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &wait_status, WNOHANG);
      if (reaped == slot.pid) {
        slot.pid = -1;
        if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
          slot.done = true;
          --remaining;
        } else {
          relaunch_or_fail(slot);
        }
        progressed = true;
      } else if (options.attempt_timeout.count() > 0 &&
                 slot.deadline.should_stop(0)) {
        kill_slot(slot);
        relaunch_or_fail(slot);
        progressed = true;
      }
    }
    if (!progressed && remaining > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return core::MineStatus::kCompleted;
}

core::MineStatus merge_job(const std::string& dir,
                           const core::ItemsetSink& sink,
                           ShardReport* report) {
  PLT_SPAN("shard-merge");
  const Manifest manifest =
      decode_manifest(compress::read_blob_file(manifest_path(dir)));

  std::uint64_t merged = 0;
  std::uint64_t bytes_decoded = 0;
  for (const ShardSpec& spec : manifest.shards) {
    const std::uint32_t binding = compress::window_binding_crc(
        manifest.blob_crc, spec.rank_lo, spec.rank_hi, manifest.max_rank);
    compress::CheckpointLog log;
    if (!compress::read_checkpoint(checkpoint_path(dir, spec.shard_id),
                                   binding, manifest.min_support,
                                   spec.rank_hi, log))
      throw std::runtime_error(
          "merge_job: shard " + std::to_string(spec.shard_id) +
          " checkpoint log missing or bound to different inputs");
    const auto window =
        static_cast<std::size_t>(spec.rank_hi - spec.rank_lo + 1);
    if (log.records.size() != window)
      throw std::runtime_error(
          "merge_job: shard " + std::to_string(spec.shard_id) +
          " log incomplete (" + std::to_string(log.records.size()) + " of " +
          std::to_string(window) + " ranks)");
    // Records were validated to descend contiguously from rank_hi, and the
    // shards tile max_rank..1 in shard order — replaying them here IS the
    // single-process emission order.
    for (const compress::CheckpointRecord& record : log.records)
      for (const auto& [items, support] : record.itemsets) {
        sink(items, support);
        ++merged;
      }
    // The summary is the worker's completion certificate (written
    // atomically, after the mine): require it even though the emissions
    // above came from the log alone.
    const ShardSummary summary = decode_summary(
        compress::read_blob_file(summary_path(dir, spec.shard_id)));
    bytes_decoded += summary.bytes_decoded;
    if (report != nullptr) {
      report->shard_wall.record(summary.wall_ns);
      report->summaries.push_back(summary);
    }
  }
  PLT_TRACE_COUNT("shard.itemsets", merged);
  PLT_TRACE_COUNT("shard.bytes-decoded", bytes_decoded);
  if (report != nullptr) {
    report->shards = manifest.shards.size();
    report->max_rank = manifest.max_rank;
    report->itemsets += merged;
  }
  return core::MineStatus::kCompleted;
}

core::MineStatus mine_sharded(const tdb::Database& db, Count min_support,
                              const core::ItemsetSink& sink,
                              const ShardOptions& options,
                              ShardReport* report) {
  PLT_ASSERT(min_support >= 1, "min_support must be >= 1");
  obs::AutoSession trace_session;
  core::MineStatus status = core::MineStatus::kCompleted;
  {
    PLT_SPAN("shard-mine");
    Timer split_timer;
    const Manifest manifest = prepare_job(db, min_support, options);
    if (report != nullptr) {
      report->split_seconds = split_timer.seconds();
      report->blob_bytes =
          static_cast<std::uint64_t>(
              std::filesystem::file_size(blob_path(options.dir)));
      report->max_rank = manifest.max_rank;
      report->shards = manifest.shards.size();
    }

    Timer mine_timer;
    status = run_workers(manifest, options, report);
    if (report != nullptr) report->mine_seconds = mine_timer.seconds();
    if (status == core::MineStatus::kCompleted) {
      Timer merge_timer;
      status = merge_job(options.dir, sink, report);
      if (report != nullptr) report->merge_seconds = merge_timer.seconds();
    }
  }
  const auto tree = trace_session.finish();
  if (report != nullptr) report->trace = tree;
  return status;
}

}  // namespace plt::shard
