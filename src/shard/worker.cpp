#include "shard/worker.hpp"

#include <cstdint>
#include <exception>
#include <iostream>
#include <optional>
#include <span>
#include <vector>

#include "compress/codec.hpp"
#include "compress/ooc_miner.hpp"
#include "obs/trace.hpp"
#include "shard/spec.hpp"
#include "util/crc32c.hpp"
#include "util/timer.hpp"

namespace plt::shard {

int run_worker(const std::string& dir, std::size_t shard_id) {
  try {
    const auto manifest_bytes =
        compress::read_blob_file(manifest_path(dir));
    const Manifest manifest = decode_manifest(manifest_bytes);
    if (shard_id >= manifest.shards.size())
      throw std::runtime_error("run_worker: shard id " +
                               std::to_string(shard_id) +
                               " out of range (job has " +
                               std::to_string(manifest.shards.size()) +
                               " shards)");
    const ShardSpec& spec = manifest.shards[shard_id];

    const auto blob = compress::read_blob_file(blob_path(dir));
    // The manifest pins the exact blob this job was split from; a worker
    // must never mine (or resume a log against) different bytes.
    note_crc32c_verification();
    if (crc32c(blob) != manifest.blob_crc)
      throw std::runtime_error(
          "run_worker: blob does not match the manifest CRC");

    compress::OocOptions options;
    options.checkpoint_path = checkpoint_path(dir, shard_id);
    options.resume = true;
    options.plan = manifest.plan;
    options.rank_lo = spec.rank_lo;
    options.rank_hi = spec.rank_hi;
    options.partition_stats = manifest.partition_stats;

    // The checkpoint log is the result channel; the sink only counts.
    std::uint64_t emitted = 0;
    const auto sink = [&emitted](std::span<const Item>, Count) {
      ++emitted;
    };

    // A session of the worker's own so its span tree can travel back to
    // the coordinator inside the summary, even when the coordinator's
    // tracing state does not reach across the process boundary.
    std::optional<obs::TraceSession> session;
    if (obs::enabled() && !obs::session_active()) session.emplace();

    Timer wall;
    compress::OocStats stats;
    const core::MineStatus status = compress::mine_from_blob(
        blob, manifest.item_of, manifest.min_support, sink, &stats, options);
    if (status != core::MineStatus::kCompleted)
      throw std::runtime_error(std::string("run_worker: mine stopped: ") +
                               core::to_string(status));

    ShardSummary summary;
    summary.shard_id = shard_id;
    summary.rank_lo = spec.rank_lo;
    summary.rank_hi = spec.rank_hi;
    summary.itemsets = emitted;
    summary.bytes_decoded = stats.bytes_decoded;
    summary.checkpoint_records = stats.checkpoint_records;
    summary.resumed_ranks = stats.resumed_ranks;
    summary.warmed_ranks = stats.warmed_ranks;
    summary.wall_ns = static_cast<std::uint64_t>(wall.seconds() * 1e9);
    if (session) {
      if (const auto tree = session->finish())
        summary.trace_json = obs::to_json(*tree);
    }
    // Atomic write: the summary's existence certifies completion, so it
    // must never be observable half-written.
    compress::write_blob_file(encode_summary(summary),
                              summary_path(dir, shard_id));
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "plt-shard worker " << shard_id << ": " << error.what()
              << '\n';
    return 1;
  }
}

}  // namespace plt::shard
