// The shard worker: one process, one rank window. It is deliberately thin —
// read the job manifest and blob, verify the blob against the manifest CRC,
// and run the existing OOC miner over the window with checkpointing and
// resume on. Everything durable the worker produces goes through
// crash-safe channels: emissions land in the rank-granular checkpoint log
// (appended and flushed per rank — this IS the result the coordinator
// merges), and the summary is written atomically last, so its presence
// certifies the shard completed. A worker killed at any instant loses at
// most its in-flight rank; the relaunched worker resumes from the log.
#pragma once

#include <string>

namespace plt::shard {

/// Mines shard `shard_id` of the job in `dir` (see spec.hpp for the
/// directory layout). Returns a process exit code: 0 on success, non-zero
/// after printing the error to stderr — never throws, so a launcher can
/// treat any failure uniformly as "relaunch or give up".
int run_worker(const std::string& dir, std::size_t shard_id);

}  // namespace plt::shard
