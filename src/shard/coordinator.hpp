// Shard-parallel mining across processes (S26): the coordinator side.
//
// The pipeline has three phases, each its own span and each usable alone
// (plt-shard exposes them for ssh-style launchers that run workers on
// other hosts against a shipped job directory):
//
//   prepare_job  — build the PLT once, serialize it as the PLT2 blob, and
//                  write the job manifest: shard windows balanced by
//                  per-partition work weights, the rank->item map, the
//                  partition stats for the workers' adaptive planners.
//   run_workers  — fan out one process per shard (fork/exec of
//                  `plt-shard --worker`, or a caller-supplied launcher),
//                  supervise them, and survive failures: a worker that
//                  exits non-zero or blows its per-attempt deadline
//                  (MiningControl-based) is killed and relaunched, and the
//                  relaunch resumes from the shard's rank-granular
//                  checkpoint log — at most the in-flight rank is re-mined.
//   merge_job    — replay the per-shard checkpoint logs in shard order.
//                  Shards tile max_rank..1 contiguously and each log holds
//                  its window's emissions in rank order, so the merged
//                  stream is byte-identical to a single-process
//                  mine_from_blob at every support (tests enforce it,
//                  including after injected worker kills).
//
// mine_sharded composes all three. The blob is the exchange format; the
// checkpoint logs are both the crash-recovery journal and the result
// channel, so no second result format exists to drift.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/exec_control.hpp"
#include "core/itemset_collector.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "shard/spec.hpp"
#include "tdb/database.hpp"
#include "tdb/remap.hpp"

namespace plt::shard {

/// Launches one worker attempt. `argv` is the complete command line
/// (argv[0] = program); `extra_env` holds additional "KEY=VALUE" entries
/// for this attempt only. Returns the child pid (the coordinator reaps it
/// with waitpid), or throws std::runtime_error when spawning fails.
using Launcher = std::function<int(const std::vector<std::string>& argv,
                                   const std::vector<std::string>& extra_env)>;

struct ShardOptions {
  /// Worker processes to fan out to (= shard count; clamped to max_rank).
  std::size_t workers = 2;
  /// Job directory for the blob, manifest, per-shard logs and summaries.
  /// Created if missing. Required.
  std::string dir;
  /// Path of the plt-shard binary the default fork/exec launcher runs with
  /// `--worker`. Required unless `launcher` is set.
  std::string worker_binary;
  /// Prepended to the worker command line — the NUMA/affinity hook
  /// (e.g. {"taskset", "-c", "0-3"} or {"numactl", "--cpunodebind=0"}).
  std::vector<std::string> launch_prefix;
  /// Replaces the default fork/exec spawn when set (tests use an
  /// in-process fork; remote setups can wrap ssh).
  Launcher launcher;
  /// Per-attempt wall-clock deadline, enforced through a MiningControl per
  /// attempt: a worker that outlives it is SIGKILLed and relaunched.
  /// Zero = unlimited.
  std::chrono::nanoseconds attempt_timeout{0};
  /// Total attempts per shard (first launch included) before the job fails.
  std::size_t max_launch_attempts = 3;
  /// Extra environment for each shard's *first* attempt only — the
  /// failpoint-injection hook (e.g. "PLT_FAILPOINTS=ooc.rank=oneshot:2"
  /// kills the first worker mid-run; the relaunch runs clean and resumes).
  std::vector<std::string> extra_env_first_attempt;
  /// Caller-side cancellation/deadline: when it trips, every live worker
  /// is killed and the latched status comes back. Null = unlimited.
  const core::MiningControl* control = nullptr;
  /// Execution plan forwarded to workers via the manifest ("", "fixed",
  /// "adaptive" — unknown names throw from prepare_job).
  std::string plan;
  tdb::ItemOrder item_order = tdb::ItemOrder::kById;
};

struct ShardReport {
  std::size_t shards = 0;
  std::uint64_t attempts = 0;    ///< worker launches, relaunches included
  std::uint64_t relaunches = 0;  ///< launches beyond each shard's first
  double split_seconds = 0.0;    ///< build + encode + write blob/manifest
  double mine_seconds = 0.0;     ///< launch + supervise wall time
  double merge_seconds = 0.0;    ///< ordered checkpoint replay
  std::uint64_t blob_bytes = 0;
  std::uint64_t itemsets = 0;    ///< merged emissions
  Rank max_rank = 0;
  /// Per-shard worker reports in shard order (present after merge).
  std::vector<ShardSummary> summaries;
  /// Distribution of per-shard worker wall times (from the summaries) —
  /// the E21 balance signal.
  obs::LatencyHistogram shard_wall;
  /// Coordinator-side aggregated span tree when this call owned the trace
  /// session (same contract as MineResult::trace).
  std::shared_ptr<const obs::TraceNode> trace;
};

/// Phase 1: builds the PLT, writes blob + manifest into options.dir and
/// returns the manifest. Throws std::invalid_argument on an unknown plan
/// or empty dir, std::runtime_error on I/O failure.
Manifest prepare_job(const tdb::Database& db, Count min_support,
                     const ShardOptions& options);

/// The worker command line for one shard (launch_prefix included) — what
/// the default launcher runs, exposed for --emit-commands.
std::vector<std::string> worker_command(const ShardOptions& options,
                                        std::size_t shard_id);

/// Phase 2: fans out and supervises one worker per shard. Returns
/// kCompleted when every shard's summary landed, or the caller control's
/// latched status after killing the workers. Throws std::runtime_error
/// when a shard exhausts max_launch_attempts.
core::MineStatus run_workers(const Manifest& manifest,
                             const ShardOptions& options,
                             ShardReport* report = nullptr);

/// Phase 3: replays the per-shard checkpoint logs of the job in `dir`
/// through `sink` in shard order. Throws std::runtime_error when a log is
/// missing, bound to different inputs, or incomplete for its window.
core::MineStatus merge_job(const std::string& dir,
                           const core::ItemsetSink& sink,
                           ShardReport* report = nullptr);

/// The full pipeline: prepare, fan out, merge. Emissions through `sink`
/// are byte-identical (content and order) to single-process
/// mine_from_blob over the same blob, hence equal as a set to core::mine.
core::MineStatus mine_sharded(const tdb::Database& db, Count min_support,
                              const core::ItemsetSink& sink,
                              const ShardOptions& options,
                              ShardReport* report = nullptr);

}  // namespace plt::shard
