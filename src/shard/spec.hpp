// Shard job descriptions and the two small wire formats that glue the
// coordinator and its worker processes together (S26). A shard is a
// contiguous rank window [rank_lo, rank_hi] over one shared PLT2 blob:
// rank partitions are independent by construction (Def 4.1.3), so a worker
// that warms the overlay above rank_hi and then mines rank_hi..rank_lo
// emits exactly the window's slice of the full-range OOC emission
// sequence. Both formats follow the house container rules (magic + varints
// + trailing CRC32C over everything after the magic), so a torn or
// corrupted file is rejected before any value is trusted:
//
//   "PLTM" (manifest, coordinator -> workers): blob CRC, min_support,
//   max_rank, the rank->item map, per-partition stats for the adaptive
//   planner, the shard windows, and the plan name. One file per job
//   directory; a worker needs nothing else besides the blob itself.
//
//   "PLTS" (summary, worker -> coordinator): per-shard mining statistics
//   plus the worker's plt-trace-v1 JSON when tracing was enabled. Written
//   atomically after the shard completes; the durable *result* artifact is
//   the shard's rank-granular checkpoint log, which doubles as the
//   exchange format the coordinator's ordered merge replays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tdb/stats.hpp"
#include "util/common.hpp"

namespace plt::shard {

/// One worker's assignment: mine ranks [rank_lo, rank_hi] (inclusive).
/// Shard 0 owns the highest ranks; ids increase toward rank 1, so merging
/// logs in shard order reproduces the single-process max_rank..1 walk.
struct ShardSpec {
  std::size_t shard_id = 0;
  Rank rank_lo = 0;
  Rank rank_hi = 0;
};

/// Splits [1, max_rank] into at most `shards` contiguous windows, balanced
/// by per-partition work weight (1 + transactions + prefix_items from
/// `stats`, or uniform when stats are empty). Windows are returned in
/// shard-id order: shard 0 holds max_rank. Never returns an empty window;
/// fewer than `shards` specs come back when max_rank is small. Throws
/// std::invalid_argument when shards == 0 or max_rank == 0.
std::vector<ShardSpec> split_shards(
    std::span<const tdb::PartitionStats> stats, Rank max_rank,
    std::size_t shards);

/// Everything a worker needs to know about the job, minus the blob bytes.
struct Manifest {
  std::uint32_t blob_crc = 0;  ///< CRC32C of the whole PLT2 blob
  Count min_support = 0;
  Rank max_rank = 0;
  std::vector<Item> item_of;  ///< item_of[r-1] = original item of rank r
  /// Per-partition stats of the source view (entry j-1 = partition j),
  /// forwarded so workers can run the adaptive planner's rank-level
  /// single-path witness without rescanning the database.
  std::vector<tdb::PartitionStats> partition_stats;
  std::vector<ShardSpec> shards;
  std::string plan;  ///< execution plan name ("", "fixed", "adaptive")
};

std::vector<std::uint8_t> encode_manifest(const Manifest& manifest);
/// Throws std::runtime_error on bad magic, truncation, CRC mismatch, or
/// structurally impossible contents (empty/overlapping shard windows).
Manifest decode_manifest(std::span<const std::uint8_t> bytes);

/// Per-shard mining report; the trace JSON is the worker's own
/// plt-trace-v1 export (empty when tracing was off in the worker).
struct ShardSummary {
  std::size_t shard_id = 0;
  Rank rank_lo = 0;
  Rank rank_hi = 0;
  std::uint64_t itemsets = 0;
  std::uint64_t bytes_decoded = 0;
  std::uint64_t checkpoint_records = 0;
  std::uint64_t resumed_ranks = 0;
  std::uint64_t warmed_ranks = 0;
  std::uint64_t wall_ns = 0;  ///< worker wall time for the mine
  std::string trace_json;
};

std::vector<std::uint8_t> encode_summary(const ShardSummary& summary);
/// Throws std::runtime_error on bad magic, truncation, or CRC mismatch.
ShardSummary decode_summary(std::span<const std::uint8_t> bytes);

/// Canonical layout of a job directory. Workers and coordinator agree on
/// these names, so a job directory is self-describing and an ssh-style
/// launcher only needs to ship the directory.
std::string blob_path(const std::string& dir);
std::string manifest_path(const std::string& dir);
std::string checkpoint_path(const std::string& dir, std::size_t shard_id);
std::string summary_path(const std::string& dir, std::size_t shard_id);

}  // namespace plt::shard
