#include "shard/spec.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "compress/blob_format.hpp"
#include "compress/varint.hpp"
#include "util/crc32c.hpp"

namespace plt::shard {

namespace {

using compress::append_u32le;
using compress::get_varint;
using compress::put_varint;
using compress::read_u32le;

constexpr char kManifestMagic[4] = {'P', 'L', 'T', 'M'};
constexpr char kSummaryMagic[4] = {'P', 'L', 'T', 'S'};

// Doubles travel as their IEEE-754 bit pattern in a varint: byte-exact
// round-trip, no locale or formatting wobble, and the CRC covers them like
// any other field.
void put_double(std::vector<std::uint8_t>& out, double value) {
  put_varint(out, std::bit_cast<std::uint64_t>(value));
}

double get_double(std::span<const std::uint8_t> in, std::size_t& offset) {
  return std::bit_cast<double>(get_varint(in, offset));
}

void check_magic(std::span<const std::uint8_t> bytes, const char (&magic)[4],
                 const char* who) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), magic, 4) != 0)
    throw std::runtime_error(std::string(who) + ": bad magic or truncated");
}

// Verifies the trailing CRC32C over everything after the magic and returns
// the span of the protected payload (between magic and CRC).
std::span<const std::uint8_t> checked_payload(
    std::span<const std::uint8_t> bytes, const char* who) {
  // Guard the arithmetic below: on a 5..7-byte input `crc_at - 4` would
  // wrap and the subspan would run off the buffer (callers do run
  // check_magic first, but this function must be safe standalone).
  if (bytes.size() < 8)
    throw std::runtime_error(std::string(who) + ": truncated");
  const std::size_t crc_at = bytes.size() - 4;
  const auto payload = bytes.subspan(4, crc_at - 4);
  const std::uint32_t stored = read_u32le(bytes, crc_at, who);
  note_crc32c_verification();
  if (crc32c(payload) != stored)
    throw std::runtime_error(std::string(who) + ": CRC mismatch");
  return payload;
}

void seal(std::vector<std::uint8_t>& out) {
  append_u32le(out, crc32c({out.data() + 4, out.size() - 4}));
}

}  // namespace

std::vector<ShardSpec> split_shards(std::span<const tdb::PartitionStats> stats,
                                    Rank max_rank, std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("split_shards: zero shards");
  if (max_rank == 0) throw std::invalid_argument("split_shards: empty range");
  shards = std::min<std::size_t>(shards, max_rank);

  // Work weight of partition j: its conditional database size plus a
  // constant for the fixed per-rank cost. Uniform when stats are absent.
  const auto weight = [&](Rank j) -> std::uint64_t {
    if (stats.size() < j) return 1;
    const tdb::PartitionStats& s = stats[j - 1];
    return 1 + s.transactions + s.prefix_items;
  };
  std::uint64_t remaining_weight = 0;
  for (Rank j = 1; j <= max_rank; ++j) remaining_weight += weight(j);

  // Greedy top-down split: walk max_rank..1 (the mining order) and close a
  // window once it reaches its fair share of the remaining weight, always
  // leaving at least one rank per remaining shard.
  std::vector<ShardSpec> specs;
  specs.reserve(shards);
  Rank hi = max_rank;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::size_t remaining_shards = shards - k;
    const std::uint64_t target =
        (remaining_weight + remaining_shards - 1) / remaining_shards;
    Rank lo = hi;
    std::uint64_t taken = weight(hi);
    while (lo > 1 && taken < target &&
           (lo - 1) >= static_cast<Rank>(remaining_shards - 1) + 1) {
      --lo;
      taken += weight(lo);
    }
    if (k + 1 == shards) lo = 1;  // last shard absorbs the tail
    specs.push_back({k, lo, hi});
    remaining_weight -= taken;
    if (lo == 1) break;
    hi = lo - 1;
  }
  return specs;
}

std::vector<std::uint8_t> encode_manifest(const Manifest& manifest) {
  std::vector<std::uint8_t> out(kManifestMagic, kManifestMagic + 4);
  append_u32le(out, manifest.blob_crc);
  put_varint(out, manifest.min_support);
  put_varint(out, manifest.max_rank);
  put_varint(out, manifest.item_of.size());
  for (const Item item : manifest.item_of) put_varint(out, item);
  put_varint(out, manifest.partition_stats.size());
  for (const tdb::PartitionStats& s : manifest.partition_stats) {
    put_varint(out, s.rank);
    put_varint(out, s.transactions);
    put_varint(out, s.prefix_items);
    put_varint(out, s.max_prefix_len);
    put_double(out, s.avg_prefix_len);
    put_double(out, s.density);
    put_double(out, s.support_gini);
  }
  put_varint(out, manifest.shards.size());
  for (const ShardSpec& spec : manifest.shards) {
    put_varint(out, spec.rank_lo);
    put_varint(out, spec.rank_hi);
  }
  put_varint(out, manifest.plan.size());
  out.insert(out.end(), manifest.plan.begin(), manifest.plan.end());
  seal(out);
  return out;
}

Manifest decode_manifest(std::span<const std::uint8_t> bytes) {
  const char* who = "decode_manifest";
  check_magic(bytes, kManifestMagic, who);
  const auto payload = checked_payload(bytes, who);

  Manifest manifest;
  std::size_t at = 0;
  manifest.blob_crc = read_u32le(payload, at, who);
  at += 4;
  manifest.min_support = get_varint(payload, at);
  manifest.max_rank = static_cast<Rank>(get_varint(payload, at));
  const std::uint64_t items = get_varint(payload, at);
  // Every count below is bounded by the payload that must still encode it
  // (>= 1 byte per element), so a corrupted count cannot drive a huge
  // allocation even though the CRC already passed.
  if (items > payload.size())
    throw std::runtime_error(std::string(who) + ": impossible item count");
  manifest.item_of.reserve(items);
  for (std::uint64_t i = 0; i < items; ++i)
    manifest.item_of.push_back(static_cast<Item>(get_varint(payload, at)));
  const std::uint64_t stat_count = get_varint(payload, at);
  if (stat_count > payload.size())
    throw std::runtime_error(std::string(who) + ": impossible stats count");
  manifest.partition_stats.reserve(stat_count);
  for (std::uint64_t i = 0; i < stat_count; ++i) {
    tdb::PartitionStats s;
    s.rank = static_cast<Rank>(get_varint(payload, at));
    s.transactions = get_varint(payload, at);
    s.prefix_items = get_varint(payload, at);
    s.max_prefix_len = get_varint(payload, at);
    s.avg_prefix_len = get_double(payload, at);
    s.density = get_double(payload, at);
    s.support_gini = get_double(payload, at);
    manifest.partition_stats.push_back(s);
  }
  const std::uint64_t shard_count = get_varint(payload, at);
  if (shard_count > payload.size())
    throw std::runtime_error(std::string(who) + ": impossible shard count");
  Rank expected_hi = manifest.max_rank;
  for (std::uint64_t k = 0; k < shard_count; ++k) {
    ShardSpec spec;
    spec.shard_id = k;
    spec.rank_lo = static_cast<Rank>(get_varint(payload, at));
    spec.rank_hi = static_cast<Rank>(get_varint(payload, at));
    // Windows must tile max_rank..1 contiguously in shard order — the
    // property the ordered merge depends on.
    if (spec.rank_lo == 0 || spec.rank_lo > spec.rank_hi ||
        spec.rank_hi != expected_hi)
      throw std::runtime_error(std::string(who) + ": shard windows do not "
                                                  "tile the rank range");
    expected_hi = spec.rank_lo - 1;
    manifest.shards.push_back(spec);
  }
  if (shard_count > 0 && expected_hi != 0)
    throw std::runtime_error(std::string(who) +
                             ": shard windows do not reach rank 1");
  const std::uint64_t plan_len = get_varint(payload, at);
  if (plan_len > payload.size() - at)
    throw std::runtime_error(std::string(who) + ": truncated plan name");
  manifest.plan.assign(reinterpret_cast<const char*>(payload.data()) + at,
                       plan_len);
  at += plan_len;
  if (at != payload.size())
    throw std::runtime_error(std::string(who) + ": trailing bytes");
  return manifest;
}

std::vector<std::uint8_t> encode_summary(const ShardSummary& summary) {
  std::vector<std::uint8_t> out(kSummaryMagic, kSummaryMagic + 4);
  put_varint(out, summary.shard_id);
  put_varint(out, summary.rank_lo);
  put_varint(out, summary.rank_hi);
  put_varint(out, summary.itemsets);
  put_varint(out, summary.bytes_decoded);
  put_varint(out, summary.checkpoint_records);
  put_varint(out, summary.resumed_ranks);
  put_varint(out, summary.warmed_ranks);
  put_varint(out, summary.wall_ns);
  put_varint(out, summary.trace_json.size());
  out.insert(out.end(), summary.trace_json.begin(), summary.trace_json.end());
  seal(out);
  return out;
}

ShardSummary decode_summary(std::span<const std::uint8_t> bytes) {
  const char* who = "decode_summary";
  check_magic(bytes, kSummaryMagic, who);
  const auto payload = checked_payload(bytes, who);

  ShardSummary summary;
  std::size_t at = 0;
  summary.shard_id = get_varint(payload, at);
  summary.rank_lo = static_cast<Rank>(get_varint(payload, at));
  summary.rank_hi = static_cast<Rank>(get_varint(payload, at));
  summary.itemsets = get_varint(payload, at);
  summary.bytes_decoded = get_varint(payload, at);
  summary.checkpoint_records = get_varint(payload, at);
  summary.resumed_ranks = get_varint(payload, at);
  summary.warmed_ranks = get_varint(payload, at);
  summary.wall_ns = get_varint(payload, at);
  const std::uint64_t json_len = get_varint(payload, at);
  if (json_len > payload.size() - at)
    throw std::runtime_error(std::string(who) + ": truncated trace JSON");
  summary.trace_json.assign(
      reinterpret_cast<const char*>(payload.data()) + at, json_len);
  at += json_len;
  if (at != payload.size())
    throw std::runtime_error(std::string(who) + ": trailing bytes");
  return summary;
}

std::string blob_path(const std::string& dir) { return dir + "/job.plt"; }

std::string manifest_path(const std::string& dir) {
  return dir + "/job.pltm";
}

std::string checkpoint_path(const std::string& dir, std::size_t shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".pltk";
}

std::string summary_path(const std::string& dir, std::size_t shard_id) {
  return dir + "/shard-" + std::to_string(shard_id) + ".plts";
}

}  // namespace plt::shard
