// Bitmap (dense bitset) transaction layout: one bit per (transaction,
// item). The third representation in the paper's §3 layout taxonomy
// discussion, used as a subset-check competitor in experiment E6 — fast
// membership tests at O(alphabet/64) words per transaction, at the cost of
// density-independent storage.
#pragma once

#include <span>
#include <vector>

#include "tdb/database.hpp"

namespace plt::tdb {

class BitmapView {
 public:
  explicit BitmapView(const Database& db);

  std::size_t transactions() const { return transactions_; }
  std::size_t alphabet() const { return alphabet_; }

  bool contains(std::size_t transaction, Item item) const {
    if (item > alphabet_) return false;
    return (row(transaction)[word(item)] >> bit(item)) & 1u;
  }

  /// True iff the sorted `items` are all present in the transaction.
  bool contains_all(std::size_t transaction,
                    std::span<const Item> items) const;

  /// Number of transactions containing every item of the sorted query.
  Count support_of(std::span<const Item> items) const;

  std::size_t memory_usage() const;

 private:
  std::span<const std::uint64_t> row(std::size_t transaction) const {
    return {bits_.data() + transaction * words_, words_};
  }
  static std::size_t word(Item item) { return item / 64; }
  static unsigned bit(Item item) { return item % 64; }

  std::size_t transactions_ = 0;
  std::size_t alphabet_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace plt::tdb
