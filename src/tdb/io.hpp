// FIMI-format I/O: one transaction per line, space-separated item ids —
// the interchange format of the FIMI'03 workshop the paper cites.
#pragma once

#include <iosfwd>
#include <string>

#include "tdb/database.hpp"

namespace plt::tdb {

/// Parses a FIMI-format stream. Throws std::runtime_error on malformed
/// input (non-numeric tokens, negative ids).
Database read_fimi(std::istream& in);

/// Loads a FIMI file from disk; throws std::runtime_error if unreadable.
Database read_fimi_file(const std::string& path);

/// Writes FIMI format.
void write_fimi(const Database& db, std::ostream& out);
void write_fimi_file(const Database& db, const std::string& path);

}  // namespace plt::tdb
