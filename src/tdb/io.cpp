#include "tdb/io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/failpoint.hpp"

namespace plt::tdb {

Database read_fimi(std::istream& in) {
  PLT_FAILPOINT("tdb.read_fimi");
  Database db;
  std::string line;
  std::vector<Item> row;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    row.clear();
    std::size_t i = 0;
    while (i < line.size()) {
      if (std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
        continue;
      }
      if (!std::isdigit(static_cast<unsigned char>(line[i]))) {
        throw std::runtime_error("FIMI parse error at line " +
                                 std::to_string(lineno) +
                                 ": non-numeric token");
      }
      std::uint64_t value = 0;
      while (i < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[i]))) {
        value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
        if (value > 0xffffffffULL)
          throw std::runtime_error("FIMI parse error at line " +
                                   std::to_string(lineno) +
                                   ": item id overflows 32 bits");
        ++i;
      }
      row.push_back(static_cast<Item>(value));
    }
    if (!row.empty()) db.add(row);
  }
  // getline() also stops on a hard stream error (disk fault, dropped
  // mount); without this check such a read silently truncates the database.
  if (in.bad())
    throw std::runtime_error("FIMI read failed after line " +
                             std::to_string(lineno) +
                             ": stream reported an I/O error");
  return db;
}

Database read_fimi_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FIMI file: " + path);
  return read_fimi(in);
}

void write_fimi(const Database& db, std::ostream& out) {
  PLT_FAILPOINT("tdb.write_fimi");
  for (std::size_t i = 0; i < db.size(); ++i) {
    const auto t = db[i];
    for (std::size_t j = 0; j < t.size(); ++j) {
      if (j) out << ' ';
      out << t[j];
    }
    out << '\n';
  }
  // A full disk only surfaces through the stream state once buffers flush;
  // flushing here turns a silently-truncated file into a hard error.
  out.flush();
  if (!out)
    throw std::runtime_error(
        "FIMI write failed: stream reported an I/O error");
}

void write_fimi_file(const Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write FIMI file: " + path);
  write_fimi(db, out);
}

}  // namespace plt::tdb
