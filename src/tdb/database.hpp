// Horizontal transactional database (the paper's D): a multiset of
// transactions, each a sorted set of item ids. Stored as one flat item arena
// plus per-transaction offsets — compact and sequential-scan friendly.
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace plt::tdb {

class Database {
 public:
  Database() = default;

  /// Builds from explicit transactions; each is sorted and deduplicated.
  static Database from_transactions(
      const std::vector<std::vector<Item>>& transactions);

  /// Convenience for tests: rows of items, e.g. {{1,2,3},{2,3}}.
  static Database from_rows(
      std::initializer_list<std::initializer_list<Item>> rows);

  /// Appends one transaction (sorted + deduplicated internally).
  void add(std::span<const Item> items);
  void add(std::initializer_list<Item> items) {
    add(std::span<const Item>(items.begin(), items.size()));
  }

  std::size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  /// The i-th transaction as a sorted, deduplicated span.
  std::span<const Item> operator[](std::size_t i) const {
    return {items_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  /// Total number of item occurrences across all transactions.
  std::size_t total_items() const { return items_.size(); }

  /// Largest item id present (0 when empty).
  Item max_item() const { return max_item_; }

  /// Support of each item: counts[i] = number of transactions containing i.
  /// Vector has max_item()+1 entries.
  std::vector<Count> item_supports() const;

  /// Logical heap footprint in bytes.
  std::size_t memory_usage() const;

  /// Structural equality (same transactions in the same order).
  bool operator==(const Database& other) const;

  void reserve(std::size_t transactions, std::size_t items);

 private:
  std::vector<Item> items_;
  std::vector<std::uint64_t> offsets_ = {0};
  Item max_item_ = 0;
};

}  // namespace plt::tdb
